// Unit tests for aero_lint: the sanitizer, the registry parser, each
// rule against inline snippets, and the end-to-end fixture trees
// (fixtures/good must pass, fixtures/bad must fail each rule).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using aero::lint::Finding;
using aero::lint::Options;

std::vector<Finding> lint_snippet(
    const std::string& path, const std::string& content,
    std::vector<std::string> registered = {"loss", "serve_transient"},
    std::vector<std::string> registered_metrics = {"aero_serve_ok_total",
                                                   "aero_pool_tasks"}) {
    std::vector<Finding> findings;
    Options options;
    aero::lint::lint_file(path, content, registered, registered_metrics,
                          options, /*strict=*/true, &findings);
    return findings;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
    return std::any_of(
        findings.begin(), findings.end(),
        [&](const Finding& finding) { return finding.rule == rule; });
}

TEST(Sanitize, BlanksCommentsPreservingLayout) {
    const std::string text = "int a; // new int\n/* delete */ int b;\n";
    const std::string out = aero::lint::sanitize(text, true);
    EXPECT_EQ(out.size(), text.size());
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("delete"), std::string::npos);
    EXPECT_NE(out.find("int a;"), std::string::npos);
    EXPECT_NE(out.find("int b;"), std::string::npos);
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Sanitize, KeepsOrBlanksStringLiterals) {
    const std::string text = "auto s = \"new delete stoi\"; char c = 'x';";
    const std::string kept = aero::lint::sanitize(text, true);
    EXPECT_NE(kept.find("new delete stoi"), std::string::npos);
    const std::string blanked = aero::lint::sanitize(text, false);
    EXPECT_EQ(blanked.find("stoi"), std::string::npos);
    EXPECT_EQ(blanked.size(), text.size());
}

TEST(Sanitize, HandlesDigitSeparatorsAndEscapes) {
    // The ' in 1'000 is a digit separator, not a char literal: the
    // trailing code must survive blanking.
    const std::string text = "int n = 1'000; int m = 2; char q = '\\''; int k;";
    const std::string out = aero::lint::sanitize(text, false);
    EXPECT_NE(out.find("int m = 2;"), std::string::npos);
    EXPECT_NE(out.find("int k;"), std::string::npos);
}

TEST(Sanitize, HandlesRawStrings) {
    const std::string text =
        "auto r = R\"(new delete // not a comment)\"; int after;";
    const std::string out = aero::lint::sanitize(text, false);
    EXPECT_EQ(out.find("delete"), std::string::npos);
    EXPECT_NE(out.find("int after;"), std::string::npos);
}

TEST(ParseRegistry, ExtractsPointNames) {
    const std::string registry = R"(
        inline constexpr FaultPoint kFaultPoints[] = {
            {"loss", "trainer"},
            {"serve_slow", "service worker stall"},
        };
    )";
    const auto points = aero::lint::parse_registry(registry);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0], "loss");
    EXPECT_EQ(points[1], "serve_slow");
}

TEST(Rules, FaultRegistryFlagsUnknownPoints) {
    const auto findings = lint_snippet(
        "src/a.cpp",
        "void f(I& i) { i.should_fail(\"loss\"); i.arm_nan(1, \"bogus\"); }");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "fault-registry");
    EXPECT_NE(findings[0].message.find("bogus"), std::string::npos);
}

TEST(Rules, FaultRegistryIgnoresCommentsAndDeclarations) {
    const auto findings = lint_snippet(
        "src/a.hpp",
        "#pragma once\n"
        "// i.should_fail(\"commented_bogus\")\n"
        "struct I { bool should_fail(const std::string& point); };\n");
    EXPECT_TRUE(findings.empty());
}

TEST(Rules, PragmaOnceRequiredInHeaders) {
    EXPECT_TRUE(has_rule(lint_snippet("src/a.hpp", "int x;\n"),
                         "pragma-once"));
    EXPECT_TRUE(lint_snippet("src/a.hpp", "#pragma once\nint x;\n").empty());
    // Not required in .cpp files.
    EXPECT_TRUE(lint_snippet("src/a.cpp", "int x;\n").empty());
    // A commented-out pragma does not count.
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.hpp", "// #pragma once\nint x;\n"),
        "pragma-once"));
}

TEST(Rules, NakedNewAndDelete) {
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp", "int* p = new int(1);"), "naked-new"));
    EXPECT_TRUE(has_rule(lint_snippet("src/a.cpp", "void f(int* p) { delete p; }"),
                         "naked-new"));
    // `= delete`, operator new, and strings/comments are fine.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "struct S { S(const S&) = delete;\n"
                             "  S& operator=(const S&)\n      = delete; };\n"
                             "void* operator new(std::size_t);\n"
                             "// new in a comment\n"
                             "const char* s = \"new delete\";\n")
                    .empty());
    // The ownership core is exempt by path.
    EXPECT_TRUE(
        lint_snippet("src/nn/module.cpp", "int* p = new int(1);").empty());
    // Inline suppression works, on the same line or the line above.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "int* p = new int(1);  // aero-lint: "
                             "allow(naked-new)\n")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "// aero-lint: allow(naked-new)\n"
                             "int* p = new int(1);\n")
                    .empty());
    // A marker for a different rule does not suppress.
    EXPECT_TRUE(has_rule(lint_snippet("src/a.cpp",
                                      "int* p = new int(1);  // aero-lint: "
                                      "allow(pragma-once)\n"),
                         "naked-new"));
}

TEST(Rules, UncheckedParseBanned) {
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp", "int v = std::stoi(text);"),
        "unchecked-parse"));
    EXPECT_TRUE(has_rule(lint_snippet("src/a.cpp", "double d = atof(s);"),
                         "unchecked-parse"));
    // The checked-parser home is exempt.
    EXPECT_TRUE(
        lint_snippet("src/util/json.cpp", "int v = std::stoi(text);")
            .empty());
    // Words containing the token are not matches.
    EXPECT_TRUE(lint_snippet("src/a.cpp", "int histoire = custom_atoine(1);")
                    .empty());
}

TEST(Rules, UncheckedIoFlagsDroppedResults) {
    // The seed case: a bare statement dropping the bool.
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp",
                     "void f(W& w) { w.write_file(\"x.json\"); }"),
        "unchecked-io"));
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp",
                     "void f(M& m) { save_parameters(m, \"p.bin\"); }"),
        "unchecked-io"));
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp",
                     "void f(P& p) { p.save_checkpoint(\"c\", 1); }"),
        "unchecked-io"));
}

TEST(Rules, UncheckedIoAcceptsConsumedResults) {
    // Branching, assignment, returning, or nesting in another call all
    // consume the value; declarations/definitions are not calls.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "bool f(W& w) {\n"
                             "  if (!w.write_file(\"x\")) return false;\n"
                             "  const bool ok = w.write_file(\"y\");\n"
                             "  check(w.write_file(\"z\"));\n"
                             "  return ok && w.write_file(\"w\");\n"
                             "}\n")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/a.hpp",
                             "#pragma once\n"
                             "bool write_file(const std::string& path);\n")
                    .empty());
    // Inline suppression works as for every rule.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "void f(W& w) {\n"
                             "  // aero-lint: allow(unchecked-io)\n"
                             "  w.write_file(\"best-effort.json\");\n"
                             "}\n")
                    .empty());
}

TEST(Rules, UncheckedIoRunsInNonStrictDirs) {
    // Benches/tests are fault_dirs (strict=false); the IO rule still
    // applies there — bench_common.hpp was the original offender.
    std::vector<Finding> findings;
    Options options;
    aero::lint::lint_file("bench/b.cpp",
                          "void f(W& w) { w.write_file(\"r.json\"); }",
                          {"loss"}, {}, options, /*strict=*/false,
                          &findings);
    EXPECT_TRUE(has_rule(findings, "unchecked-io"));
}

TEST(Rules, StatsAccountingComment) {
    const std::string bad =
        "struct FooStats {\n"
        "  long long in = 0;\n"
        "  long long out = 0;\n"
        "  bool balanced() const { return in == out; }\n"
        "};\n";
    EXPECT_TRUE(has_rule(lint_snippet("src/a.hpp", "#pragma once\n" + bad),
                         "stats-accounting"));
    const std::string good =
        "struct FooStats {\n"
        "  long long in = 0;\n"
        "  long long out = 0;\n"
        "  /// The accounting invariant: in == out after drain.\n"
        "  bool balanced() const { return in == out; }\n"
        "};\n";
    EXPECT_TRUE(lint_snippet("src/a.hpp", "#pragma once\n" + good).empty());
    // Stats structs without a balanced() invariant are unconstrained.
    EXPECT_TRUE(lint_snippet("src/a.hpp",
                             "#pragma once\nstruct BarStats { int n; };\n")
                    .empty());
}

TEST(Rules, OverloadAccountingFlagsUnmeteredRungWrites) {
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp", "void f(L& l, int r) { l.rung_.store(r); }"),
        "overload-accounting"));
    EXPECT_TRUE(has_rule(
        lint_snippet("src/a.cpp", "void f(S& s) { s.rung_ = 2; }"),
        "overload-accounting"));
}

TEST(Rules, OverloadAccountingAcceptsMeteredWritesAndReads) {
    // The canonical metered shape: counter inc on the adjacent line.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "void L::set_rung(int rung) {\n"
                             "  rung_.store(rung);\n"
                             "  metrics_.rung_transition[rung]->inc();\n"
                             "}\n")
                    .empty());
    // An aero_overload_* literal within the window also satisfies it
    // (registration sites name the counters directly).
    EXPECT_FALSE(has_rule(
        lint_snippet("src/a.cpp",
                     "void f(R& reg) {\n"
                     "  rung_ = 1;\n"
                     "  reg.counter(\"aero_overload_rung_full_total\", "
                     "\"h\")->inc();\n"
                     "}\n"),
        "overload-accounting"));
    // Reads, comparisons and near-miss identifiers are not writes.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "int g() { return rung_.load(); }\n"
                             "bool h() { return rung_ == 2; }\n"
                             "int i() { return rung_for(1); }\n"
                             "void j(int r) { plain_rung_ = r; }\n")
                    .empty());
    // Inline suppression works as for every rule.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "void k(int r) {\n"
                             "  // aero-lint: allow(overload-accounting)\n"
                             "  rung_ = r;\n"
                             "}\n")
                    .empty());
}

TEST(Rules, ArenaBypassFlagsVectorFloatInHotDirs) {
    // std::vector<float> in an arena dir is flagged, spacing-insensitive.
    EXPECT_TRUE(has_rule(
        lint_snippet("src/tensor/t.cpp", "std::vector<float> data_;"),
        "arena-bypass"));
    EXPECT_TRUE(has_rule(
        lint_snippet("src/autograd/v.cpp",
                     "std :: vector < float > grad(n);"),
        "arena-bypass"));
    // Outside the arena dirs — including prefix near-misses — the
    // idiom is fine; so are other element types and comments/strings.
    EXPECT_TRUE(
        lint_snippet("src/image/i.cpp", "std::vector<float> rows;").empty());
    EXPECT_TRUE(lint_snippet("src/tensorboard/t.cpp",
                             "std::vector<float> rows;")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/tensor/t.cpp",
                             "std::vector<double> accum;\n"
                             "// std::vector<float> in a comment\n"
                             "const char* s = \"std::vector<float>\";\n")
                    .empty());
    // The interop boundary carries the usual inline suppression.
    EXPECT_TRUE(lint_snippet("src/tensor/t.cpp",
                             "// aero-lint: allow(arena-bypass)\n"
                             "std::vector<float> to_vector() const;\n")
                    .empty());
}

TEST(Rules, MetricNamingPattern) {
    EXPECT_TRUE(aero::lint::valid_metric_name("aero_serve_ok_total"));
    EXPECT_TRUE(aero::lint::valid_metric_name("aero_pool_queue_wait_ms"));
    EXPECT_FALSE(aero::lint::valid_metric_name("serve_ok_total"));
    EXPECT_FALSE(aero::lint::valid_metric_name("aero_serve"));  // 2 segments
    EXPECT_FALSE(aero::lint::valid_metric_name("aero_Serve_ok"));
    EXPECT_FALSE(aero::lint::valid_metric_name("aero_serve_ok-total"));
    EXPECT_FALSE(aero::lint::valid_metric_name("aero__serve"));
}

TEST(Rules, MetricNamingFlagsPatternAndRegistryViolations) {
    // Malformed name.
    auto findings = lint_snippet(
        "src/a.cpp", "void f(R& r) { r.counter(\"requestCount\", \"h\"); }");
    ASSERT_TRUE(has_rule(findings, "metric-naming"));
    // Well-formed but undeclared.
    findings = lint_snippet(
        "src/a.cpp",
        "void f(R& r) { r.gauge(\"aero_serve_bogus_depth\", \"h\"); }");
    EXPECT_TRUE(has_rule(findings, "metric-naming"));
    // Declared names pass, for all three registration kinds.
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "void f(R& r) {\n"
                             "  r.counter(\"aero_serve_ok_total\", \"h\");\n"
                             "  r.histogram(\"aero_pool_tasks\", \"h\", b);\n"
                             "}\n")
                    .empty());
    // Declarations (no literal) and suppressions are quiet.
    EXPECT_TRUE(lint_snippet("src/a.hpp",
                             "#pragma once\n"
                             "Counter& counter(const char* name);\n")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/a.cpp",
                             "// aero-lint: allow(metric-naming)\n"
                             "void f(R& r) { r.counter(\"bad\", \"h\"); }\n")
                    .empty());
    // An empty metric table disables the rule (local-registry mode).
    std::vector<Finding> none;
    Options options;
    aero::lint::lint_file("src/a.cpp",
                          "void f(R& r) { r.counter(\"bad\", \"h\"); }",
                          {"loss"}, {}, options, /*strict=*/true, &none);
    EXPECT_FALSE(has_rule(none, "metric-naming"));
}

// ---- fixture trees ----------------------------------------------------------

Options fixture_options(const std::string& which) {
    Options options;
    options.root = std::string(AERO_LINT_FIXTURE_DIR) + "/" + which;
    options.strict_dirs = {"src"};
    options.fault_dirs = {};
    options.registry = "registry.hpp";
    options.metric_registry = "metric_registry.hpp";
    options.design_doc = "DESIGN.md";
    return options;
}

TEST(Fixtures, GoodTreeIsClean) {
    const auto findings = aero::lint::run_lint(fixture_options("good"));
    for (const auto& finding : findings) {
        ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                      << finding.rule << "] " << finding.message;
    }
}

TEST(Fixtures, BadTreeTripsEveryRule) {
    const auto findings = aero::lint::run_lint(fixture_options("bad"));
    EXPECT_TRUE(has_rule(findings, "fault-registry"));
    EXPECT_TRUE(has_rule(findings, "fault-docs"));
    EXPECT_TRUE(has_rule(findings, "pragma-once"));
    EXPECT_TRUE(has_rule(findings, "naked-new"));
    EXPECT_TRUE(has_rule(findings, "unchecked-parse"));
    EXPECT_TRUE(has_rule(findings, "unchecked-io"));
    EXPECT_TRUE(has_rule(findings, "stats-accounting"));
    EXPECT_TRUE(has_rule(findings, "overload-accounting"));
    EXPECT_TRUE(has_rule(findings, "arena-bypass"));
    // Both unregistered points are reported with their names.
    int unregistered = 0;
    for (const auto& finding : findings) {
        if (finding.rule == "fault-registry") ++unregistered;
    }
    EXPECT_EQ(unregistered, 2);
    // All three metric violations (bad pattern + two undeclared, one
    // from the mem-layer families) are reported.
    int metric_findings = 0;
    for (const auto& finding : findings) {
        if (finding.rule == "metric-naming") ++metric_findings;
    }
    EXPECT_EQ(metric_findings, 3);
}

}  // namespace
