#pragma once
// aero_lint: multi-pass project analyzer for the AeroDiffusion tree.
//
// Pass 1 — per-line rules. Repo-specific contracts that generic tooling
// (clang-tidy, -Wthread-safety) cannot know about:
//
//   fault-registry   every fault-injection point name used at a
//                    should_fail / fires / arm_nan / set_fail_rate call
//                    site is registered in src/util/fault_points.hpp
//   fault-docs       every registered fault point is documented in
//                    DESIGN.md
//   pragma-once      every public header starts with #pragma once
//   naked-new        no naked new / delete expressions outside the
//                    module-ownership core (src/nn/module.cpp)
//   unchecked-parse  no std::stoi / atoi / atof / strtod & friends —
//                    string->number goes through the checked parsers in
//                    util/json (parse_int / parse_double)
//   unchecked-io     the bool returned by the persistence helpers
//                    (write_file / save_parameters / save_checkpoint)
//                    is consumed, not dropped
//   stats-accounting every *Stats struct that exposes a balanced()
//                    invariant keeps its accounting comment adjacent to
//                    the fields it constrains
//   metric-naming    every metric name used at a counter / gauge /
//                    histogram registration site follows the
//                    `aero_<area>_<name>` pattern and is declared in
//                    src/obs/metric_names.hpp
//   overload-accounting
//                    every write of a degradation-ladder rung state sits
//                    within three lines of an `aero_overload_*`
//                    rung-transition counter increment (DESIGN.md §14)
//   arena-bypass     hot tensor-storage directories do not build storage
//                    on std::vector<float> — float blocks go through
//                    mem::Buffer so the mem::Arena sees them
//                    (DESIGN.md §17)
//
// Pass 2 — layering (layering.hpp): the `#include` graph of src/ must
// respect the layer DAG declared in ARCH.layers (rules layer-violation,
// layer-cycle, layer-undeclared, layer-manifest).
//
// Pass 3 — lock-order (lockorder.hpp): an approximate inter-procedural
// lock graph over util::MutexLock acquisition sites; cycles are
// potential deadlocks (rule lock-order). The runtime companion lives in
// src/util/sync.{hpp,cpp} behind AERO_LOCK_ORDER=1.
//
// Pass 4 — determinism (determinism.hpp): output-affecting directories
// must not read entropy or wall clocks or iterate unordered containers
// (rules det-random, det-wallclock, det-unordered-iter) — the bitwise
// reproducibility contract behind the paper's FID/PSNR tables.
//
// A deliberate exception is suppressed inline with
//   // aero-lint: allow(<rule>)
// on the offending line or the line directly above it; suppressions are
// visible in review and greppable, which is the point.
//
// `aero_lint --list-rules` prints the full table; `--json PATH` writes
// the machine-readable report consumed by scripts/check.sh.

#include <string>
#include <utility>
#include <vector>

namespace aero::lint {

struct Finding {
    std::string file;  ///< path relative to the scanned root
    int line = 1;
    std::string rule;
    std::string message;
};

struct Options {
    std::string root = ".";  ///< repo root
    /// Directories (relative to root) where every per-line rule applies.
    std::vector<std::string> strict_dirs = {"src"};
    /// Extra directories where only the fault-registry rule applies
    /// (tests/benches arm fault points too).
    std::vector<std::string> fault_dirs = {"tests", "bench", "examples"};
    /// Fault-point registry header, relative to root.
    std::string registry = "src/util/fault_points.hpp";
    /// Metric-name registry header, relative to root ("" skips the
    /// metric-naming rule).
    std::string metric_registry = "src/obs/metric_names.hpp";
    /// Design doc that must mention every registered point ("" skips
    /// the fault-docs rule).
    std::string design_doc = "DESIGN.md";
    /// Files (relative paths, exact match) where naked new/delete is
    /// the point of the file.
    std::vector<std::string> allow_new = {"src/nn/module.cpp"};
    /// Files allowed to use raw conversions (the checked-parser home).
    std::vector<std::string> allow_unchecked_parse = {"src/util/json.cpp"};
    /// Layer manifest, relative to root ("" skips the layering pass).
    std::string layers_manifest = "ARCH.layers";
    /// Directory whose module subdirectories the layering pass checks.
    std::string layers_root = "src";
    /// Directories the lock-order pass scans for acquisition sites.
    std::vector<std::string> lock_dirs = {"src"};
    /// Output-affecting directories under the determinism contract.
    std::vector<std::string> determinism_dirs = {
        "src/tensor", "src/linalg", "src/nn", "src/diffusion", "src/core"};
    /// Hot tensor-storage directories where float storage must go
    /// through mem::Buffer rather than std::vector<float>, so the
    /// mem::Arena can recycle it (rule arena-bypass, DESIGN.md §17).
    std::vector<std::string> arena_dirs = {"src/tensor", "src/autograd"};
    /// Pass filter: empty runs everything; otherwise a subset of
    /// {"rules", "layering", "lock-order", "determinism"}.
    std::vector<std::string> passes;
};

/// True when `pass` ("rules" / "layering" / ...) should run.
bool pass_enabled(const Options& options, const std::string& pass);

/// Returns `text` with comments — and, when `keep_strings` is false,
/// string/char literal contents — blanked to spaces. Length- and
/// line-preserving, so offsets and line numbers map 1:1 onto the input.
std::string sanitize(const std::string& text, bool keep_strings);

/// Extracts the registered names from a registry header text (both the
/// fault-point and the metric-name tables use the `{"name", ...}` row
/// shape).
std::vector<std::string> parse_registry(const std::string& registry_text);

/// True when `name` follows the `aero_<area>_<name>` metric pattern
/// (lowercase alnum + underscore, at least three non-empty segments).
bool valid_metric_name(const std::string& name);

/// 1-based line number of `offset` within `text`.
int line_of(const std::string& text, std::size_t offset);

/// (line, rule) pairs for every `aero-lint: allow(<rule>)` marker in
/// the ORIGINAL (un-sanitized) file content.
std::vector<std::pair<int, std::string>> allow_markers(
    const std::string& content);

/// True when a marker suppresses `rule` on `line` (the marker's own
/// line or the line directly above).
bool is_suppressed(const std::vector<std::pair<int, std::string>>& markers,
                   int line, const std::string& rule);

/// One row of the `--list-rules` table.
struct RuleDoc {
    const char* name;
    const char* summary;
};

/// Every rule any pass can emit, sorted by name.
const std::vector<RuleDoc>& rule_docs();

/// Lints one file's content with the per-line rules. `strict` enables
/// every rule; otherwise only fault-registry/unchecked-io run. Appends
/// to `out`.
void lint_file(const std::string& path, const std::string& content,
               const std::vector<std::string>& registered_points,
               const std::vector<std::string>& registered_metrics,
               const Options& options, bool strict,
               std::vector<Finding>* out);

/// Runs every enabled pass over the configured tree. Findings are
/// sorted by (file, line, rule).
std::vector<Finding> run_lint(const Options& options);

}  // namespace aero::lint
