#pragma once
// aero_lint: project-invariant linter for the AeroDiffusion tree.
//
// Enforces repo-specific contracts that generic tooling (clang-tidy,
// -Wthread-safety) cannot know about:
//
//   fault-registry   every fault-injection point name used at a
//                    should_fail / fires / arm_nan / set_fail_rate call
//                    site is registered in src/util/fault_points.hpp
//   fault-docs       every registered fault point is documented in
//                    DESIGN.md
//   pragma-once      every public header starts with #pragma once
//   naked-new        no naked new / delete expressions outside the
//                    module-ownership core (src/nn/module.cpp)
//   unchecked-parse  no std::stoi / atoi / atof / strtod & friends —
//                    string->number goes through the checked parsers in
//                    util/json (parse_int / parse_double)
//   unchecked-io     the bool returned by the persistence helpers
//                    (write_file / save_parameters / save_checkpoint)
//                    is consumed, not dropped — a silently failed write
//                    loses bench results or checkpoints. Runs in every
//                    scanned directory, benches included (the original
//                    offender was bench_common.hpp's record_results).
//   stats-accounting every *Stats struct that exposes a balanced()
//                    invariant keeps its accounting comment adjacent to
//                    the fields it constrains
//   metric-naming    every metric name used at a counter / gauge /
//                    histogram registration site follows the
//                    `aero_<area>_<name>` pattern and is declared in
//                    src/obs/metric_names.hpp
//   overload-accounting
//                    every write of a degradation-ladder rung state
//                    (`rung_ = ...` / `rung_.store(...)`) sits within
//                    three lines of an `aero_overload_*` rung-transition
//                    counter increment, so ladder moves can never go
//                    unmetered (DESIGN.md §14)
//
// A deliberate exception is suppressed inline with
//   // aero-lint: allow(<rule>)
// on the offending line or the line directly above it; suppressions are
// visible in review and greppable, which is the point.

#include <string>
#include <vector>

namespace aero::lint {

struct Finding {
    std::string file;  ///< path relative to the scanned root
    int line = 1;
    std::string rule;
    std::string message;
};

struct Options {
    std::string root = ".";  ///< repo root
    /// Directories (relative to root) where every rule applies.
    std::vector<std::string> strict_dirs = {"src"};
    /// Extra directories where only the fault-registry rule applies
    /// (tests/benches arm fault points too).
    std::vector<std::string> fault_dirs = {"tests", "bench", "examples"};
    /// Fault-point registry header, relative to root.
    std::string registry = "src/util/fault_points.hpp";
    /// Metric-name registry header, relative to root ("" skips the
    /// metric-naming rule).
    std::string metric_registry = "src/obs/metric_names.hpp";
    /// Design doc that must mention every registered point ("" skips
    /// the fault-docs rule).
    std::string design_doc = "DESIGN.md";
    /// Files (relative paths, exact match) where naked new/delete is
    /// the point of the file.
    std::vector<std::string> allow_new = {"src/nn/module.cpp"};
    /// Files allowed to use raw conversions (the checked-parser home).
    std::vector<std::string> allow_unchecked_parse = {"src/util/json.cpp"};
};

/// Returns `text` with comments — and, when `keep_strings` is false,
/// string/char literal contents — blanked to spaces. Length- and
/// line-preserving, so offsets and line numbers map 1:1 onto the input.
std::string sanitize(const std::string& text, bool keep_strings);

/// Extracts the registered names from a registry header text (both the
/// fault-point and the metric-name tables use the `{"name", ...}` row
/// shape).
std::vector<std::string> parse_registry(const std::string& registry_text);

/// True when `name` follows the `aero_<area>_<name>` metric pattern
/// (lowercase alnum + underscore, at least three non-empty segments).
bool valid_metric_name(const std::string& name);

/// Lints one file's content. `strict` enables every rule; otherwise
/// only fault-registry runs. Appends to `out`.
void lint_file(const std::string& path, const std::string& content,
               const std::vector<std::string>& registered_points,
               const std::vector<std::string>& registered_metrics,
               const Options& options, bool strict,
               std::vector<Finding>* out);

/// Walks the configured directories and runs every rule. Findings are
/// sorted by (file, line).
std::vector<Finding> run_lint(const Options& options);

}  // namespace aero::lint
