#pragma once
// Miniature fault-point registry for lint fixtures.

namespace fixture {

struct FaultPoint {
    const char* name;
    const char* fires_at;
};

inline constexpr FaultPoint kFaultPoints[] = {
    {"loss", "trainer: loss corrupted"},
    {"serve_transient", "service: transient fault"},
};

}  // namespace fixture
