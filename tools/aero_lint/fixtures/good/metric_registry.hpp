#pragma once
// Miniature metric-name registry for lint fixtures.

namespace fixture {

struct MetricName {
    const char* name;
    const char* help;
};

inline constexpr MetricName kMetricNames[] = {
    {"aero_serve_ok_total", "requests resolved ok"},
    {"aero_pool_tasks", "parallel_for invocations"},
};

}  // namespace fixture
