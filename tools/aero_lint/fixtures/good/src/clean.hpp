#pragma once
// Clean fixture: satisfies every aero_lint rule.

#include <string>

namespace fixture {

/// Counter block with its invariant documented where the fields live.
struct WorkerStats {
    long long submitted = 0;
    long long completed = 0;
    long long failed = 0;

    /// The accounting invariant: submitted == completed + failed once
    /// the queue drains.
    bool balanced() const { return submitted == completed + failed; }
};

class Widget {
public:
    Widget() = default;
    Widget(const Widget&) = delete;  // `= delete` is not a deallocation
    Widget& operator=(const Widget&) = delete;

    int parse(const std::string& text) const;

private:
    int value_ = 0;
};

}  // namespace fixture
