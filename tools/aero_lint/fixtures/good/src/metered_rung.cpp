// Fixture: degradation-ladder rung writes metered per the
// overload-accounting contract — the transition counter increments on
// the line adjacent to the state write.

#include <atomic>

namespace fixture {

struct Counter {
    void inc();
};

struct Ladder {
    std::atomic<int> rung_{0};
    Counter* rung_transition[5] = {};

    void set_rung(int rung) {
        rung_.store(rung);
        rung_transition[rung]->inc();
    }
};

}  // namespace fixture
