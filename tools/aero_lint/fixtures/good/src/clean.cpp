// Clean fixture translation unit: registered fault points, checked
// parsing, one reviewed suppression.

#include <memory>
#include <string>

namespace fixture {

struct Injector {
    bool should_fail(const std::string&) { return false; }
};

struct Writer {
    bool write_file(const std::string&) const { return true; }
};

bool checked_io(const Writer& writer) {
    // Consuming the result (branch, assignment, return) satisfies the
    // unchecked-io rule.
    if (!writer.write_file("a.json")) return false;
    const bool ok = writer.write_file("b.json");
    return ok && writer.write_file("c.json");
}

struct Metrics {
    int counter(const std::string&, const std::string&) { return 0; }
};

int use_registered_metrics(Metrics& metrics) {
    // Declared in metric_registry.hpp and pattern-conformant, so the
    // metric-naming rule stays quiet.
    return metrics.counter("aero_serve_ok_total", "requests resolved ok");
}

int use_registered_points() {
    Injector injector;
    int hits = 0;
    if (injector.should_fail("loss")) ++hits;
    if (injector.should_fail("serve_transient")) ++hits;
    // Comments may mention should_fail("not_a_point") without tripping
    // the rule, and strings below are not parsed as code: "new X".
    const std::string text = "delete everything with std::stoi(x)";
    hits += static_cast<int>(text.size());
    auto owned = std::make_unique<int>(7);
    int* raw = new int(3);  // aero-lint: allow(naked-new)
    hits += *owned + *raw;
    delete raw;  // aero-lint: allow(naked-new)
    return hits;
}

}  // namespace fixture
