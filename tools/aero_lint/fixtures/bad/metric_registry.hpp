#pragma once
// Miniature metric-name registry for the failing fixtures.

namespace fixture {

struct MetricName {
    const char* name;
    const char* help;
};

inline constexpr MetricName kMetricNames[] = {
    {"aero_serve_ok_total", "requests resolved ok"},
};

}  // namespace fixture
