#pragma once
// Miniature fault-point registry for the failing fixtures.

namespace fixture {

struct FaultPoint {
    const char* name;
    const char* fires_at;
};

inline constexpr FaultPoint kFaultPoints[] = {
    {"loss", "trainer: loss corrupted"},
    {"undocumented_point", "registered but missing from DESIGN.md"},
};

}  // namespace fixture
