// Fixture: metric registrations that violate the naming contract — one
// name outside the aero_<area>_<name> pattern, one well-formed but not
// declared in the metric registry.

#include <string>

namespace fixture {

struct Registry {
    int& counter(const std::string& name, const std::string& help);
    int& gauge(const std::string& name, const std::string& help);
};

void register_metrics(Registry& registry) {
    registry.counter("requestCount", "bad: not aero_<area>_<name>");
    registry.gauge("aero_serve_undeclared_depth", "bad: not in registry");
    // The mem-layer families added with the arena/cache get the same
    // coverage: well-formed name, absent from the registry fixture.
    registry.gauge("aero_alloc_undeclared_bytes", "bad: not in registry");
}

}  // namespace fixture
