// Violation: arms a fault point missing from the registry.

#include <string>

namespace fixture {

struct Injector {
    bool should_fail(const std::string&) { return false; }
    void arm_nan(int, const std::string&) {}
};

void bad_points() {
    Injector injector;
    injector.should_fail("loss");         // registered: fine
    injector.should_fail("bogus_point");  // NOT registered
    injector.arm_nan(3, "another_bogus_point");
}

}  // namespace fixture
