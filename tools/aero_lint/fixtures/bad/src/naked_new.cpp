// Violation: naked new/delete outside the module-ownership core.

namespace fixture {

int* leak_prone() {
    int* raw = new int(42);
    delete raw;
    return new int(7);
}

}  // namespace fixture
