#pragma once
// Violation: a *Stats struct exposes balanced() but the accounting
// comment was dropped from the struct body.

namespace fixture {

struct QueueStats {
    long long enqueued = 0;
    long long dequeued = 0;
    long long shed = 0;

    bool balanced() const { return enqueued == dequeued + shed; }
};

}  // namespace fixture
