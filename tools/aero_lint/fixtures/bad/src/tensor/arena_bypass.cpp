// Fixture: float storage declared as std::vector<float> inside a hot
// tensor-storage directory — the arena-bypass rule must flag it; the
// fix is mem::Buffer so the caching arena sees the allocation.

#include <vector>

namespace fixture {

struct MiniTensor {
    std::vector<float> data;
};

}  // namespace fixture
