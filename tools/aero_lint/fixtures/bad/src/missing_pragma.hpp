// Violation: public header without #pragma once (an include guard is
// not the house style).
#ifndef FIXTURE_MISSING_PRAGMA_HPP
#define FIXTURE_MISSING_PRAGMA_HPP

namespace fixture {
inline int guarded_the_old_way() { return 1; }
}  // namespace fixture

#endif
