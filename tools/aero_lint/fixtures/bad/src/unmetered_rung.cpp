// Violation: writes the degradation-ladder rung state with no adjacent
// aero_overload_* rung-transition counter increment.

#include <atomic>

namespace fixture {

struct Ladder {
    std::atomic<int> rung_{0};

    void escalate(int rung) { rung_.store(rung); }
};

}  // namespace fixture
