// Bad fixture: drops the bool result of a persistence helper.

#include <string>

namespace fixture {

struct Writer {
    bool write_file(const std::string&) const { return false; }
};

void record(const Writer& writer) {
    writer.write_file("out/results/bench.json");
}

}  // namespace fixture
