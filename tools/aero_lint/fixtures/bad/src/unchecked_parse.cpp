// Violation: unchecked string->number conversions.

#include <cstdlib>
#include <string>

namespace fixture {

int sloppy(const std::string& text) {
    int a = std::stoi(text);         // silently throws / partial-parses
    double b = std::atof(text.c_str());  // silent 0.0 on garbage
    return a + static_cast<int>(b);
}

}  // namespace fixture
