// The classic lexical inversion: one method nests a_ -> b_, the other
// b_ -> a_.

namespace util {
class Mutex {};
class MutexLock {
public:
    explicit MutexLock(Mutex& m);
};
}  // namespace util

class Inverted {
public:
    void forward() {
        util::MutexLock la(a_);
        util::MutexLock lb(b_);
    }
    void backward() {
        util::MutexLock lb(b_);
        util::MutexLock la(a_);
    }

private:
    util::Mutex a_;
    util::Mutex b_;
};
