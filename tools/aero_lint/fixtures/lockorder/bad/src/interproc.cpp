// Inter-procedural inversion: grab() holds head_ and calls into a
// function that locks tail_; reverse() holds tail_ and reaches head_
// through a non-locking intermediate. Only the may-lock closure over
// the call graph sees this cycle.

namespace util {
class Mutex {};
class MutexLock {
public:
    explicit MutexLock(Mutex& m);
};
}  // namespace util

class Chain {
public:
    void grab() {
        util::MutexLock l(head_);
        lock_tail();
    }
    void reverse() {
        util::MutexLock l(tail_);
        indirection();
    }

private:
    void indirection() { lock_head(); }
    void lock_head() { util::MutexLock l(head_); }
    void lock_tail() { util::MutexLock l(tail_); }

    util::Mutex head_;
    util::Mutex tail_;
};
