// Two mutexes, always acquired in the same order (front_ before
// back_), including through a call chain — no cycle.

namespace util {
class Mutex {};
class MutexLock {
public:
    explicit MutexLock(Mutex& m);
};
}  // namespace util

class Pipeline {
public:
    void push() {
        util::MutexLock front(front_);
        util::MutexLock back(back_);
        count_ += 1;
    }
    void drain() {
        util::MutexLock front(front_);
        flush_back();
    }

private:
    void flush_back() {
        util::MutexLock back(back_);
        count_ = 0;
    }

    util::Mutex front_;
    util::Mutex back_;
    int count_ = 0;
};
