// Deterministic by construction: seeded Rng, injected clock, ordered
// containers — plus near-miss names that must not trip the rules.

#include <map>
#include <string>
#include <vector>

struct Rng {
    unsigned next();
};
struct Clock {
    long long time(int channel);
};
struct Tensor {
    static Tensor randn(int n, Rng* rng);
};

int run(Rng* rng, Clock* clk) {
    // randn( contains "rand" but is not the C library call.
    Tensor noise = Tensor::randn(4, rng);
    (void)noise;
    // An injected clock read (member call) is deterministic under a
    // manual clock; only the global C/chrono reads are banned.
    long long t = clk->time(0);
    // "rand" and "system_clock" in strings or comments do not count.
    const std::string note = "rand() and system_clock are banned";
    std::map<std::string, int> ordered = {{note, 1}};
    int total = 0;
    for (const auto& entry : ordered) total += entry.second;
    return total + static_cast<int>(t) + static_cast<int>(rng->next());
}
