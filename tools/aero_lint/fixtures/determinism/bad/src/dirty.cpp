// Every determinism rule fires here: C-library randomness, a hardware
// entropy source, wall-clock reads and unordered iteration.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <string>
#include <unordered_map>

int entropy() {
    std::srand(42);
    std::random_device device;
    return std::rand() + static_cast<int>(device());
}

long long wall() {
    const auto now = std::chrono::system_clock::now();
    const std::time_t stamp = std::time(nullptr);
    return now.time_since_epoch().count() + stamp;
}

int hash_order(const std::unordered_map<std::string, int>& weights) {
    int total = 0;
    for (const auto& entry : weights) total += entry.second;
    for (auto it = weights.begin(); it != weights.end(); ++it) {
        total += it->second;
    }
    return total;
}

int reviewed_exception() {
    // aero-lint: allow(det-random)
    return std::rand();
}
