// A deliberate, reviewed upward edge: the marker keeps the tree clean.
// aero-lint: allow(layer-violation)
#include "serve/api.hpp"

int suppressed_value() { return 0; }
