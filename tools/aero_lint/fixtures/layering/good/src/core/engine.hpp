#pragma once
#include "util/base.hpp"
inline int engine_value() { return base_value() + 1; }
