// serve sits on top: the direct core include and the transitive util
// include are both legal. The commented-out upward edge below must not
// count — the pass scans sanitized text.
#include "core/engine.hpp"
#include "util/base.hpp"
// #include "rogue/backdoor.hpp"

int serve_value() { return engine_value() + base_value(); }
