// The deliberate upward edge: util is the bottom layer and must not
// know about serve.
#include "serve/server.hpp"

int upward_value() { return 2; }
