#pragma once
int base_value();
