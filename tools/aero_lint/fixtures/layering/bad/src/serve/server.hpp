#pragma once
#include "util/base.hpp"
int server_value();
