// This module directory has no ARCH.layers entry: layer-undeclared.
int stray_value() { return 3; }
