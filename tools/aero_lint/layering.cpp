#include "layering.hpp"

#include <algorithm>
#include <filesystem>
#include <regex>
#include <sstream>

#include "walk.hpp"

namespace aero::lint {

namespace {

namespace fs = std::filesystem;

std::string trim(const std::string& text) {
    std::size_t begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    std::size_t end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

bool valid_module_name(const std::string& name) {
    if (name.empty()) return false;
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                        c == '_';
        if (!ok) return false;
    }
    return true;
}

/// DFS state for cycle detection: 0 unvisited, 1 on stack, 2 done.
bool find_cycle(const LayerManifest& manifest, const std::string& node,
                std::map<std::string, int>* state,
                std::vector<std::string>* stack,
                std::vector<std::string>* cycle) {
    (*state)[node] = 1;
    stack->push_back(node);
    const auto it = manifest.deps.find(node);
    if (it != manifest.deps.end()) {
        for (const std::string& dep : it->second) {
            const int dep_state =
                state->count(dep) != 0 ? (*state)[dep] : 0;
            if (dep_state == 1) {
                // Slice the stack from the first occurrence of dep.
                const auto begin =
                    std::find(stack->begin(), stack->end(), dep);
                cycle->assign(begin, stack->end());
                cycle->push_back(dep);
                return true;
            }
            if (dep_state == 0 &&
                find_cycle(manifest, dep, state, stack, cycle)) {
                return true;
            }
        }
    }
    stack->pop_back();
    (*state)[node] = 2;
    return false;
}

}  // namespace

LayerManifest parse_layer_manifest(const std::string& text,
                                   const std::string& manifest_path,
                                   std::vector<Finding>* out) {
    LayerManifest manifest;
    std::istringstream stream(text);
    std::string raw;
    int line = 0;
    while (std::getline(stream, raw)) {
        ++line;
        const std::size_t hash = raw.find('#');
        const std::string entry =
            trim(hash == std::string::npos ? raw : raw.substr(0, hash));
        if (entry.empty()) continue;
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) {
            out->push_back({manifest_path, line, "layer-manifest",
                            "malformed line (expected '<module>: "
                            "<deps...>'): " +
                                entry});
            continue;
        }
        const std::string module = trim(entry.substr(0, colon));
        if (!valid_module_name(module)) {
            out->push_back({manifest_path, line, "layer-manifest",
                            "invalid module name \"" + module + "\""});
            continue;
        }
        if (manifest.deps.count(module) != 0) {
            out->push_back({manifest_path, line, "layer-manifest",
                            "duplicate entry for module \"" + module +
                                "\""});
            continue;
        }
        std::vector<std::string> deps;
        std::istringstream dep_stream(entry.substr(colon + 1));
        std::string dep;
        while (dep_stream >> dep) {
            if (!valid_module_name(dep)) {
                out->push_back({manifest_path, line, "layer-manifest",
                                "invalid dependency name \"" + dep +
                                    "\" for module \"" + module + "\""});
                continue;
            }
            deps.push_back(dep);
        }
        manifest.modules.push_back(module);
        manifest.deps[module] = std::move(deps);
    }
    // Dependencies must themselves be declared, so the DAG is closed.
    for (const std::string& module : manifest.modules) {
        for (const std::string& dep : manifest.deps[module]) {
            if (manifest.deps.count(dep) == 0) {
                out->push_back(
                    {manifest_path, 1, "layer-manifest",
                     "module \"" + module + "\" depends on \"" + dep +
                         "\" which has no entry of its own"});
            }
        }
    }
    return manifest;
}

std::set<std::string> layer_closure(const LayerManifest& manifest,
                                    const std::string& module) {
    std::set<std::string> closure;
    std::vector<std::string> frontier{module};
    while (!frontier.empty()) {
        const std::string node = frontier.back();
        frontier.pop_back();
        const auto it = manifest.deps.find(node);
        if (it == manifest.deps.end()) continue;
        for (const std::string& dep : it->second) {
            if (closure.insert(dep).second) frontier.push_back(dep);
        }
    }
    closure.erase(module);
    return closure;
}

void check_layer_cycles(const LayerManifest& manifest,
                        const std::string& manifest_path,
                        std::vector<Finding>* out) {
    std::map<std::string, int> state;
    for (const std::string& module : manifest.modules) {
        if (state.count(module) != 0 && state[module] == 2) continue;
        std::vector<std::string> stack;
        std::vector<std::string> cycle;
        if (find_cycle(manifest, module, &state, &stack, &cycle)) {
            std::string path;
            for (const std::string& node : cycle) {
                if (!path.empty()) path += " -> ";
                path += node;
            }
            out->push_back({manifest_path, 1, "layer-cycle",
                            "declared layer graph has a cycle: " + path});
            return;  // one cycle report is enough to fail the gate
        }
    }
}

void run_layering(const Options& options, std::vector<Finding>* out) {
    if (options.layers_manifest.empty()) return;
    std::string text;
    const fs::path manifest_file =
        fs::path(options.root) / options.layers_manifest;
    if (!read_file_text(manifest_file, &text)) {
        out->push_back({options.layers_manifest, 1, "layer-manifest",
                        "cannot read layer manifest"});
        return;
    }
    const LayerManifest manifest =
        parse_layer_manifest(text, options.layers_manifest, out);
    if (manifest.modules.empty()) {
        out->push_back({options.layers_manifest, 1, "layer-manifest",
                        "manifest declares zero modules"});
        return;
    }
    check_layer_cycles(manifest, options.layers_manifest, out);

    // Every module directory on disk needs a declared layer.
    const fs::path src_root = fs::path(options.root) / options.layers_root;
    std::error_code ec;
    std::vector<std::string> module_dirs;
    if (fs::is_directory(src_root, ec)) {
        for (const auto& entry : fs::directory_iterator(src_root, ec)) {
            if (!entry.is_directory()) continue;
            const std::string name = entry.path().filename().string();
            if (manifest.deps.count(name) == 0) {
                out->push_back(
                    {options.layers_root + "/" + name, 1,
                     "layer-undeclared",
                     "module directory has no entry in " +
                         options.layers_manifest +
                         "; declare its layer before adding code"});
            } else {
                module_dirs.push_back(name);
            }
        }
    }
    std::sort(module_dirs.begin(), module_dirs.end());

    static const std::regex kInclude(
        R"re([ \t]*#[ \t]*include[ \t]*"([^"]+)")re");
    for (const std::string& module : module_dirs) {
        const std::set<std::string> closure =
            layer_closure(manifest, module);
        for (const std::string& rel : list_source_files(
                 options.root, options.layers_root + "/" + module)) {
            std::string content;
            if (!read_file_text(fs::path(options.root) / rel, &content)) {
                out->push_back({rel, 1, "io", "cannot read file"});
                continue;
            }
            // Sanitize with strings kept so real include paths survive
            // while commented-out includes disappear.
            const std::string code = sanitize(content, true);
            const auto allows = allow_markers(content);
            for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                                kInclude);
                 it != std::sregex_iterator(); ++it) {
                const std::string target = (*it)[1].str();
                const std::size_t slash = target.find('/');
                if (slash == std::string::npos) continue;  // same-dir
                const std::string head = target.substr(0, slash);
                if (head == module) continue;
                if (manifest.deps.count(head) == 0) continue;
                if (closure.count(head) != 0) continue;
                const int line = line_of(
                    code, static_cast<std::size_t>(it->position()));
                if (is_suppressed(allows, line, "layer-violation")) {
                    continue;
                }
                out->push_back(
                    {rel, line, "layer-violation",
                     "module \"" + module + "\" includes \"" + target +
                         "\" but \"" + head +
                         "\" is not in its declared dependency closure (" +
                         options.layers_manifest + ")"});
            }
        }
    }
}

}  // namespace aero::lint
