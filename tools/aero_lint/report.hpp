#pragma once
// Machine-readable JSON report for aero_lint findings, consumed by
// scripts/check.sh / scripts/analyze.sh (and anything else that wants
// to gate on analyzer output without scraping text).
//
// Shape (keys sorted, findings in the analyzer's (file, line, rule)
// order):
//
//   {
//     "tool": "aero_lint",
//     "clean": false,
//     "finding_count": 2,
//     "by_rule": {"layer-violation": 1, "lock-order": 1},
//     "findings": [
//       {"file": "src/util/x.cpp", "line": 12,
//        "rule": "layer-violation", "message": "..."}
//     ]
//   }

#include <string>
#include <vector>

#include "lint.hpp"

namespace aero::lint {

/// Renders the findings as a JSON document (trailing newline included).
std::string render_json_report(const std::vector<Finding>& findings);

/// Writes the report to `path`; false on I/O failure.
bool write_json_report(const std::string& path,
                       const std::vector<Finding>& findings);

}  // namespace aero::lint
