#pragma once
// Static lock-order pass: builds an approximate inter-procedural lock
// graph from util::MutexLock / std::unique_lock<util::Mutex>
// acquisition sites and flags cycles as potential deadlocks.
//
// Approximations (documented in DESIGN.md §15):
//   * Acquisitions are found syntactically; a lock reached through a
//     function pointer or a macro is invisible (the runtime validator
//     behind AERO_LOCK_ORDER covers those).
//   * A mutex is identified by `<Class>::<member>` when acquired from a
//     method of that class, else `<file-stem>:<function>::<expr>` —
//     mutexes of the same class/member merge across instances (an
//     over-approximation: distinct instances can legally nest), while
//     identically named members of different classes stay distinct.
//   * Nesting is lexical: acquisition B inside acquisition A's brace
//     scope adds edge A -> B (exactly RAII hold semantics; a CondVar
//     wait that drops the lock mid-scope is treated as held). An
//     explicit `<var>.unlock()` on the guard ends the hold there — a
//     later re-lock() in the same scope is treated as not held (the
//     runtime validator covers that shape).
//   * A call under a held lock adds edges to everything the callee may
//     lock. Callees resolve by base name: bare calls and `this->f()`
//     prefer a method of the caller's own class, `obj.f()` / `p->f()`
//     resolve globally but exclude the caller's own class (the object
//     is some other instance; same-class members already merge by id,
//     so including them manufactures self-deadlocks), `Cls::f()`
//     prefers Cls. Member calls with ubiquitous container/atomic names
//     (clear, size, push_back, load, ...) are assumed to be STL and
//     skipped. May-lock sets are closed over the call graph to a
//     fixpoint, so a lock reached through a non-locking intermediate
//     still orders. Remaining name collisions over-approximate;
//     `// aero-lint: allow(lock-order)` on an edge's site line removes
//     that edge.
//
// Every cycle is reported once, with the full edge chain and each
// edge's file:line provenance.

#include <cstddef>
#include <string>
#include <vector>

#include "lint.hpp"

namespace aero::lint {

/// One directed ordering edge: `from` held while acquiring `to`.
struct LockEdge {
    std::string from;
    std::string to;
    std::string file;
    int line = 1;
    std::string via;  ///< "nested acquisition" or "call to <fn>"
};

/// A call site, with enough syntax to resolve the callee.
struct LockCall {
    enum Kind { kBare, kMember, kQualified };
    std::string base;      ///< callee base name
    Kind kind = kBare;
    std::string cls_hint;  ///< for kQualified: the written class
    std::string obj;       ///< for kMember: the object expression
};

/// A function (or method) that the pass extracted.
struct LockFunction {
    std::string key;   ///< unique: "<file>|<qualified name>"
    std::string base;  ///< unqualified name
    std::string cls;   ///< enclosing/qualifying class ("" for free)
    std::vector<std::string> locks;  ///< mutex ids acquired directly
    std::vector<LockCall> calls;     ///< every call in the body
};

/// A call made while a lock is held (candidate inter-procedural edge).
struct HeldCall {
    std::string holder;     ///< mutex id held at the call
    LockCall call;
    std::string caller_cls;
    std::string file;
    int line = 1;
};

/// Extracted per-file facts, exposed for unit tests.
struct LockFileFacts {
    std::vector<LockFunction> functions;
    std::vector<LockEdge> nesting_edges;
    std::vector<HeldCall> held_calls;
};

/// Parses one file's acquisition/call facts. `path` is root-relative.
LockFileFacts extract_lock_facts(const std::string& path,
                                 const std::string& content);

/// Builds the global graph from per-file facts (may-lock fixpoint +
/// call edges) and appends one lock-order finding per cycle.
void check_lock_cycles(const std::vector<LockFileFacts>& facts,
                       std::vector<Finding>* out);

/// Whole pass over options.lock_dirs.
void run_lockorder(const Options& options, std::vector<Finding>* out);

}  // namespace aero::lint
