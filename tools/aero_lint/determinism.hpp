#pragma once
// Determinism pass: output-affecting directories (src/tensor,
// src/linalg, src/nn, src/diffusion, src/core) carry the repo's
// bitwise-reproducibility contract — the FID/PSNR tables only reproduce
// if the same seed yields the same bytes. Three rules:
//
//   det-random          rand() / srand() / std::random_device — all
//                       randomness goes through the seeded util::Rng
//   det-wallclock       wall-clock reads (system_clock, time(),
//                       gettimeofday, localtime/gmtime/ctime/strftime,
//                       bare clock()) — results must not depend on when
//                       they were computed
//   det-unordered-iter  iteration over a std::unordered_map /
//                       unordered_set declared in the same file — hash
//                       order varies across libraries and runs and must
//                       never feed results; iterate a sorted copy or
//                       use std::map/std::set
//
// `// aero-lint: allow(<rule>)` suppresses a deliberate exception.

#include <string>
#include <vector>

#include "lint.hpp"

namespace aero::lint {

/// Lints one file's content with the determinism rules; `path` is the
/// root-relative path used in findings.
void determinism_file(const std::string& path, const std::string& content,
                      std::vector<Finding>* out);

/// Whole pass over options.determinism_dirs.
void run_determinism(const Options& options, std::vector<Finding>* out);

}  // namespace aero::lint
