#include "lockorder.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <map>
#include <regex>
#include <set>

#include "walk.hpp"

namespace aero::lint {

namespace {

namespace fs = std::filesystem;

bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

const std::set<std::string>& keyword_set() {
    static const std::set<std::string> kKeywords = {
        "if",     "for",    "while",   "switch", "catch",
        "return", "sizeof", "alignof", "new",    "delete",
        "do",     "else",   "throw",   "co_await"};
    return kKeywords;
}

/// Member-call names that are overwhelmingly STL containers, strings,
/// atomics or threads — resolving them against domain classes by base
/// name manufactures edges (ring_.clear() is not TraceBuffer::clear()).
const std::set<std::string>& stl_member_set() {
    static const std::set<std::string> kStlMembers = {
        "append",     "at",          "back",        "begin",
        "c_str",      "cbegin",      "cend",        "clear",
        "contains",   "count",       "data",        "detach",
        "emplace",    "emplace_back", "empty",      "end",
        "erase",      "exchange",    "fetch_add",   "fetch_sub",
        "find",       "front",       "get",         "insert",
        "join",       "joinable",    "load",        "lock",
        "notify_all", "notify_one",  "pop",         "pop_back",
        "pop_front",  "push",        "push_back",   "push_front",
        "release",    "reserve",     "reset",       "resize",
        "size",       "store",       "str",         "substr",
        "swap",       "top",         "try_lock",    "unlock",
        "wait",       "wait_for"};
    return kStlMembers;
}

std::string file_stem(const std::string& path) {
    return fs::path(path).stem().string();
}

/// Matched brace pairs (open offset -> close offset), single pass.
std::map<std::size_t, std::size_t> match_braces(const std::string& code) {
    std::map<std::size_t, std::size_t> pairs;
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (code[i] == '{') {
            stack.push_back(i);
        } else if (code[i] == '}' && !stack.empty()) {
            pairs[stack.back()] = i;
            stack.pop_back();
        }
    }
    return pairs;
}

char prev_nonspace_char(const std::string& code, std::size_t pos) {
    while (pos > 0) {
        const char c = code[--pos];
        if (!std::isspace(static_cast<unsigned char>(c))) return c;
    }
    return '\0';
}

/// First identifier token in `text` ("" if none before non-ident).
std::string first_token(const std::string& text) {
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
    }
    std::size_t begin = i;
    while (i < text.size() && is_ident_char(text[i])) ++i;
    return text.substr(begin, i - begin);
}

/// Identifier (possibly ::-qualified, possibly ~dtor) ending right
/// before `pos` in `text`, "" if none.
std::string qualified_name_before(const std::string& text,
                                  std::size_t pos) {
    while (pos > 0 &&
           std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
        --pos;
    }
    std::size_t end = pos;
    while (pos > 0) {
        const char c = text[pos - 1];
        if (is_ident_char(c) || c == '~') {
            --pos;
        } else if (c == ':' && pos > 1 && text[pos - 2] == ':') {
            pos -= 2;
        } else {
            break;
        }
    }
    return text.substr(pos, end - pos);
}

struct Span {
    enum Kind { kClass, kFunction, kOther };
    Kind kind = kOther;
    std::string name;  ///< class name, or function qualified name
    std::string cls;   ///< functions: qualifying class
    std::size_t begin = 0;
    std::size_t end = 0;
};

/// Class name from a class/struct header: last identifier before the
/// base-clause colon (or the brace).
std::string class_name_from_header(const std::string& header) {
    // Find a top-level ':' that is not part of '::'.
    std::size_t limit = header.size();
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] != ':') continue;
        const bool double_colon =
            (i + 1 < header.size() && header[i + 1] == ':') ||
            (i > 0 && header[i - 1] == ':');
        if (!double_colon) {
            limit = i;
            break;
        }
    }
    std::string name;
    std::size_t i = 0;
    while (i < limit) {
        if (is_ident_char(header[i])) {
            std::size_t begin = i;
            while (i < limit && is_ident_char(header[i])) ++i;
            name = header.substr(begin, i - begin);
        } else {
            ++i;
        }
    }
    return name;
}

/// Classifies the brace at `open` from its header text.
Span classify_span(const std::string& code, std::size_t open,
                   std::size_t close) {
    Span span;
    span.begin = open;
    span.end = close;
    std::size_t hstart = code.find_last_of(";{}", open == 0 ? 0 : open - 1);
    hstart = hstart == std::string::npos ? 0 : hstart + 1;
    const std::string header = code.substr(hstart, open - hstart);
    if (header.find('#') != std::string::npos) return span;
    const std::string head = first_token(header);
    if (head == "class" || head == "struct" || head == "union") {
        const std::string name = class_name_from_header(header);
        if (!name.empty()) {
            span.kind = Span::kClass;
            span.name = name;
        }
        return span;
    }
    if (head == "namespace" || head == "enum" || head == "extern" ||
        head == "using") {
        return span;
    }
    const char tail = prev_nonspace_char(code, open);
    if (tail == '=' || tail == ',' || tail == '(' || tail == ']') {
        return span;  // initializer / aggregate / lambda capture
    }
    const std::size_t paren = header.find('(');
    if (paren == std::string::npos) return span;
    const std::string name = qualified_name_before(header, paren);
    if (name.empty()) return span;
    const std::string base =
        name.rfind("::") == std::string::npos
            ? name
            : name.substr(name.rfind("::") + 2);
    if (keyword_set().count(base) != 0 || keyword_set().count(name) != 0) {
        return span;
    }
    span.kind = Span::kFunction;
    span.name = name;
    if (name.size() > base.size() + 2) {
        span.cls = name.substr(0, name.size() - base.size() - 2);
        // Strip any namespace prefix: keep the last component.
        const std::size_t sep = span.cls.rfind("::");
        if (sep != std::string::npos) span.cls = span.cls.substr(sep + 2);
    }
    return span;
}

struct Acquisition {
    std::string id;       ///< normalized mutex id
    std::size_t offset = 0;
    std::size_t match_end = 0;  ///< end of the declaration text
    std::size_t scope_end = 0;
    int line = 1;
    const Span* function = nullptr;
};

std::string strip_spaces(const std::string& text) {
    std::string out;
    for (const char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) out += c;
    }
    return out;
}

std::string normalize_mutex_expr(std::string expr) {
    expr = strip_spaces(expr);
    if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
    return expr;
}

/// True for a plain member-style identifier (trailing underscore).
bool looks_like_member(const std::string& expr) {
    if (expr.empty() || expr.back() != '_') return false;
    for (const char c : expr) {
        if (!is_ident_char(c)) return false;
    }
    return true;
}

std::string mutex_id(const std::string& path, const Span* function,
                     const std::string& expr) {
    if (function != nullptr && !function->cls.empty() &&
        looks_like_member(expr)) {
        return function->cls + "::" + expr;
    }
    const std::string stem = file_stem(path);
    if (function != nullptr) {
        const std::string base =
            function->name.rfind("::") == std::string::npos
                ? function->name
                : function->name.substr(function->name.rfind("::") + 2);
        return stem + ":" + base + "::" + expr;
    }
    return stem + "::" + expr;
}

}  // namespace

LockFileFacts extract_lock_facts(const std::string& path,
                                 const std::string& content) {
    LockFileFacts facts;
    const std::string code = sanitize(content, true);
    const auto allows = allow_markers(content);
    const auto braces = match_braces(code);

    // Spans, in open-brace order. Class nesting resolves unqualified
    // methods defined inline in a class body.
    std::vector<Span> spans;
    spans.reserve(braces.size());
    for (const auto& pair : braces) {
        Span span = classify_span(code, pair.first, pair.second);
        if (span.kind == Span::kFunction && span.cls.empty()) {
            for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
                if (it->kind == Span::kClass && it->begin < span.begin &&
                    it->end > span.end) {
                    span.cls = it->name;
                    break;
                }
            }
        }
        spans.push_back(span);
    }
    const auto innermost_function =
        [&spans](std::size_t offset) -> const Span* {
        const Span* best = nullptr;
        for (const Span& span : spans) {
            if (span.kind != Span::kFunction) continue;
            if (span.begin < offset && offset < span.end &&
                (best == nullptr || span.begin > best->begin)) {
                best = &span;
            }
        }
        return best;
    };
    // Innermost enclosing brace scope: the largest open offset below
    // `offset` whose close lies beyond it.
    const auto innermost_scope_end = [&braces](std::size_t offset) {
        std::size_t best_open = std::string::npos;
        std::size_t end = std::string::npos;
        for (const auto& pair : braces) {
            if (pair.first >= offset) break;
            if (pair.second > offset &&
                (best_open == std::string::npos ||
                 pair.first > best_open)) {
                best_open = pair.first;
                end = pair.second;
            }
        }
        return end;
    };

    // Acquisition sites.
    static const std::regex kAcquire(
        R"(\b(?:util\s*::\s*)?MutexLock\s+(\w+)\s*\(\s*([^()]+?)\s*\)|\bstd\s*::\s*unique_lock\s*<[^>]*>\s+(\w+)\s*\(\s*([^(),]+))");
    std::vector<Acquisition> acqs;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kAcquire);
         it != std::sregex_iterator(); ++it) {
        const std::size_t offset = static_cast<std::size_t>(it->position());
        const bool raii = (*it)[1].matched;
        const std::string var = raii ? (*it)[1].str() : (*it)[3].str();
        const std::string expr = normalize_mutex_expr(
            raii ? (*it)[2].str() : (*it)[4].str());
        if (expr.empty()) continue;
        Acquisition acq;
        acq.offset = offset;
        acq.match_end = offset + static_cast<std::size_t>(it->length());
        acq.scope_end = innermost_scope_end(offset);
        if (acq.scope_end == std::string::npos) acq.scope_end = code.size();
        // An explicit `<var>.unlock()` ends the hold early; a later
        // re-lock() in the same scope is treated as not held.
        const std::regex unlock_call(R"(\b)" + var +
                                     R"(\s*\.\s*unlock\s*\()");
        std::smatch unlock_match;
        const auto body_begin = code.begin() +
                                static_cast<std::ptrdiff_t>(acq.match_end);
        const auto body_end =
            code.begin() + static_cast<std::ptrdiff_t>(acq.scope_end);
        if (std::regex_search(body_begin, body_end, unlock_match,
                              unlock_call)) {
            acq.scope_end =
                acq.match_end +
                static_cast<std::size_t>(unlock_match.position());
        }
        acq.line = line_of(code, offset);
        acq.function = innermost_function(offset);
        acq.id = mutex_id(path, acq.function, expr);
        acqs.push_back(acq);
    }

    // Direct locks per function.
    std::map<const Span*, std::vector<std::string>> locks_by_span;
    for (const Acquisition& acq : acqs) {
        locks_by_span[acq.function].push_back(acq.id);
    }

    // Nesting edges: lexical containment within the holder's scope.
    for (const Acquisition& outer : acqs) {
        for (const Acquisition& inner : acqs) {
            if (inner.offset <= outer.offset ||
                inner.offset >= outer.scope_end) {
                continue;
            }
            if (is_suppressed(allows, inner.line, "lock-order")) continue;
            facts.nesting_edges.push_back({outer.id, inner.id, path,
                                           inner.line,
                                           "nested acquisition"});
        }
    }

    // Calls: everywhere (for may-lock closure) and under held locks
    // (for inter-procedural edges).
    static const std::regex kCall(R"(\b([A-Za-z_]\w*)\s*\()");
    struct RawCall {
        LockCall call;
        std::size_t offset = 0;
        int line = 1;
        const Span* function = nullptr;
    };
    std::vector<RawCall> raw_calls;
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kCall);
         it != std::sregex_iterator(); ++it) {
        const std::size_t offset = static_cast<std::size_t>(it->position());
        const std::string name = (*it)[1].str();
        if (keyword_set().count(name) != 0) continue;
        if (name == "MutexLock" || name == "unique_lock") continue;
        // Skip all-caps macro invocations (TEST, AERO_*, EXPECT_*).
        if (std::none_of(name.begin(), name.end(), [](char c) {
                return std::islower(static_cast<unsigned char>(c)) != 0;
            })) {
            continue;
        }
        // Skip matches inside an acquisition declaration (the lock
        // variable name reads like a call).
        bool inside_acq = false;
        for (const Acquisition& acq : acqs) {
            if (offset >= acq.offset && offset < acq.match_end) {
                inside_acq = true;
                break;
            }
        }
        if (inside_acq) continue;
        RawCall raw;
        raw.call.base = name;
        raw.offset = offset;
        raw.line = line_of(code, offset);
        raw.function = innermost_function(offset);
        const char before = offset > 0 ? code[offset - 1] : '\0';
        if (before == '.' ||
            (before == '>' && offset > 1 && code[offset - 2] == '-')) {
            raw.call.kind = LockCall::kMember;
            if (stl_member_set().count(name) != 0) continue;
            raw.call.obj = qualified_name_before(
                code, before == '.' ? offset - 1 : offset - 2);
        } else if (before == ':' && offset > 1 &&
                   code[offset - 2] == ':') {
            raw.call.kind = LockCall::kQualified;
            raw.call.cls_hint =
                qualified_name_before(code, offset - 2);
            const std::size_t sep = raw.call.cls_hint.rfind("::");
            if (sep != std::string::npos) {
                raw.call.cls_hint = raw.call.cls_hint.substr(sep + 2);
            }
        }
        raw_calls.push_back(raw);
    }

    // Functions table.
    std::map<const Span*, std::vector<LockCall>> calls_by_span;
    for (const RawCall& raw : raw_calls) {
        calls_by_span[raw.function].push_back(raw.call);
    }
    std::set<const Span*> emitted;
    for (const Span& span : spans) {
        if (span.kind != Span::kFunction) continue;
        const Span* key = &span;
        if (emitted.count(key) != 0) continue;
        emitted.insert(key);
        LockFunction function;
        function.key = path + "|" + span.name;
        function.base = span.name.rfind("::") == std::string::npos
                            ? span.name
                            : span.name.substr(span.name.rfind("::") + 2);
        function.cls = span.cls;
        if (locks_by_span.count(key) != 0) {
            function.locks = locks_by_span[key];
        }
        if (calls_by_span.count(key) != 0) {
            function.calls = calls_by_span[key];
        }
        if (function.locks.empty() && function.calls.empty()) continue;
        facts.functions.push_back(std::move(function));
    }

    // Calls under held locks.
    for (const Acquisition& acq : acqs) {
        for (const RawCall& raw : raw_calls) {
            if (raw.offset <= acq.offset || raw.offset >= acq.scope_end) {
                continue;
            }
            if (is_suppressed(allows, raw.line, "lock-order")) continue;
            HeldCall held;
            held.holder = acq.id;
            held.call = raw.call;
            held.caller_cls =
                acq.function != nullptr ? acq.function->cls : "";
            held.file = path;
            held.line = raw.line;
            facts.held_calls.push_back(std::move(held));
        }
    }
    return facts;
}

namespace {

struct EdgeKey {
    std::string from;
    std::string to;
    bool operator<(const EdgeKey& other) const {
        if (from != other.from) return from < other.from;
        return to < other.to;
    }
};

/// Tarjan strongly-connected components over the mutex-id graph.
class SccFinder {
public:
    explicit SccFinder(
        const std::map<std::string, std::set<std::string>>& adj)
        : adj_(adj) {}

    std::vector<std::vector<std::string>> find() {
        for (const auto& entry : adj_) visit(entry.first);
        return sccs_;
    }

private:
    void visit(const std::string& node) {
        if (index_.count(node) != 0) return;
        index_[node] = low_[node] = next_index_++;
        stack_.push_back(node);
        on_stack_.insert(node);
        const auto it = adj_.find(node);
        if (it != adj_.end()) {
            for (const std::string& next : it->second) {
                if (index_.count(next) == 0) {
                    visit(next);
                    low_[node] = std::min(low_[node], low_[next]);
                } else if (on_stack_.count(next) != 0) {
                    low_[node] = std::min(low_[node], index_[next]);
                }
            }
        }
        if (low_[node] == index_[node]) {
            std::vector<std::string> scc;
            while (true) {
                const std::string top = stack_.back();
                stack_.pop_back();
                on_stack_.erase(top);
                scc.push_back(top);
                if (top == node) break;
            }
            std::sort(scc.begin(), scc.end());
            sccs_.push_back(std::move(scc));
        }
    }

    const std::map<std::string, std::set<std::string>>& adj_;
    std::map<std::string, int> index_;
    std::map<std::string, int> low_;
    int next_index_ = 0;
    std::vector<std::string> stack_;
    std::set<std::string> on_stack_;
    std::vector<std::vector<std::string>> sccs_;
};

/// Canonical cycle through `scc` starting at its smallest node,
/// following the smallest admissible neighbor.
std::vector<std::string> cycle_path(
    const std::vector<std::string>& scc,
    const std::map<std::string, std::set<std::string>>& adj) {
    const std::set<std::string> members(scc.begin(), scc.end());
    std::vector<std::string> path{scc.front()};
    std::set<std::string> seen{scc.front()};
    std::string node = scc.front();
    while (true) {
        const auto it = adj.find(node);
        if (it == adj.end()) break;
        std::string next;
        for (const std::string& candidate : it->second) {
            if (candidate == scc.front() && path.size() > 1) {
                path.push_back(candidate);
                return path;
            }
            if (members.count(candidate) != 0 &&
                seen.count(candidate) == 0 && next.empty()) {
                next = candidate;
            }
        }
        if (next.empty()) break;
        path.push_back(next);
        seen.insert(next);
        node = next;
    }
    path.push_back(scc.front());
    return path;
}

}  // namespace

void check_lock_cycles(const std::vector<LockFileFacts>& facts,
                       std::vector<Finding>* out) {
    // May-lock fixpoint over the name-resolved call graph.
    std::map<std::string, const LockFunction*> by_key;
    std::map<std::string, std::vector<const LockFunction*>> by_base;
    std::map<std::string, std::map<std::string,
                                   std::vector<const LockFunction*>>>
        by_cls_base;
    for (const LockFileFacts& file : facts) {
        for (const LockFunction& fn : file.functions) {
            by_key[fn.key] = &fn;
            by_base[fn.base].push_back(&fn);
            if (!fn.cls.empty()) {
                by_cls_base[fn.cls][fn.base].push_back(&fn);
            }
        }
    }
    const auto resolve = [&](const LockCall& call,
                             const std::string& caller_cls)
        -> std::vector<const LockFunction*> {
        if (call.kind == LockCall::kQualified &&
            by_cls_base.count(call.cls_hint) != 0 &&
            by_cls_base[call.cls_hint].count(call.base) != 0) {
            return by_cls_base[call.cls_hint][call.base];
        }
        const bool prefer_own =
            call.kind == LockCall::kBare ||
            (call.kind == LockCall::kMember && call.obj == "this");
        if (prefer_own && !caller_cls.empty() &&
            by_cls_base.count(caller_cls) != 0 &&
            by_cls_base[caller_cls].count(call.base) != 0) {
            return by_cls_base[caller_cls][call.base];
        }
        const auto it = by_base.find(call.base);
        if (it == by_base.end()) return {};
        // A member call on some other object is not a recursive call
        // into this instance: drop caller-class targets (same-class
        // members already merge by id, so keeping them manufactures
        // self-deadlocks out of sibling-object calls).
        const bool exclude_own = call.kind == LockCall::kMember &&
                                 !call.obj.empty() && call.obj != "this" &&
                                 !caller_cls.empty();
        std::vector<const LockFunction*> targets;
        for (const LockFunction* fn : it->second) {
            if (exclude_own && fn->cls == caller_cls) continue;
            targets.push_back(fn);
        }
        return targets;
    };

    std::map<std::string, std::set<std::string>> may_lock;
    for (const auto& entry : by_key) {
        may_lock[entry.first].insert(entry.second->locks.begin(),
                                     entry.second->locks.end());
    }
    for (int round = 0; round < 20; ++round) {
        bool changed = false;
        for (const auto& entry : by_key) {
            const LockFunction* fn = entry.second;
            std::set<std::string>& mine = may_lock[fn->key];
            for (const LockCall& call : fn->calls) {
                for (const LockFunction* target :
                     resolve(call, fn->cls)) {
                    for (const std::string& id :
                         may_lock[target->key]) {
                        changed |= mine.insert(id).second;
                    }
                }
            }
        }
        if (!changed) break;
    }

    // Edge set: nesting + call edges, first provenance per (from, to).
    std::map<EdgeKey, LockEdge> edges;
    for (const LockFileFacts& file : facts) {
        for (const LockEdge& edge : file.nesting_edges) {
            edges.emplace(EdgeKey{edge.from, edge.to}, edge);
        }
    }
    for (const LockFileFacts& file : facts) {
        for (const HeldCall& held : file.held_calls) {
            for (const LockFunction* target :
                 resolve(held.call, held.caller_cls)) {
                for (const std::string& id : may_lock[target->key]) {
                    edges.emplace(
                        EdgeKey{held.holder, id},
                        LockEdge{held.holder, id, held.file, held.line,
                                 "call to " + held.call.base});
                }
            }
        }
    }

    std::map<std::string, std::set<std::string>> adj;
    for (const auto& entry : edges) {
        adj[entry.first.from].insert(entry.first.to);
        adj[entry.first.to];  // ensure node exists
    }

    // Self-edges are guaranteed deadlocks on a non-recursive mutex.
    for (const auto& entry : edges) {
        if (entry.first.from != entry.first.to) continue;
        const LockEdge& edge = entry.second;
        out->push_back(
            {edge.file, edge.line, "lock-order",
             "potential self-deadlock: \"" + edge.from +
                 "\" re-acquired while held (" + edge.via + ")"});
    }

    for (const auto& scc : SccFinder(adj).find()) {
        if (scc.size() < 2) continue;
        const std::vector<std::string> path = cycle_path(scc, adj);
        std::string description;
        const LockEdge* first_edge = nullptr;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const auto it = edges.find(EdgeKey{path[i], path[i + 1]});
            if (!description.empty()) description += "; ";
            description += "\"" + path[i] + "\" -> \"" + path[i + 1] + "\"";
            if (it != edges.end()) {
                description += " (" + it->second.file + ":" +
                               std::to_string(it->second.line) + ", " +
                               it->second.via + ")";
                if (first_edge == nullptr) first_edge = &it->second;
            }
        }
        out->push_back(
            {first_edge != nullptr ? first_edge->file : "lock-order",
             first_edge != nullptr ? first_edge->line : 1, "lock-order",
             "potential deadlock cycle: " + description});
    }
}

void run_lockorder(const Options& options, std::vector<Finding>* out) {
    std::vector<LockFileFacts> facts;
    for (const std::string& dir : options.lock_dirs) {
        for (const std::string& rel :
             list_source_files(options.root, dir)) {
            std::string content;
            if (!read_file_text(fs::path(options.root) / rel, &content)) {
                out->push_back({rel, 1, "io", "cannot read file"});
                continue;
            }
            facts.push_back(extract_lock_facts(rel, content));
        }
    }
    check_lock_cycles(facts, out);
}

}  // namespace aero::lint
