// aero_lint CLI: scans the repo for project-invariant violations and
// exits non-zero if any remain. Used by scripts/analyze.sh and the
// `aero_lint_tree` ctest; see lint.hpp for the rule set.
//
//   aero_lint --root <repo>

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--design FILE] [--registry FILE]\n",
        argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    aero::lint::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--root" && has_value) {
            options.root = argv[++i];
        } else if (arg == "--design" && has_value) {
            options.design_doc = argv[++i];
        } else if (arg == "--registry" && has_value) {
            options.registry = argv[++i];
        } else {
            return usage(argv[0]);
        }
    }

    const auto findings = aero::lint::run_lint(options);
    for (const auto& finding : findings) {
        std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
    }
    if (findings.empty()) {
        std::printf("aero_lint: clean\n");
        return 0;
    }
    std::printf("aero_lint: %zu finding(s)\n", findings.size());
    return 1;
}
