// aero_lint CLI: multi-pass project analyzer. Scans the repo for
// invariant violations (per-line rules, layering, lock-order,
// determinism — see lint.hpp) and exits non-zero if any remain. Used
// by scripts/analyze.sh, scripts/check.sh and the `aero_lint_tree` /
// `aero_lint_layers` ctests.
//
//   aero_lint --root <repo>                      # everything
//   aero_lint --root <repo> --pass layering      # one pass
//   aero_lint --root <repo> --json report.json   # machine-readable
//   aero_lint --list-rules                       # rule table

#include <cstdio>
#include <cstring>
#include <string>

#include "lint.hpp"
#include "report.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--design FILE] [--registry FILE]\n"
        "          [--layers FILE] [--pass NAME]... [--json FILE]\n"
        "          [--list-rules]\n"
        "passes: rules, layering, lock-order, determinism (default all)\n",
        argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    aero::lint::Options options;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--root" && has_value) {
            options.root = argv[++i];
        } else if (arg == "--design" && has_value) {
            options.design_doc = argv[++i];
        } else if (arg == "--registry" && has_value) {
            options.registry = argv[++i];
        } else if (arg == "--layers" && has_value) {
            options.layers_manifest = argv[++i];
        } else if (arg == "--pass" && has_value) {
            const std::string pass = argv[++i];
            // Reject typos: an unknown name would silently disable
            // every pass and report "clean" — exactly wrong for a CI
            // gate.
            if (pass != "rules" && pass != "layering" &&
                pass != "lock-order" && pass != "determinism") {
                std::fprintf(stderr, "aero_lint: unknown pass \"%s\"\n",
                             pass.c_str());
                return usage(argv[0]);
            }
            options.passes.push_back(pass);
        } else if (arg == "--json" && has_value) {
            json_path = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto& doc : aero::lint::rule_docs()) {
                std::printf("%-20s %s\n", doc.name, doc.summary);
            }
            return 0;
        } else {
            return usage(argv[0]);
        }
    }

    const auto findings = aero::lint::run_lint(options);
    for (const auto& finding : findings) {
        std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                    finding.rule.c_str(), finding.message.c_str());
    }
    if (!json_path.empty() &&
        !aero::lint::write_json_report(json_path, findings)) {
        std::fprintf(stderr, "aero_lint: cannot write %s\n",
                     json_path.c_str());
        return 2;
    }
    if (findings.empty()) {
        std::printf("aero_lint: clean\n");
        return 0;
    }
    std::printf("aero_lint: %zu finding(s)\n", findings.size());
    return 1;
}
