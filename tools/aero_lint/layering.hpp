#pragma once
// Layering pass: checks the `#include` graph of src/ against the layer
// DAG declared in the checked-in manifest (ARCH.layers at the repo
// root).
//
// Manifest grammar, one module per line, `#` comments:
//
//   <module>: <direct dependency> <direct dependency> ...
//
// A module may include itself, any declared direct dependency, and —
// because layering is about what a layer may *know*, not what it links
// first-hand — anything in the transitive closure of its dependencies
// (mirroring how CMake propagates PUBLIC link requirements). Files
// directly under src/ (the umbrella API header) are the implicit top
// layer and may include everything.
//
// Emitted rules:
//   layer-manifest    manifest unreadable / malformed line / dep names
//                     a module with no entry of its own
//   layer-cycle       the declared dependency graph has a cycle
//   layer-undeclared  a module directory under src/ has no manifest
//                     entry (new modules must declare their layer)
//   layer-violation   a file includes a module outside its closure,
//                     reported with the including file and line
//
// `// aero-lint: allow(layer-violation)` suppresses a single include.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace aero::lint {

struct LayerManifest {
    /// Declaration order, for deterministic reporting.
    std::vector<std::string> modules;
    /// Direct dependencies per module.
    std::map<std::string, std::vector<std::string>> deps;
};

/// Parses manifest text; malformed lines and unknown dependency names
/// become layer-manifest findings attributed to `manifest_path`.
LayerManifest parse_layer_manifest(const std::string& text,
                                   const std::string& manifest_path,
                                   std::vector<Finding>* out);

/// Transitive dependency closure of `module` (not including itself).
/// Safe on cyclic input (visits each module once).
std::set<std::string> layer_closure(const LayerManifest& manifest,
                                    const std::string& module);

/// Appends layer-cycle findings for cycles in the declared graph.
void check_layer_cycles(const LayerManifest& manifest,
                        const std::string& manifest_path,
                        std::vector<Finding>* out);

/// Whole pass: manifest + module dirs + every include edge.
void run_layering(const Options& options, std::vector<Finding>* out);

}  // namespace aero::lint
