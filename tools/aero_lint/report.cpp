#include "report.hpp"

#include <fstream>
#include <map>
#include <sstream>

namespace aero::lint {

namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string render_json_report(const std::vector<Finding>& findings) {
    std::map<std::string, int> by_rule;
    for (const Finding& finding : findings) ++by_rule[finding.rule];

    std::ostringstream out;
    out << "{\n";
    out << "  \"tool\": \"aero_lint\",\n";
    out << "  \"clean\": " << (findings.empty() ? "true" : "false")
        << ",\n";
    out << "  \"finding_count\": " << findings.size() << ",\n";
    out << "  \"by_rule\": {";
    bool first = true;
    for (const auto& entry : by_rule) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << json_escape(entry.first) << "\": " << entry.second;
    }
    out << "},\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding& finding = findings[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"file\": \"" << json_escape(finding.file)
            << "\", \"line\": " << finding.line << ", \"rule\": \""
            << json_escape(finding.rule) << "\", \"message\": \""
            << json_escape(finding.message) << "\"}";
    }
    out << (findings.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
    return out.str();
}

bool write_json_report(const std::string& path,
                       const std::vector<Finding>& findings) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << render_json_report(findings);
    return static_cast<bool>(out);
}

}  // namespace aero::lint
