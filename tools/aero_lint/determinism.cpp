#include "determinism.hpp"

#include <cctype>
#include <filesystem>
#include <regex>
#include <set>

#include "walk.hpp"

namespace aero::lint {

namespace {

namespace fs = std::filesystem;

char prev_nonspace_char(const std::string& code, std::size_t pos) {
    while (pos > 0) {
        const char c = code[--pos];
        if (!std::isspace(static_cast<unsigned char>(c))) return c;
    }
    return '\0';
}

struct Reporter {
    const std::string& path;
    const std::string& code;
    const std::vector<std::pair<int, std::string>>& allows;
    std::vector<Finding>* out;

    void report(std::size_t offset, const std::string& rule,
                const std::string& message) const {
        const int line = line_of(code, offset);
        if (is_suppressed(allows, line, rule)) return;
        out->push_back({path, line, rule, message});
    }
};

void check_random(const Reporter& reporter) {
    static const std::regex kRandom(
        R"(\b(rand|srand)\s*\(|\b(?:std\s*::\s*)?(random_device)\b)");
    for (auto it = std::sregex_iterator(reporter.code.begin(),
                                        reporter.code.end(), kRandom);
         it != std::sregex_iterator(); ++it) {
        const auto offset = static_cast<std::size_t>(it->position());
        const std::string name =
            (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
        // Member calls like cfg.rand() are not the C library.
        const char before = prev_nonspace_char(reporter.code, offset);
        if (before == '.' || before == '>') continue;
        reporter.report(offset, "det-random",
                        "`" + name +
                            "` in an output-affecting directory; "
                            "randomness must flow through a seeded "
                            "util::Rng");
    }
}

void check_wallclock(const Reporter& reporter) {
    static const std::regex kWallclock(
        R"(\b(system_clock|gettimeofday|localtime|gmtime|mktime|strftime)\b|\b(ctime|time)\s*\(\s*(?:NULL|nullptr|0|&\s*\w+)?\s*\)|\b(clock)\s*\(\s*\))");
    for (auto it = std::sregex_iterator(reporter.code.begin(),
                                        reporter.code.end(), kWallclock);
         it != std::sregex_iterator(); ++it) {
        const auto offset = static_cast<std::size_t>(it->position());
        std::string name;
        for (int group = 1; group <= 3; ++group) {
            if ((*it)[group].matched) {
                name = (*it)[group].str();
                break;
            }
        }
        // obs::Clock-style member calls (clk.time(), clock())
        // dispatched through an injected interface are deterministic
        // under ManualClock; only the global C/chrono reads are banned.
        const char before = prev_nonspace_char(reporter.code, offset);
        if (before == '.' || before == '>') continue;
        reporter.report(offset, "det-wallclock",
                        "wall-clock read `" + name +
                            "` in an output-affecting directory; "
                            "results must not depend on when they run");
    }
}

void check_unordered_iteration(const Reporter& reporter) {
    // Names declared (anywhere in this file) with an unordered type:
    // members, locals and parameters all match.
    static const std::regex kDecl(
        R"(\bunordered_(?:map|set)\s*<[^;{}()]*>\s*[&*]?\s*(\w+)\s*[;,=({)])");
    std::set<std::string> unordered_names;
    for (auto it = std::sregex_iterator(reporter.code.begin(),
                                        reporter.code.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
        unordered_names.insert((*it)[1].str());
    }
    if (unordered_names.empty()) return;

    // Range-for over an unordered name.
    static const std::regex kRangeFor(
        R"(\bfor\s*\([^;()]*?:\s*(?:this\s*->\s*)?(\w+)\s*\))");
    for (auto it = std::sregex_iterator(reporter.code.begin(),
                                        reporter.code.end(), kRangeFor);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name) == 0) continue;
        reporter.report(
            static_cast<std::size_t>(it->position()), "det-unordered-iter",
            "range-for over unordered container `" + name +
                "`; hash order leaks into results — iterate a sorted "
                "copy or use std::map/std::set");
    }

    // Explicit iterator walks: name.begin() / name.cbegin().
    static const std::regex kBegin(R"(\b(\w+)\s*\.\s*c?begin\s*\()");
    for (auto it = std::sregex_iterator(reporter.code.begin(),
                                        reporter.code.end(), kBegin);
         it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1].str();
        if (unordered_names.count(name) == 0) continue;
        reporter.report(
            static_cast<std::size_t>(it->position()), "det-unordered-iter",
            "iterator over unordered container `" + name +
                "`; hash order leaks into results — iterate a sorted "
                "copy or use std::map/std::set");
    }
}

}  // namespace

void determinism_file(const std::string& path, const std::string& content,
                      std::vector<Finding>* out) {
    // Strings and comments blanked: "random" in a log message is fine.
    const std::string code = sanitize(content, false);
    const auto allows = allow_markers(content);
    const Reporter reporter{path, code, allows, out};
    check_random(reporter);
    check_wallclock(reporter);
    check_unordered_iteration(reporter);
}

void run_determinism(const Options& options, std::vector<Finding>* out) {
    for (const std::string& dir : options.determinism_dirs) {
        for (const std::string& rel :
             list_source_files(options.root, dir)) {
            std::string content;
            if (!read_file_text(fs::path(options.root) / rel, &content)) {
                out->push_back({rel, 1, "io", "cannot read file"});
                continue;
            }
            determinism_file(rel, content, out);
        }
    }
}

}  // namespace aero::lint
