#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "determinism.hpp"
#include "layering.hpp"
#include "lockorder.hpp"
#include "walk.hpp"

namespace aero::lint {

namespace {

namespace fs = std::filesystem;

bool is_ident(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Last non-whitespace character strictly before `pos`, or '\0'.
char prev_nonspace(const std::string& text, std::size_t pos) {
    while (pos > 0) {
        const char c = text[--pos];
        if (!std::isspace(static_cast<unsigned char>(c))) return c;
    }
    return '\0';
}

/// Previous identifier token ending strictly before `pos` ("" if none).
std::string prev_token(const std::string& text, std::size_t pos) {
    while (pos > 0 &&
           std::isspace(static_cast<unsigned char>(text[pos - 1]))) {
        --pos;
    }
    std::size_t end = pos;
    while (pos > 0 && is_ident(text[pos - 1])) --pos;
    return text.substr(pos, end - pos);
}

/// 1-based line number of `offset` via a precomputed newline index.
class LineIndex {
public:
    explicit LineIndex(const std::string& text) {
        for (std::size_t i = 0; i < text.size(); ++i) {
            if (text[i] == '\n') newlines_.push_back(i);
        }
    }
    int line_at(std::size_t offset) const {
        const auto it =
            std::lower_bound(newlines_.begin(), newlines_.end(), offset);
        return static_cast<int>(it - newlines_.begin()) + 1;
    }

private:
    std::vector<std::size_t> newlines_;
};

class FileLinter {
public:
    FileLinter(const std::string& path, const std::string& content,
               const std::vector<std::string>& registered,
               const std::vector<std::string>& registered_metrics,
               const Options& options, std::vector<Finding>* out)
        : path_(path),
          content_(content),
          code_(sanitize(content, /*keep_strings=*/true)),
          bare_(sanitize(content, /*keep_strings=*/false)),
          lines_(content),
          allows_(allow_markers(content)),
          registered_(registered),
          registered_metrics_(registered_metrics),
          options_(options),
          out_(out) {}

    void report(std::size_t offset, const std::string& rule,
                const std::string& message) {
        const int line = lines_.line_at(offset);
        if (is_suppressed(allows_, line, rule)) return;
        out_->push_back({path_, line, rule, message});
    }

    void check_fault_registry() {
        static const std::regex kCall(
            R"(\b(should_fail|arm_nan|set_fail_rate|fires)\s*\()");
        for (auto it = std::sregex_iterator(code_.begin(), code_.end(),
                                            kCall);
             it != std::sregex_iterator(); ++it) {
            // First string literal inside the call's parentheses (the
            // sanitizer kept literals). A call that passes a variable
            // has no literal here; the injector's runtime guard covers
            // that case.
            std::size_t pos = static_cast<std::size_t>(it->position()) +
                              it->length() - 1;
            int depth = 0;
            std::string literal;
            for (std::size_t i = pos; i < code_.size(); ++i) {
                const char c = code_[i];
                if (c == '(') ++depth;
                if (c == ')' && --depth == 0) break;
                if (c == '"') {
                    const std::size_t close = code_.find('"', i + 1);
                    if (close == std::string::npos) break;
                    literal = code_.substr(i + 1, close - i - 1);
                    break;
                }
            }
            if (literal.empty()) continue;
            if (std::find(registered_.begin(), registered_.end(),
                          literal) == registered_.end()) {
                report(static_cast<std::size_t>(it->position()),
                       "fault-registry",
                       "fault point \"" + literal +
                           "\" is not registered in " + options_.registry);
            }
        }
    }

    void check_metric_naming() {
        if (registered_metrics_.empty()) return;
        static const std::regex kCall(R"(\b(counter|gauge|histogram)\s*\()");
        for (auto it = std::sregex_iterator(code_.begin(), code_.end(),
                                            kCall);
             it != std::sregex_iterator(); ++it) {
            // First string literal inside the call's parentheses, same
            // extraction as fault-registry. Declarations and calls that
            // pass a variable carry no literal; the registry's runtime
            // guard covers those.
            std::size_t pos = static_cast<std::size_t>(it->position()) +
                              it->length() - 1;
            int depth = 0;
            std::string literal;
            for (std::size_t i = pos; i < code_.size(); ++i) {
                const char c = code_[i];
                if (c == '(') ++depth;
                if (c == ')' && --depth == 0) break;
                if (c == '"') {
                    const std::size_t close = code_.find('"', i + 1);
                    if (close == std::string::npos) break;
                    literal = code_.substr(i + 1, close - i - 1);
                    break;
                }
            }
            if (literal.empty()) continue;
            if (!valid_metric_name(literal)) {
                report(static_cast<std::size_t>(it->position()),
                       "metric-naming",
                       "metric name \"" + literal +
                           "\" does not match aero_<area>_<name>");
                continue;
            }
            if (std::find(registered_metrics_.begin(),
                          registered_metrics_.end(),
                          literal) == registered_metrics_.end()) {
                report(static_cast<std::size_t>(it->position()),
                       "metric-naming",
                       "metric \"" + literal +
                           "\" is not declared in " +
                           options_.metric_registry);
            }
        }
    }

    void check_pragma_once() {
        if (path_.size() < 4 ||
            path_.compare(path_.size() - 4, 4, ".hpp") != 0) {
            return;
        }
        if (code_.find("#pragma once") == std::string::npos) {
            report(0, "pragma-once",
                   "public header is missing #pragma once");
        }
    }

    void check_naked_new() {
        for (const std::string& allowed : options_.allow_new) {
            if (path_ == allowed) return;
        }
        static const std::regex kNewDelete(R"(\b(new|delete)\b)");
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kNewDelete);
             it != std::sregex_iterator(); ++it) {
            const auto offset = static_cast<std::size_t>(it->position());
            const std::string token = (*it)[1].str();
            if (token == "delete") {
                // `= delete` declarations are not deallocations.
                if (prev_nonspace(bare_, offset) == '=') continue;
            } else {
                // `operator new` overloads are how ownership cores are
                // built, not naked allocations.
                if (prev_token(bare_, offset) == "operator") continue;
            }
            report(offset, "naked-new",
                   "naked `" + token +
                       "` outside the module-ownership core; use "
                       "std::make_unique / containers");
        }
    }

    void check_unchecked_parse() {
        for (const std::string& allowed : options_.allow_unchecked_parse) {
            if (path_ == allowed) return;
        }
        static const std::regex kParse(
            R"(\b(?:std\s*::\s*)?(stoi|stol|stoul|stoull|stoll|stod|stof|atoi|atol|atof|strtol|strtoul|strtod|strtof|sscanf)\s*\()");
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kParse);
             it != std::sregex_iterator(); ++it) {
            report(static_cast<std::size_t>(it->position()),
                   "unchecked-parse",
                   "unchecked conversion `" + (*it)[1].str() +
                       "`; use util::parse_int / util::parse_double "
                       "(util/json.hpp)");
        }
    }

    void check_unchecked_io() {
        static const std::regex kIoCall(
            R"(\b(write_file|save_parameters|save_checkpoint)\s*\()");
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kIoCall);
             it != std::sregex_iterator(); ++it) {
            const auto offset = static_cast<std::size_t>(it->position());
            // Statement prefix: everything after the last ; { or }.
            std::size_t start = bare_.find_last_of(";{}", offset);
            start = start == std::string::npos ? 0 : start + 1;
            const std::string prefix = bare_.substr(start, offset - start);
            // The value is consumed when the prefix assigns, negates,
            // nests the call in another call's argument list, or
            // returns it; a `bool` prefix is the helper's own
            // declaration/definition, not a call.
            if (prefix.find_first_of("=(!,?") != std::string::npos) {
                continue;
            }
            static const std::regex kConsumed(R"(\b(return|bool)\b)");
            if (std::regex_search(prefix, kConsumed)) continue;
            report(offset, "unchecked-io",
                   "ignored bool result of `" + (*it)[1].str() +
                       "`; a failed write must be handled, not dropped");
        }
    }

    void check_stats_accounting() {
        static const std::regex kStats(R"(\bstruct\s+(\w*Stats)\b)");
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kStats);
             it != std::sregex_iterator(); ++it) {
            const auto start = static_cast<std::size_t>(it->position());
            const std::size_t open = bare_.find('{', start);
            if (open == std::string::npos) continue;  // fwd declaration
            int depth = 0;
            std::size_t close = open;
            for (std::size_t i = open; i < bare_.size(); ++i) {
                if (bare_[i] == '{') ++depth;
                if (bare_[i] == '}' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            const std::string body = bare_.substr(open, close - open);
            static const std::regex kBalanced(R"(\bbalanced\s*\()");
            if (!std::regex_search(body, kBalanced)) continue;
            // The comment lives in the original text, not the
            // comment-stripped copy.
            const std::string raw = content_.substr(open, close - open);
            if (raw.find("accounting") == std::string::npos) {
                report(start, "stats-accounting",
                       "struct " + (*it)[1].str() +
                           " declares balanced() but its accounting "
                           "invariant comment is missing from the body");
            }
        }
    }

    void check_overload_accounting() {
        // Every write of the ladder state must be metered: the matching
        // `aero_overload_*` rung-transition counter increments within
        // three lines of the write, so a refactor cannot silently
        // detach the ladder from its telemetry.
        static const std::regex kRungWrite(
            R"(\brung_\s*(\.\s*store\s*\(|=[^=]))");
        static const std::regex kMetered(
            R"(rung_transition\s*\[[^\]]*\]\s*->\s*inc\s*\(|aero_overload_)");
        std::vector<std::size_t> line_starts{0};
        for (std::size_t i = 0; i < code_.size(); ++i) {
            if (code_[i] == '\n') line_starts.push_back(i + 1);
        }
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kRungWrite);
             it != std::sregex_iterator(); ++it) {
            const auto offset = static_cast<std::size_t>(it->position());
            const int line = lines_.line_at(offset);  // 1-based
            const int first = std::max(1, line - 3);
            const int last = std::min(static_cast<int>(line_starts.size()),
                                      line + 3);
            const std::size_t begin =
                line_starts[static_cast<std::size_t>(first - 1)];
            const std::size_t end =
                last < static_cast<int>(line_starts.size())
                    ? line_starts[static_cast<std::size_t>(last)]
                    : code_.size();
            const std::string window = code_.substr(begin, end - begin);
            if (!std::regex_search(window, kMetered)) {
                report(offset, "overload-accounting",
                       "ladder rung write without an adjacent "
                       "aero_overload_* rung-transition counter "
                       "increment (within 3 lines)");
            }
        }
    }

    void check_arena_bypass() {
        // Only the hot tensor-storage directories are constrained; a
        // std::vector<float> elsewhere (image rows, schedule tables) is
        // not arena-managed storage and stays idiomatic.
        bool covered = false;
        for (const std::string& dir : options_.arena_dirs) {
            if (path_.compare(0, dir.size(), dir) == 0 &&
                (path_.size() == dir.size() || path_[dir.size()] == '/')) {
                covered = true;
                break;
            }
        }
        if (!covered) return;
        static const std::regex kVecFloat(
            R"(\bstd\s*::\s*vector\s*<\s*float\s*>)");
        for (auto it = std::sregex_iterator(bare_.begin(), bare_.end(),
                                            kVecFloat);
             it != std::sregex_iterator(); ++it) {
            report(static_cast<std::size_t>(it->position()), "arena-bypass",
                   "float storage built on std::vector<float> bypasses "
                   "the caching arena; use mem::Buffer "
                   "(src/mem/arena.hpp)");
        }
    }

    void run(bool strict) {
        check_fault_registry();
        // IO results matter in benches/tests too — a bench that drops
        // its results JSON defeats the point of running it.
        check_unchecked_io();
        if (!strict) return;
        check_pragma_once();
        check_naked_new();
        check_unchecked_parse();
        check_stats_accounting();
        check_overload_accounting();
        check_arena_bypass();
        // Strict-only: tests exercise hermetic local registries with
        // synthetic names, which the runtime pattern guard still covers.
        check_metric_naming();
    }

private:
    const std::string& path_;
    const std::string& content_;
    std::string code_;
    std::string bare_;
    LineIndex lines_;
    std::vector<std::pair<int, std::string>> allows_;
    const std::vector<std::string>& registered_;
    const std::vector<std::string>& registered_metrics_;
    const Options& options_;
    std::vector<Finding>* out_;
};

bool read_file(const fs::path& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    *out = buffer.str();
    return true;
}

bool lintable_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

void scan_dir(const Options& options, const std::string& dir, bool strict,
              const std::vector<std::string>& registered,
              const std::vector<std::string>& registered_metrics,
              std::vector<Finding>* out) {
    const fs::path base = fs::path(options.root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) return;
    std::vector<fs::path> files;
    for (const auto& entry :
         fs::recursive_directory_iterator(base, ec)) {
        if (entry.is_regular_file() && lintable_extension(entry.path())) {
            files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
        std::string content;
        if (!read_file(file, &content)) {
            out->push_back({file.generic_string(), 1, "io",
                            "cannot read file"});
            continue;
        }
        const std::string rel =
            fs::relative(file, options.root, ec).generic_string();
        FileLinter linter(rel, content, registered, registered_metrics,
                          options, out);
        linter.run(strict);
    }
}

}  // namespace

bool pass_enabled(const Options& options, const std::string& pass) {
    if (options.passes.empty()) return true;
    return std::find(options.passes.begin(), options.passes.end(), pass) !=
           options.passes.end();
}

int line_of(const std::string& text, std::size_t offset) {
    return LineIndex(text).line_at(offset);
}

std::vector<std::pair<int, std::string>> allow_markers(
    const std::string& content) {
    std::vector<std::pair<int, std::string>> markers;
    static const std::regex kMarker(R"(aero-lint:\s*allow\(([a-z-]+)\))");
    int line = 1;
    std::istringstream stream(content);
    std::string text;
    while (std::getline(stream, text)) {
        std::smatch match;
        if (std::regex_search(text, match, kMarker)) {
            markers.emplace_back(line, match[1].str());
        }
        ++line;
    }
    return markers;
}

bool is_suppressed(const std::vector<std::pair<int, std::string>>& markers,
                   int line, const std::string& rule) {
    for (const auto& marker : markers) {
        // A marker suppresses its own line and the next one, so a long
        // offending expression can carry the marker above it.
        if ((marker.first == line || marker.first == line - 1) &&
            marker.second == rule) {
            return true;
        }
    }
    return false;
}

bool read_file_text(const std::filesystem::path& path, std::string* out) {
    return read_file(path, out);
}

std::vector<std::string> list_source_files(const std::string& root,
                                           const std::string& dir) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    std::vector<std::string> files;
    if (!fs::is_directory(base, ec)) return files;
    for (const auto& entry :
         fs::recursive_directory_iterator(base, ec)) {
        if (entry.is_regular_file() && lintable_extension(entry.path())) {
            files.push_back(
                fs::relative(entry.path(), root, ec).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

const std::vector<RuleDoc>& rule_docs() {
    static const std::vector<RuleDoc> kDocs = {
        {"arena-bypass",
         "no std::vector<float> storage in the hot tensor dirs; float "
         "blocks go through mem::Buffer so the arena can recycle them"},
        {"det-random",
         "no rand()/srand()/random_device in output-affecting dirs; "
         "randomness goes through seeded util::Rng"},
        {"det-unordered-iter",
         "no iteration over unordered_map/unordered_set in "
         "output-affecting dirs (hash order leaks into results)"},
        {"det-wallclock",
         "no wall-clock reads (system_clock, time(), localtime, ...) in "
         "output-affecting dirs"},
        {"fault-docs",
         "every registered fault point is documented in DESIGN.md"},
        {"fault-registry",
         "every fault-point name at a should_fail/fires/arm_nan/"
         "set_fail_rate site is registered in util/fault_points.hpp"},
        {"layer-cycle",
         "the layer DAG declared in ARCH.layers must be acyclic"},
        {"layer-manifest",
         "ARCH.layers parses: '<module>: <deps...>' lines, deps declared"},
        {"layer-undeclared",
         "every module directory under src/ has an ARCH.layers entry"},
        {"layer-violation",
         "a file only #includes modules its layer may depend on "
         "(transitively) per ARCH.layers"},
        {"lock-order",
         "the approximate inter-procedural util::MutexLock graph "
         "(syntactic nesting + call edges) has no cycles"},
        {"metric-naming",
         "metric registration names match aero_<area>_<name> and are "
         "declared in src/obs/metric_names.hpp"},
        {"naked-new",
         "no naked new/delete outside the module-ownership core"},
        {"overload-accounting",
         "degradation-ladder rung writes sit within three lines of an "
         "aero_overload_* rung-transition counter increment"},
        {"pragma-once", "every public header starts with #pragma once"},
        {"stats-accounting",
         "*Stats structs with balanced() keep the accounting comment "
         "beside the fields it constrains"},
        {"unchecked-io",
         "the bool from write_file/save_parameters/save_checkpoint is "
         "consumed, not dropped"},
        {"unchecked-parse",
         "no stoi/atoi/strtod & friends; use util::parse_int/"
         "parse_double"},
    };
    return kDocs;
}

std::string sanitize(const std::string& text, bool keep_strings) {
    enum class State {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString
    };
    std::string out = text;
    State state = State::kCode;
    std::string raw_delim;  // for )delim" raw-string termination
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    out[i] = ' ';
                } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
                    // R"delim( ... )delim"
                    std::size_t paren = text.find('(', i + 1);
                    if (paren == std::string::npos) break;
                    raw_delim =
                        ")" + text.substr(i + 1, paren - i - 1) + "\"";
                    state = State::kRawString;
                } else if (c == '"') {
                    state = State::kString;
                } else if (c == '\'' && !is_ident(prev_nonspace(text, i))) {
                    // Identifier/digit before ' means a digit separator
                    // (1'000), not a character literal.
                    state = State::kChar;
                }
                break;
            case State::kLineComment:
                if (c == '\n') {
                    state = State::kCode;
                } else {
                    out[i] = ' ';
                }
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    state = State::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kString:
                if (c == '\\') {
                    if (!keep_strings) {
                        out[i] = ' ';
                        if (next != '\n') out[i + 1] = ' ';
                    }
                    ++i;
                } else if (c == '"') {
                    state = State::kCode;
                } else if (!keep_strings && c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    if (!keep_strings) {
                        out[i] = ' ';
                        if (next != '\n') out[i + 1] = ' ';
                    }
                    ++i;
                } else if (c == '\'') {
                    state = State::kCode;
                } else if (!keep_strings && c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::kRawString:
                if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                    i += raw_delim.size() - 1;
                    state = State::kCode;
                } else if (!keep_strings && c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

std::vector<std::string> parse_registry(const std::string& registry_text) {
    std::vector<std::string> points;
    static const std::regex kEntry(R"(\{\s*"([A-Za-z0-9_]+)\")");
    for (auto it = std::sregex_iterator(registry_text.begin(),
                                        registry_text.end(), kEntry);
         it != std::sregex_iterator(); ++it) {
        points.push_back((*it)[1].str());
    }
    return points;
}

bool valid_metric_name(const std::string& name) {
    if (name.compare(0, 5, "aero_") != 0) return false;
    int segments = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= name.size(); ++i) {
        if (i == name.size() || name[i] == '_') {
            if (i > start) ++segments;
            start = i + 1;
            continue;
        }
        const char c = name[i];
        if ((c < 'a' || c > 'z') && (c < '0' || c > '9')) return false;
    }
    return segments >= 3;
}

void lint_file(const std::string& path, const std::string& content,
               const std::vector<std::string>& registered_points,
               const std::vector<std::string>& registered_metrics,
               const Options& options, bool strict,
               std::vector<Finding>* out) {
    FileLinter linter(path, content, registered_points, registered_metrics,
                      options, out);
    linter.run(strict);
}

std::vector<Finding> run_lint(const Options& options) {
    std::vector<Finding> findings;

    if (pass_enabled(options, "layering")) {
        run_layering(options, &findings);
    }
    if (pass_enabled(options, "lock-order")) {
        run_lockorder(options, &findings);
    }
    if (pass_enabled(options, "determinism")) {
        run_determinism(options, &findings);
    }
    if (!pass_enabled(options, "rules")) {
        std::sort(findings.begin(), findings.end(),
                  [](const Finding& a, const Finding& b) {
                      if (a.file != b.file) return a.file < b.file;
                      if (a.line != b.line) return a.line < b.line;
                      return a.rule < b.rule;
                  });
        return findings;
    }

    std::string registry_text;
    std::vector<std::string> registered;
    const fs::path registry_path = fs::path(options.root) / options.registry;
    if (!read_file(registry_path, &registry_text)) {
        findings.push_back({options.registry, 1, "fault-registry",
                            "cannot read fault-point registry"});
    } else {
        registered = parse_registry(registry_text);
        if (registered.empty()) {
            findings.push_back({options.registry, 1, "fault-registry",
                                "registry parsed to zero fault points"});
        }
    }

    std::vector<std::string> registered_metrics;
    if (!options.metric_registry.empty()) {
        std::string metric_text;
        const fs::path metric_path =
            fs::path(options.root) / options.metric_registry;
        if (!read_file(metric_path, &metric_text)) {
            findings.push_back({options.metric_registry, 1, "metric-naming",
                                "cannot read metric-name registry"});
        } else {
            registered_metrics = parse_registry(metric_text);
            if (registered_metrics.empty()) {
                findings.push_back(
                    {options.metric_registry, 1, "metric-naming",
                     "registry parsed to zero metric names"});
            }
        }
    }

    for (const std::string& dir : options.strict_dirs) {
        scan_dir(options, dir, /*strict=*/true, registered,
                 registered_metrics, &findings);
    }
    for (const std::string& dir : options.fault_dirs) {
        scan_dir(options, dir, /*strict=*/false, registered,
                 registered_metrics, &findings);
    }

    if (!options.design_doc.empty() && !registered.empty()) {
        std::string design_text;
        const fs::path design_path =
            fs::path(options.root) / options.design_doc;
        if (!read_file(design_path, &design_text)) {
            findings.push_back({options.design_doc, 1, "fault-docs",
                                "cannot read design doc"});
        } else {
            for (const std::string& point : registered) {
                if (design_text.find("\"" + point + "\"") ==
                    std::string::npos) {
                    findings.push_back(
                        {options.design_doc, 1, "fault-docs",
                         "registered fault point \"" + point +
                             "\" is not documented in " +
                             options.design_doc});
                }
            }
        }
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  if (a.file != b.file) return a.file < b.file;
                  if (a.line != b.line) return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

}  // namespace aero::lint
