#pragma once
// Tree-walking helpers shared by the aero_lint passes (implemented in
// lint.cpp so every pass agrees on what counts as a source file).

#include <filesystem>
#include <string>
#include <vector>

namespace aero::lint {

/// Reads a whole file into `out`; false when unreadable.
bool read_file_text(const std::filesystem::path& path, std::string* out);

/// Sorted root-relative generic paths of .hpp/.cpp/.h/.cc files under
/// `root`/`dir` (empty when the directory does not exist).
std::vector<std::string> list_source_files(const std::string& root,
                                           const std::string& dir);

}  // namespace aero::lint
