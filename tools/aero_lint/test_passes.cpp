// Unit tests for the cross-file passes (layering, lock-order,
// determinism) and the JSON report. The per-line rules are covered in
// test_lint.cpp; the fixture trees under fixtures/{layering,lockorder,
// determinism}/ are the integration half of each pass.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "determinism.hpp"
#include "layering.hpp"
#include "lint.hpp"
#include "lockorder.hpp"
#include "report.hpp"

namespace {

using aero::lint::Finding;
using aero::lint::Options;

bool has_rule(const std::vector<Finding>& findings,
              const std::string& rule) {
    return std::any_of(findings.begin(), findings.end(),
                       [&rule](const Finding& finding) {
                           return finding.rule == rule;
                       });
}

int count_rule(const std::vector<Finding>& findings,
               const std::string& rule) {
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [&rule](const Finding& finding) {
                          return finding.rule == rule;
                      }));
}

std::string all_messages(const std::vector<Finding>& findings) {
    std::string joined;
    for (const Finding& finding : findings) {
        joined += finding.message;
        joined += '\n';
    }
    return joined;
}

Options fixture_pass_options(const std::string& tree,
                             const std::string& pass) {
    Options options;
    options.root = std::string(AERO_LINT_FIXTURE_DIR) + "/" + tree;
    options.passes = {pass};
    return options;
}

// ---- pass selection ---------------------------------------------------------

TEST(Passes, EmptyFilterEnablesEverything) {
    const Options options;
    EXPECT_TRUE(aero::lint::pass_enabled(options, "rules"));
    EXPECT_TRUE(aero::lint::pass_enabled(options, "layering"));
    EXPECT_TRUE(aero::lint::pass_enabled(options, "lock-order"));
    EXPECT_TRUE(aero::lint::pass_enabled(options, "determinism"));
}

TEST(Passes, FilterSelectsOnlyNamedPasses) {
    Options options;
    options.passes = {"layering", "determinism"};
    EXPECT_TRUE(aero::lint::pass_enabled(options, "layering"));
    EXPECT_TRUE(aero::lint::pass_enabled(options, "determinism"));
    EXPECT_FALSE(aero::lint::pass_enabled(options, "rules"));
    EXPECT_FALSE(aero::lint::pass_enabled(options, "lock-order"));
}

// ---- layering: manifest -----------------------------------------------------

TEST(Layering, ManifestParsesGrammarAndReportsErrors) {
    std::vector<Finding> findings;
    const std::string text =
        "# comment line\n"
        "\n"
        "util:\n"
        "obs: util   # trailing comment\n"
        "core: obs util\n"
        "not a manifest line\n"
        "Bad$name: util\n"
        "obs: util\n"
        "serve: ghost\n";
    const auto manifest =
        aero::lint::parse_layer_manifest(text, "ARCH.layers", &findings);

    const std::vector<std::string> expected = {"util", "obs", "core",
                                               "serve"};
    EXPECT_EQ(manifest.modules, expected);
    ASSERT_NE(manifest.deps.find("core"), manifest.deps.end());
    const std::vector<std::string> core_deps = {"obs", "util"};
    EXPECT_EQ(manifest.deps.at("core"), core_deps);

    // Malformed line, invalid name, duplicate entry, undeclared dep.
    EXPECT_EQ(count_rule(findings, "layer-manifest"), 4);
    EXPECT_NE(all_messages(findings).find("ghost"), std::string::npos);
}

TEST(Layering, ClosureIsTransitiveAndExcludesSelf) {
    std::vector<Finding> findings;
    const auto manifest = aero::lint::parse_layer_manifest(
        "a: b\nb: c\nc:\n", "ARCH.layers", &findings);
    EXPECT_TRUE(findings.empty());
    const std::set<std::string> expected = {"b", "c"};
    EXPECT_EQ(aero::lint::layer_closure(manifest, "a"), expected);
    EXPECT_TRUE(aero::lint::layer_closure(manifest, "c").empty());
}

TEST(Layering, ClosureTerminatesOnCyclicInput) {
    std::vector<Finding> findings;
    const auto manifest = aero::lint::parse_layer_manifest(
        "a: b\nb: a\n", "ARCH.layers", &findings);
    const std::set<std::string> expected = {"b"};
    EXPECT_EQ(aero::lint::layer_closure(manifest, "a"), expected);
}

TEST(Layering, CycleInDeclaredGraphReported) {
    std::vector<Finding> findings;
    const auto manifest = aero::lint::parse_layer_manifest(
        "a: b\nb: a\n", "ARCH.layers", &findings);
    aero::lint::check_layer_cycles(manifest, "ARCH.layers", &findings);
    ASSERT_EQ(count_rule(findings, "layer-cycle"), 1);
    EXPECT_NE(all_messages(findings).find("a -> b -> a"),
              std::string::npos);
}

TEST(Layering, MissingManifestIsAFinding) {
    // The determinism fixture tree has no ARCH.layers.
    const auto findings = aero::lint::run_lint(
        fixture_pass_options("determinism/good", "layering"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "layer-manifest");
    EXPECT_NE(findings[0].message.find("cannot read"), std::string::npos);
}

// ---- layering: fixture trees ------------------------------------------------

TEST(Layering, GoodTreeIsCleanIncludingSuppressedEdge) {
    const auto findings = aero::lint::run_lint(
        fixture_pass_options("layering/good", "layering"));
    for (const auto& finding : findings) {
        ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                      << finding.rule << "] " << finding.message;
    }
}

TEST(Layering, BadTreeTripsCycleViolationAndUndeclared) {
    const auto findings = aero::lint::run_lint(
        fixture_pass_options("layering/bad", "layering"));
    EXPECT_EQ(count_rule(findings, "layer-cycle"), 1);
    EXPECT_EQ(count_rule(findings, "layer-undeclared"), 1);
    EXPECT_EQ(count_rule(findings, "layer-violation"), 1);
    EXPECT_EQ(findings.size(), 3u);
    for (const auto& finding : findings) {
        if (finding.rule == "layer-violation") {
            // The deliberate upward edge: util includes serve.
            EXPECT_EQ(finding.file, "src/util/upward.cpp");
            EXPECT_NE(finding.message.find("serve/server.hpp"),
                      std::string::npos);
            EXPECT_GT(finding.line, 1);
        }
        if (finding.rule == "layer-undeclared") {
            EXPECT_EQ(finding.file, "src/rogue");
        }
    }
}

// ---- lock-order: fact extraction --------------------------------------------

TEST(LockOrder, ExtractsMemberLocksNestingAndHeldCalls) {
    const std::string content =
        "class Queue {\n"
        " public:\n"
        "  void push() {\n"
        "    util::MutexLock head(head_mu_);\n"
        "    util::MutexLock tail(tail_mu_);\n"
        "    notify_all();\n"
        "  }\n"
        "};\n";
    const auto facts =
        aero::lint::extract_lock_facts("src/core/queue.cpp", content);

    ASSERT_EQ(facts.functions.size(), 1u);
    EXPECT_EQ(facts.functions[0].key, "src/core/queue.cpp|push");
    EXPECT_EQ(facts.functions[0].cls, "Queue");
    const std::vector<std::string> expected_locks = {"Queue::head_mu_",
                                                     "Queue::tail_mu_"};
    EXPECT_EQ(facts.functions[0].locks, expected_locks);

    ASSERT_EQ(facts.nesting_edges.size(), 1u);
    EXPECT_EQ(facts.nesting_edges[0].from, "Queue::head_mu_");
    EXPECT_EQ(facts.nesting_edges[0].to, "Queue::tail_mu_");
    EXPECT_EQ(facts.nesting_edges[0].via, "nested acquisition");
    EXPECT_EQ(facts.nesting_edges[0].line, 5);

    // notify_all() runs under both held locks.
    ASSERT_EQ(facts.held_calls.size(), 2u);
    EXPECT_EQ(facts.held_calls[0].call.base, "notify_all");
    EXPECT_EQ(facts.held_calls[0].caller_cls, "Queue");
}

TEST(LockOrder, FreeFunctionLocalMutexGetsFileScopedId) {
    const std::string content =
        "util::Mutex g_mu;\n"
        "void tick() {\n"
        "  util::MutexLock l(g_mu);\n"
        "}\n";
    const auto facts =
        aero::lint::extract_lock_facts("src/util/timer.cpp", content);
    ASSERT_EQ(facts.functions.size(), 1u);
    const std::vector<std::string> expected = {"timer:tick::g_mu"};
    EXPECT_EQ(facts.functions[0].locks, expected);
}

TEST(LockOrder, QualifiedCallCarriesClassHint) {
    const std::string content =
        "void f(util::Mutex& mu) {\n"
        "  util::MutexLock l(mu);\n"
        "  Registry::instance();\n"
        "}\n";
    const auto facts =
        aero::lint::extract_lock_facts("src/core/reg.cpp", content);
    ASSERT_EQ(facts.held_calls.size(), 1u);
    EXPECT_EQ(facts.held_calls[0].call.kind,
              aero::lint::LockCall::kQualified);
    EXPECT_EQ(facts.held_calls[0].call.cls_hint, "Registry");
}

TEST(LockOrder, AllowMarkerSuppressesNestingEdge) {
    const std::string content =
        "class S {\n"
        "  void f() {\n"
        "    util::MutexLock a(a_);\n"
        "    // aero-lint: allow(lock-order)\n"
        "    util::MutexLock b(b_);\n"
        "  }\n"
        "  util::Mutex a_;\n"
        "  util::Mutex b_;\n"
        "};\n";
    const auto facts =
        aero::lint::extract_lock_facts("src/core/s.cpp", content);
    EXPECT_TRUE(facts.nesting_edges.empty());
}

// ---- lock-order: cycle detection --------------------------------------------

TEST(LockOrder, LexicalInversionWithinOneFileIsACycle) {
    const std::string content =
        "class Inverted {\n"
        "  void forward() {\n"
        "    util::MutexLock la(a_);\n"
        "    util::MutexLock lb(b_);\n"
        "  }\n"
        "  void backward() {\n"
        "    util::MutexLock lb(b_);\n"
        "    util::MutexLock la(a_);\n"
        "  }\n"
        "  util::Mutex a_;\n"
        "  util::Mutex b_;\n"
        "};\n";
    std::vector<Finding> findings;
    aero::lint::check_lock_cycles(
        {aero::lint::extract_lock_facts("src/core/i.cpp", content)},
        &findings);
    ASSERT_EQ(count_rule(findings, "lock-order"), 1);
    EXPECT_NE(findings[0].message.find(
                  "\"Inverted::a_\" -> \"Inverted::b_\""),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("nested acquisition"),
              std::string::npos);
}

TEST(LockOrder, SelfReacquisitionReportedOnce) {
    const std::string content =
        "class R {\n"
        "  void f() {\n"
        "    util::MutexLock a(mu_);\n"
        "    util::MutexLock b(mu_);\n"
        "  }\n"
        "  util::Mutex mu_;\n"
        "};\n";
    std::vector<Finding> findings;
    aero::lint::check_lock_cycles(
        {aero::lint::extract_lock_facts("src/core/r.cpp", content)},
        &findings);
    ASSERT_EQ(count_rule(findings, "lock-order"), 1);
    EXPECT_NE(findings[0].message.find("self-deadlock"),
              std::string::npos);
}

TEST(LockOrder, MayLockClosesOverNonLockingIntermediates) {
    // outer holds first_ and reaches second_ only through two
    // non-locking hops; flip holds second_ and locks first_ directly.
    const std::string content =
        "class Deep {\n"
        "  void outer() { util::MutexLock l(first_); hop(); }\n"
        "  void hop() { skip(); }\n"
        "  void skip() { jump(); }\n"
        "  void jump() { util::MutexLock l(second_); }\n"
        "  void flip() { util::MutexLock l(second_); grab_first(); }\n"
        "  void grab_first() { util::MutexLock l(first_); }\n"
        "  util::Mutex first_;\n"
        "  util::Mutex second_;\n"
        "};\n";
    std::vector<Finding> findings;
    aero::lint::check_lock_cycles(
        {aero::lint::extract_lock_facts("src/core/d.cpp", content)},
        &findings);
    ASSERT_EQ(count_rule(findings, "lock-order"), 1);
    EXPECT_NE(findings[0].message.find("call to hop"), std::string::npos);
}

// ---- lock-order: fixture trees ----------------------------------------------

TEST(LockOrder, GoodTreeIsClean) {
    const auto findings = aero::lint::run_lint(
        fixture_pass_options("lockorder/good", "lock-order"));
    for (const auto& finding : findings) {
        ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                      << finding.rule << "] " << finding.message;
    }
}

TEST(LockOrder, BadTreeReportsBothCycles) {
    const auto findings = aero::lint::run_lint(
        fixture_pass_options("lockorder/bad", "lock-order"));
    EXPECT_EQ(count_rule(findings, "lock-order"), 2);
    const std::string joined = all_messages(findings);
    // The lexical inversion and the inter-procedural one.
    EXPECT_NE(joined.find("Inverted::a_"), std::string::npos);
    EXPECT_NE(joined.find("Chain::head_"), std::string::npos);
}

// ---- determinism ------------------------------------------------------------

std::vector<Finding> det_snippet(const std::string& content) {
    std::vector<Finding> findings;
    aero::lint::determinism_file("src/tensor/t.cpp", content, &findings);
    return findings;
}

TEST(Determinism, RandomSourcesFlagged) {
    EXPECT_TRUE(has_rule(det_snippet("int x = rand();"), "det-random"));
    EXPECT_TRUE(has_rule(det_snippet("void f() { srand(42); }"),
                         "det-random"));
    EXPECT_TRUE(has_rule(det_snippet("std::random_device rd;"),
                         "det-random"));
}

TEST(Determinism, RandomNearMissesAndMembersPass) {
    // Tensor::randn is the seeded library entry point, not rand().
    EXPECT_TRUE(det_snippet("auto t = Tensor::randn(shape, rng);").empty());
    // Member calls are whatever the object defines, not libc.
    EXPECT_TRUE(det_snippet("int x = cfg.rand();").empty());
    EXPECT_TRUE(det_snippet("int x = gen->rand();").empty());
    // Strings and comments are sanitized away.
    EXPECT_TRUE(det_snippet("const char* s = \"rand()\";  // rand()\n")
                    .empty());
}

TEST(Determinism, WallclockReadsFlagged) {
    EXPECT_TRUE(has_rule(
        det_snippet("auto t = std::chrono::system_clock::now();"),
        "det-wallclock"));
    EXPECT_TRUE(has_rule(det_snippet("time_t t = time(nullptr);"),
                         "det-wallclock"));
    EXPECT_TRUE(has_rule(det_snippet("double d = clock();"),
                         "det-wallclock"));
    EXPECT_TRUE(has_rule(det_snippet("auto* tm = localtime(&t);"),
                         "det-wallclock"));
}

TEST(Determinism, SteadyClockAndInjectedClockPass) {
    EXPECT_TRUE(
        det_snippet("auto t = std::chrono::steady_clock::now();").empty());
    EXPECT_TRUE(det_snippet("long long t = clk.time();").empty());
    EXPECT_TRUE(det_snippet("long long t = clk->clock();").empty());
    // A declaration with parameters is not the libc call.
    EXPECT_TRUE(det_snippet("long long time(int channel);").empty());
}

TEST(Determinism, UnorderedIterationFlagged) {
    const std::string range_for =
        "std::unordered_map<std::string, int> weights;\n"
        "int f() {\n"
        "  int total = 0;\n"
        "  for (const auto& entry : weights) total += entry.second;\n"
        "  return total;\n"
        "}\n";
    EXPECT_TRUE(has_rule(det_snippet(range_for), "det-unordered-iter"));
    const std::string explicit_iter =
        "void g(const std::unordered_set<int>& ids) {\n"
        "  for (auto it = ids.begin(); it != ids.end(); ++it) use(*it);\n"
        "}\n";
    EXPECT_TRUE(has_rule(det_snippet(explicit_iter),
                         "det-unordered-iter"));
}

TEST(Determinism, OrderedIterationAndLookupsPass) {
    EXPECT_TRUE(det_snippet("std::map<std::string, int> m;\n"
                            "int f() {\n"
                            "  int t = 0;\n"
                            "  for (const auto& e : m) t += e.second;\n"
                            "  return t;\n"
                            "}\n")
                    .empty());
    // Point lookups on unordered containers are order-independent.
    EXPECT_TRUE(det_snippet("std::unordered_map<int, int> m;\n"
                            "int f(int k) { return m.count(k); }\n")
                    .empty());
}

TEST(Determinism, AllowMarkerSuppresses) {
    EXPECT_TRUE(det_snippet("// aero-lint: allow(det-random)\n"
                            "int x = rand();\n")
                    .empty());
    // A marker for another rule does not.
    EXPECT_TRUE(has_rule(det_snippet("// aero-lint: allow(det-wallclock)\n"
                                     "int x = rand();\n"),
                         "det-random"));
}

// ---- determinism: fixture trees ---------------------------------------------

Options det_fixture_options(const std::string& which) {
    Options options =
        fixture_pass_options("determinism/" + which, "determinism");
    options.determinism_dirs = {"src"};
    return options;
}

TEST(Determinism, GoodTreeIsClean) {
    const auto findings =
        aero::lint::run_lint(det_fixture_options("good"));
    for (const auto& finding : findings) {
        ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                      << finding.rule << "] " << finding.message;
    }
}

TEST(Determinism, BadTreeTripsEveryRule) {
    const auto findings =
        aero::lint::run_lint(det_fixture_options("bad"));
    // srand, random_device, rand — the suppressed rand() is excluded.
    EXPECT_EQ(count_rule(findings, "det-random"), 3);
    // system_clock and time(nullptr).
    EXPECT_EQ(count_rule(findings, "det-wallclock"), 2);
    // One range-for and one .begin() walk.
    EXPECT_EQ(count_rule(findings, "det-unordered-iter"), 2);
}

// ---- JSON report ------------------------------------------------------------

TEST(Report, CleanReportShape) {
    const std::string json = aero::lint::render_json_report({});
    EXPECT_NE(json.find("\"tool\": \"aero_lint\""), std::string::npos);
    EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
    EXPECT_NE(json.find("\"finding_count\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

TEST(Report, FindingsSerializedWithEscapesAndCounts) {
    const std::vector<Finding> findings = {
        {"src/a.cpp", 3, "lock-order", "cycle \"A\" -> \"B\""},
        {"src/b.cpp", 7, "det-random", "path\\x\nnext"},
        {"src/c.cpp", 1, "lock-order", "x"},
    };
    const std::string json = aero::lint::render_json_report(findings);
    EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
    EXPECT_NE(json.find("\"finding_count\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"lock-order\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"det-random\": 1"), std::string::npos);
    EXPECT_NE(json.find("cycle \\\"A\\\" -> \\\"B\\\""),
              std::string::npos);
    EXPECT_NE(json.find("path\\\\x\\nnext"), std::string::npos);
    EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
}

TEST(Report, WriteRoundTripsAndFailsOnBadPath) {
    const std::vector<Finding> findings = {
        {"src/a.cpp", 1, "det-random", "rand()"}};
    const auto path = std::filesystem::temp_directory_path() /
                      "aero_lint_test_report.json";
    ASSERT_TRUE(aero::lint::write_json_report(path.string(), findings));
    std::ifstream in(path);
    const std::string loaded((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    EXPECT_EQ(loaded, aero::lint::render_json_report(findings));
    std::filesystem::remove(path);

    EXPECT_FALSE(aero::lint::write_json_report(
        "/nonexistent-dir-for-aero-lint/report.json", findings));
}

// ---- rule table -------------------------------------------------------------

TEST(RuleTable, SortedUniqueAndComplete) {
    const auto& docs = aero::lint::rule_docs();
    EXPECT_EQ(docs.size(), 18u);
    std::set<std::string> names;
    for (std::size_t i = 0; i < docs.size(); ++i) {
        names.insert(docs[i].name);
        EXPECT_FALSE(std::string(docs[i].summary).empty());
        if (i + 1 < docs.size()) {
            EXPECT_LT(std::string(docs[i].name),
                      std::string(docs[i + 1].name));
        }
    }
    for (const char* required :
         {"arena-bypass", "det-random", "det-unordered-iter", "det-wallclock",
          "fault-docs", "fault-registry", "layer-cycle", "layer-manifest",
          "layer-undeclared", "layer-violation", "lock-order",
          "metric-naming", "naked-new", "overload-accounting",
          "pragma-once", "stats-accounting", "unchecked-io",
          "unchecked-parse"}) {
        EXPECT_EQ(names.count(required), 1u) << required;
    }
}

}  // namespace
