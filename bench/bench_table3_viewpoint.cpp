// Table III reproduction: viewpoint-transition image synthesis.
// A trained AeroDiffusion model receives a reference image with its
// caption G_i and a target caption G'_i describing the SAME scene from a
// different camera (altitude / pitch / azimuth). We verify that the
// generated image aligns better with G' than with G (CLIP), and that it
// is closer to the ground-truth re-rendered view than to the reference
// view in feature space.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "text/llm.hpp"

namespace {

using namespace aero;

double feature_distance(const metrics::FeatureNet& net,
                        const image::Image& a, const image::Image& b) {
    const auto fa = net.features(a);
    const auto fb = net.features(b);
    double d = 0.0;
    for (std::size_t i = 0; i < fa.size(); ++i) {
        d += (fa[i] - fb[i]) * (fa[i] - fb[i]);
    }
    return std::sqrt(d);
}

}  // namespace

int main() {
    std::printf("=== Table III: viewpoint-transition synthesis (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;
    bench::Harness harness = bench::build_harness(2025);
    const core::Substrate& substrate = harness.substrate;

    util::Rng rng(13);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    pipeline.fit(rng);

    const int cases = std::min<int>(util::scaled(2, 3, 6),
                                    static_cast<int>(
                                        harness.dataset->test().size()));
    const auto keypoint_llm = text::SimulatedLlm::keypoint_aware();
    const auto prompt = text::PromptTemplate::keypoint_aware();
    const std::string dir = bench::output_dir("table3");

    int clip_prefers_target = 0;
    int closer_to_target_view = 0;
    std::vector<std::vector<std::string>> table;

    for (int i = 0; i < cases; ++i) {
        const auto& ref = harness.dataset->test()[static_cast<std::size_t>(i)];
        const std::string gi = substrate.keypoint_test[static_cast<std::size_t>(i)].text;

        // New viewpoint for the same scene.
        util::Rng cam_rng(1000 + static_cast<std::uint64_t>(i));
        scene::Camera new_camera = scene::random_camera(cam_rng);
        new_camera.altitude = ref.scene.camera.altitude < 0.9f ? 1.3f : 0.6f;
        new_camera.pitch = ref.scene.camera.pitch < 0.3f ? 0.5f : 0.05f;
        const scene::AerialSample target_view =
            scene::reproject_sample(ref, new_camera);
        util::Rng caption_rng(2000 + static_cast<std::uint64_t>(i));
        const std::string gi_prime =
            keypoint_llm.describe(target_view.scene, prompt, caption_rng).text;

        util::Rng gen_rng(3000 + static_cast<std::uint64_t>(i));
        const image::Image generated =
            pipeline.generate(ref, gi, gi_prime, gen_rng, i);

        const float clip_target =
            embed::clip_score(*substrate.clip, generated, gi_prime);
        const float clip_source =
            embed::clip_score(*substrate.clip, generated, gi);
        const double dist_target = feature_distance(
            *substrate.feature_net, generated, target_view.image);
        const double dist_source =
            feature_distance(*substrate.feature_net, generated, ref.image);

        if (clip_target > clip_source) ++clip_prefers_target;
        if (dist_target < dist_source) ++closer_to_target_view;

        image::write_ppm(ref.image,
                         dir + "/case" + std::to_string(i) + "_ref.ppm");
        image::write_ppm(target_view.image,
                         dir + "/case" + std::to_string(i) + "_gt_view.ppm");
        image::write_ppm(generated,
                         dir + "/case" + std::to_string(i) + "_generated.ppm");

        table.push_back({std::to_string(i),
                         std::string(scene::scenario_name(ref.scene.kind)),
                         bench::fmt(clip_source), bench::fmt(clip_target),
                         bench::fmt(dist_source), bench::fmt(dist_target)});

        std::printf("\nCase %d (%s):\n", i,
                    scene::scenario_name(ref.scene.kind));
        std::printf("  G_i : %.110s...\n", gi.c_str());
        std::printf("  G'_i: %.110s...\n", gi_prime.c_str());
    }

    std::printf("\n");
    bench::print_table({"case", "scenario", "CLIP vs G", "CLIP vs G'",
                        "feat dist to ref view", "feat dist to target view"},
                       table);

    std::printf("\nImages written to %s/\n", dir.c_str());
    std::printf("\nShape vs paper:\n");
    std::printf("  Generated aligns with target caption G' (CLIP): %d/%d\n",
                clip_prefers_target, cases);
    std::printf("  Generated closer to target view than reference: %d/%d\n",
                closer_to_target_view, cases);
    // Either signal demonstrates the transition: CLIP alignment with the
    // edited caption (the paper's framing) or feature-space proximity to
    // the ground-truth re-rendered view (available only because our
    // dataset is synthetic -- the stronger, paired check). The tiny CLIP
    // model is unreliable on generated images, so the paired check is
    // the primary one.
    const bool holds = (closer_to_target_view * 2 >= cases) ||
                       (clip_prefers_target * 2 >= cases);
    std::printf("  Viewpoint transition responds to G' edits:      %s\n",
                holds ? "HOLDS" : "VIOLATED");
    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return holds ? 0 : 1;
}
