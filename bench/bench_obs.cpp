// Observability overhead bench: the AERO_OBS contract is that the full
// instrumentation stack (metric handles, per-stage spans, per-step
// sampler timing, serve histograms) costs near-nothing, and that the
// enable switch is bitwise-neutral on kernel output. This bench holds
// both promises to numbers:
//
//   * generate path — min-of-alternating-rounds wall time for one full
//     conditional generate with obs enabled vs disabled; FAILS (exit 1)
//     when the relative overhead exceeds 5% beyond a small absolute
//     slack that absorbs scheduler noise on sub-millisecond deltas,
//   * bitwise neutrality — the same seed must produce byte-identical
//     images in both modes; any drift FAILS the bench,
//   * serve path — p50/p99 end-to-end latency for a small batch in both
//     modes, reported for trend tracking (not gated: queueing noise
//     dwarfs the instrumentation signal at bench scale).
//
// The pipeline runs untrained: instrumentation cost does not depend on
// model quality, and skipping fit() keeps rounds cheap enough to repeat.

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/clock.hpp"
#include "serve/service.hpp"

namespace {

using namespace aero;

constexpr double kMaxOverheadFraction = 0.05;
/// Absolute slack (ms) under which a delta is treated as timer noise.
constexpr double kAbsoluteSlackMs = 2.0;

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

image::Image run_generate(const core::AeroDiffusionPipeline& pipeline,
                          const bench::Harness& harness, std::uint64_t seed) {
    const scene::AerialSample& sample = harness.dataset->test()[0];
    const std::string& caption = harness.substrate.keypoint_test[0].text;
    util::Rng rng(seed);
    return pipeline.generate(sample, caption, caption, rng);
}

/// p50/p99 of a small serve batch in the current obs mode.
std::pair<double, double> serve_latencies(
    const core::AeroDiffusionPipeline& pipeline,
    const bench::Harness& harness, int requests) {
    serve::ServiceConfig config;
    config.limits.image_size = harness.budget.image_size;
    config.workers = 2;
    config.queue_capacity = static_cast<std::size_t>(requests);
    serve::InferenceService service(pipeline, config);
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        serve::InferenceRequest request;
        request.reference = harness.dataset
                                ->test()[static_cast<std::size_t>(i) %
                                         harness.dataset->test().size()];
        request.source_caption =
            harness.substrate
                .keypoint_test[static_cast<std::size_t>(i) %
                               harness.substrate.keypoint_test.size()]
                .text;
        request.target_caption = request.source_caption;
        request.seed = 7000 + static_cast<std::uint64_t>(i);
        futures.push_back(service.submit(std::move(request)));
    }
    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto& future : futures) {
        latencies.push_back(future.get().latency_ms);
    }
    service.stop();
    return {percentile(latencies, 0.50), percentile(latencies, 0.99)};
}

}  // namespace

int main() {
    const bench::Harness harness = bench::build_harness(/*seed=*/2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);

    const int scale = std::max(0, util::env_int("AERO_BENCH_SCALE", 1));
    const int rounds_per_mode = 3 + scale;  // min-of-N absorbs noise
    const int serve_requests = 6 + 2 * scale;

    // Warm both modes once (page-in, pool spin-up, metric registration).
    obs::set_enabled(true);
    (void)run_generate(pipeline, harness, 1000);
    obs::set_enabled(false);
    (void)run_generate(pipeline, harness, 1000);

    // Alternate modes round-robin so drift (thermal, scheduler) hits
    // both equally; keep the minimum per mode.
    double best_enabled_ms = 0.0;
    double best_disabled_ms = 0.0;
    for (int round = 0; round < 2 * rounds_per_mode; ++round) {
        const bool enabled = (round % 2) == 0;
        obs::set_enabled(enabled);
        const obs::Stopwatch watch;
        (void)run_generate(pipeline, harness,
                           2000 + static_cast<std::uint64_t>(round));
        const double ms = watch.ms();
        double& best = enabled ? best_enabled_ms : best_disabled_ms;
        if (round < 2 || ms < best) best = ms;
    }
    const double delta_ms = best_enabled_ms - best_disabled_ms;
    const double overhead =
        best_disabled_ms > 0.0 ? delta_ms / best_disabled_ms : 0.0;

    // Bitwise neutrality: same seed, both modes, identical bytes.
    obs::set_enabled(true);
    const image::Image with_obs = run_generate(pipeline, harness, 4242);
    obs::set_enabled(false);
    const image::Image without_obs = run_generate(pipeline, harness, 4242);
    const bool bitwise_identical =
        !with_obs.empty() && with_obs.data() == without_obs.data();

    obs::set_enabled(true);
    const auto [serve_p50_on, serve_p99_on] =
        serve_latencies(pipeline, harness, serve_requests);
    obs::set_enabled(false);
    const auto [serve_p50_off, serve_p99_off] =
        serve_latencies(pipeline, harness, serve_requests);
    obs::set_enabled(true);

    bench::print_table(
        {"path", "obs on", "obs off", "delta"},
        {{"generate min (ms)", bench::fmt(best_enabled_ms),
          bench::fmt(best_disabled_ms),
          bench::fmt(delta_ms) + " (" + bench::fmt(overhead * 100.0, 1) +
              "%)"},
         {"serve p50 (ms)", bench::fmt(serve_p50_on),
          bench::fmt(serve_p50_off),
          bench::fmt(serve_p50_on - serve_p50_off)},
         {"serve p99 (ms)", bench::fmt(serve_p99_on),
          bench::fmt(serve_p99_off),
          bench::fmt(serve_p99_on - serve_p99_off)},
         {"bitwise identical", bitwise_identical ? "yes" : "NO", "-", "-"}});

    util::JsonValue payload = util::JsonValue::object();
    payload.set("generate_enabled_ms", best_enabled_ms);
    payload.set("generate_disabled_ms", best_disabled_ms);
    payload.set("overhead_fraction", overhead);
    payload.set("serve_p50_enabled_ms", serve_p50_on);
    payload.set("serve_p50_disabled_ms", serve_p50_off);
    payload.set("serve_p99_enabled_ms", serve_p99_on);
    payload.set("serve_p99_disabled_ms", serve_p99_off);
    payload.set("bitwise_identical", bitwise_identical);
    payload.set("rounds_per_mode", rounds_per_mode);
    bench::record_results("bench_obs", payload);

    bool ok = true;
    if (!bitwise_identical) {
        std::fprintf(stderr,
                     "FAIL: AERO_OBS toggling changed generated bytes\n");
        ok = false;
    }
    if (overhead > kMaxOverheadFraction && delta_ms > kAbsoluteSlackMs) {
        std::fprintf(stderr,
                     "FAIL: obs overhead %.1f%% (%.2f ms) exceeds %.0f%%\n",
                     overhead * 100.0, delta_ms,
                     kMaxOverheadFraction * 100.0);
        ok = false;
    }
    if (ok) std::printf("bench_obs: PASS\n");
    return ok ? 0 : 1;
}
