// Serving-layer bench: drives the hardened InferenceService through a
// clean run and three failure regimes and reports, per scenario,
//   * p50 / p99 end-to-end latency (admission -> terminal outcome),
//   * shed rate (bounded-queue admission control),
//   * degraded-response rate (circuit-breaker unconditional fallback),
//   * timeout and failure rates, retry volume and breaker activity.
// The pipeline is used untrained: serving cost and failure policy do
// not depend on model quality, and skipping fit() keeps the bench about
// the service layer rather than the optimizer.

#include <algorithm>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

namespace {

using namespace aero;

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

struct Scenario {
    std::string name;
    serve::ServiceConfig config;
    double transient_rate = 0.0;
    double encoder_rate = 0.0;
    double deadline_ms = 0.0;  ///< applied to every request; 0 = none
};

struct ScenarioReport {
    serve::ServiceStats stats;
    std::vector<double> latencies;  ///< all terminal outcomes
    double wall_ms = 0.0;
    long long total = 0;
};

ScenarioReport run_scenario(const bench::Harness& harness,
                            const core::AeroDiffusionPipeline& pipeline,
                            const Scenario& scenario, int requests) {
    util::FaultInjector injector(/*seed=*/0xbe7 + requests);
    if (scenario.transient_rate > 0.0) {
        injector.set_fail_rate("serve_transient", scenario.transient_rate);
    }
    if (scenario.encoder_rate > 0.0) {
        injector.set_fail_rate("condition_encoder", scenario.encoder_rate);
    }
    serve::ServiceConfig config = scenario.config;
    config.fault_injector = &injector;

    serve::InferenceService service(pipeline, config);
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;

    obs::Stopwatch watch;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        const std::size_t slot = static_cast<std::size_t>(i) % test.size();
        serve::InferenceRequest request;
        request.reference = test[slot];
        request.source_caption = captions[slot].text;
        request.target_caption = captions[slot].text;
        request.seed = 0x5e21e0 + static_cast<std::uint64_t>(i);
        request.deadline_ms = scenario.deadline_ms;
        switch (i % 3) {
            case 0:
                request.task = serve::TaskKind::kGenerate;
                break;
            case 1:
                request.task = serve::TaskKind::kEdit;
                request.strength = 0.5f;
                break;
            default:
                request.task = serve::TaskKind::kInpaint;
                request.region = {
                    static_cast<float>(harness.budget.image_size / 4),
                    static_cast<float>(harness.budget.image_size / 4),
                    static_cast<float>(harness.budget.image_size / 2),
                    static_cast<float>(harness.budget.image_size / 2)};
                break;
        }
        futures.push_back(service.submit(std::move(request)));
    }

    ScenarioReport report;
    for (auto& future : futures) {
        const serve::RequestResult result = future.get();
        report.latencies.push_back(result.latency_ms);
    }
    report.wall_ms = watch.seconds() * 1000.0;
    service.stop();
    report.stats = service.stats();
    report.total = report.stats.terminal();
    return report;
}

std::string rate(long long count, long long total) {
    if (total <= 0) return "0%";
    return bench::fmt(100.0 * static_cast<double>(count) /
                          static_cast<double>(total),
                      1) +
           "%";
}

}  // namespace

int main() {
    using namespace aero;
    std::printf("=== Serving latency & failure policy (scale %d) ===\n",
                util::bench_scale());
    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);

    const int requests = 24 * std::max(1, util::bench_scale());

    serve::ServiceConfig base;
    base.workers = 3;
    base.queue_capacity = static_cast<std::size_t>(requests);

    // Overload: one worker, a queue far smaller than the burst, and a
    // deadline short enough that some queued requests expire — the
    // admission-control and cancellation paths under pressure.
    serve::ServiceConfig overload = base;
    overload.workers = 1;
    overload.queue_capacity = 4;

    std::vector<Scenario> scenarios{
        {"clean", base, 0.0, 0.0, 0.0},
        {"transient 15%", base, 0.15, 0.0, 0.0},
        {"encoder outage 40%", base, 0.0, 0.40, 0.0},
        {"overload + deadlines", overload, 0.0, 0.0, 100.0},
    };

    util::JsonValue results = util::JsonValue::object();
    std::vector<std::vector<std::string>> rows;
    for (const Scenario& scenario : scenarios) {
        const ScenarioReport report =
            run_scenario(harness, pipeline, scenario, requests);
        const serve::ServiceStats& stats = report.stats;
        const double p50 = percentile(report.latencies, 0.50);
        const double p99 = percentile(report.latencies, 0.99);
        rows.push_back(
            {scenario.name, bench::fmt(p50, 1), bench::fmt(p99, 1),
             rate(stats.outcome(serve::Outcome::kShed), report.total),
             rate(stats.outcome(serve::Outcome::kDegraded), report.total),
             rate(stats.outcome(serve::Outcome::kTimeout), report.total),
             rate(stats.outcome(serve::Outcome::kFailed), report.total),
             std::to_string(stats.retries),
             std::to_string(stats.breaker_trips) + "/" +
                 std::to_string(stats.breaker_recoveries)});

        util::JsonValue entry = util::JsonValue::object();
        entry.set("requests", util::JsonValue(
                                  static_cast<double>(stats.submitted)));
        entry.set("p50_ms", util::JsonValue(p50));
        entry.set("p99_ms", util::JsonValue(p99));
        entry.set("wall_ms", util::JsonValue(report.wall_ms));
        for (int o = 0; o < serve::kNumOutcomes; ++o) {
            entry.set(serve::outcome_name(static_cast<serve::Outcome>(o)),
                      util::JsonValue(static_cast<double>(
                          stats.by_outcome[o])));
        }
        entry.set("retries",
                  util::JsonValue(static_cast<double>(stats.retries)));
        entry.set("breaker_trips",
                  util::JsonValue(static_cast<double>(stats.breaker_trips)));
        entry.set("breaker_recoveries",
                  util::JsonValue(
                      static_cast<double>(stats.breaker_recoveries)));
        entry.set("balanced", util::JsonValue(stats.balanced()));
        results.set(scenario.name, entry);

        if (!stats.balanced()) {
            std::printf("ACCOUNTING VIOLATION in '%s': submitted=%lld "
                        "terminal=%lld\n",
                        scenario.name.c_str(), stats.submitted,
                        stats.terminal());
            return 1;
        }
    }

    bench::print_table({"scenario", "p50 ms", "p99 ms", "shed", "degraded",
                        "timeout", "failed", "retries", "trips/recov"},
                       rows);
    bench::record_results("bench_serve", results);
    std::printf("every request resolved with exactly one typed outcome "
                "(accounting balanced in all scenarios)\n");
    return 0;
}
