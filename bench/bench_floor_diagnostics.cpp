// Evaluation-floor diagnostics. Not a paper table, but the calibration
// run that anchors every other bench: it measures
//   * the FID/KID/PSNR of REAL held-out images (sampling-noise floor),
//   * the autoencoder reconstruction floor (no generative model can
//     decode better through the same decoder),
//   * a conditioned vs an unconditional latent diffusion model under
//     identical budgets, at several guidance scales.
// If the conditioned model does not clearly beat the unconditional one
// here, no Table I/IV comparison is meaningful.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "diffusion/trainer.hpp"

int main() {
    using namespace aero;
    std::printf("=== Evaluation floors & conditioning gain (scale %d) ===\n",
                util::bench_scale());
    bench::Harness harness = bench::build_harness(2025);
    const core::Substrate& s = harness.substrate;
    util::JsonValue results = util::JsonValue::object();

    // Condition tokens: CLIP text embed + global image feature per sample.
    std::vector<tensor::Tensor> conds;
    std::vector<tensor::Tensor> empty;
    for (std::size_t i = 0; i < s.dataset->train().size(); ++i) {
        const auto& sample = s.dataset->train()[i];
        const tensor::Tensor text =
            s.clip->embed_text_eval(s.keypoint_train[i].text);
        const tensor::Tensor img = s.clip->embed_image_eval(sample.image);
        conds.push_back(tensor::concat({text, img}, 0));
        empty.emplace_back();
    }

    const diffusion::NoiseSchedule schedule(
        {s.budget.schedule_steps, 0.001f, 0.012f});
    diffusion::UNetConfig ucfg;
    ucfg.in_channels = s.autoencoder->config().latent_channels;
    ucfg.base_channels = 24;
    ucfg.cond_dim = s.embed_config.dim;
    const int ls = s.autoencoder->config().latent_size();
    const std::vector<int> latent_shape{ucfg.in_channels, ls, ls};

    diffusion::DiffusionTrainConfig tcfg;
    tcfg.steps = s.budget.diffusion_steps * 2 / 3;  // diagnostics budget
    tcfg.batch_size = s.budget.batch_size;
    tcfg.parameterization = diffusion::Parameterization::kV;

    auto sample_and_score = [&](const diffusion::UNet& unet, float guidance,
                                bool conditioned) {
        diffusion::DdimConfig dc;
        dc.inference_steps = s.budget.ddim_steps;
        dc.guidance_scale = guidance;
        dc.parameterization = diffusion::Parameterization::kV;
        const diffusion::DdimSampler sampler(unet, schedule, dc);
        std::vector<image::Image> generated;
        util::Rng rng(9);
        for (std::size_t i = 0; i < harness.references.size(); ++i) {
            tensor::Tensor c;
            if (conditioned) {
                const auto& test_sample = s.dataset->test()[i];
                c = tensor::concat(
                    {s.clip->embed_text_eval(s.keypoint_test[i].text),
                     s.clip->embed_image_eval(test_sample.image)},
                    0);
            }
            tensor::Tensor z = sampler.sample(latent_shape, c, rng);
            z = tensor::scale(z, 1.0f / s.latent_scale);
            generated.push_back(s.autoencoder->decode_latent(z));
        }
        return bench::score_eval_set(harness, generated);
    };

    // Conditioned model across guidance scales.
    {
        util::Rng rng(1);
        diffusion::UNet unet(ucfg, rng);
        tcfg.condition_dropout = 0.1f;
        const auto stats = diffusion::train_diffusion(
            unet, schedule, s.train_latents, conds, tcfg, rng);
        std::printf("conditioned   : loss %.4f -> tail %.4f\n",
                    stats.first_loss, stats.tail_loss);
        util::JsonValue sweeps = util::JsonValue::array();
        for (float g : {1.0f, 2.0f, 4.0f}) {
            const auto scores = sample_and_score(unet, g, true);
            std::printf("  guidance %.1f: FID %.3f PSNR %.2f KID %.4f\n", g,
                        scores.fid, scores.psnr, scores.kid);
            util::JsonValue row = util::JsonValue::object();
            row.set("guidance", g)
                .set("fid", scores.fid)
                .set("psnr", scores.psnr)
                .set("kid", scores.kid);
            sweeps.push(std::move(row));
        }
        results.set("conditioned", std::move(sweeps));
    }

    // Unconditional model with the same budget.
    {
        util::Rng rng(1);
        diffusion::UNet unet(ucfg, rng);
        tcfg.condition_dropout = 1.0f;
        const auto stats = diffusion::train_diffusion(
            unet, schedule, s.train_latents, empty, tcfg, rng);
        std::printf("unconditional : loss %.4f -> tail %.4f\n",
                    stats.first_loss, stats.tail_loss);
        const auto scores = sample_and_score(unet, 1.0f, false);
        std::printf("  uncond      : FID %.3f PSNR %.2f KID %.4f\n",
                    scores.fid, scores.psnr, scores.kid);
        util::JsonValue row = util::JsonValue::object();
        row.set("fid", scores.fid)
            .set("psnr", scores.psnr)
            .set("kid", scores.kid);
        results.set("unconditional", std::move(row));
    }

    // Floors.
    {
        std::vector<image::Image> recon;
        for (const auto& ref : harness.references) {
            recon.push_back(
                s.autoencoder->decode_latent(s.autoencoder->encode_image(ref)));
        }
        const auto r = bench::score_eval_set(harness, recon);
        std::printf("AE recon floor: FID %.3f PSNR %.2f KID %.4f\n", r.fid,
                    r.psnr, r.kid);
        const auto real = bench::score_eval_set(harness, harness.references);
        std::printf("real refs     : FID %.3f PSNR %.2f KID %.4f\n", real.fid,
                    real.psnr, real.kid);
        util::JsonValue floors = util::JsonValue::object();
        floors.set("ae_recon_fid", r.fid).set("real_fid", real.fid);
        results.set("floors", std::move(floors));
    }

    // Divergence-sentinel overhead: identical training runs with the
    // sentinel off vs on (finite-checks + periodic snapshots). The guard
    // should cost well under 2% of a step.
    {
        auto timed_run = [&](bool enabled) {
            util::Rng rng(1);
            diffusion::UNet unet(ucfg, rng);
            diffusion::DiffusionTrainConfig cfg = tcfg;
            cfg.condition_dropout = 0.1f;
            cfg.sentinel.enabled = enabled;
            const auto start = std::chrono::steady_clock::now();
            diffusion::train_diffusion(unet, schedule, s.train_latents,
                                       conds, cfg, rng);
            const auto end = std::chrono::steady_clock::now();
            return std::chrono::duration<double, std::milli>(end - start)
                       .count() /
                   static_cast<double>(cfg.steps);
        };
        const double off_ms = timed_run(false);
        const double on_ms = timed_run(true);
        const double overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
        std::printf(
            "sentinel      : %.2f ms/step off, %.2f ms/step on "
            "(overhead %+.2f%%)\n",
            off_ms, on_ms, overhead_pct);
        util::JsonValue row = util::JsonValue::object();
        row.set("step_ms_sentinel_off", off_ms)
            .set("step_ms_sentinel_on", on_ms)
            .set("overhead_pct", overhead_pct);
        results.set("sentinel_overhead", std::move(row));
    }

    bench::record_results("floor_diagnostics", results);
    std::printf("\nresults recorded to out/results/floor_diagnostics.json\n");
    return 0;
}
