// Overload-control bench: an offered-load sweep over the admission
// controller. First a capacity run (overload off, unbounded queue,
// submit everything at once) measures the service's goodput ceiling;
// then paced open-loop runs at 1x / 2x / 4x that capacity, with the
// controller on and a bounded queue, report goodput (kOk + kDegraded
// per second), p50/p99 latency, shed rate and the degradation-rung
// distribution. The gate this bench enforces: goodput at 4x offered
// load stays at >= 80% of capacity goodput — graceful degradation
// instead of congestion collapse.

#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

namespace {

using namespace aero;

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

struct RunReport {
    serve::ServiceStats stats;
    std::vector<double> latencies;
    double wall_s = 0.0;
    long long good = 0;  ///< kOk + kDegraded
    double goodput() const {
        return wall_s > 0.0 ? static_cast<double>(good) / wall_s : 0.0;
    }
};

serve::InferenceRequest make_request(const bench::Harness& harness, int i) {
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;
    const std::size_t slot = static_cast<std::size_t>(i) % test.size();
    serve::InferenceRequest request;
    request.reference = test[slot];
    request.source_caption = captions[slot % captions.size()].text;
    request.target_caption = request.source_caption;
    request.seed = 0x0f7e40 + static_cast<std::uint64_t>(i);
    // A third of the offered load is bulk traffic: the ladder takes
    // quality from it first.
    if (i % 3 == 0) request.options.priority = serve::Priority::kBatch;
    return request;
}

/// Submits `requests` jobs paced at `rate_per_s` (0 = all at once) and
/// waits for every terminal outcome.
RunReport run_at(const bench::Harness& harness,
                 const core::AeroDiffusionPipeline& pipeline,
                 const serve::ServiceConfig& config, int requests,
                 double rate_per_s) {
    serve::InferenceService service(pipeline, config);
    obs::Stopwatch watch;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < requests; ++i) {
        if (rate_per_s > 0.0 && i > 0) {
            const auto due =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(i) / rate_per_s));
            std::this_thread::sleep_until(due);
        }
        futures.push_back(service.submit(make_request(harness, i)));
    }
    RunReport report;
    for (auto& future : futures) {
        const serve::RequestResult result = future.get();
        report.latencies.push_back(result.latency_ms);
        if (result.outcome == serve::Outcome::kOk ||
            result.outcome == serve::Outcome::kDegraded) {
            ++report.good;
        }
    }
    report.wall_s = watch.seconds();
    service.stop();
    report.stats = service.stats();
    return report;
}

std::string rate(long long count, long long total) {
    if (total <= 0) return "0%";
    return bench::fmt(100.0 * static_cast<double>(count) /
                          static_cast<double>(total),
                      1) +
           "%";
}

}  // namespace

int main() {
    using namespace aero;
    std::printf("=== Overload control: offered-load sweep (scale %d) ===\n",
                util::bench_scale());
    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);

    const int requests = 24 * std::max(1, util::bench_scale());

    // Capacity run: controller off, queue big enough for the full
    // burst, everything submitted at once — the goodput ceiling.
    serve::ServiceConfig base;
    base.workers = 2;
    base.limits.image_size = harness.budget.image_size;
    base.rate_limit = util::RateLimitConfig{};  // bench pins its own knobs
    serve::ServiceConfig capacity_config = base;
    capacity_config.queue_capacity = static_cast<std::size_t>(requests);
    const RunReport capacity =
        run_at(harness, pipeline, capacity_config, requests, 0.0);
    const double capacity_goodput = capacity.goodput();
    const double clean_p99 = percentile(capacity.latencies, 0.99);
    std::printf("capacity: %.1f good/s (p99 %.1f ms under full burst)\n",
                capacity_goodput, clean_p99);

    // Sweep config: controller on, bounded queue. The latency and
    // sojourn targets track the measured service time so the bench
    // scales with the machine instead of hard-coding milliseconds; the
    // sojourn target is tighter so a standing queue raises the load
    // index even while completed-request latency still looks passable.
    serve::ServiceConfig sweep = base;
    sweep.queue_capacity = 8;
    sweep.overload.enabled = true;
    sweep.overload.latency_target_ms =
        std::max(5.0, 1.5 * percentile(capacity.latencies, 0.50));
    sweep.overload.codel_target_ms = 0.5 * sweep.overload.latency_target_ms;
    sweep.overload.max_limit = base.workers;
    const int sweep_requests = 2 * requests;

    util::JsonValue results = util::JsonValue::object();
    results.set("capacity_goodput", util::JsonValue(capacity_goodput));
    std::vector<std::vector<std::string>> rows;
    double goodput_4x = 0.0;
    for (const double mult : {1.0, 2.0, 4.0}) {
        const double offered = mult * capacity_goodput;
        const RunReport report =
            run_at(harness, pipeline, sweep, sweep_requests, offered);
        const serve::ServiceStats& stats = report.stats;
        const long long total = stats.terminal();
        if (mult == 4.0) goodput_4x = report.goodput();

        long long degraded_rungs = 0;
        for (int r = 1; r + 1 < serve::kNumDegradeRungs; ++r) {
            degraded_rungs += stats.by_rung[r];
        }
        rows.push_back(
            {bench::fmt(mult, 0) + "x", bench::fmt(offered, 1),
             bench::fmt(report.goodput(), 1),
             bench::fmt(percentile(report.latencies, 0.50), 1),
             bench::fmt(percentile(report.latencies, 0.99), 1),
             rate(stats.outcome(serve::Outcome::kShed), total),
             rate(degraded_rungs, total),
             std::to_string(stats.codel_dropped)});

        util::JsonValue entry = util::JsonValue::object();
        entry.set("offered_per_s", util::JsonValue(offered));
        entry.set("goodput_per_s", util::JsonValue(report.goodput()));
        entry.set("p50_ms",
                  util::JsonValue(percentile(report.latencies, 0.50)));
        entry.set("p99_ms",
                  util::JsonValue(percentile(report.latencies, 0.99)));
        entry.set("shed", util::JsonValue(static_cast<double>(
                              stats.outcome(serve::Outcome::kShed))));
        entry.set("codel_dropped", util::JsonValue(static_cast<double>(
                                       stats.codel_dropped)));
        for (int r = 0; r < serve::kNumDegradeRungs; ++r) {
            entry.set(std::string("rung_") +
                          serve::degrade_rung_name(
                              static_cast<serve::DegradeRung>(r)),
                      util::JsonValue(static_cast<double>(stats.by_rung[r])));
        }
        entry.set("balanced", util::JsonValue(stats.balanced()));
        results.set(bench::fmt(mult, 0) + "x", entry);

        if (!stats.balanced()) {
            std::printf("ACCOUNTING VIOLATION at %sx: submitted=%lld "
                        "terminal=%lld\n",
                        bench::fmt(mult, 0).c_str(), stats.submitted,
                        stats.terminal());
            return 1;
        }
    }

    bench::print_table({"offered", "req/s", "goodput/s", "p50 ms", "p99 ms",
                        "shed", "degraded", "codel"},
                       rows);
    bench::record_results("bench_overload", results);

    // The gate: graceful degradation, not congestion collapse.
    const double floor = 0.8 * capacity_goodput;
    std::printf("gate: goodput@4x %.1f/s vs floor %.1f/s (80%% of "
                "capacity %.1f/s)\n",
                goodput_4x, floor, capacity_goodput);
    if (goodput_4x < floor) {
        std::printf("GATE FAILED: overload collapsed goodput\n");
        return 1;
    }
    std::printf("gate passed: goodput under 4x overload held above 80%% "
                "of capacity\n");
    return 0;
}
