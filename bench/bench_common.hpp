#pragma once
// Shared harness for the experiment benches: builds the dataset and
// substrate at the current AERO_BENCH_SCALE, runs the standard
// generate-and-score protocol, and prints paper-style tables.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/models.hpp"
#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "metrics/metrics.hpp"
#include "obs/clock.hpp"
#include "util/env.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace aero::bench {

/// Dataset + substrate bundle for one bench run.
struct Harness {
    core::Budget budget;
    std::unique_ptr<scene::AerialDataset> dataset;
    core::Substrate substrate;
    std::vector<image::Image> real_pool;   ///< test images (FID/KID target)
    std::vector<image::Image> references;  ///< paired originals for PSNR
};

inline Harness build_harness(std::uint64_t seed = 2025,
                             double night_fraction = 0.2) {
    Harness harness;
    harness.budget = core::Budget::from_scale();
    scene::DatasetConfig config;
    config.train_size = harness.budget.train_images;
    config.test_size = harness.budget.test_images;
    config.image_size = harness.budget.image_size;
    config.generator.night_fraction = night_fraction;
    config.seed = seed;
    harness.dataset = std::make_unique<scene::AerialDataset>(config);
    util::Rng rng(seed);
    harness.substrate =
        core::build_substrate(*harness.dataset, harness.budget, rng);

    // Real pool: both splits, for a stabler FID reference distribution
    // (generated sets stay small, but the noise is shared across models).
    for (const scene::AerialSample& s : harness.dataset->train()) {
        harness.real_pool.push_back(s.image);
    }
    for (const scene::AerialSample& s : harness.dataset->test()) {
        harness.real_pool.push_back(s.image);
    }
    const int eval =
        std::min<int>(harness.budget.eval_samples,
                      static_cast<int>(harness.dataset->test().size()));
    for (int i = 0; i < eval; ++i) {
        harness.references.push_back(
            harness.dataset->test()[static_cast<std::size_t>(i)].image);
    }
    return harness;
}

/// Generates `repeats` images per reference test sample with `model`
/// (distinct sampling noise per repeat). NOTE: FID prefers many DISTINCT
/// scenes over repeats of the same scene -- repeating references shrinks
/// the generated covariance and biases the metric against
/// well-conditioned (reconstruction-faithful) models -- so the default
/// is one generation per distinct test scene.
inline std::vector<image::Image> generate_eval_set(
    const baselines::SynthesisModel& model, const Harness& harness,
    util::Rng& rng, int repeats = 1) {
    std::vector<image::Image> generated;
    const int eval = static_cast<int>(harness.references.size());
    generated.reserve(static_cast<std::size_t>(eval * repeats));
    for (int r = 0; r < repeats; ++r) {
        for (int i = 0; i < eval; ++i) {
            generated.push_back(model.generate(
                harness.dataset->test()[static_cast<std::size_t>(i)], i,
                rng));
        }
    }
    return generated;
}

/// Table-I metric triple for a generated set. The generated set may hold
/// several repeats per reference; PSNR pairs each image with its
/// reference cyclically, FID/KID use the whole set.
inline metrics::SynthesisScores score_eval_set(
    const Harness& harness, const std::vector<image::Image>& generated) {
    std::vector<image::Image> paired_references;
    paired_references.reserve(generated.size());
    for (std::size_t i = 0; i < generated.size(); ++i) {
        paired_references.push_back(
            harness.references[i % harness.references.size()]);
    }
    return metrics::evaluate_synthesis(*harness.substrate.feature_net,
                                       harness.real_pool, paired_references,
                                       generated);
}

// ---- table printing ---------------------------------------------------------

inline void print_rule(const std::vector<std::size_t>& widths) {
    std::string line = "+";
    for (std::size_t w : widths) {
        line += std::string(w + 2, '-');
        line += '+';
    }
    std::printf("%s\n", line.c_str());
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<std::size_t>& widths) {
    std::string line = "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        line += ' ';
        line += util::pad_right(cells[i], widths[i]);
        line += " |";
    }
    std::printf("%s\n", line.c_str());
}

/// Prints a complete bordered table: header plus rows.
inline void print_table(const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows) {
    std::vector<std::size_t> widths(header.size());
    for (std::size_t i = 0; i < header.size(); ++i) {
        widths[i] = header[i].size();
    }
    for (const auto& row : rows) {
        for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    print_rule(widths);
    print_row(header, widths);
    print_rule(widths);
    for (const auto& row : rows) print_row(row, widths);
    print_rule(widths);
}

/// Output directory for generated images (created on demand).
inline std::string output_dir(const std::string& name) {
    const std::string dir = "out/" + name;
    std::filesystem::create_directories(dir);
    return dir;
}

inline std::string fmt(double v, int decimals = 2) {
    return util::format_fixed(v, decimals);
}

/// Directory bench result JSON lands in: AERO_RESULTS_DIR when set,
/// otherwise out/results (relative to the CWD).
inline std::string results_dir() {
    return util::env_string("AERO_RESULTS_DIR", "out/results");
}

/// Writes a machine-readable copy of a bench's results to
/// <results_dir()>/<name>.json. A bench whose numbers never hit disk is
/// worse than one that fails loudly (read-only CWD, ENOSPC), so a
/// failed write aborts the bench with a non-zero exit.
inline void record_results(const std::string& name,
                           const util::JsonValue& payload) {
    const std::string dir = results_dir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/" + name + ".json";
    if (ec || !payload.write_file(path)) {
        std::fprintf(stderr, "FATAL: failed to write bench results to %s\n",
                     path.c_str());
        std::exit(1);
    }
}

}  // namespace aero::bench
