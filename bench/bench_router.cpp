// Router bench: scaling and overhead of the multi-replica sharded
// front-end (serve::Router) against the plain InferenceService.
//   * overhead gate — no-fault routing through a 1-replica router must
//     cost <= 5% wall time vs hitting the service directly (min of
//     alternating rounds, which cancels machine noise);
//   * scaling table — 1/2/4 replicas, p50/p99 latency and throughput;
//     on a multi-core host 2 replicas must reach >= 1.7x the 1-replica
//     throughput (skipped on small hosts, where replicas share cores);
//   * kill-one-replica row — a replica crashes mid-burst, the router
//     fails over and restarts it; every request must still resolve
//     (balanced accounting) with zero lost samples.
// The pipeline is untrained for the same reason as bench_serve: routing
// cost and failure policy do not depend on model quality.

#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/router.hpp"

namespace {

using namespace aero;

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

serve::InferenceRequest make_request(const bench::Harness& harness, int i) {
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;
    const std::size_t slot = static_cast<std::size_t>(i) % test.size();
    serve::InferenceRequest request;
    request.reference = test[slot];
    request.source_caption = captions[slot].text;
    request.target_caption = captions[slot].text;
    request.seed = 0x40375000 + static_cast<std::uint64_t>(i);
    return request;
}

serve::ServiceConfig replica_service_config(const bench::Harness& harness,
                                            int requests) {
    serve::ServiceConfig config;
    config.workers = 1;
    config.queue_capacity = static_cast<std::size_t>(requests);
    config.limits.image_size = harness.budget.image_size;
    return config;
}

struct RunReport {
    serve::RouterStats stats;
    std::vector<double> latencies;
    double wall_ms = 0.0;
    double throughput_rps = 0.0;
    bool all_healthy_after = false;
};

/// One burst through a router; `kill_replica` >= 0 crashes that replica
/// after the first completion and waits for recovery afterwards.
RunReport run_router(const bench::Harness& harness,
                     const core::AeroDiffusionPipeline& pipeline,
                     serve::RouterConfig config, int requests,
                     int kill_replica = -1) {
    serve::Router router(pipeline, config);
    obs::Stopwatch watch;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        futures.push_back(router.submit(make_request(harness, i)));
    }
    if (kill_replica >= 0) {
        futures[0].wait();
        router.inject_crash(kill_replica);
    }
    RunReport report;
    for (auto& future : futures) {
        report.latencies.push_back(future.get().latency_ms);
    }
    report.wall_ms = watch.seconds() * 1000.0;
    if (kill_replica >= 0) {
        // Give the supervisor a moment to restart and re-admit.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (!router.all_healthy() &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
    }
    report.all_healthy_after = router.all_healthy();
    router.stop();
    report.stats = router.stats();
    report.throughput_rps =
        report.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(requests) / report.wall_ms
            : 0.0;
    return report;
}

double run_direct_ms(const bench::Harness& harness,
                     const core::AeroDiffusionPipeline& pipeline,
                     const serve::ServiceConfig& config, int requests) {
    serve::InferenceService service(pipeline, config);
    obs::Stopwatch watch;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        futures.push_back(service.submit(make_request(harness, i)));
    }
    for (auto& future : futures) future.get();
    const double wall = watch.seconds() * 1000.0;
    service.stop();
    return wall;
}

}  // namespace

int main() {
    using namespace aero;
    std::printf("=== Router scaling & failover (scale %d) ===\n",
                util::bench_scale());
    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);
    const unsigned cores = std::thread::hardware_concurrency();
    util::JsonValue results = util::JsonValue::object();

    // ---- overhead gate: 1-replica router vs direct service ----------------
    const int overhead_requests = 12 * std::max(1, util::bench_scale());
    serve::ServiceConfig direct = replica_service_config(harness,
                                                         overhead_requests);
    direct.workers = 2;
    serve::RouterConfig one;
    one.replicas = 1;
    one.service = direct;
    one.hedging = false;  // measure pure routing cost
    // Shared hosts drift: identical direct rounds vary by tens of
    // percent as neighbours come and go. Pairing each routed run with
    // the direct run right before it cancels that drift; the min over
    // rounds then drops rounds polluted by a load spike. A systematic
    // router overhead > 5% would survive in every round and still trip
    // the gate.
    double best_ratio = 0.0;
    double best_direct = 0.0;
    double best_routed = 0.0;
    for (int round = 0; round < 4; ++round) {
        const double direct_ms =
            run_direct_ms(harness, pipeline, direct, overhead_requests);
        const double routed_ms =
            run_router(harness, pipeline, one, overhead_requests).wall_ms;
        const double ratio = direct_ms > 0.0 ? routed_ms / direct_ms : 1.0;
        if (round == 0 || ratio < best_ratio) {
            best_ratio = ratio;
            best_direct = direct_ms;
            best_routed = routed_ms;
        }
    }
    const double overhead_pct = 100.0 * (best_ratio - 1.0);
    std::printf("routing overhead (best paired round): direct %s ms vs "
                "routed %s ms -> %s%%\n",
                bench::fmt(best_direct, 1).c_str(),
                bench::fmt(best_routed, 1).c_str(),
                bench::fmt(overhead_pct, 2).c_str());
    util::JsonValue overhead = util::JsonValue::object();
    overhead.set("direct_ms", util::JsonValue(best_direct));
    overhead.set("routed_ms", util::JsonValue(best_routed));
    overhead.set("overhead_pct", util::JsonValue(overhead_pct));
    results.set("overhead", overhead);
    if (overhead_pct > 5.0) {
        std::printf("OVERHEAD GATE FAILED: %.2f%% > 5%%\n", overhead_pct);
        return 1;
    }

    // ---- scaling table: 1 / 2 / 4 replicas --------------------------------
    const int scale_requests = 24 * std::max(1, util::bench_scale());
    std::vector<std::vector<std::string>> rows;
    double throughput_at[5] = {};
    for (const int replicas : {1, 2, 4}) {
        serve::RouterConfig config;
        config.replicas = replicas;
        config.service = replica_service_config(harness, scale_requests);
        config.hedging = false;
        const RunReport report =
            run_router(harness, pipeline, config, scale_requests);
        if (!report.stats.balanced()) {
            std::printf("ACCOUNTING VIOLATION at %d replicas\n", replicas);
            return 1;
        }
        throughput_at[replicas] = report.throughput_rps;
        rows.push_back({std::to_string(replicas),
                        bench::fmt(percentile(report.latencies, 0.50), 1),
                        bench::fmt(percentile(report.latencies, 0.99), 1),
                        bench::fmt(report.throughput_rps, 2), "-", "-"});
        util::JsonValue entry = util::JsonValue::object();
        entry.set("p50_ms", util::JsonValue(percentile(report.latencies,
                                                       0.50)));
        entry.set("p99_ms", util::JsonValue(percentile(report.latencies,
                                                       0.99)));
        entry.set("throughput_rps", util::JsonValue(report.throughput_rps));
        entry.set("balanced", util::JsonValue(report.stats.balanced()));
        results.set("replicas_" + std::to_string(replicas), entry);
    }

    // ---- kill-one-replica row ---------------------------------------------
    {
        serve::RouterConfig config;
        config.replicas = 2;
        config.service = replica_service_config(harness, scale_requests);
        config.hedging = false;
        config.probe_request = make_request(harness, 0);
        config.probe_interval_ms = 5.0;
        config.health.probe_window = 1;
        config.health.restart_backoff_base_ms = 1.0;
        config.health.restart_backoff_max_ms = 10.0;
        const RunReport report =
            run_router(harness, pipeline, config, scale_requests,
                       /*kill_replica=*/0);
        const serve::RouterStats& stats = report.stats;
        const long long served = stats.outcome(serve::Outcome::kOk) +
                                 stats.outcome(serve::Outcome::kDegraded);
        if (!stats.balanced() || served != stats.submitted) {
            std::printf("KILL-ROW GATE FAILED: submitted=%lld served=%lld "
                        "terminal=%lld\n",
                        stats.submitted, served, stats.terminal());
            return 1;
        }
        rows.push_back({"2 (kill one)",
                        bench::fmt(percentile(report.latencies, 0.50), 1),
                        bench::fmt(percentile(report.latencies, 0.99), 1),
                        bench::fmt(report.throughput_rps, 2),
                        std::to_string(stats.failovers),
                        report.all_healthy_after ? "yes" : "no"});
        util::JsonValue entry = util::JsonValue::object();
        entry.set("p99_ms", util::JsonValue(percentile(report.latencies,
                                                       0.99)));
        entry.set("throughput_rps", util::JsonValue(report.throughput_rps));
        entry.set("failovers",
                  util::JsonValue(static_cast<double>(stats.failovers)));
        entry.set("crashes",
                  util::JsonValue(static_cast<double>(stats.crashes)));
        entry.set("restarts",
                  util::JsonValue(static_cast<double>(stats.restarts)));
        entry.set("recovered", util::JsonValue(report.all_healthy_after));
        results.set("kill_one_replica", entry);
    }

    bench::print_table({"replicas", "p50 ms", "p99 ms", "req/s", "failovers",
                        "recovered"},
                       rows);

    // The >= 1.7x scaling gate only means something when replicas get
    // their own cores; on a small host the replicas timeshare one core
    // and throughput is flat by construction.
    const double speedup2 = throughput_at[1] > 0.0
                                ? throughput_at[2] / throughput_at[1]
                                : 0.0;
    std::printf("2-replica speedup: %sx (host has %u cores)\n",
                bench::fmt(speedup2, 2).c_str(), cores);
    results.set("speedup_2_replicas", util::JsonValue(speedup2));
    results.set("cores", util::JsonValue(static_cast<double>(cores)));
    if (cores >= 4 && speedup2 < 1.7) {
        std::printf("SCALING GATE FAILED: %.2fx < 1.7x at 2 replicas\n",
                    speedup2);
        return 1;
    }
    if (cores < 4) {
        std::printf("scaling gate skipped: needs >= 4 cores\n");
    }

    bench::record_results("bench_router", results);
    std::printf("every request resolved with exactly one typed outcome "
                "(accounting balanced, kill-one-replica included)\n");
    return 0;
}
