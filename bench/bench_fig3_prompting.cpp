// Figure 3 reproduction: keypoint-aware vs traditional prompting.
// Shows both prompt templates, the captions each produces for the same
// aerial scene, and the information-coverage statistics over many
// scenes.

#include <cstdio>

#include "bench_common.hpp"
#include "scene/generator.hpp"
#include "text/llm.hpp"

int main() {
    using namespace aero;

    util::Rng scene_rng(77);
    const scene::Scene example = scene::generate_scene(
        scene::ScenarioKind::kHighway, scene::TimeOfDay::kDay, scene_rng, 0);

    const auto keypoint_prompt = text::PromptTemplate::keypoint_aware();
    const auto traditional_prompt = text::PromptTemplate::traditional();
    const auto keypoint_llm = text::SimulatedLlm::keypoint_aware();
    const auto generic_llm = text::SimulatedLlm::blip_captioner();

    std::printf("=== Figure 3: keypoint-aware text generation ===\n\n");
    std::printf("Traditional prompt:\n  %s\n\n",
                traditional_prompt.render().c_str());
    util::Rng rng(5);
    const text::Caption plain =
        generic_llm.describe(example, traditional_prompt, rng);
    std::printf("Output:\n  %s\n\n", plain.text.c_str());

    std::printf("Keypoint-aware prompt:\n  %s\n\n",
                keypoint_prompt.render().c_str());
    const text::Caption rich =
        keypoint_llm.describe(example, keypoint_prompt, rng);
    std::printf("Keypoint-aware output:\n  %s\n\n", rich.text.c_str());

    // Coverage statistics over many scenes.
    const int scenes = util::scaled(32, 200, 400);
    double cov_keypoint = 0.0;
    double cov_traditional = 0.0;
    double mentions_keypoint = 0.0;
    double mentions_traditional = 0.0;
    util::Rng stat_rng(9);
    for (int i = 0; i < scenes; ++i) {
        const scene::Scene s = scene::generate_random_scene(stat_rng, i);
        const text::Caption a =
            keypoint_llm.describe(s, keypoint_prompt, stat_rng);
        const text::Caption b =
            generic_llm.describe(s, traditional_prompt, stat_rng);
        cov_keypoint += text::keypoint_coverage(a);
        cov_traditional += text::keypoint_coverage(b);
        mentions_keypoint += static_cast<double>(a.mentions.size());
        mentions_traditional += static_cast<double>(b.mentions.size());
    }

    bench::print_table(
        {"Prompting", "keypoint coverage", "object classes mentioned"},
        {{"Traditional", bench::fmt(cov_traditional / scenes),
          bench::fmt(mentions_traditional / scenes)},
         {"Keypoint-aware (ours)", bench::fmt(cov_keypoint / scenes),
          bench::fmt(mentions_keypoint / scenes)}});

    const bool shape_holds =
        cov_keypoint > cov_traditional &&
        mentions_keypoint > mentions_traditional;
    std::printf("\nPaper shape (keypoint prompting covers more keypoints): %s\n",
                shape_holds ? "HOLDS" : "VIOLATED");
    return shape_holds ? 0 : 1;
}
