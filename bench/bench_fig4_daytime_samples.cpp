// Figure 4 reproduction: qualitative daytime samples. For a handful of
// daytime test scenes, every Table-I model generates an image; all
// outputs plus the originals are written as PPM files and a per-image
// quantitative summary (PSNR to the original, feature distance to the
// real distribution mean) is printed. The paper's qualitative claim --
// AeroDiffusion's samples sit closest to the originals, DDPM misses
// object structure despite smooth pixels -- becomes measurable here.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace aero;

std::vector<double> mean_feature(const metrics::FeatureNet& net,
                                 const std::vector<image::Image>& images) {
    std::vector<double> mean(static_cast<std::size_t>(net.config().feature_dim),
                             0.0);
    for (const auto& img : images) {
        const auto f = net.features(img);
        for (std::size_t i = 0; i < f.size(); ++i) mean[i] += f[i];
    }
    for (double& v : mean) v /= static_cast<double>(images.size());
    return mean;
}

double distance_to(const std::vector<double>& feature,
                   const std::vector<double>& mean) {
    double d = 0.0;
    for (std::size_t i = 0; i < feature.size(); ++i) {
        d += (feature[i] - mean[i]) * (feature[i] - mean[i]);
    }
    return std::sqrt(d);
}

}  // namespace

int main() {
    std::printf("=== Figure 4: daytime qualitative samples (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;
    // Day-only dataset so every sampled scene matches the figure.
    bench::Harness harness = bench::build_harness(2025, /*night_fraction=*/0.0);
    // Qualitative figure: a reduced training budget keeps the six-model
    // sweep affordable without changing who looks better.
    harness.substrate.budget.diffusion_steps =
        harness.substrate.budget.diffusion_steps * 3 / 5;

    util::Rng rng(808);
    auto models = baselines::make_table1_models(harness.substrate, rng);
    for (auto& model : models) {
        util::Rng fit_rng = rng.fork(std::hash<std::string>{}(model->name()));
        model->fit(fit_rng);
    }

    const int scenes = std::min<int>(util::scaled(2, 4, 4),
                                     static_cast<int>(
                                         harness.dataset->test().size()));
    const std::string dir = bench::output_dir("fig4");
    const auto real_mean =
        mean_feature(*harness.substrate.feature_net, harness.real_pool);

    std::vector<std::vector<std::string>> table;
    double aero_psnr_sum = 0.0;
    double aero_dist_sum = 0.0;
    double ddpm_dist_sum = 0.0;

    for (int s = 0; s < scenes; ++s) {
        const auto& ref = harness.dataset->test()[static_cast<std::size_t>(s)];
        image::write_ppm(ref.image,
                         dir + "/scene" + std::to_string(s) + "_original.ppm");
        for (auto& model : models) {
            util::Rng gen_rng(9000 + static_cast<std::uint64_t>(s) * 31 +
                              std::hash<std::string>{}(model->name()) % 1000);
            const image::Image img = model->generate(ref, s, gen_rng);
            image::write_ppm(img, dir + "/scene" + std::to_string(s) + "_" +
                                      model->name() + ".ppm");
            const double psnr = image::psnr(ref.image, img);
            const double dist = distance_to(
                harness.substrate.feature_net->features(img), real_mean);
            table.push_back({std::to_string(s), model->name(),
                             bench::fmt(psnr), bench::fmt(dist)});
            if (model->name() == "AeroDiffusion") {
                aero_psnr_sum += psnr;
                aero_dist_sum += dist;
            }
            if (model->name() == "DDPM") ddpm_dist_sum += dist;
        }
    }

    std::printf("\n");
    bench::print_table(
        {"scene", "model", "PSNR vs original", "feat dist to real mean"},
        table);
    std::printf("\nImages written to %s/ (originals + one per model).\n",
                dir.c_str());

    const bool holds = aero_dist_sum < ddpm_dist_sum;
    std::printf("\nShape vs paper (AeroDiffusion closer to the real "
                "distribution than DDPM): %s\n",
                holds ? "HOLDS" : "VIOLATED");
    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return holds ? 0 : 1;
}
