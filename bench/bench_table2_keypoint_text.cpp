// Table II reproduction: keypoint-aware text generation vs baseline LLM
// captioners (Gemini, GPT-4o, BLIP). For each captioner the SAME
// AeroDiffusion architecture is retrained on that captioner's captions;
// we report the CLIP score of the generated images against their target
// captions and the FID of the generated set -- both should favour the
// keypoint-aware captioner, whose captions carry the most faithful
// scene information.

#include <cstdio>

#include "bench_common.hpp"

int main() {
    using namespace aero;

    std::printf("=== Table II: keypoint-aware text generation (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;
    bench::Harness harness = bench::build_harness(2025);
    const core::Substrate& substrate = harness.substrate;

    struct Backend {
        std::string label;
        text::SimulatedLlm llm;
        text::PromptTemplate prompt;
    };
    const std::vector<Backend> backends = {
        {"Gemini", text::SimulatedLlm::gemini(),
         text::PromptTemplate::keypoint_aware()},
        {"GPT-4o", text::SimulatedLlm::gpt4o(),
         text::PromptTemplate::keypoint_aware()},
        {"BLIP", text::SimulatedLlm::blip_captioner(),
         text::PromptTemplate::traditional()},
        {"AeroDiffusion", text::SimulatedLlm::keypoint_aware(),
         text::PromptTemplate::keypoint_aware()},
    };

    struct Row {
        std::string label;
        float clip_score = 0.0f;
        double fid = 0.0;
    };
    std::vector<Row> rows;

    util::Rng rng(777);
    for (const Backend& backend : backends) {
        obs::Stopwatch timer;
        util::Rng caption_rng = rng.fork(std::hash<std::string>{}(backend.label));
        const auto train_captions = core::caption_split(
            harness.dataset->train(), backend.llm, backend.prompt,
            caption_rng);
        const auto test_captions = core::caption_split(
            harness.dataset->test(), backend.llm, backend.prompt,
            caption_rng);

        core::PipelineConfig config = core::PipelineConfig::aero_diffusion();
        config.name = backend.label;
        config.custom_train_captions = &train_captions;
        config.custom_test_captions = &test_captions;
        util::Rng model_rng = caption_rng.fork(1);
        core::AeroDiffusionPipeline pipeline(config, substrate, model_rng);
        pipeline.fit(model_rng);

        // Generate for the eval subset and score. The CLIP score grades
        // the *generated text*: how faithfully each backend's caption
        // describes its source image (Table II's "keypoint-aware text
        // generation" axis); the FID grades the downstream images the
        // captions condition.
        std::vector<image::Image> generated;
        std::vector<image::Image> sources;
        std::vector<std::string> targets;
        util::Rng gen_rng = model_rng.fork(2);
        const int eval = static_cast<int>(harness.references.size());
        for (int i = 0; i < eval; ++i) {
            const auto& sample =
                harness.dataset->test()[static_cast<std::size_t>(i)];
            const std::string& caption =
                test_captions[static_cast<std::size_t>(i)].text;
            generated.push_back(
                pipeline.generate(sample, caption, caption, gen_rng, i));
            sources.push_back(sample.image);
            targets.push_back(caption);
        }
        Row row;
        row.label = backend.label;
        row.clip_score =
            metrics::mean_clip_score(*substrate.clip, sources, targets);
        row.fid = metrics::fid(*substrate.feature_net, harness.real_pool,
                               generated);
        rows.push_back(row);
        std::printf("  [%s] done in %.1fs (CLIP %.2f, FID %.2f)\n",
                    backend.label.c_str(), timer.seconds(), row.clip_score,
                    row.fid);
    }

    std::printf("\n");
    std::vector<std::vector<std::string>> table;
    for (const Row& row : rows) {
        table.push_back({row.label, bench::fmt(row.clip_score),
                         bench::fmt(row.fid)});
    }
    bench::print_table({"LLM", "CLIP SCORE (up)", "FID (down)"}, table);

    const Row& ours = rows.back();
    bool best_clip = true;
    bool best_fid = true;
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        best_clip = best_clip && ours.clip_score > rows[i].clip_score;
        best_fid = best_fid && ours.fid < rows[i].fid;
    }
    const Row& blip = rows[2];
    bool blip_worst_clip = true;
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        if (rows[i].label != "BLIP") {
            blip_worst_clip =
                blip_worst_clip && blip.clip_score <= rows[i].clip_score;
        }
    }

    std::printf("\nShape vs paper:\n");
    std::printf("  Keypoint-aware best CLIP score: %s (paper: 32.82 best)\n",
                best_clip ? "HOLDS" : "VIOLATED");
    std::printf("  Keypoint-aware best FID:        %s (paper: 78.16 best)\n",
                best_fid ? "HOLDS" : "VIOLATED");
    std::printf("  BLIP captions weakest CLIP:     %s (paper: 25.64 worst)\n",
                blip_worst_clip ? "HOLDS" : "VIOLATED");
    util::JsonValue payload = util::JsonValue::object();
    util::JsonValue json_rows = util::JsonValue::array();
    for (const Row& row : rows) {
        util::JsonValue r = util::JsonValue::object();
        r.set("llm", row.label)
            .set("clip_score", row.clip_score)
            .set("fid", row.fid);
        json_rows.push(std::move(r));
    }
    payload.set("table", "II").set("rows", std::move(json_rows));
    bench::record_results("table2_keypoint_text", payload);

    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return (best_clip && best_fid) ? 0 : 1;
}
