// Component microbenchmarks (google-benchmark): the cost centres of the
// pipeline -- tensor kernels, UNet denoising steps, the scene renderer,
// the samplers and the evaluation metrics.

#include <benchmark/benchmark.h>

#include "diffusion/sampler.hpp"
#include "diffusion/trainer.hpp"
#include "metrics/metrics.hpp"
#include "nn/attention.hpp"
#include "scene/dataset.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace aero;
using aero::autograd::Var;
using aero::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    util::Rng rng(1);
    const Tensor a = Tensor::randn({n, n}, rng);
    const Tensor b = Tensor::randn({n, n}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::matmul(a, b));
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2d(benchmark::State& state) {
    const int size = static_cast<int>(state.range(0));
    util::Rng rng(2);
    const Tensor x = Tensor::randn({1, 16, size, size}, rng);
    const Tensor w = Tensor::randn({16, 16, 3, 3}, rng);
    const Tensor bias = Tensor::randn({16}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tensor::conv2d(x, w, bias, {1, 1}));
    }
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32);

void BM_MultiHeadAttention(benchmark::State& state) {
    const int tokens = static_cast<int>(state.range(0));
    util::Rng rng(3);
    nn::MultiHeadAttention attn(32, 4, rng);
    const Var x = Var::constant(Tensor::randn({tokens, 32}, rng));
    for (auto _ : state) {
        benchmark::DoNotOptimize(attn.forward(x).value());
    }
}
BENCHMARK(BM_MultiHeadAttention)->Arg(16)->Arg(64);

void BM_SceneRender(benchmark::State& state) {
    const int size = static_cast<int>(state.range(0));
    util::Rng rng(4);
    const scene::Scene sc = scene::generate_random_scene(rng, 0);
    scene::RenderOptions options;
    options.image_size = size;
    for (auto _ : state) {
        benchmark::DoNotOptimize(scene::render(sc, options));
    }
}
BENCHMARK(BM_SceneRender)->Arg(32)->Arg(64);

diffusion::UNetConfig micro_unet_config() {
    diffusion::UNetConfig config;
    config.in_channels = 4;
    config.base_channels = 24;
    config.cond_dim = 32;
    return config;
}

void BM_UNetDenoiseStep(benchmark::State& state) {
    util::Rng rng(5);
    diffusion::UNet unet(micro_unet_config(), rng);
    const Tensor z = Tensor::randn({4, 8, 8}, rng);
    const Tensor cond = Tensor::randn({3, 32}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(unet.denoise(z, 10, 64, cond));
    }
}
BENCHMARK(BM_UNetDenoiseStep);

void BM_UNetTrainStep(benchmark::State& state) {
    util::Rng rng(6);
    diffusion::UNet unet(micro_unet_config(), rng);
    const diffusion::NoiseSchedule schedule({64, 0.001f, 0.012f});
    std::vector<Tensor> latents{Tensor::randn({4, 8, 8}, rng)};
    std::vector<Tensor> conds{Tensor::randn({3, 32}, rng)};
    diffusion::DiffusionTrainConfig config;
    config.steps = 1;
    config.batch_size = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            diffusion::train_diffusion(unet, schedule, latents, conds,
                                       config, rng));
    }
}
BENCHMARK(BM_UNetTrainStep);

void BM_DdimSample(benchmark::State& state) {
    util::Rng rng(7);
    diffusion::UNet unet(micro_unet_config(), rng);
    const diffusion::NoiseSchedule schedule({64, 0.001f, 0.012f});
    diffusion::DdimConfig config;
    config.inference_steps = static_cast<int>(state.range(0));
    const diffusion::DdimSampler sampler(unet, schedule, config);
    const Tensor cond = Tensor::randn({3, 32}, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampler.sample({4, 8, 8}, cond, rng));
    }
}
BENCHMARK(BM_DdimSample)->Arg(4)->Arg(10);

void BM_FidComputation(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    util::Rng rng(8);
    const metrics::FeatureNet net;
    std::vector<image::Image> real;
    std::vector<image::Image> fake;
    for (int i = 0; i < n; ++i) {
        image::Image a(32, 32, {0.4f, 0.5f, 0.3f});
        image::Image b(32, 32, {0.45f, 0.45f, 0.35f});
        image::add_gaussian_noise(a, rng, 0.1f);
        image::add_gaussian_noise(b, rng, 0.1f);
        real.push_back(std::move(a));
        fake.push_back(std::move(b));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(metrics::fid(net, real, fake));
    }
}
BENCHMARK(BM_FidComputation)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
