// Memory-subsystem bench (DESIGN.md §17), self-gating like
// bench_continuous_batch:
//
//   1. Allocator overhead — full generations with the condition cache
//      cold (disabled), arena off vs arena on, best-of-3 per mode. The
//      arena must cost at most 5% over the plain heap path (in practice
//      it is neutral-to-faster once the free lists warm); the images
//      from both modes must be bitwise identical. Hard gates.
//   2. Condition-cache steady state — a 90%-repeat prompt mix (four hot
//      prompts + unique fillers) with the cache off vs on after a
//      warm-up pass. The hit rate must exceed 0.85 (hard gate); the
//      >= 1.3x throughput gate only arms when the condition stage is a
//      large enough share of a request for that target to be reachable
//      (pure-hit ceiling >= 1.5x) — on hosts/scales where sampling
//      dominates, the speedup is reported, not enforced.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mem/arena.hpp"
#include "mem/cache.hpp"

namespace {

using namespace aero;

struct Workload {
    std::vector<const scene::AerialSample*> samples;
    std::vector<const std::string*> captions;
};

/// 90%-repeat mix: slot i draws from `hot` hot prompts unless i lands
/// on the every-10th unique filler.
Workload repeat_mix(const bench::Harness& harness, int requests, int hot) {
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;
    Workload workload;
    for (int i = 0; i < requests; ++i) {
        const bool unique = i % 10 == 9;
        const std::size_t slot =
            unique ? static_cast<std::size_t>(hot + i / 10) % test.size()
                   : static_cast<std::size_t>(i) % static_cast<std::size_t>(hot);
        workload.samples.push_back(&test[slot]);
        workload.captions.push_back(&captions[slot % captions.size()].text);
    }
    return workload;
}

/// Runs every request in `workload` sequentially (deterministic, no
/// service noise) and returns the wall seconds; images land in *out.
double run_pass(const core::AeroDiffusionPipeline& pipeline,
                const Workload& workload, std::vector<image::Image>* out) {
    out->clear();
    obs::Stopwatch watch;
    for (std::size_t i = 0; i < workload.samples.size(); ++i) {
        util::Rng rng(0x9e3779b9ull + i);  // per-request determinism
        out->push_back(pipeline.generate(*workload.samples[i],
                                         *workload.captions[i],
                                         *workload.captions[i], rng,
                                         static_cast<int>(i % 4)));
    }
    return watch.seconds();
}

bool bitwise_equal(const std::vector<image::Image>& a,
                   const std::vector<image::Image>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].width() != b[i].width() || a[i].data() != b[i].data()) {
            return false;
        }
    }
    return true;
}

}  // namespace

int main() {
    using namespace aero;
    std::printf("=== mem: arena + condition cache (scale %d) ===\n",
                util::bench_scale());
    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);

    const int requests = std::max(16, 10 * util::bench_scale());
    const Workload mix = repeat_mix(harness, requests, /*hot=*/4);
    util::JsonValue results = util::JsonValue::object();
    std::vector<std::vector<std::string>> rows;

    // ---- 1. allocator overhead (cache cold on both sides) -------------
    // Modes are interleaved per round and scored by their best round, so
    // slow drift (thermal, co-tenants) hits both sides equally; the
    // off-mode round spread doubles as a host-noise estimate for the
    // 5% gate below.
    mem::set_cond_cache_enabled(false);
    std::vector<double> off_rounds;
    std::vector<double> on_rounds;
    std::vector<image::Image> off_images;
    std::vector<image::Image> on_images;
    for (int round = 0; round < 5; ++round) {
        mem::Arena::set_enabled(false);
        off_rounds.push_back(run_pass(pipeline, mix, &off_images));
        mem::Arena::set_enabled(true);
        on_rounds.push_back(run_pass(pipeline, mix, &on_images));
    }
    if (!bitwise_equal(off_images, on_images)) {
        std::printf("BITWISE IDENTITY VIOLATION: arena on vs off\n");
        return 1;
    }
    const double arena_off_s =
        *std::min_element(off_rounds.begin(), off_rounds.end());
    const double arena_on_s =
        *std::min_element(on_rounds.begin(), on_rounds.end());
    const double overhead = arena_on_s / arena_off_s - 1.0;
    const double noise =
        *std::max_element(off_rounds.begin(), off_rounds.end()) /
            arena_off_s -
        1.0;
    const mem::ArenaStats arena = mem::Arena::instance().stats();
    rows.push_back({"arena off", bench::fmt(requests / arena_off_s, 2), "-",
                    "-"});
    rows.push_back({"arena on", bench::fmt(requests / arena_on_s, 2),
                    bench::fmt(overhead * 100.0, 1) + "%",
                    bench::fmt(arena.requests > 0
                                   ? static_cast<double>(arena.hits) /
                                         static_cast<double>(arena.requests)
                                   : 0.0,
                               3)});

    // ---- 2. condition-cache steady state on the 90%-repeat mix --------
    mem::Arena::set_enabled(true);
    mem::set_cond_cache_enabled(false);
    std::vector<image::Image> cold_images;
    const double cache_off_s = run_pass(pipeline, mix, &cold_images);

    mem::set_cond_cache_enabled(true);
    std::vector<image::Image> warmup;
    // Warm ONLY the hot prompts: the unique fillers must still miss in
    // the measured pass, or the reported hit rate overstates the mix.
    const Workload hot_set = repeat_mix(harness, 4, /*hot=*/4);
    run_pass(pipeline, hot_set, &warmup);
    const mem::CacheStats cache_before = mem::cache_stats();
    std::vector<image::Image> warm_images;
    const double cache_on_s = run_pass(pipeline, mix, &warm_images);
    const mem::CacheStats cache_after = mem::cache_stats();
    if (!bitwise_equal(cold_images, warm_images)) {
        std::printf("BITWISE IDENTITY VIOLATION: cache on vs off\n");
        return 1;
    }
    const long long hits = cache_after.hits - cache_before.hits;
    const long long lookups =
        hits + (cache_after.misses - cache_before.misses);
    const double hit_rate =
        lookups > 0 ? static_cast<double>(hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    const double speedup = cache_on_s > 0.0 ? cache_off_s / cache_on_s : 0.0;

    // Pure-hit ceiling: one miss vs one steady-state hit of the same
    // prompt bounds what ANY mix can gain on this host/scale.
    Workload solo = repeat_mix(harness, 1, 1);
    std::vector<image::Image> scratch;
    mem::set_cond_cache_enabled(false);
    const double t_miss = run_pass(pipeline, solo, &scratch);
    mem::set_cond_cache_enabled(true);
    run_pass(pipeline, solo, &scratch);  // prime
    const double t_hit = run_pass(pipeline, solo, &scratch);
    const double ceiling = t_hit > 0.0 ? t_miss / t_hit : 0.0;

    rows.push_back({"cache off (mix)", bench::fmt(requests / cache_off_s, 2),
                    "-", "-"});
    rows.push_back({"cache on (mix)", bench::fmt(requests / cache_on_s, 2),
                    bench::fmt(speedup, 2) + "x", bench::fmt(hit_rate, 3)});
    bench::print_table({"scenario", "req/s", "overhead/speedup",
                        "hit rate"},
                       rows);
    std::printf(
        "aero_alloc: requests %lld hits %lld misses %lld trims %lld "
        "resident %lld outstanding %lld\n",
        arena.requests, arena.hits, arena.misses, arena.trims,
        arena.resident_bytes, arena.outstanding_bytes);
    std::printf("aero_cache: hits %lld misses %lld insertions %lld "
                "evictions %lld entries %lld bytes %lld\n",
                cache_after.hits, cache_after.misses,
                cache_after.insertions, cache_after.evictions,
                cache_after.entries, cache_after.bytes);

    results.set("requests", util::JsonValue(static_cast<double>(requests)));
    results.set("arena_overhead", util::JsonValue(overhead));
    results.set("cache_speedup", util::JsonValue(speedup));
    results.set("cache_hit_rate", util::JsonValue(hit_rate));
    results.set("pure_hit_ceiling", util::JsonValue(ceiling));
    bench::record_results("bench_mem", results);

    // ---- gates --------------------------------------------------------
    // A 5% gate is only meaningful when the host's own run-to-run noise
    // is below it; on noisy hosts the overhead is reported, not
    // enforced (honest skip, same policy as the throughput gate).
    if (noise <= 0.05) {
        std::printf("gate: arena overhead %.1f%% vs ceiling 5.0%% "
                    "(host noise %.1f%%)\n",
                    overhead * 100.0, noise * 100.0);
        if (overhead > 0.05) {
            std::printf("GATE FAILED: arena costs more than 5%% over the "
                        "plain heap path\n");
            return 1;
        }
    } else {
        std::printf("gate skipped: host noise %.1f%% > 5%% — arena "
                    "overhead %.1f%% reported, not enforced\n",
                    noise * 100.0, overhead * 100.0);
    }
    std::printf("gate: cache hit rate %.3f vs floor 0.85\n", hit_rate);
    if (hit_rate <= 0.85) {
        std::printf("GATE FAILED: steady-state hit rate on the "
                    "90%%-repeat mix is %.3f\n", hit_rate);
        return 1;
    }
    if (ceiling >= 1.5) {
        std::printf("gate: cache speedup %.2fx vs floor 1.30x "
                    "(ceiling %.2fx)\n",
                    speedup, ceiling);
        if (speedup < 1.3) {
            std::printf("GATE FAILED: 90%%-repeat mix did not reach "
                        "1.3x with the cache on\n");
            return 1;
        }
    } else {
        std::printf("gate skipped: pure-hit ceiling %.2fx < 1.50x — the "
                    "condition stage is too small a share of a request "
                    "here; mix speedup %.2fx reported, not enforced\n",
                    ceiling, speedup);
    }
    std::printf("bitwise identity held for arena and cache on/off paths\n");
    return 0;
}
