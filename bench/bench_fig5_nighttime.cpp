// Figure 5 reproduction: nighttime image synthesis (the high-noise
// condition). A model trained on a day+night mixture generates images
// from nighttime captions; we check that the outputs reproduce the
// statistical signature of real night scenes -- low mean luminance with
// bright light blobs (headlights / street lights) -- and write samples.

#include <cstdio>

#include "bench_common.hpp"
#include "text/llm.hpp"

namespace {

using namespace aero;

struct NightStats {
    float luminance = 0.0f;
    int bright_blobs = 0;  ///< connected-ish bright pixels (light sources)
};

NightStats night_stats(const image::Image& img) {
    NightStats stats;
    stats.luminance = img.mean_luminance();
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const image::Color c = img.pixel(x, y);
            if (0.299f * c.r + 0.587f * c.g + 0.114f * c.b > 0.6f) {
                stats.bright_blobs++;
            }
        }
    }
    return stats;
}

}  // namespace

int main() {
    std::printf("=== Figure 5: nighttime synthesis (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;
    // Night-heavy training mixture so the model learns the conditions.
    bench::Harness harness = bench::build_harness(4077, /*night_fraction=*/0.5);

    util::Rng rng(555);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);
    pipeline.fit(rng);

    // Real night references for the statistical signature.
    std::vector<image::Image> real_night;
    std::vector<image::Image> real_day;
    for (const auto& sample : harness.dataset->test()) {
        if (sample.scene.time == scene::TimeOfDay::kNight) {
            real_night.push_back(sample.image);
        } else {
            real_day.push_back(sample.image);
        }
    }

    const std::string dir = bench::output_dir("fig5");
    const int cases = util::scaled(2, 3, 6);
    std::vector<std::vector<std::string>> table;
    int generated_cases = 0;
    double gen_lum = 0.0;
    double gen_blobs = 0.0;

    for (std::size_t i = 0;
         i < harness.dataset->test().size() &&
         generated_cases < cases;
         ++i) {
        const auto& sample = harness.dataset->test()[i];
        if (sample.scene.time != scene::TimeOfDay::kNight) continue;
        const std::string caption = harness.substrate.keypoint_test[i].text;

        util::Rng gen_rng(7000 + i);
        const image::Image generated = pipeline.generate(
            sample, caption, caption, gen_rng, static_cast<int>(i));
        image::write_ppm(sample.image,
                         dir + "/night" + std::to_string(generated_cases) +
                             "_real.ppm");
        image::write_ppm(generated,
                         dir + "/night" + std::to_string(generated_cases) +
                             "_generated.ppm");

        const NightStats real = night_stats(sample.image);
        const NightStats gen = night_stats(generated);
        gen_lum += gen.luminance;
        gen_blobs += gen.bright_blobs;
        table.push_back({std::to_string(generated_cases),
                         std::string(scene::scenario_name(sample.scene.kind)),
                         bench::fmt(real.luminance),
                         bench::fmt(gen.luminance),
                         std::to_string(real.bright_blobs),
                         std::to_string(gen.bright_blobs)});
        ++generated_cases;
    }

    if (generated_cases == 0) {
        std::printf("No night scenes in the test split (unexpected).\n");
        return 1;
    }
    gen_lum /= generated_cases;
    gen_blobs /= generated_cases;

    double day_lum = 0.0;
    for (const auto& img : real_day) day_lum += img.mean_luminance();
    if (!real_day.empty()) day_lum /= static_cast<double>(real_day.size());

    std::printf("\n");
    bench::print_table({"case", "scenario", "real lum", "gen lum",
                        "real bright px", "gen bright px"},
                       table);
    std::printf("\nImages written to %s/\n", dir.c_str());
    std::printf("\nReal day luminance average: %.3f\n", day_lum);
    std::printf("Generated night luminance average: %.3f\n", gen_lum);

    const bool dark = real_day.empty() || gen_lum < day_lum * 0.8;
    std::printf("\nShape vs paper (night generations darker than day "
                "scenes, with light sources): %s\n",
                dark ? "HOLDS" : "VIOLATED");
    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return dark ? 0 : 1;
}
