// Table IV reproduction: component ablation. Starting from a fine-tuned
// Stable-Diffusion-style text-conditioned model, components are added
// one at a time -- BLIP deep fusion, keypoint-aware captions ("Our
// LLMs"), and object detection / region augmentation (OD) -- and each
// row is trained with an identical budget and scored with the Table-I
// metrics. The paper's shape: FID improves monotonically down the table
// (132.60 -> 119.13 -> 108.23 -> 78.15).

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using namespace aero;

    std::printf("=== Table IV: ablation study (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;
    bench::Harness harness = bench::build_harness(2025);

    struct RowSpec {
        bool our_llm;
        bool od;
        bool blip;
        std::string label;
    };
    const std::vector<RowSpec> specs = {
        {false, false, false, "base (fine-tuned SD)"},
        {false, false, true, "+ BLIP"},
        {true, false, true, "+ Our LLMs + BLIP"},
        {true, true, true, "+ Our LLMs + OD + BLIP (full)"},
    };

    struct Row {
        RowSpec spec;
        metrics::SynthesisScores scores;
    };
    std::vector<Row> rows;

    util::Rng rng(4242);
    for (const RowSpec& spec : specs) {
        obs::Stopwatch timer;
        core::PipelineConfig config =
            core::PipelineConfig::ablation(spec.blip, spec.our_llm, spec.od);
        config.name = spec.label;
        util::Rng model_rng = rng.fork(std::hash<std::string>{}(spec.label));
        baselines::PipelineModel model(config, harness.substrate, model_rng);
        model.fit(model_rng);
        util::Rng gen_rng = model_rng.fork(3);
        const auto generated =
            bench::generate_eval_set(model, harness, gen_rng);
        rows.push_back({spec, bench::score_eval_set(harness, generated)});
        std::printf("  [%s] done in %.1fs (FID %.2f)\n", spec.label.c_str(),
                    timer.seconds(), rows.back().scores.fid);
    }

    std::printf("\n");
    std::vector<std::vector<std::string>> table;
    for (const Row& row : rows) {
        table.push_back({row.spec.our_llm ? "x" : "-",
                         row.spec.od ? "x" : "-",
                         row.spec.blip ? "x" : "-",
                         bench::fmt(row.scores.fid),
                         bench::fmt(row.scores.psnr),
                         bench::fmt(row.scores.kid, 4)});
    }
    bench::print_table(
        {"Our LLMs", "OD", "BLIP", "FID (down)", "PSNR (up)", "KID (down)"},
        table);

    // Shape checks. The paper's core ablation claim is that the full
    // model beats the base by a wide margin; with single-seed training
    // and small-n FID the per-row ordering carries ~0.1 noise, so "best
    // tier" (within 10% of the best row) is the honest strict check.
    const double base_fid = rows[0].scores.fid;
    const double full_fid = rows[3].scores.fid;
    double best_fid = full_fid;
    bool full_best = true;
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        best_fid = std::min(best_fid, rows[i].scores.fid);
        full_best = full_best && full_fid < rows[i].scores.fid;
    }
    const bool full_best_tier = full_fid <= best_fid * 1.10;
    const bool improves = full_fid < base_fid;
    std::printf("\nShape vs paper:\n");
    std::printf("  Full model strictly best FID: %s (paper: 78.15 best)\n",
                full_best ? "HOLDS" : "VIOLATED");
    std::printf("  Full model in best FID tier:  %s (within 10%% of best)\n",
                full_best_tier ? "HOLDS" : "VIOLATED");
    std::printf("  Full improves over base:      %s by %.1f%% "
                "(paper: 132.60 -> 78.15, 41%%)\n",
                improves ? "HOLDS" : "VIOLATED",
                100.0 * (1.0 - full_fid / base_fid));
    util::JsonValue payload = util::JsonValue::object();
    util::JsonValue json_rows = util::JsonValue::array();
    for (const Row& row : rows) {
        util::JsonValue r = util::JsonValue::object();
        r.set("label", row.spec.label)
            .set("our_llms", row.spec.our_llm)
            .set("od", row.spec.od)
            .set("blip", row.spec.blip)
            .set("fid", row.scores.fid)
            .set("psnr", row.scores.psnr)
            .set("kid", row.scores.kid);
        json_rows.push(std::move(r));
    }
    payload.set("table", "IV").set("rows", std::move(json_rows));
    bench::record_results("table4_ablation", payload);

    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return (full_best_tier && improves) ? 0 : 1;
}
