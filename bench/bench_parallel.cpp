// Intra-op parallelism bench (DESIGN.md §11): serial vs multi-threaded
// timings for the pool-backed kernels, from a single matmul up through a
// full DDIM sample and a small serving run. For every compute workload
// the multi-threaded output is asserted BITWISE identical to the serial
// one — the speedup table is only meaningful if the determinism contract
// holds. Thread counts beyond the machine's core count are still
// measured (and reported honestly); on a 1-core host every speedup
// column is expected to hover at or below 1.0x.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet.hpp"
#include "serve/service.hpp"
#include "tensor/ops.hpp"
#include "obs/clock.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace aero;
using tensor::Tensor;

/// Thread counts swept by every workload: serial baseline, then powers
/// of two up to the pool default (always including the default itself,
/// so AERO_THREADS shows up as a row even when it is not a power of 2).
std::vector<int> thread_counts() {
    std::vector<int> counts{1, 2, 4};
    const int dflt = util::ThreadPool::default_threads();
    if (std::find(counts.begin(), counts.end(), dflt) == counts.end()) {
        counts.push_back(dflt);
    }
    std::sort(counts.begin(), counts.end());
    return counts;
}

/// Best-of-`iters` wall time in milliseconds. Best-of (not mean) because
/// the quantity of interest is the kernel cost, not scheduler noise.
template <typename Fn>
double time_best_ms(int iters, Fn&& fn) {
    double best = 0.0;
    for (int i = 0; i < iters; ++i) {
        obs::Stopwatch watch;
        fn();
        const double ms = watch.seconds() * 1000.0;
        if (i == 0 || ms < best) best = ms;
    }
    return best;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
    return a.same_shape(b) &&
           std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<std::size_t>(a.size())) ==
               0;
}

struct WorkloadRow {
    std::string name;
    std::vector<double> ms;        ///< per thread count
    std::vector<double> speedup;   ///< serial_ms / ms
    bool deterministic = true;
};

/// Times `compute` at every thread count and checks each result against
/// the serial one.
template <typename Fn>
WorkloadRow run_workload(const std::string& name, int iters, Fn compute) {
    WorkloadRow row;
    row.name = name;
    util::ThreadPool& pool = util::ThreadPool::instance();
    Tensor reference;
    for (const int threads : thread_counts()) {
        pool.resize(threads);
        Tensor result;
        row.ms.push_back(time_best_ms(iters, [&] { result = compute(); }));
        if (threads == 1) {
            reference = result;
        } else if (!bitwise_equal(reference, result)) {
            row.deterministic = false;
        }
        row.speedup.push_back(row.ms.front() / std::max(row.ms.back(), 1e-9));
    }
    pool.resize(util::ThreadPool::default_threads());
    return row;
}

/// p50/p99 of a tiny clean serve run at the current pool size. The
/// service's own workers stay fixed; only the shared intra-op pool
/// changes, which is exactly the no-oversubscription story §11 tells.
struct ServePoint {
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    return values[lo] + (values[hi] - values[lo]) *
                            (rank - static_cast<double>(lo));
}

ServePoint run_serve(const bench::Harness& harness,
                     const core::AeroDiffusionPipeline& pipeline,
                     int requests) {
    serve::ServiceConfig config;
    config.workers = 2;
    config.queue_capacity = static_cast<std::size_t>(requests);
    serve::InferenceService service(pipeline, config);
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;

    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        const std::size_t slot = static_cast<std::size_t>(i) % test.size();
        serve::InferenceRequest request;
        request.task = serve::TaskKind::kGenerate;
        request.reference = test[slot];
        request.source_caption = captions[slot].text;
        request.target_caption = captions[slot].text;
        request.seed = 0xaeb0 + static_cast<std::uint64_t>(i);
        futures.push_back(service.submit(std::move(request)));
    }
    std::vector<double> latencies;
    latencies.reserve(futures.size());
    for (auto& future : futures) {
        latencies.push_back(future.get().latency_ms);
    }
    service.stop();
    return {percentile(latencies, 0.50), percentile(latencies, 0.99)};
}

}  // namespace

int main() {
    std::printf("=== Intra-op parallelism: serial vs pooled (scale %d) ===\n",
                util::bench_scale());
    const std::vector<int> counts = thread_counts();
    const int iters = util::scaled(2, 5, 9);

    // --- compute workloads --------------------------------------------------
    util::Rng rng(41);
    const int mm = util::scaled(96, 256, 512);
    const Tensor a = Tensor::randn({mm, mm}, rng);
    const Tensor b = Tensor::randn({mm, mm}, rng);

    diffusion::UNetConfig unet_config;
    unet_config.in_channels = 4;
    unet_config.base_channels = util::scaled(8, 16, 24);
    unet_config.cond_dim = 16;
    unet_config.heads = 2;
    unet_config.time_dim = 16;
    unet_config.groups = 2;
    const diffusion::UNet unet(unet_config, rng);
    const int side = util::scaled(8, 16, 24);
    const Tensor latent = Tensor::randn({4, side, side}, rng);
    const Tensor cond = Tensor::randn({3, 16}, rng);

    const diffusion::NoiseSchedule schedule({32, 0.0008f, 0.02f, 32});
    diffusion::DdimConfig ddim;
    ddim.inference_steps = util::scaled(4, 8, 12);
    ddim.guidance_scale = 1.0f;
    const diffusion::DdimSampler sampler(unet, schedule, ddim);

    std::vector<WorkloadRow> rows;
    rows.push_back(run_workload("matmul " + std::to_string(mm) + "^3", iters,
                                [&] { return tensor::matmul(a, b); }));
    rows.push_back(run_workload("unet denoise step", iters, [&] {
        return unet.denoise(latent, 16, 32, cond);
    }));
    rows.push_back(run_workload("ddim sample e2e", std::max(1, iters / 2),
                                [&] {
                                    util::Rng noise(97);
                                    return sampler.sample({4, side, side},
                                                          cond, noise);
                                }));

    // --- serve p50/p99 at serial vs default pool ---------------------------
    bench::Harness harness = bench::build_harness(2025);
    util::Rng pipeline_rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate,
        pipeline_rng);
    const int requests = 8 * std::max(1, util::bench_scale());
    util::ThreadPool& pool = util::ThreadPool::instance();
    pool.resize(1);
    const ServePoint serve_serial = run_serve(harness, pipeline, requests);
    pool.resize(util::ThreadPool::default_threads());
    const ServePoint serve_pooled = run_serve(harness, pipeline, requests);

    // --- report -------------------------------------------------------------
    std::vector<std::string> header{"workload"};
    for (const int threads : counts) {
        header.push_back(std::to_string(threads) + "T ms");
        if (threads > 1) header.push_back(std::to_string(threads) + "T x");
    }
    header.push_back("bitwise");
    std::vector<std::vector<std::string>> table;
    bool all_deterministic = true;
    for (const WorkloadRow& row : rows) {
        std::vector<std::string> cells{row.name};
        for (std::size_t i = 0; i < row.ms.size(); ++i) {
            cells.push_back(bench::fmt(row.ms[i], 3));
            if (counts[i] > 1) cells.push_back(bench::fmt(row.speedup[i], 2));
        }
        cells.push_back(row.deterministic ? "ok" : "DIFFERS");
        all_deterministic = all_deterministic && row.deterministic;
        table.push_back(std::move(cells));
    }
    bench::print_table(header, table);
    std::printf("serve p50/p99 ms: serial %s/%s -> pooled(%d) %s/%s\n",
                bench::fmt(serve_serial.p50_ms, 1).c_str(),
                bench::fmt(serve_serial.p99_ms, 1).c_str(),
                util::ThreadPool::default_threads(),
                bench::fmt(serve_pooled.p50_ms, 1).c_str(),
                bench::fmt(serve_pooled.p99_ms, 1).c_str());

    util::JsonValue results = util::JsonValue::object();
    util::JsonValue threads_json = util::JsonValue::array();
    for (const int threads : counts) {
        threads_json.push(
            util::JsonValue(static_cast<double>(threads)));
    }
    results.set("thread_counts", threads_json);
    results.set("hardware_threads",
                util::JsonValue(static_cast<double>(
                    util::ThreadPool::default_threads())));
    for (const WorkloadRow& row : rows) {
        util::JsonValue entry = util::JsonValue::object();
        util::JsonValue ms = util::JsonValue::array();
        util::JsonValue speedup = util::JsonValue::array();
        for (std::size_t i = 0; i < row.ms.size(); ++i) {
            ms.push(util::JsonValue(row.ms[i]));
            speedup.push(util::JsonValue(row.speedup[i]));
        }
        entry.set("ms", ms);
        entry.set("speedup", speedup);
        entry.set("bitwise_identical", util::JsonValue(row.deterministic));
        results.set(row.name, entry);
    }
    util::JsonValue serve_json = util::JsonValue::object();
    serve_json.set("serial_p50_ms", util::JsonValue(serve_serial.p50_ms));
    serve_json.set("serial_p99_ms", util::JsonValue(serve_serial.p99_ms));
    serve_json.set("pooled_p50_ms", util::JsonValue(serve_pooled.p50_ms));
    serve_json.set("pooled_p99_ms", util::JsonValue(serve_pooled.p99_ms));
    results.set("serve", serve_json);
    bench::record_results("bench_parallel", results);

    if (!all_deterministic) {
        std::printf("DETERMINISM VIOLATION: pooled output differs from "
                    "serial\n");
        return 1;
    }
    std::printf("all pooled outputs bitwise-identical to serial\n");
    return 0;
}
