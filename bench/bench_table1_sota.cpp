// Table I reproduction: FID / PSNR / KID of DDPM, Stable Diffusion,
// ARLDM, Versatile Diffusion, Make-a-Scene and AeroDiffusion on the
// synthetic aerial dataset. All conditional models share the same
// pretrained substrate and training budget, so differences isolate what
// conditioning information reaches the denoiser -- the axis the paper's
// comparison varies. Absolute values differ from the paper (different
// substrate and scale); the reported shape is who wins and by how much.

#include <cstdio>

#include "bench_common.hpp"
#include "util/log.hpp"

int main() {
    using namespace aero;

    std::printf("=== Table I: SOTA comparison (scale %d) ===\n",
                util::bench_scale());
    obs::Stopwatch total;

    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(31337);
    auto models = baselines::make_table1_models(harness.substrate, rng);

    struct Row {
        std::string name;
        metrics::SynthesisScores scores;
    };
    std::vector<Row> rows;

    for (auto& model : models) {
        obs::Stopwatch timer;
        util::Rng fit_rng = rng.fork(std::hash<std::string>{}(model->name()));
        model->fit(fit_rng);
        util::Rng gen_rng = fit_rng.fork(99);
        const auto generated =
            bench::generate_eval_set(*model, harness, gen_rng);
        rows.push_back({model->name(),
                        bench::score_eval_set(harness, generated)});
        std::printf("  [%s] done in %.1fs  (FID %.2f, PSNR %.2f, KID %.4f)\n",
                    model->name().c_str(), timer.seconds(),
                    rows.back().scores.fid, rows.back().scores.psnr,
                    rows.back().scores.kid);

        // Keep a few sample images for qualitative inspection.
        const std::string dir = bench::output_dir("table1");
        util::Rng img_rng = fit_rng.fork(7);
        const auto sample = model->generate(harness.dataset->test()[0], 0,
                                            img_rng);
        image::write_ppm(sample, dir + "/" + model->name() + ".ppm");
    }

    // Baseline average row (paper reports it over the five baselines).
    metrics::SynthesisScores average;
    for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        average.fid += rows[i].scores.fid;
        average.psnr += rows[i].scores.psnr;
        average.kid += rows[i].scores.kid;
    }
    const double n_baselines = static_cast<double>(rows.size() - 1);
    average.fid /= n_baselines;
    average.psnr /= n_baselines;
    average.kid /= n_baselines;

    std::printf("\n");
    std::vector<std::vector<std::string>> table;
    for (const Row& row : rows) {
        if (row.name == "AeroDiffusion") {
            table.push_back({"Average (baselines)", bench::fmt(average.fid),
                             bench::fmt(average.psnr),
                             bench::fmt(average.kid, 4)});
        }
        table.push_back({row.name, bench::fmt(row.scores.fid),
                         bench::fmt(row.scores.psnr),
                         bench::fmt(row.scores.kid, 4)});
    }
    bench::print_table({"Models", "FID (down)", "PSNR (up)", "KID (down)"},
                       table);

    // Shape checks against the paper's Table I.
    const auto find = [&](const std::string& name) -> const Row& {
        for (const Row& row : rows) {
            if (row.name == name) return row;
        }
        return rows.front();
    };
    const Row& aero = find("AeroDiffusion");
    const Row& ddpm = find("DDPM");
    bool best_fid = true;
    bool best_kid = true;
    for (const Row& row : rows) {
        if (row.name == "AeroDiffusion") continue;
        best_fid = best_fid && aero.scores.fid < row.scores.fid;
        best_kid = best_kid && aero.scores.kid <= row.scores.kid + 1e-6;
    }
    const bool ddpm_worst_fid =
        ddpm.scores.fid >= aero.scores.fid &&
        ddpm.scores.fid > average.fid * 0.99;
    const double fid_reduction =
        100.0 * (1.0 - aero.scores.fid / average.fid);
    // Robust variant of the headline: with single-seed training and
    // small-n FID, per-model ordering carries noise; beating the
    // baseline average is the stable form of the paper's claim.
    const bool beats_average = aero.scores.fid < average.fid;

    std::printf("\nShape vs paper:\n");
    std::printf("  AeroDiffusion best FID:            %s (paper: 78.15 best)\n",
                best_fid ? "HOLDS" : "VIOLATED");
    std::printf("  AeroDiffusion best/tied KID:       %s (paper: 0.04 best)\n",
                best_kid ? "HOLDS" : "VIOLATED");
    std::printf("  DDPM worst-tier FID:               %s (paper: 217.95 worst)\n",
                ddpm_worst_fid ? "HOLDS" : "VIOLATED");
    std::printf("  AeroDiffusion beats baseline avg:  %s "
                "(robust form of the headline claim)\n",
                beats_average ? "HOLDS" : "VIOLATED");
    std::printf("  FID reduction vs baseline average: %.1f%% (paper: 43.2%%)\n",
                fid_reduction);
    std::printf("  DDPM PSNR vs AeroDiffusion:        %.2f vs %.2f "
                "(paper: 10.38 vs 5.98)\n",
                ddpm.scores.psnr, aero.scores.psnr);
    std::printf(
        "    note: at 512x512 no model aligns pixel-wise with the\n"
        "    reference, so the paper's PSNR column rewards DDPM's smooth\n"
        "    pixel-space output; at our 32x32 scale the image-conditioned\n"
        "    models DO align with their reference, so the PSNR ordering\n"
        "    inverts (documented deviation, see EXPERIMENTS.md).\n");
    // Machine-readable record.
    util::JsonValue payload = util::JsonValue::object();
    util::JsonValue json_rows = util::JsonValue::array();
    for (const Row& row : rows) {
        util::JsonValue r = util::JsonValue::object();
        r.set("model", row.name)
            .set("fid", row.scores.fid)
            .set("psnr", row.scores.psnr)
            .set("kid", row.scores.kid);
        json_rows.push(std::move(r));
    }
    payload.set("table", "I").set("rows", std::move(json_rows));
    payload.set("fid_reduction_vs_average_pct", fid_reduction);
    payload.set("aero_best_fid", best_fid);
    payload.set("ddpm_worst_fid", ddpm_worst_fid);
    bench::record_results("table1_sota", payload);

    std::printf("\nTotal time: %.1fs\n", total.seconds());
    return (beats_average && ddpm_worst_fid) ? 0 : 1;
}
