// Continuous-batching bench: closed-burst throughput and p99 latency
// at 1 / 4 / 16 / 64 concurrent streams, batched (workers hand their
// sampling loops to the step batcher) versus sequential (batching
// disabled, inline sampling per worker). Every run's images are
// compared bitwise across the two modes — the batcher's core contract
// — and that identity is a hard gate at every stream count. The
// throughput gate (>= 1.5x at 16 streams) only arms on hosts with at
// least 4 cores: a single-core host serializes the denoiser's inner
// kernels either way, so the batch can only amortise bookkeeping and
// the speedup there is reported, not enforced.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/service.hpp"

namespace {

using namespace aero;

double percentile(std::vector<double> values, double p) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

struct RunReport {
    std::vector<image::Image> images;  ///< by request index
    std::vector<double> latencies;
    double wall_s = 0.0;
    long long ok = 0;
    double throughput() const {
        return wall_s > 0.0 ? static_cast<double>(ok) / wall_s : 0.0;
    }
};

serve::InferenceRequest make_request(const bench::Harness& harness, int i) {
    const auto& test = harness.dataset->test();
    const auto& captions = harness.substrate.keypoint_test;
    const std::size_t slot = static_cast<std::size_t>(i) % test.size();
    serve::InferenceRequest request;
    request.reference = test[slot];
    request.source_caption = captions[slot % captions.size()].text;
    request.target_caption = request.source_caption;
    request.seed = 0xba7c4 + static_cast<std::uint64_t>(i);
    return request;
}

/// Submits `requests` jobs in one closed burst and waits for all of
/// them. `streams` sets both the worker count and (batched mode) the
/// batch capacity.
RunReport run_burst(const bench::Harness& harness,
                    const core::AeroDiffusionPipeline& pipeline, int streams,
                    int requests, bool batched) {
    serve::ServiceConfig config;
    config.workers = streams;
    config.queue_capacity = static_cast<std::size_t>(requests);
    config.limits.image_size = harness.budget.image_size;
    config.rate_limit = util::RateLimitConfig{};  // bench pins its own knobs
    config.batch.enabled = batched;
    config.batch.batch_max = streams;
    serve::InferenceService service(pipeline, config);

    obs::Stopwatch watch;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    for (int i = 0; i < requests; ++i) {
        futures.push_back(service.submit(make_request(harness, i)));
    }
    RunReport report;
    for (auto& future : futures) {
        serve::RequestResult result = future.get();
        report.latencies.push_back(result.latency_ms);
        if (result.outcome == serve::Outcome::kOk) ++report.ok;
        report.images.push_back(std::move(result.image));
    }
    report.wall_s = watch.seconds();
    service.stop();
    return report;
}

bool bitwise_equal(const image::Image& a, const image::Image& b) {
    return a.width() == b.width() && a.height() == b.height() &&
           a.data() == b.data();
}

}  // namespace

int main() {
    using namespace aero;
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf(
        "=== Continuous step batching: stream sweep (scale %d, %u cores) "
        "===\n",
        util::bench_scale(), cores);
    serve::set_batching_enabled(true);  // the bench is about the batcher
    bench::Harness harness = bench::build_harness(2025);
    util::Rng rng(7);
    const core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), harness.substrate, rng);

    util::JsonValue results = util::JsonValue::object();
    std::vector<std::vector<std::string>> rows;
    double speedup_at_16 = 0.0;
    for (const int streams : {1, 4, 16, 64}) {
        const int requests =
            std::max(8, 2 * streams) * std::max(1, util::bench_scale());
        const RunReport sequential =
            run_burst(harness, pipeline, streams, requests, false);
        const RunReport batched =
            run_burst(harness, pipeline, streams, requests, true);

        // The hard gate at every scale: identical requests, identical
        // bits, whatever the interleaving of joins and retirements was.
        if (sequential.ok != requests || batched.ok != requests) {
            std::printf("UNEXPECTED NON-OK OUTCOMES at %d streams: "
                        "sequential %lld/%d, batched %lld/%d\n",
                        streams, sequential.ok, requests, batched.ok,
                        requests);
            return 1;
        }
        for (int i = 0; i < requests; ++i) {
            if (!bitwise_equal(sequential.images[static_cast<std::size_t>(i)],
                               batched.images[static_cast<std::size_t>(i)])) {
                std::printf("BITWISE IDENTITY VIOLATION at %d streams, "
                            "request %d\n",
                            streams, i);
                return 1;
            }
        }

        const double speedup =
            sequential.throughput() > 0.0
                ? batched.throughput() / sequential.throughput()
                : 0.0;
        if (streams == 16) speedup_at_16 = speedup;
        rows.push_back({std::to_string(streams),
                        bench::fmt(sequential.throughput(), 2),
                        bench::fmt(percentile(sequential.latencies, 0.99), 1),
                        bench::fmt(batched.throughput(), 2),
                        bench::fmt(percentile(batched.latencies, 0.99), 1),
                        bench::fmt(speedup, 2) + "x"});

        util::JsonValue entry = util::JsonValue::object();
        entry.set("requests", util::JsonValue(static_cast<double>(requests)));
        entry.set("sequential_per_s",
                  util::JsonValue(sequential.throughput()));
        entry.set("sequential_p99_ms",
                  util::JsonValue(percentile(sequential.latencies, 0.99)));
        entry.set("batched_per_s", util::JsonValue(batched.throughput()));
        entry.set("batched_p99_ms",
                  util::JsonValue(percentile(batched.latencies, 0.99)));
        entry.set("speedup", util::JsonValue(speedup));
        results.set(std::to_string(streams) + "_streams", entry);
    }

    bench::print_table({"streams", "seq req/s", "seq p99 ms", "batch req/s",
                        "batch p99 ms", "speedup"},
                       rows);
    results.set("cores", util::JsonValue(static_cast<double>(cores)));
    results.set("speedup_at_16", util::JsonValue(speedup_at_16));
    bench::record_results("bench_continuous_batch", results);

    // Throughput gate: only meaningful with real parallel headroom.
    if (cores >= 4) {
        std::printf("gate: speedup@16 streams %.2fx vs floor 1.50x\n",
                    speedup_at_16);
        if (speedup_at_16 < 1.5) {
            std::printf("GATE FAILED: continuous batching did not reach "
                        "1.5x at 16 streams\n");
            return 1;
        }
    } else {
        std::printf("gate skipped: %u core(s) < 4 — speedup@16 %.2fx "
                    "reported, not enforced\n",
                    cores, speedup_at_16);
    }
    std::printf("bitwise identity held at every stream count\n");
    return 0;
}
