// Figure 1 reproduction: object-density comparison between a classical
// image-synthesis dataset (1-2 large subjects per image, FlintStones-
// like) and the aerial dataset (VisDrone-like, ~20-90 small objects per
// image). Prints per-dataset statistics and an object-count histogram.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "scene/generator.hpp"

namespace {

using namespace aero;

struct Stats {
    int min = 0;
    int max = 0;
    double mean = 0.0;
};

Stats summarize(const std::vector<int>& counts) {
    Stats s;
    s.min = *std::min_element(counts.begin(), counts.end());
    s.max = *std::max_element(counts.begin(), counts.end());
    double total = 0.0;
    for (int c : counts) total += c;
    s.mean = total / static_cast<double>(counts.size());
    return s;
}

void print_histogram(const char* title, const std::vector<int>& counts,
                     int bucket_width) {
    std::printf("\n%s\n", title);
    const int max_count = *std::max_element(counts.begin(), counts.end());
    const int buckets = max_count / bucket_width + 1;
    std::vector<int> histogram(static_cast<std::size_t>(buckets), 0);
    for (int c : counts) {
        histogram[static_cast<std::size_t>(c / bucket_width)]++;
    }
    const int peak = *std::max_element(histogram.begin(), histogram.end());
    for (int b = 0; b < buckets; ++b) {
        const int h = histogram[static_cast<std::size_t>(b)];
        if (h == 0) continue;
        const int bars = std::max(1, h * 40 / std::max(peak, 1));
        std::printf("  %3d-%3d | %s %d\n", b * bucket_width,
                    (b + 1) * bucket_width - 1,
                    std::string(static_cast<std::size_t>(bars), '#').c_str(),
                    h);
    }
}

}  // namespace

int main() {
    const int scenes = util::scaled(64, 512, 1024);
    util::Rng rng(11);

    std::vector<int> aerial_counts;
    std::vector<int> per_class(scene::kNumObjectClasses, 0);
    for (int i = 0; i < scenes; ++i) {
        const scene::Scene s = scene::generate_random_scene(rng, i);
        aerial_counts.push_back(static_cast<int>(s.objects.size()));
        for (const auto& obj : s.objects) {
            per_class[static_cast<std::size_t>(obj.cls)]++;
        }
    }
    std::vector<int> classical_counts;
    for (int i = 0; i < scenes; ++i) {
        classical_counts.push_back(static_cast<int>(
            scene::generate_classical_scene(rng, i).objects.size()));
    }

    const Stats aerial = summarize(aerial_counts);
    const Stats classical = summarize(classical_counts);

    std::printf("=== Figure 1: dataset object-density comparison ===\n");
    std::printf("(%d scenes per dataset)\n\n", scenes);
    bench::print_table(
        {"Dataset", "objects/image (min)", "mean", "max"},
        {{"Classical (FlintStones-like)", std::to_string(classical.min),
          bench::fmt(classical.mean), std::to_string(classical.max)},
         {"Aerial (VisDrone-like)", std::to_string(aerial.min),
          bench::fmt(aerial.mean), std::to_string(aerial.max)}});

    print_histogram("Aerial objects-per-image histogram:", aerial_counts, 10);
    print_histogram("Classical objects-per-image histogram:",
                    classical_counts, 1);

    std::printf("\nAerial per-class totals:\n");
    for (int c = 0; c < scene::kNumObjectClasses; ++c) {
        std::printf("  %-16s %d\n",
                    scene::class_plural(static_cast<scene::ObjectClass>(c))
                        .c_str(),
                    per_class[static_cast<std::size_t>(c)]);
    }

    const bool shape_holds = aerial.min >= 15 && aerial.max <= 95 &&
                             classical.max <= 2 && aerial.mean > 10.0 * classical.mean;
    std::printf("\nPaper shape (aerial ~20-90 vs classical 1-2): %s\n",
                shape_holds ? "HOLDS" : "VIOLATED");
    return shape_holds ? 0 : 1;
}
