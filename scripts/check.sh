#!/usr/bin/env bash
# Full gate: tier-1, one sanitizer pass, and static analysis.
#
#   1. Plain Release build, full ctest suite        (build-check/)
#   2. Sanitizer build, full ctest suite            (build-san-*/)
#      AERO_CHECK_SANITIZE picks the sanitizer list; the default
#      address,undefined catches memory bugs in the fuzz/validation
#      paths and is followed by a TSan pass over the concurrent
#      obs/serve suites (TSan cannot be combined with ASan, hence two
#      builds). Set AERO_CHECK_SANITIZE=thread to race-check the full
#      concurrency-heavy suite list instead.
#   3. scripts/analyze.sh                           (build-analyze/)
#      Strict -Werror build, clang-tidy when available, aero_lint.
#      The analyze build dir is cached across runs, so repeat
#      invocations only pay for incremental compilation.
#
# Usage: scripts/check.sh [extra ctest args...]
#   Set AERO_CHECK_ANALYZE=0 to skip stage 3 (e.g. in a sanitizer-only
#   sweep where another job runs the analysis).

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE="${AERO_CHECK_SANITIZE:-address,undefined}"
JOBS="${AERO_CHECK_JOBS:-$(nproc)}"

echo "== tier-1: plain build + full test suite =="
cmake -B build-check -S . >/dev/null
cmake --build build-check -j "${JOBS}"
(cd build-check && ctest --output-on-failure -j "${JOBS}" "$@")

echo "== sanitizer pass: AERO_SANITIZE=${SANITIZE} =="
SAN_DIR="build-san-${SANITIZE//,/-}"
cmake -B "${SAN_DIR}" -S . -DAERO_SANITIZE="${SANITIZE}" >/dev/null
cmake --build "${SAN_DIR}" -j "${JOBS}"
if [ "${SANITIZE}" = "thread" ]; then
    # TSan run targets the concurrency-heavy suites; the single-threaded
    # suites add nothing under TSan but cost a full instrumented run.
    # test_parallel/test_diffusion exercise the intra-op thread pool
    # (DESIGN.md §11) from kernels up through full DDIM sampling;
    # test_obs races metric writers, span recording and live dumps
    # against the fault-injected service (DESIGN.md §12);
    # test_router races dispatchers, hedges and the replica-lifecycle
    # supervisor through crash/restart chaos (DESIGN.md §13);
    # test_overload races the admission controller, priority queues and
    # the overload_spike/replica_slow chaos soak (DESIGN.md §14);
    # test_sync races the runtime lock-order validator and pins its
    # consistent-order path TSan-clean (DESIGN.md §15);
    # test_batch races worker threads against the continuous step
    # batcher's driver thread, including a shutdown-drain stress
    # (DESIGN.md §16);
    # test_mem races the arena's bucket free lists / trim path from
    # multiple threads and the condition cache through the threaded
    # serve stack (DESIGN.md §17).
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" \
        -R 'test_serve|test_batch|test_router|test_overload|test_util|test_parallel|test_diffusion|test_obs|test_sync|test_mem' \
        "$@")
else
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" "$@")
    # The observability fast paths are lock-free atomics: memory
    # sanitizers cannot see ordering bugs there, so always race-check
    # the obs + serve suites under TSan as well.
    echo "== sanitizer pass: AERO_SANITIZE=thread (obs/serve) =="
    cmake -B build-san-thread -S . -DAERO_SANITIZE=thread >/dev/null
    cmake --build build-san-thread -j "${JOBS}"
    (cd build-san-thread && ctest --output-on-failure -j "${JOBS}" \
        -R 'test_obs|test_serve|test_batch|test_router|test_overload|test_sync|test_mem' "$@")
fi

# Opt-in bench gates (AERO_CHECK_BENCH=1): self-gating benches whose
# exit code enforces a floor. bench_continuous_batch asserts bitwise
# identity between the batched and sequential serve paths at every
# stream count, and >= 1.5x throughput at 16 streams on >= 4-core
# hosts. bench_mem asserts bitwise identity for the arena and
# condition-cache on/off paths, <= 5% arena overhead with a cold cache
# (skipped with a report when host noise exceeds the gate), > 0.85
# steady-state hit rate on the 90%-repeat prompt mix, and >= 1.3x mix
# throughput when the condition stage is a big enough share of a
# request for that to be reachable.
if [ "${AERO_CHECK_BENCH:-0}" != "0" ]; then
    echo "== bench gates =="
    ./build-check/bench/bench_continuous_batch
    ./build-check/bench/bench_mem
fi

if [ "${AERO_CHECK_ANALYZE:-1}" != "0" ]; then
    echo "== static analysis =="
    scripts/analyze.sh
fi

echo "== all checks passed =="
