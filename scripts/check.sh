#!/usr/bin/env bash
# Tier-1 gate plus one sanitizer pass, for CI and pre-commit use.
#
#   1. Plain Release build, full ctest suite        (build-check/)
#   2. Sanitizer build, full ctest suite            (build-asan/)
#      AERO_CHECK_SANITIZE picks the sanitizer list; the default
#      address,undefined catches memory bugs in the fuzz/validation
#      paths. Set AERO_CHECK_SANITIZE=thread to race-check the
#      concurrent serving layer (test_serve) instead — TSan cannot be
#      combined with ASan, hence one list per run.
#
# Usage: scripts/check.sh [extra ctest args...]

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE="${AERO_CHECK_SANITIZE:-address,undefined}"
JOBS="${AERO_CHECK_JOBS:-$(nproc)}"

echo "== tier-1: plain build + full test suite =="
cmake -B build-check -S . >/dev/null
cmake --build build-check -j "${JOBS}"
(cd build-check && ctest --output-on-failure -j "${JOBS}" "$@")

echo "== sanitizer pass: AERO_SANITIZE=${SANITIZE} =="
SAN_DIR="build-san-${SANITIZE//,/-}"
cmake -B "${SAN_DIR}" -S . -DAERO_SANITIZE="${SANITIZE}" >/dev/null
cmake --build "${SAN_DIR}" -j "${JOBS}"
if [ "${SANITIZE}" = "thread" ]; then
    # TSan run targets the concurrency-heavy suites; the single-threaded
    # suites add nothing under TSan but cost a full instrumented run.
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" \
        -R 'test_serve|test_util' "$@")
else
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" "$@")
fi

echo "== all checks passed =="
