#!/usr/bin/env bash
# Full gate: tier-1, one sanitizer pass, and static analysis.
#
#   1. Plain Release build, full ctest suite        (build-check/)
#   2. Sanitizer build, full ctest suite            (build-san-*/)
#      AERO_CHECK_SANITIZE picks the sanitizer list; the default
#      address,undefined catches memory bugs in the fuzz/validation
#      paths. Set AERO_CHECK_SANITIZE=thread to race-check the
#      concurrent serving layer (test_serve) instead — TSan cannot be
#      combined with ASan, hence one list per run.
#   3. scripts/analyze.sh                           (build-analyze/)
#      Strict -Werror build, clang-tidy when available, aero_lint.
#      The analyze build dir is cached across runs, so repeat
#      invocations only pay for incremental compilation.
#
# Usage: scripts/check.sh [extra ctest args...]
#   Set AERO_CHECK_ANALYZE=0 to skip stage 3 (e.g. in a sanitizer-only
#   sweep where another job runs the analysis).

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE="${AERO_CHECK_SANITIZE:-address,undefined}"
JOBS="${AERO_CHECK_JOBS:-$(nproc)}"

echo "== tier-1: plain build + full test suite =="
cmake -B build-check -S . >/dev/null
cmake --build build-check -j "${JOBS}"
(cd build-check && ctest --output-on-failure -j "${JOBS}" "$@")

echo "== sanitizer pass: AERO_SANITIZE=${SANITIZE} =="
SAN_DIR="build-san-${SANITIZE//,/-}"
cmake -B "${SAN_DIR}" -S . -DAERO_SANITIZE="${SANITIZE}" >/dev/null
cmake --build "${SAN_DIR}" -j "${JOBS}"
if [ "${SANITIZE}" = "thread" ]; then
    # TSan run targets the concurrency-heavy suites; the single-threaded
    # suites add nothing under TSan but cost a full instrumented run.
    # test_parallel/test_diffusion exercise the intra-op thread pool
    # (DESIGN.md §11) from kernels up through full DDIM sampling.
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" \
        -R 'test_serve|test_util|test_parallel|test_diffusion' "$@")
else
    (cd "${SAN_DIR}" && ctest --output-on-failure -j "${JOBS}" "$@")
fi

if [ "${AERO_CHECK_ANALYZE:-1}" != "0" ]; then
    echo "== static analysis =="
    scripts/analyze.sh
fi

echo "== all checks passed =="
