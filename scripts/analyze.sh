#!/usr/bin/env bash
# Static-analysis gate: strict warnings-as-errors build, clang-tidy
# (when a clang toolchain is available), and the project linter.
#
#   1. AERO_ANALYZE=ON build (build-analyze/, cached): -Werror with the
#      strict warning set from CMakeLists.txt; under Clang this includes
#      -Wthread-safety against the annotations in util/annotations.hpp.
#      Also exports compile_commands.json for step 2.
#   2. clang-tidy over src/ with the checked-in .clang-tidy profile.
#      Diagnostics matching scripts/tidy_suppressions.txt are dropped;
#      anything left fails the gate. Skipped with a notice when no
#      clang-tidy binary is on PATH (the gcc-only CI image) — the
#      -Werror build and aero_lint still gate.
#   3. tools/aero_lint over the whole tree — all four passes: per-line
#      rules (fault-point registry, #pragma once, naked new/delete,
#      unchecked parses, accounting comments), layering vs ARCH.layers,
#      inter-procedural lock-order cycles, and the determinism lint
#      (DESIGN.md §15). The machine-readable report is written to
#      build-analyze/aero_lint_report.json and its path printed.
#
# Exits non-zero on any warning, tidy finding, or lint finding.
#
# Usage: scripts/analyze.sh
#   AERO_ANALYZE_JOBS  parallelism (default: nproc)
#   AERO_TIDY          clang-tidy binary override (default: clang-tidy)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${AERO_ANALYZE_JOBS:-$(nproc)}"
TIDY="${AERO_TIDY:-clang-tidy}"
BUILD_DIR="build-analyze"

echo "== analyze 1/3: strict -Werror build (AERO_ANALYZE=ON) =="
cmake -B "${BUILD_DIR}" -S . -DAERO_ANALYZE=ON >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== analyze 2/3: clang-tidy =="
if command -v "${TIDY}" >/dev/null 2>&1; then
    # First-party translation units only; vendored/test scaffolding is
    # covered by the build above and the suppression list.
    mapfile -t SOURCES < <(find src tools -name '*.cpp' | sort)
    TIDY_OUT="$("${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}" 2>/dev/null)" \
        || true
    # Drop suppressed diagnostics, then fail if any "warning:"/"error:"
    # diagnostic lines survive.
    FILTERED="$(printf '%s\n' "${TIDY_OUT}" \
        | grep -v -E -f <(grep -v '^#' scripts/tidy_suppressions.txt | grep -v '^$') \
        | grep -E ': (warning|error):' || true)"
    if [ -n "${FILTERED}" ]; then
        printf '%s\n' "${FILTERED}"
        echo "analyze: clang-tidy findings (see above)" >&2
        exit 1
    fi
    echo "clang-tidy: clean"
else
    echo "[skip] ${TIDY} not found; relying on -Werror build + aero_lint"
fi

echo "== analyze 3/3: aero_lint (rules + layering + lock-order + determinism) =="
LINT_REPORT="${BUILD_DIR}/aero_lint_report.json"
"${BUILD_DIR}/tools/aero_lint/aero_lint" --root . --json "${LINT_REPORT}"
echo "aero_lint report: ${LINT_REPORT}"

echo "== analysis clean =="
