#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "scene/dataset.hpp"
#include "scene/generator.hpp"
#include "scene/renderer.hpp"
#include "scene/types.hpp"

namespace {

using namespace aero::scene;

TEST(Types, ClassNames) {
    EXPECT_STREQ(class_name(ObjectClass::kCar), "car");
    EXPECT_EQ(class_plural(ObjectClass::kBus), "buses");
    EXPECT_STREQ(scenario_name(ScenarioKind::kPark), "tranquil park");
}

TEST(Types, IouDisjointAndIdentical) {
    BoundingBox a{0, 0, 10, 10};
    BoundingBox b{20, 20, 10, 10};
    EXPECT_FLOAT_EQ(iou(a, b), 0.0f);
    EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
}

TEST(Types, IouPartialOverlap) {
    BoundingBox a{0, 0, 10, 10};
    BoundingBox b{5, 0, 10, 10};
    // intersection 50, union 150.
    EXPECT_NEAR(iou(a, b), 1.0f / 3.0f, 1e-6f);
}

TEST(Types, CameraBands) {
    Camera cam;
    cam.altitude = 0.6f;
    cam.pitch = 0.05f;
    EXPECT_EQ(altitude_band(cam), AltitudeBand::kLow);
    EXPECT_EQ(pitch_band(cam), PitchBand::kTopDown);
    cam.altitude = 1.3f;
    cam.pitch = 0.5f;
    EXPECT_EQ(altitude_band(cam), AltitudeBand::kHigh);
    EXPECT_EQ(pitch_band(cam), PitchBand::kSideAngle);
}

TEST(Generator, ObjectCountInBand) {
    aero::util::Rng rng(1);
    GeneratorConfig config;
    for (int k = 0; k < kNumScenarios; ++k) {
        const Scene scene = generate_scene(static_cast<ScenarioKind>(k),
                                           TimeOfDay::kDay, rng, k, config);
        EXPECT_GE(static_cast<int>(scene.objects.size()), 15)
            << "scenario " << k;
        EXPECT_LE(static_cast<int>(scene.objects.size()),
                  config.max_objects + 5)
            << "scenario " << k;
    }
}

TEST(Generator, Deterministic) {
    aero::util::Rng rng_a(77);
    aero::util::Rng rng_b(77);
    const Scene a = generate_random_scene(rng_a, 0);
    const Scene b = generate_random_scene(rng_b, 0);
    ASSERT_EQ(a.objects.size(), b.objects.size());
    for (std::size_t i = 0; i < a.objects.size(); ++i) {
        EXPECT_FLOAT_EQ(a.objects[i].x, b.objects[i].x);
        EXPECT_EQ(a.objects[i].cls, b.objects[i].cls);
    }
}

TEST(Generator, ObjectsInsideWorld) {
    aero::util::Rng rng(2);
    for (int i = 0; i < 8; ++i) {
        const Scene scene = generate_random_scene(rng, i);
        for (const SceneObject& obj : scene.objects) {
            EXPECT_GE(obj.x, -0.1f);
            EXPECT_LE(obj.x, 1.1f);
            EXPECT_GE(obj.y, -0.1f);
            EXPECT_LE(obj.y, 1.1f);
            EXPECT_GT(obj.length, 0.0f);
            EXPECT_GT(obj.width, 0.0f);
        }
    }
}

TEST(Generator, ClassicalScenesAreSparse) {
    aero::util::Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const Scene scene = generate_classical_scene(rng, i);
        EXPECT_GE(static_cast<int>(scene.objects.size()), 1);
        EXPECT_LE(static_cast<int>(scene.objects.size()), 2);
    }
}

TEST(Generator, ScenarioVariety) {
    aero::util::Rng rng(4);
    std::set<ScenarioKind> kinds;
    for (int i = 0; i < 64; ++i) {
        kinds.insert(generate_random_scene(rng, i).kind);
    }
    EXPECT_GE(kinds.size(), 6u);
}

TEST(ViewTransformTest, ProjectUnprojectRoundTrip) {
    Camera cam;
    cam.look_x = 0.4f;
    cam.look_y = 0.6f;
    cam.altitude = 0.8f;
    cam.pitch = 0.4f;
    cam.azimuth = 1.1f;
    const ViewTransform view(cam, 64);
    float px = 0.0f;
    float py = 0.0f;
    view.project(0.3f, 0.7f, &px, &py);
    float wx = 0.0f;
    float wy = 0.0f;
    view.unproject(px, py, &wx, &wy);
    EXPECT_NEAR(wx, 0.3f, 1e-4f);
    EXPECT_NEAR(wy, 0.7f, 1e-4f);
}

TEST(ViewTransformTest, LookPointMapsToCentre) {
    Camera cam;
    cam.look_x = 0.25f;
    cam.look_y = 0.75f;
    const ViewTransform view(cam, 64);
    float px = 0.0f;
    float py = 0.0f;
    view.project(0.25f, 0.75f, &px, &py);
    EXPECT_NEAR(px, 32.0f, 1e-4f);
    EXPECT_NEAR(py, 32.0f, 1e-4f);
}

TEST(ViewTransformTest, AltitudeControlsZoom) {
    Camera low;
    low.altitude = 0.5f;
    Camera high;
    high.altitude = 1.4f;
    EXPECT_GT(ViewTransform(low, 64).zoom(), ViewTransform(high, 64).zoom());
}

TEST(Renderer, ProducesValidImage) {
    aero::util::Rng rng(5);
    const Scene scene = generate_scene(ScenarioKind::kIntersection,
                                       TimeOfDay::kDay, rng, 0);
    RenderOptions options;
    options.image_size = 48;
    const aero::image::Image img = render(scene, options);
    EXPECT_EQ(img.width(), 48);
    EXPECT_EQ(img.height(), 48);
    for (float v : img.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Renderer, NightIsDarkerThanDay) {
    aero::util::Rng rng_a(6);
    aero::util::Rng rng_b(6);
    const Scene day = generate_scene(ScenarioKind::kHighway, TimeOfDay::kDay,
                                     rng_a, 0);
    const Scene night = generate_scene(ScenarioKind::kHighway,
                                       TimeOfDay::kNight, rng_b, 0);
    RenderOptions options;
    options.image_size = 48;
    const float day_lum = render(day, options).mean_luminance();
    const float night_lum = render(night, options).mean_luminance();
    EXPECT_LT(night_lum, day_lum * 0.6f);
}

TEST(Renderer, DeterministicRendering) {
    aero::util::Rng rng(7);
    const Scene scene = generate_random_scene(rng, 3);
    const aero::image::Image a = render(scene);
    const aero::image::Image b = render(scene);
    ASSERT_EQ(a.data().size(), b.data().size());
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        EXPECT_EQ(a.data()[i], b.data()[i]);
    }
}

TEST(Renderer, GroundTruthBoxesInsideImage) {
    aero::util::Rng rng(8);
    for (int i = 0; i < 6; ++i) {
        const Scene scene = generate_random_scene(rng, i);
        const auto boxes = ground_truth_boxes(scene, 64);
        EXPECT_FALSE(boxes.empty());
        for (const BoundingBox& box : boxes) {
            EXPECT_GE(box.x, 0.0f);
            EXPECT_GE(box.y, 0.0f);
            EXPECT_LE(box.x + box.w, 65.0f);
            EXPECT_LE(box.y + box.h, 65.0f);
            EXPECT_GT(box.area(), 0.0f);
        }
    }
}

TEST(Renderer, ZoomInYieldsFewerVisibleObjects) {
    aero::util::Rng rng(9);
    Scene scene = generate_scene(ScenarioKind::kPlaza, TimeOfDay::kDay, rng, 0,
                                 {.randomize_camera = false});
    scene.camera.altitude = 1.0f;
    const auto wide = ground_truth_boxes(scene, 64);
    scene.camera.altitude = 0.4f;  // zoomed in: smaller footprint
    scene.camera.look_x = 0.2f;
    scene.camera.look_y = 0.2f;    // looking at a corner
    const auto tight = ground_truth_boxes(scene, 64);
    EXPECT_LT(tight.size(), wide.size());
}

TEST(Renderer, ObjectVisiblyRendered) {
    // A single large red car on plain ground must produce red pixels.
    Scene scene;
    scene.base_ground = {0.2f, 0.6f, 0.2f};
    SceneObject car;
    car.cls = ObjectClass::kCar;
    car.x = 0.5f;
    car.y = 0.5f;
    car.length = 0.2f;
    car.width = 0.1f;
    car.color = {0.9f, 0.05f, 0.05f};
    scene.objects.push_back(car);
    RenderOptions options;
    options.image_size = 32;
    options.sensor_noise = 0.0f;
    const auto img = render(scene, options);
    const auto c = img.pixel(16, 16);
    EXPECT_GT(c.r, 0.5f);
    EXPECT_LT(c.g, 0.4f);
}

// Parameterized sweep over every scenario x time-of-day combination:
// generation and rendering invariants must hold everywhere.
class ScenarioSweep
    : public ::testing::TestWithParam<std::tuple<int, TimeOfDay>> {};

TEST_P(ScenarioSweep, GeneratesRendersAndAnnotates) {
    const auto [kind_index, time] = GetParam();
    const auto kind = static_cast<ScenarioKind>(kind_index);
    aero::util::Rng rng(300 + static_cast<std::uint64_t>(kind_index) * 2 +
                        (time == TimeOfDay::kNight ? 1 : 0));
    const Scene scene = generate_scene(kind, time, rng, 0);
    EXPECT_EQ(scene.kind, kind);
    EXPECT_EQ(scene.time, time);
    EXPECT_GE(scene.objects.size(), 15u);

    RenderOptions options;
    options.image_size = 32;
    const aero::image::Image img = render(scene, options);
    for (float v : img.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    const auto boxes = ground_truth_boxes(scene, 32);
    EXPECT_FALSE(boxes.empty());
    // Night renders are darker than 0.45 mean luminance.
    if (time == TimeOfDay::kNight) {
        EXPECT_LT(img.mean_luminance(), 0.45f);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSweep,
    ::testing::Combine(::testing::Range(0, kNumScenarios),
                       ::testing::Values(TimeOfDay::kDay, TimeOfDay::kNight)));

// Camera sweep: projection round-trips for assorted viewpoints.
class CameraSweep
    : public ::testing::TestWithParam<std::tuple<float, float, float>> {};

TEST_P(CameraSweep, ProjectUnprojectRoundTrip) {
    const auto [altitude, pitch, azimuth] = GetParam();
    Camera cam;
    cam.altitude = altitude;
    cam.pitch = pitch;
    cam.azimuth = azimuth;
    const ViewTransform view(cam, 48);
    for (float wx : {0.1f, 0.5f, 0.9f}) {
        for (float wy : {0.2f, 0.7f}) {
            float px = 0.0f;
            float py = 0.0f;
            view.project(wx, wy, &px, &py);
            float rx = 0.0f;
            float ry = 0.0f;
            view.unproject(px, py, &rx, &ry);
            EXPECT_NEAR(rx, wx, 1e-3f);
            EXPECT_NEAR(ry, wy, 1e-3f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Viewpoints, CameraSweep,
    ::testing::Values(std::make_tuple(0.55f, 0.0f, 0.0f),
                      std::make_tuple(1.0f, 0.3f, 1.2f),
                      std::make_tuple(1.4f, 0.6f, 3.1f),
                      std::make_tuple(0.7f, 0.45f, 5.9f)));

TEST(Dataset, SplitSizesAndDeterminism) {
    DatasetConfig config;
    config.train_size = 8;
    config.test_size = 4;
    config.image_size = 24;
    const AerialDataset a(config);
    const AerialDataset b(config);
    EXPECT_EQ(a.train().size(), 8u);
    EXPECT_EQ(a.test().size(), 4u);
    for (std::size_t i = 0; i < a.train().size(); ++i) {
        EXPECT_EQ(a.train()[i].image.data(), b.train()[i].image.data());
    }
}

TEST(Dataset, ObjectsPerImageMatchesPaperBand) {
    DatasetConfig config;
    config.train_size = 12;
    config.test_size = 4;
    config.image_size = 24;
    const AerialDataset ds(config);
    const auto counts = ds.objects_per_image();
    ASSERT_EQ(counts.size(), 16u);
    for (int c : counts) {
        EXPECT_GE(c, 15);
        EXPECT_LE(c, 95);
    }
}

TEST(Dataset, ClassHistogramCoversCommonClasses) {
    DatasetConfig config;
    config.train_size = 24;
    config.test_size = 2;
    config.image_size = 24;
    const AerialDataset ds(config);
    const auto hist = ds.class_histogram();
    ASSERT_EQ(hist.size(), static_cast<std::size_t>(kNumObjectClasses));
    EXPECT_GT(hist[static_cast<int>(ObjectClass::kCar)], 0);
    EXPECT_GT(hist[static_cast<int>(ObjectClass::kPedestrian)], 0);
}

TEST(Dataset, ReprojectKeepsSceneChangesCamera) {
    DatasetConfig config;
    config.train_size = 1;
    config.test_size = 1;
    config.image_size = 24;
    const AerialDataset ds(config);
    Camera cam;
    cam.altitude = 0.6f;
    cam.pitch = 0.5f;
    const AerialSample moved = reproject_sample(ds.train()[0], cam);
    EXPECT_EQ(moved.scene.objects.size(), ds.train()[0].scene.objects.size());
    EXPECT_FLOAT_EQ(moved.scene.camera.pitch, 0.5f);
    // Different view -> different pixels.
    EXPECT_NE(moved.image.data(), ds.train()[0].image.data());
}

TEST(Dataset, RelightChangesLuminance) {
    DatasetConfig config;
    config.train_size = 1;
    config.test_size = 1;
    config.image_size = 24;
    config.generator.night_fraction = 0.0;
    const AerialDataset ds(config);
    const AerialSample night =
        relight_sample(ds.train()[0], TimeOfDay::kNight);
    EXPECT_LT(night.image.mean_luminance(),
              ds.train()[0].image.mean_luminance());
}

}  // namespace
