// Determinism suite for the intra-op thread pool (DESIGN.md §11): every
// parallelized kernel must produce BITWISE-identical outputs for any
// AERO_THREADS value. Each test runs the same computation with the
// process-wide pool resized to 1, 2, and 7 threads and compares float
// bit patterns, not approximate values — the contract is exact.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet.hpp"
#include "nn/attention.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace ops = aero::tensor;
using aero::autograd::Var;
using aero::tensor::Tensor;
using aero::util::ThreadPool;

/// Thread counts the suite sweeps: serial, even split, and a prime that
/// never divides the chunk counts evenly.
const int kThreadCounts[] = {1, 2, 7};

/// Restores the global pool to its default size when a test ends, so
/// suites running after this one see the configured AERO_THREADS.
class PoolSizeGuard {
public:
    PoolSizeGuard() = default;
    ~PoolSizeGuard() {
        ThreadPool::instance().resize(ThreadPool::default_threads());
    }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
    if (!a.same_shape(b)) return false;
    return std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<std::size_t>(a.size())) ==
           0;
}

/// Runs `compute` at every thread count and asserts each result is
/// bitwise identical to the single-threaded one.
template <typename Fn>
void expect_thread_count_invariant(const char* label, Fn compute) {
    const PoolSizeGuard guard;
    ThreadPool::instance().resize(1);
    const Tensor reference = compute();
    for (const int threads : kThreadCounts) {
        ThreadPool::instance().resize(threads);
        const Tensor result = compute();
        EXPECT_TRUE(bitwise_equal(reference, result))
            << label << ": output differs at " << threads << " threads";
    }
}

TEST(Determinism, Matmul) {
    aero::util::Rng rng(11);
    const Tensor a = Tensor::randn({64, 96}, rng);
    const Tensor b = Tensor::randn({96, 80}, rng);
    expect_thread_count_invariant("matmul",
                                  [&] { return ops::matmul(a, b); });
    expect_thread_count_invariant("matmul_nt", [&] {
        return ops::matmul_nt(a, ops::transpose2d(b));
    });
    expect_thread_count_invariant("matmul_tn", [&] {
        return ops::matmul_tn(ops::transpose2d(a), b);
    });
}

TEST(Determinism, ElementwiseAndReductions) {
    aero::util::Rng rng(12);
    const Tensor x = Tensor::randn({100000}, rng);
    const Tensor y = Tensor::randn({100000}, rng);
    expect_thread_count_invariant("silu", [&] { return ops::silu(x); });
    expect_thread_count_invariant("mul", [&] { return ops::mul(x, y); });
    // Scalar reductions wrapped in a 1-element tensor for the comparator.
    expect_thread_count_invariant("sum_all", [&] {
        Tensor s({1});
        s[0] = ops::sum_all(x);
        return s;
    });
    const Tensor m = Tensor::randn({37, 53}, rng);
    expect_thread_count_invariant("sum_rows",
                                  [&] { return ops::sum_rows(m); });
}

TEST(Determinism, Softmax) {
    aero::util::Rng rng(13);
    const Tensor logits = Tensor::randn({64, 512}, rng);
    expect_thread_count_invariant("softmax_rows", [&] {
        return ops::softmax_rows(logits);
    });
    const Tensor grad = Tensor::randn({64, 512}, rng);
    const Tensor probs = ops::softmax_rows(logits);
    expect_thread_count_invariant("softmax_rows_backward", [&] {
        return ops::softmax_rows_backward(grad, probs);
    });
}

TEST(Determinism, Conv2d) {
    aero::util::Rng rng(14);
    const Tensor input = Tensor::randn({2, 3, 12, 12}, rng);
    const Tensor weight = Tensor::randn({8, 3, 3, 3}, rng);
    const Tensor bias = Tensor::randn({8}, rng);
    const ops::Conv2dSpec spec{1, 1};
    expect_thread_count_invariant("conv2d", [&] {
        return ops::conv2d(input, weight, bias, spec);
    });
    const Tensor grad_out = Tensor::randn({2, 8, 12, 12}, rng);
    expect_thread_count_invariant("conv2d_backward_input", [&] {
        return ops::conv2d_backward_input(grad_out, weight, input.shape(),
                                          spec);
    });
    expect_thread_count_invariant("conv2d_backward_weight", [&] {
        return ops::conv2d_backward_weight(grad_out, input, weight.shape(),
                                           spec);
    });
    expect_thread_count_invariant("conv2d_backward_bias", [&] {
        return ops::conv2d_backward_bias(grad_out);
    });
}

TEST(Determinism, Attention) {
    aero::util::Rng rng(15);
    aero::nn::MultiHeadAttention attention(16, 4, rng);
    const Tensor query = Tensor::randn({10, 16}, rng);
    const Tensor context = Tensor::randn({6, 16}, rng);
    expect_thread_count_invariant("attention", [&] {
        const Var q = Var::constant(query);
        const Var ctx = Var::constant(context);
        return attention.forward(q, ctx).value();
    });
}

TEST(Determinism, FullDdimSample) {
    aero::util::Rng build_rng(16);
    aero::diffusion::UNetConfig config;
    config.in_channels = 4;
    config.base_channels = 8;
    config.cond_dim = 8;
    config.heads = 2;
    config.time_dim = 8;
    config.groups = 2;
    const aero::diffusion::UNet unet(config, build_rng);
    const aero::diffusion::NoiseSchedule schedule({8, 0.001f, 0.012f, 8});
    aero::diffusion::DdimConfig ddim;
    ddim.inference_steps = 4;
    ddim.guidance_scale = 1.0f;
    const aero::diffusion::DdimSampler sampler(unet, schedule, ddim);
    expect_thread_count_invariant("ddim_sample", [&] {
        aero::util::Rng sample_rng(77);  // same noise every run
        return sampler.sample({4, 8, 8}, Tensor(), sample_rng);
    });
}

}  // namespace
