#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using aero::tensor::Conv2dSpec;
using aero::tensor::Tensor;
namespace ops = aero::tensor;

TEST(Tensor, ConstructionAndShape) {
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3);
    EXPECT_EQ(t.size(), 24);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(-1), 4);
    for (float v : t) EXPECT_EQ(v, 0.0f);
    EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

TEST(Tensor, AtMultiIndex) {
    Tensor t({2, 3});
    t.at({1, 2}) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    EXPECT_EQ(t.at({1, 2}), 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
    Tensor t = Tensor::from_values({1, 2, 3, 4, 5, 6});
    Tensor r = t.reshaped({2, 3});
    EXPECT_EQ(r.at({1, 0}), 4.0f);
    EXPECT_THROW(t.reshaped({4}), std::invalid_argument);
}

TEST(Tensor, FactoryFunctions) {
    aero::util::Rng rng(1);
    EXPECT_EQ(Tensor::ones({3})[2], 1.0f);
    EXPECT_EQ(Tensor::full({2}, 5.0f)[0], 5.0f);
    Tensor u = Tensor::uniform({1000}, rng, -1.0f, 1.0f);
    for (float v : u) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Ops, ElementwiseBasics) {
    const Tensor a = Tensor::from_values({1, 2, 3});
    const Tensor b = Tensor::from_values({4, 5, 6});
    EXPECT_EQ(ops::add(a, b)[1], 7.0f);
    EXPECT_EQ(ops::sub(a, b)[0], -3.0f);
    EXPECT_EQ(ops::mul(a, b)[2], 18.0f);
    EXPECT_EQ(ops::scale(a, 2.0f)[1], 4.0f);
    EXPECT_EQ(ops::add_scalar(a, 1.0f)[0], 2.0f);
    EXPECT_EQ(ops::neg(a)[0], -1.0f);
}

TEST(Ops, Activations) {
    const Tensor x = Tensor::from_values({-2.0f, 0.0f, 2.0f});
    const Tensor r = ops::relu(x);
    EXPECT_EQ(r[0], 0.0f);
    EXPECT_EQ(r[2], 2.0f);
    const Tensor s = ops::sigmoid(x);
    EXPECT_NEAR(s[1], 0.5f, 1e-6f);
    const Tensor t = ops::tanh(x);
    EXPECT_NEAR(t[2], std::tanh(2.0f), 1e-6f);
    const Tensor si = ops::silu(x);
    EXPECT_NEAR(si[1], 0.0f, 1e-6f);
    EXPECT_NEAR(si[2], 2.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
}

TEST(Ops, MatmulAgainstHand) {
    Tensor a = Tensor::from_values({1, 2, 3, 4}).reshaped({2, 2});
    Tensor b = Tensor::from_values({5, 6, 7, 8}).reshaped({2, 2});
    const Tensor c = ops::matmul(a, b);
    EXPECT_EQ(c[0], 19.0f);
    EXPECT_EQ(c[1], 22.0f);
    EXPECT_EQ(c[2], 43.0f);
    EXPECT_EQ(c[3], 50.0f);
}

TEST(Ops, MatmulTransposedVariantsAgree) {
    aero::util::Rng rng(2);
    const Tensor a = Tensor::randn({3, 5}, rng);
    const Tensor b = Tensor::randn({5, 4}, rng);
    const Tensor c = ops::matmul(a, b);
    const Tensor c_nt = ops::matmul_nt(a, ops::transpose2d(b));
    const Tensor c_tn = ops::matmul_tn(ops::transpose2d(a), b);
    for (int i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i], c_nt[i], 1e-4f);
        EXPECT_NEAR(c[i], c_tn[i], 1e-4f);
    }
}

TEST(Ops, SoftmaxRowsSumToOne) {
    aero::util::Rng rng(3);
    const Tensor x = Tensor::randn({4, 7}, rng, 0.0f, 3.0f);
    const Tensor y = ops::softmax_rows(x);
    for (int i = 0; i < 4; ++i) {
        float sum = 0.0f;
        for (int j = 0; j < 7; ++j) {
            const float v = y[i * 7 + j];
            EXPECT_GT(v, 0.0f);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(Ops, SoftmaxShiftInvariance) {
    const Tensor x = Tensor::from_values({1, 2, 3}).reshaped({1, 3});
    const Tensor y1 = ops::softmax_rows(x);
    const Tensor y2 = ops::softmax_rows(ops::add_scalar(x, 100.0f));
    for (int i = 0; i < 3; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-5f);
}

TEST(Ops, Conv2dIdentityKernel) {
    aero::util::Rng rng(4);
    const Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
    Tensor w({1, 1, 3, 3});
    w.at({0, 0, 1, 1}) = 1.0f;  // centre tap
    const Tensor y = ops::conv2d(x, w, Tensor(), {1, 1});
    ASSERT_EQ(y.shape(), x.shape());
    for (int i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Ops, Conv2dStrideAndShape) {
    const Tensor x = Tensor::ones({2, 3, 8, 8});
    aero::util::Rng rng(5);
    const Tensor w = Tensor::randn({4, 3, 3, 3}, rng);
    const Tensor y = ops::conv2d(x, w, Tensor(), {2, 1});
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 4);
    EXPECT_EQ(y.dim(2), 4);
    EXPECT_EQ(y.dim(3), 4);
}

TEST(Ops, Conv2dBiasApplied) {
    const Tensor x = Tensor::zeros({1, 1, 4, 4});
    const Tensor w = Tensor::zeros({2, 1, 1, 1});
    const Tensor b = Tensor::from_values({1.5f, -2.0f});
    const Tensor y = ops::conv2d(x, w, b, {1, 0});
    EXPECT_EQ(y.at({0, 0, 2, 2}), 1.5f);
    EXPECT_EQ(y.at({0, 1, 0, 0}), -2.0f);
}

TEST(Ops, UpsampleAndPoolInverse) {
    aero::util::Rng rng(6);
    const Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    const Tensor up = ops::upsample_nearest2x(x);
    EXPECT_EQ(up.dim(2), 8);
    const Tensor back = ops::avg_pool2x(up);
    for (int i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-6f);
}

TEST(Ops, GlobalAvgPool) {
    Tensor x({1, 2, 2, 2});
    for (int i = 0; i < 4; ++i) x[i] = 2.0f;       // channel 0
    for (int i = 4; i < 8; ++i) x[i] = -1.0f;      // channel 1
    const Tensor y = ops::global_avg_pool(x);
    EXPECT_EQ(y.dim(0), 1);
    EXPECT_EQ(y.dim(1), 2);
    EXPECT_NEAR(y[0], 2.0f, 1e-6f);
    EXPECT_NEAR(y[1], -1.0f, 1e-6f);
}

TEST(Ops, ConcatAndSliceRoundTrip) {
    aero::util::Rng rng(7);
    const Tensor a = Tensor::randn({2, 3}, rng);
    const Tensor b = Tensor::randn({2, 5}, rng);
    const Tensor cat = ops::concat({a, b}, 1);
    EXPECT_EQ(cat.dim(1), 8);
    const Tensor a2 = ops::slice(cat, 1, 0, 3);
    const Tensor b2 = ops::slice(cat, 1, 3, 8);
    for (int i = 0; i < a.size(); ++i) EXPECT_EQ(a2[i], a[i]);
    for (int i = 0; i < b.size(); ++i) EXPECT_EQ(b2[i], b[i]);
}

TEST(Ops, ConcatAxis0) {
    const Tensor a = Tensor::from_values({1, 2}).reshaped({1, 2});
    const Tensor b = Tensor::from_values({3, 4, 5, 6}).reshaped({2, 2});
    const Tensor cat = ops::concat({a, b}, 0);
    EXPECT_EQ(cat.dim(0), 3);
    EXPECT_EQ(cat.at({2, 1}), 6.0f);
}

TEST(Ops, ConcatBackwardSplitsGradient) {
    const Tensor g = Tensor::from_values({1, 2, 3, 4, 5, 6}).reshaped({2, 3});
    const auto grads = ops::concat_backward(g, {{2, 1}, {2, 2}}, 1);
    ASSERT_EQ(grads.size(), 2u);
    EXPECT_EQ(grads[0].at({1, 0}), 4.0f);
    EXPECT_EQ(grads[1].at({0, 1}), 3.0f);
}

TEST(Ops, Reductions) {
    const Tensor x = Tensor::from_values({1, 2, 3, 4});
    EXPECT_EQ(ops::sum_all(x), 10.0f);
    EXPECT_EQ(ops::mean_all(x), 2.5f);
    const Tensor m = x.reshaped({2, 2});
    const Tensor s = ops::sum_rows(m);
    EXPECT_EQ(s[0], 4.0f);
    EXPECT_EQ(s[1], 6.0f);
}

// Parameterized conv2d geometry sweep: output extents must follow the
// standard formula for every (kernel, stride, pad) combination.
struct ConvCase {
    int size;
    int kernel;
    int stride;
    int pad;
};

class ConvGeometry : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometry, OutputExtentFormula) {
    const ConvCase c = GetParam();
    aero::util::Rng rng(99);
    const Tensor x = Tensor::randn({1, 2, c.size, c.size}, rng);
    const Tensor w = Tensor::randn({3, 2, c.kernel, c.kernel}, rng);
    const Tensor y = ops::conv2d(x, w, Tensor(), {c.stride, c.pad});
    const int expected = (c.size + 2 * c.pad - c.kernel) / c.stride + 1;
    EXPECT_EQ(y.dim(2), expected);
    EXPECT_EQ(y.dim(3), expected);
    EXPECT_EQ(y.dim(1), 3);
}

TEST_P(ConvGeometry, BackwardShapesMatchForward) {
    const ConvCase c = GetParam();
    aero::util::Rng rng(100);
    const Tensor x = Tensor::randn({1, 2, c.size, c.size}, rng);
    const Tensor w = Tensor::randn({3, 2, c.kernel, c.kernel}, rng);
    const Tensor y = ops::conv2d(x, w, Tensor(), {c.stride, c.pad});
    const Tensor gx = ops::conv2d_backward_input(y, w, x.shape(),
                                                 {c.stride, c.pad});
    const Tensor gw = ops::conv2d_backward_weight(y, x, w.shape(),
                                                  {c.stride, c.pad});
    EXPECT_EQ(gx.shape(), x.shape());
    EXPECT_EQ(gw.shape(), w.shape());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometry,
    ::testing::Values(ConvCase{8, 3, 1, 1}, ConvCase{8, 3, 2, 1},
                      ConvCase{8, 1, 1, 0}, ConvCase{16, 5, 1, 2},
                      ConvCase{16, 3, 2, 0}, ConvCase{9, 3, 1, 0},
                      ConvCase{12, 4, 2, 1}));

// Property sweep: matmul associativity-with-transpose identities hold
// for assorted shapes.
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, TransposeIdentity) {
    const auto [m, k, n] = GetParam();
    aero::util::Rng rng(7);
    const Tensor a = Tensor::randn({m, k}, rng);
    const Tensor b = Tensor::randn({k, n}, rng);
    // (A B)^T == B^T A^T
    const Tensor left = ops::transpose2d(ops::matmul(a, b));
    const Tensor right =
        ops::matmul(ops::transpose2d(b), ops::transpose2d(a));
    ASSERT_EQ(left.shape(), right.shape());
    for (int i = 0; i < left.size(); ++i) {
        EXPECT_NEAR(left[i], right[i], 1e-4f);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(1, 16, 2)));

TEST(Ops, AddRowBias) {
    const Tensor a = Tensor::zeros({2, 3});
    const Tensor bias = Tensor::from_values({1, 2, 3});
    const Tensor y = ops::add_row_bias(a, bias);
    EXPECT_EQ(y.at({0, 2}), 3.0f);
    EXPECT_EQ(y.at({1, 0}), 1.0f);
}

TEST(Ops, SigmoidFamilySaturatesFinitelyOnExtremeLogits) {
    // Regression for the overflow audit: the logistic ops use the
    // sign-split stable form, so even logits far past the float exp
    // overflow threshold (~88.73) produce finite, saturated outputs
    // with no inf intermediate.
    const Tensor extreme =
        Tensor::from_values({-1e4f, -1000.0f, -100.0f, 0.0f, 100.0f,
                             1000.0f, 1e4f});
    const Tensor s = ops::sigmoid(extreme);
    for (int i = 0; i < s.size(); ++i) {
        EXPECT_TRUE(std::isfinite(s[i])) << "sigmoid at " << i;
        EXPECT_GE(s[i], 0.0f);
        EXPECT_LE(s[i], 1.0f);
    }
    EXPECT_EQ(s[0], 0.0f);  // saturates exactly
    EXPECT_EQ(s[6], 1.0f);
    EXPECT_EQ(s[3], 0.5f);

    const Tensor y = ops::silu(extreme);
    for (int i = 0; i < y.size(); ++i) {
        EXPECT_TRUE(std::isfinite(y[i])) << "silu at " << i;
    }
    EXPECT_EQ(y[0], 0.0f);      // x * 0
    EXPECT_EQ(y[6], 1e4f);      // x * 1

    const Tensor grad = Tensor::full(extreme.shape(), 1.0f);
    const Tensor gs = ops::silu_backward(grad, extreme);
    const Tensor gb = ops::sigmoid_backward(grad, s);
    for (int i = 0; i < extreme.size(); ++i) {
        EXPECT_TRUE(std::isfinite(gs[i])) << "silu_backward at " << i;
        EXPECT_TRUE(std::isfinite(gb[i])) << "sigmoid_backward at " << i;
    }
}

TEST(Ops, ExpKeepsDocumentedIeeeContract) {
    // exp is documented as unclamped IEEE: overflow to +inf above the
    // float threshold, underflow to 0 below it. The contract is
    // explicit so boundary finite-checks (serving layer) own rejection.
    const Tensor x = Tensor::from_values({-1000.0f, 0.0f, 88.0f, 1000.0f});
    const Tensor e = ops::exp(x);
    EXPECT_EQ(e[0], 0.0f);
    EXPECT_EQ(e[1], 1.0f);
    EXPECT_TRUE(std::isfinite(e[2]));
    EXPECT_TRUE(std::isinf(e[3]));
}

TEST(Ops, SoftmaxFiniteOnExtremeLogits) {
    // softmax_rows max-subtracts, so rows mixing huge and tiny logits
    // stay finite and sum to 1.
    const Tensor logits = Tensor::from_values({1000.0f, -1000.0f, 999.0f,
                                               -500.0f, 0.0f, 500.0f});
    const Tensor rows = logits.reshaped({2, 3});
    const Tensor p = ops::softmax_rows(rows);
    for (int i = 0; i < p.size(); ++i) {
        EXPECT_TRUE(std::isfinite(p[i]));
    }
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-6f);
    EXPECT_NEAR(p[3] + p[4] + p[5], 1.0f, 1e-6f);
}

}  // namespace
