// Variant-specific behaviour of the Table-I baselines: what each
// conditioning recipe actually feeds the denoiser.

#include <gtest/gtest.h>

#include <cmath>

// Compiled through the umbrella header on purpose: this test binary
// doubles as a check that the public API surface builds as one unit.
#include "aerodiffusion.hpp"

namespace {

using namespace aero::core;
using aero::baselines::DdpmBaseline;
using aero::baselines::PipelineModel;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        aero::util::Rng rng(777);
        return build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

TEST(Variants, PresetsDifferInConditioningRecipe) {
    const auto sd = PipelineConfig::stable_diffusion();
    const auto arldm = PipelineConfig::arldm();
    const auto versatile = PipelineConfig::versatile_diffusion();
    const auto mas = PipelineConfig::make_a_scene();
    const auto aero = PipelineConfig::aero_diffusion();

    // Only ours uses keypoint captions, detection and the image row.
    EXPECT_TRUE(aero.use_keypoint_captions);
    EXPECT_TRUE(aero.use_object_detection);
    EXPECT_TRUE(aero.use_image_feature);
    for (const auto* cfg : {&sd, &arldm, &versatile, &mas}) {
        EXPECT_FALSE(cfg->use_keypoint_captions);
        EXPECT_FALSE(cfg->use_object_detection);
        EXPECT_FALSE(cfg->use_image_feature);
    }
    // Fusion split matches the paper's Table I structure.
    EXPECT_TRUE(sd.use_blip_fusion);
    EXPECT_TRUE(arldm.use_blip_fusion);
    EXPECT_FALSE(versatile.use_blip_fusion);
    EXPECT_FALSE(mas.use_blip_fusion);
}

TEST(Variants, CaptionChoiceFollowsConfig) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(1);
    AeroDiffusionPipeline ours(PipelineConfig::aero_diffusion(), s, rng);
    AeroDiffusionPipeline sd(PipelineConfig::stable_diffusion(), s, rng);
    EXPECT_EQ(&ours.train_captions(), &s.keypoint_train);
    EXPECT_EQ(&sd.train_captions(), &s.generic_train);
    EXPECT_EQ(&ours.test_captions(), &s.keypoint_test);
}

TEST(Variants, CustomCaptionOverride) {
    const Substrate& s = shared_substrate();
    const std::vector<aero::text::Caption> custom(s.keypoint_train.size());
    PipelineConfig config = PipelineConfig::aero_diffusion();
    config.custom_train_captions = &custom;
    aero::util::Rng rng(2);
    AeroDiffusionPipeline pipeline(config, s, rng);
    EXPECT_EQ(&pipeline.train_captions(), &custom);
    EXPECT_EQ(&pipeline.test_captions(), &s.keypoint_test);  // not overridden
}

TEST(Variants, ModelNamesMatchPaperTable) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(3);
    const auto models = aero::baselines::make_table1_models(s, rng);
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0]->name(), "DDPM");
    EXPECT_EQ(models[1]->name(), "Stable Diffusion");
    EXPECT_EQ(models[2]->name(), "ARLDM");
    EXPECT_EQ(models[3]->name(), "Versatile Diffusion");
    EXPECT_EQ(models[4]->name(), "Make-a-Scene");
    EXPECT_EQ(models[5]->name(), "AeroDiffusion");
}

TEST(Variants, DdpmIgnoresReferenceContent) {
    // The unconditional pixel baseline must produce the same image for
    // different references given the same sampling seed.
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(4);
    DdpmBaseline ddpm(s, rng);
    ddpm.fit(rng);
    aero::util::Rng g1(5);
    aero::util::Rng g2(5);
    const auto a = ddpm.generate(s.dataset->test()[0], 0, g1);
    const auto b = ddpm.generate(s.dataset->test()[1], 1, g2);
    ASSERT_EQ(a.data().size(), b.data().size());
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        EXPECT_EQ(a.data()[i], b.data()[i]);
    }
}

TEST(Variants, AeroGenerationDependsOnReference) {
    // Ours is image-conditioned: different references, same seed ->
    // different images.
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(6);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    pipeline.fit(rng);
    const std::string caption = s.keypoint_test[0].text;
    aero::util::Rng g1(7);
    aero::util::Rng g2(7);
    const auto a =
        pipeline.generate(s.dataset->test()[0], caption, caption, g1, 0);
    const auto b =
        pipeline.generate(s.dataset->test()[1], caption, caption, g2, 1);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        diff += std::abs(a.data()[i] - b.data()[i]);
    }
    EXPECT_GT(diff, 0.01);
}

TEST(Variants, MakeASceneLayoutTokenReflectsScene) {
    // Two scenes with different object layouts must produce different
    // extra condition tokens (the layout row), same scene -> identical.
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(8);
    AeroDiffusionPipeline mas(PipelineConfig::make_a_scene(), s, rng);
    mas.fit(rng);
    // Access through generation determinism: same reference + seed gives
    // identical output; different reference gives different output (the
    // layout token is the only image-dependent row for this variant).
    const std::string caption = s.generic_test[0].text;
    aero::util::Rng g1(9);
    aero::util::Rng g2(9);
    aero::util::Rng g3(9);
    const auto a =
        mas.generate(s.dataset->test()[0], caption, caption, g1, 0);
    const auto a2 =
        mas.generate(s.dataset->test()[0], caption, caption, g2, 0);
    const auto b =
        mas.generate(s.dataset->test()[1], caption, caption, g3, 1);
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        EXPECT_EQ(a.data()[i], a2.data()[i]);
    }
    double diff = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        diff += std::abs(a.data()[i] - b.data()[i]);
    }
    EXPECT_GT(diff, 1e-3);
}

TEST(Variants, ArldmHistoryChangesWithIndex) {
    // ARLDM's history token depends on the sample index (previous image
    // in the split): same reference + caption + seed but different index
    // must generate different images.
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(10);
    AeroDiffusionPipeline arldm(PipelineConfig::arldm(), s, rng);
    arldm.fit(rng);
    const std::string caption = s.generic_test[0].text;
    aero::util::Rng g1(11);
    aero::util::Rng g2(11);
    const auto a =
        arldm.generate(s.dataset->test()[0], caption, caption, g1, 0);
    const auto b =
        arldm.generate(s.dataset->test()[0], caption, caption, g2, 2);
    double diff = 0.0;
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        diff += std::abs(a.data()[i] - b.data()[i]);
    }
    EXPECT_GT(diff, 1e-4);
}

}  // namespace
