#include <gtest/gtest.h>

#include "detect/detector.hpp"
#include "detect/evaluation.hpp"
#include "scene/dataset.hpp"

namespace {

using namespace aero::detect;
using aero::scene::AerialDataset;
using aero::scene::BoundingBox;
using aero::scene::DatasetConfig;
using aero::scene::ObjectClass;

DetectorConfig small_config() {
    DetectorConfig config;
    config.image_size = 32;
    config.grid = 8;
    config.base_channels = 8;
    return config;
}

TEST(Nms, SuppressesOverlaps) {
    std::vector<BoundingBox> boxes;
    boxes.push_back({10, 10, 10, 10, ObjectClass::kCar, 0.9f});
    boxes.push_back({11, 11, 10, 10, ObjectClass::kCar, 0.8f});  // overlaps #0
    boxes.push_back({40, 40, 10, 10, ObjectClass::kCar, 0.7f});
    const auto kept = nms(boxes, 0.45f);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
    EXPECT_FLOAT_EQ(kept[1].score, 0.7f);
}

TEST(Nms, KeepsAllDisjoint) {
    std::vector<BoundingBox> boxes;
    for (int i = 0; i < 4; ++i) {
        boxes.push_back({static_cast<float>(i * 20), 0, 8, 8,
                         ObjectClass::kCar, 0.5f});
    }
    EXPECT_EQ(nms(boxes, 0.3f).size(), 4u);
}

TEST(BuildTargets, AssignsCellsAndClasses) {
    const DetectorConfig config = small_config();
    DetectorTrainConfig weights;
    std::vector<BoundingBox> boxes;
    // Centre (6,6) -> cell (1,1) at cell size 4.
    boxes.push_back({4, 4, 4, 4, ObjectClass::kTruck, 1.0f});
    const CellTargets targets = build_targets(boxes, config, weights);
    const int s = config.grid;
    // Objectness target is 1 at cell (1,1).
    EXPECT_FLOAT_EQ(targets.target[(0 * s + 1) * s + 1], 1.0f);
    EXPECT_FLOAT_EQ(targets.target[(0 * s + 0) * s + 0], 0.0f);
    // Objectness weight everywhere.
    EXPECT_FLOAT_EQ(targets.weight[(0 * s + 5) * s + 3],
                    weights.objectness_weight);
    // Box weight only at the positive cell.
    EXPECT_FLOAT_EQ(targets.weight[(1 * s + 1) * s + 1], weights.box_weight);
    EXPECT_FLOAT_EQ(targets.weight[(1 * s + 0) * s + 0], 0.0f);
    // Class id recorded.
    EXPECT_EQ(targets.class_ids[1 * s + 1],
              static_cast<int>(ObjectClass::kTruck));
    // One-hot class target.
    const int truck = 5 + static_cast<int>(ObjectClass::kTruck);
    EXPECT_FLOAT_EQ(targets.target[(truck * s + 1) * s + 1], 1.0f);
}

TEST(BuildTargets, LargestBoxWinsContestedCell) {
    const DetectorConfig config = small_config();
    std::vector<BoundingBox> boxes;
    boxes.push_back({4, 4, 2, 2, ObjectClass::kPedestrian, 1.0f});
    boxes.push_back({3, 3, 4, 4, ObjectClass::kBus, 1.0f});  // same cell, larger
    const CellTargets targets = build_targets(boxes, config, {});
    EXPECT_EQ(targets.class_ids[1 * config.grid + 1],
              static_cast<int>(ObjectClass::kBus));
}

TEST(BuildTargets, BoxGeometryEncoded) {
    const DetectorConfig config = small_config();
    std::vector<BoundingBox> boxes;
    boxes.push_back({8, 12, 8, 4, ObjectClass::kCar, 1.0f});  // centre (12,14)
    const CellTargets t = build_targets(boxes, config, {});
    const int s = config.grid;
    const int gx = 3;  // 12/4
    const int gy = 3;  // 14/4
    EXPECT_NEAR(t.target[(1 * s + gy) * s + gx], 0.0f, 0.02f);   // dx
    EXPECT_NEAR(t.target[(2 * s + gy) * s + gx], 0.5f, 1e-5f);   // dy
    EXPECT_NEAR(t.target[(3 * s + gy) * s + gx], 8.0f / 32.0f, 1e-5f);
    EXPECT_NEAR(t.target[(4 * s + gy) * s + gx], 4.0f / 32.0f, 1e-5f);
}

TEST(GridDetectorTest, ForwardShape) {
    aero::util::Rng rng(1);
    const DetectorConfig config = small_config();
    GridDetector detector(config, rng);
    const auto x = aero::tensor::Tensor::randn({2, 3, 32, 32}, rng);
    const auto y = detector.forward(aero::autograd::Var::constant(x));
    EXPECT_EQ(y.value().dim(0), 2);
    EXPECT_EQ(y.value().dim(1), config.cell_channels());
    EXPECT_EQ(y.value().dim(2), 8);
    EXPECT_EQ(y.value().dim(3), 8);
}

TEST(GridDetectorTest, TrainingReducesLoss) {
    DatasetConfig ds_config;
    ds_config.train_size = 8;
    ds_config.test_size = 2;
    ds_config.image_size = 32;
    const AerialDataset dataset(ds_config);

    aero::util::Rng rng(2);
    GridDetector detector(small_config(), rng);
    DetectorTrainConfig train_config;
    train_config.steps = 40;
    train_config.batch_size = 4;
    const TrainStats stats =
        train_detector(detector, dataset.train(), train_config, rng);
    EXPECT_LT(stats.final_loss, stats.first_loss);
}

TEST(GridDetectorTest, DetectReturnsBoxesInsideImage) {
    DatasetConfig ds_config;
    ds_config.train_size = 6;
    ds_config.test_size = 2;
    ds_config.image_size = 32;
    const AerialDataset dataset(ds_config);

    aero::util::Rng rng(3);
    GridDetector detector(small_config(), rng);
    DetectorTrainConfig train_config;
    train_config.steps = 60;
    train_config.batch_size = 4;
    train_detector(detector, dataset.train(), train_config, rng);

    const auto boxes = detector.detect(dataset.test()[0].image, 0.3f);
    for (const BoundingBox& box : boxes) {
        EXPECT_GE(box.x, -16.0f);
        EXPECT_LE(box.x + box.w, 48.0f);
        EXPECT_GT(box.score, 0.0f);
        EXPECT_LE(box.score, 1.0f);
    }
}

TEST(ExtractRois, SizesAndCount) {
    aero::image::Image img(32, 32, {0.5f, 0.5f, 0.5f});
    aero::image::fill_rect(img, 10, 10, 6, 4, {1.0f, 0.0f, 0.0f});
    std::vector<BoundingBox> boxes;
    boxes.push_back({10, 10, 6, 4, ObjectClass::kCar, 0.9f});
    boxes.push_back({0, 0, 3, 3, ObjectClass::kPedestrian, 0.8f});
    const auto rois = extract_rois(img, boxes, 8);
    ASSERT_EQ(rois.size(), 2u);
    EXPECT_EQ(rois[0].width(), 8);
    EXPECT_EQ(rois[0].height(), 8);
    // First ROI is centred on the red rectangle.
    EXPECT_GT(rois[0].at(4, 4, 0), 0.7f);
}

// Property sweep: after NMS at threshold tau, no two kept boxes overlap
// more than tau, scores are sorted descending, and the kept set is a
// subset of the input.
class NmsProperties : public ::testing::TestWithParam<float> {};

TEST_P(NmsProperties, InvariantsOnRandomBoxes) {
    const float tau = GetParam();
    aero::util::Rng rng(500 + static_cast<std::uint64_t>(tau * 100));
    std::vector<BoundingBox> boxes;
    for (int i = 0; i < 60; ++i) {
        BoundingBox b;
        b.x = static_cast<float>(rng.uniform(0.0, 28.0));
        b.y = static_cast<float>(rng.uniform(0.0, 28.0));
        b.w = static_cast<float>(rng.uniform(1.0, 8.0));
        b.h = static_cast<float>(rng.uniform(1.0, 8.0));
        b.score = static_cast<float>(rng.uniform(0.0, 1.0));
        b.cls = static_cast<ObjectClass>(rng.uniform_int(0, 9));
        boxes.push_back(b);
    }
    const auto kept = nms(boxes, tau);
    ASSERT_LE(kept.size(), boxes.size());
    for (std::size_t i = 1; i < kept.size(); ++i) {
        EXPECT_GE(kept[i - 1].score, kept[i].score);
    }
    for (std::size_t i = 0; i < kept.size(); ++i) {
        for (std::size_t j = i + 1; j < kept.size(); ++j) {
            EXPECT_LE(aero::scene::iou(kept[i], kept[j]), tau + 1e-5f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, NmsProperties,
                         ::testing::Values(0.1f, 0.3f, 0.5f, 0.7f));

TEST(AveragePrecision, PerfectDetectorScoresOne) {
    // Detections exactly equal to ground truth, descending scores.
    std::vector<std::vector<BoundingBox>> gt(2);
    gt[0].push_back({2, 2, 6, 6, ObjectClass::kCar, 1.0f});
    gt[1].push_back({10, 10, 4, 4, ObjectClass::kCar, 1.0f});
    std::vector<aero::detect::ScoredDetection> detections;
    detections.push_back({0, {2, 2, 6, 6, ObjectClass::kCar, 0.9f}});
    detections.push_back({1, {10, 10, 4, 4, ObjectClass::kCar, 0.8f}});
    const auto ap =
        aero::detect::average_precision(detections, gt, ObjectClass::kCar);
    EXPECT_EQ(ap.gt_count, 2);
    EXPECT_NEAR(ap.ap, 1.0f, 1e-5f);
}

TEST(AveragePrecision, MissedDetectionsLowerAp) {
    std::vector<std::vector<BoundingBox>> gt(1);
    gt[0].push_back({2, 2, 6, 6, ObjectClass::kCar, 1.0f});
    gt[0].push_back({20, 20, 6, 6, ObjectClass::kCar, 1.0f});
    std::vector<aero::detect::ScoredDetection> detections;
    detections.push_back({0, {2, 2, 6, 6, ObjectClass::kCar, 0.9f}});
    const auto ap =
        aero::detect::average_precision(detections, gt, ObjectClass::kCar);
    EXPECT_LT(ap.ap, 0.7f);
    EXPECT_GT(ap.ap, 0.3f);  // half the recall levels covered
}

TEST(AveragePrecision, FalsePositivesLowerPrecision) {
    std::vector<std::vector<BoundingBox>> gt(1);
    gt[0].push_back({2, 2, 6, 6, ObjectClass::kCar, 1.0f});
    std::vector<aero::detect::ScoredDetection> detections;
    // Higher-scored false positive first.
    detections.push_back({0, {40, 40, 4, 4, ObjectClass::kCar, 0.95f}});
    detections.push_back({0, {2, 2, 6, 6, ObjectClass::kCar, 0.9f}});
    const auto ap =
        aero::detect::average_precision(detections, gt, ObjectClass::kCar);
    EXPECT_LT(ap.ap, 1.0f);
    EXPECT_GT(ap.ap, 0.0f);
}

TEST(AveragePrecision, DuplicateDetectionsCountOnce) {
    std::vector<std::vector<BoundingBox>> gt(1);
    gt[0].push_back({2, 2, 6, 6, ObjectClass::kCar, 1.0f});
    std::vector<aero::detect::ScoredDetection> detections;
    detections.push_back({0, {2, 2, 6, 6, ObjectClass::kCar, 0.9f}});
    detections.push_back({0, {2, 2, 6, 6, ObjectClass::kCar, 0.8f}});
    const auto ap =
        aero::detect::average_precision(detections, gt, ObjectClass::kCar);
    // The duplicate is a false positive at the lower score; AP stays 1.0
    // because max precision at each recall level uses the first match.
    EXPECT_NEAR(ap.ap, 1.0f, 1e-5f);
}

TEST(AveragePrecision, EmptyGroundTruthGivesZero) {
    std::vector<std::vector<BoundingBox>> gt(1);
    const auto ap = aero::detect::average_precision({}, gt,
                                                    ObjectClass::kBus);
    EXPECT_EQ(ap.gt_count, 0);
    EXPECT_FLOAT_EQ(ap.ap, 0.0f);
}

TEST(EvaluateMap, TrainedBeatsUntrained) {
    aero::scene::DatasetConfig ds_config;
    ds_config.train_size = 10;
    ds_config.test_size = 4;
    ds_config.image_size = 32;
    const AerialDataset dataset(ds_config);

    aero::util::Rng rng(77);
    GridDetector untrained(small_config(), rng);
    const auto before =
        aero::detect::evaluate_map(untrained, dataset.test());

    GridDetector trained(small_config(), rng);
    DetectorTrainConfig config;
    config.steps = 120;
    config.batch_size = 6;
    train_detector(trained, dataset.train(), config, rng);
    const auto after = aero::detect::evaluate_map(trained, dataset.test());
    EXPECT_GE(after.mean_ap, before.mean_ap);
    EXPECT_EQ(after.per_class.size(),
              static_cast<std::size_t>(aero::scene::kNumObjectClasses));
}

TEST(EvaluateDetector, PerfectOracleScoresHigh) {
    // evaluate_detector on an untrained detector must not crash and
    // produce values in [0,1].
    DatasetConfig ds_config;
    ds_config.train_size = 2;
    ds_config.test_size = 2;
    ds_config.image_size = 32;
    const AerialDataset dataset(ds_config);
    aero::util::Rng rng(4);
    GridDetector detector(small_config(), rng);
    const DetectionQuality q = evaluate_detector(detector, dataset.test());
    EXPECT_GE(q.recall, 0.0f);
    EXPECT_LE(q.recall, 1.0f);
    EXPECT_GE(q.precision, 0.0f);
    EXPECT_LE(q.precision, 1.0f);
}

}  // namespace
