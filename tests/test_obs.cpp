// Observability-layer tests: metric registry semantics (naming contract,
// kind clashes, deterministic collection order), bucket math, golden
// Prometheus-text and JSON renders over a hermetic registry + manual
// clock, trace span trees and ring-overflow drop accounting, the
// periodic dump thread, rid-tagged logging, service integration
// (per-request span summaries on RequestResult), bitwise neutrality of
// the enable switch, and a TSan stress over concurrent writers,
// renderers and a fault-injected service.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "obs/clock.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace aero;
using namespace aero::obs;
using aero::core::AeroDiffusionPipeline;
using aero::core::Budget;
using aero::core::PipelineConfig;
using aero::core::Substrate;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

/// Restores the process-wide enable switch no matter how a test exits.
class EnabledGuard {
public:
    explicit EnabledGuard(bool on) : prev_(obs::enabled()) {
        obs::set_enabled(on);
    }
    ~EnabledGuard() { obs::set_enabled(prev_); }

private:
    bool prev_;
};

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        util::Rng rng(2025);
        return core::build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

/// Untrained pipeline: finite weights are all these tests need.
const AeroDiffusionPipeline& shared_pipeline() {
    static const AeroDiffusionPipeline pipeline = [] {
        util::Rng rng(7);
        return AeroDiffusionPipeline(PipelineConfig::aero_diffusion(),
                                     shared_substrate(), rng);
    }();
    return pipeline;
}

serve::InferenceRequest valid_request(std::uint64_t seed = 1,
                                      std::size_t sample = 0) {
    const Substrate& s = shared_substrate();
    serve::InferenceRequest request;
    request.reference = s.dataset->test()[sample % s.dataset->test().size()];
    request.source_caption =
        s.keypoint_test[sample % s.keypoint_test.size()].text;
    request.target_caption = request.source_caption;
    request.seed = seed;
    return request;
}

serve::ServiceConfig basic_config() {
    serve::ServiceConfig config;
    config.limits.image_size = Budget::smoke().image_size;
    return config;
}

// ---- clock ------------------------------------------------------------------

TEST(ObsClockTest, ManualClockDrivesStopwatchExactly) {
    ManualClock clock;
    clock.set_ns(1'000);
    Stopwatch watch(&clock);
    EXPECT_DOUBLE_EQ(watch.ms(), 0.0);
    clock.advance_ms(2.5);
    EXPECT_DOUBLE_EQ(watch.ms(), 2.5);
    EXPECT_DOUBLE_EQ(watch.seconds(), 2.5e-3);
    watch.reset();
    EXPECT_DOUBLE_EQ(watch.ms(), 0.0);
    clock.advance_ns(1'000'000);
    EXPECT_DOUBLE_EQ(watch.ms(), 1.0);
}

TEST(ObsClockTest, DefaultClockIsSwappable) {
    ManualClock manual;
    manual.set_ns(5'000'000);
    obs::set_default_clock(&manual);
    Stopwatch watch;  // no explicit clock: must read the manual one
    manual.advance_ms(7.0);
    EXPECT_DOUBLE_EQ(watch.ms(), 7.0);
    obs::set_default_clock(nullptr);
    // Back on the steady clock: time moves on its own again.
    Stopwatch steady;
    EXPECT_GE(steady.ms(), 0.0);
}

// ---- registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeHistogramBasics) {
    MetricsRegistry reg;
    Counter& c = reg.counter("aero_demo_ops_total", "ops");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5);
    // Find-or-create: same name returns the same handle.
    EXPECT_EQ(&reg.counter("aero_demo_ops_total", "ops"), &c);

    Gauge& g = reg.gauge("aero_demo_queue_depth", "depth");
    g.set(3.0);
    g.add(0.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);

    Histogram& h =
        reg.histogram("aero_demo_latency_ms", "latency", {1.0, 2.5});
    h.observe(0.5);   // first bucket (le=1)
    h.observe(1.0);   // boundary lands in its bucket, not the next
    h.observe(2.0);   // second bucket (le=2.5)
    h.observe(99.0);  // +Inf bucket
    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.bounds.size(), 2u);
    ASSERT_EQ(snap.cumulative.size(), 3u);
    EXPECT_EQ(snap.cumulative[0], 2);  // cumulative: 0.5 and 1.0
    EXPECT_EQ(snap.cumulative[1], 3);
    EXPECT_EQ(snap.cumulative[2], 4);
    EXPECT_EQ(snap.count, 4);
    EXPECT_DOUBLE_EQ(snap.sum, 102.5);
}

TEST(MetricsRegistryTest, NamingContractIsEnforced) {
    EXPECT_TRUE(valid_metric_name("aero_serve_ok_total"));
    EXPECT_TRUE(valid_metric_name("aero_pool_tasks"));
    EXPECT_FALSE(valid_metric_name(nullptr));
    EXPECT_FALSE(valid_metric_name(""));
    EXPECT_FALSE(valid_metric_name("requests_total"));  // no aero_ prefix
    EXPECT_FALSE(valid_metric_name("aero_serve"));      // two segments
    EXPECT_FALSE(valid_metric_name("aero__depth"));     // empty segment
    EXPECT_FALSE(valid_metric_name("aero_serve_"));     // trailing _
    EXPECT_FALSE(valid_metric_name("aero_Serve_ok"));   // uppercase
    EXPECT_FALSE(valid_metric_name("aero_serve_ok-2")); // dash

    MetricsRegistry reg;
    EXPECT_THROW(reg.counter("requestCount", "bad"), std::invalid_argument);
    EXPECT_THROW(reg.gauge("aero_demo", "bad"), std::invalid_argument);
    // Kind clash on re-registration.
    reg.counter("aero_demo_ops_total", "ops");
    EXPECT_THROW(reg.gauge("aero_demo_ops_total", "clash"),
                 std::invalid_argument);
}

TEST(MetricsRegistryTest, ProcessInstanceRequiresDeclaredNames) {
    MetricsRegistry& reg = MetricsRegistry::instance();
    // Declared in obs/metric_names.hpp: fine (and stable handle).
    Counter& c = reg.counter("aero_serve_submitted_total",
                             "requests accepted by submit()");
    EXPECT_EQ(&reg.counter("aero_serve_submitted_total", ""), &c);
    // Pattern-conformant but undeclared: declare-then-use violation.
    EXPECT_THROW(reg.counter("aero_demo_undeclared_total", "nope"),
                 std::invalid_argument);
}

TEST(MetricsRegistryTest, CollectIsNameSortedAndRunsCollectors) {
    MetricsRegistry reg;
    reg.counter("aero_zz_last_total", "z");
    reg.gauge("aero_aa_first_depth", "a");
    reg.histogram("aero_mm_mid_ms", "m", {1.0});
    int collector_runs = 0;
    Gauge& pulled = reg.gauge("aero_aa_pulled_depth", "pulled");
    reg.add_collector([&collector_runs, &pulled] {
        ++collector_runs;
        pulled.set(static_cast<double>(collector_runs));
    });

    const std::vector<MetricSample> samples = reg.collect();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples[0].name, "aero_aa_first_depth");
    EXPECT_EQ(samples[1].name, "aero_aa_pulled_depth");
    EXPECT_EQ(samples[2].name, "aero_mm_mid_ms");
    EXPECT_EQ(samples[3].name, "aero_zz_last_total");
    EXPECT_EQ(collector_runs, 1);
    EXPECT_DOUBLE_EQ(samples[1].gauge, 1.0);
    (void)reg.collect();
    EXPECT_EQ(collector_runs, 2);
}

TEST(MetricsRegistryTest, PoolCollectorExportsThreadPoolGauges) {
    // Drive the pool, then check the collector mirrors its counters.
    std::atomic<long long> sink{0};
    util::ThreadPool::instance().parallel_for(
        0, 1024, /*grain=*/64, [&sink](std::int64_t lo, std::int64_t hi) {
            sink.fetch_add(hi - lo, std::memory_order_relaxed);
        });
    EXPECT_EQ(sink.load(), 1024);
    const std::string text = obs::render_text();
    EXPECT_NE(text.find("# TYPE aero_pool_tasks gauge"), std::string::npos);
    EXPECT_NE(text.find("aero_pool_chunks "), std::string::npos);
    EXPECT_NE(text.find("aero_pool_caller_share "), std::string::npos);
    const util::PoolStats stats = util::ThreadPool::instance().stats();
    EXPECT_GE(stats.tasks, 1);
    EXPECT_GE(stats.chunks, stats.caller_chunks);
}

// ---- trace ------------------------------------------------------------------

TEST(TraceTest, SpanTreeRecordsIdsParentsAndOrder) {
    TraceBuffer buffer(16);
    ManualClock clock;
    {
        Trace trace(42, &buffer, &clock);
        EXPECT_EQ(trace.id(), 42u);
        {
            Span outer("condition");
            clock.advance_ms(2.0);
            {
                Span inner("roi_fusion");
                clock.advance_ms(1.0);
            }
        }
        {
            Span sibling("sample");
            clock.advance_ms(30.0);
        }
    }
    const std::vector<SpanRecord> records = buffer.snapshot();
    ASSERT_EQ(records.size(), 3u);  // close order: inner, outer, sibling
    EXPECT_STREQ(records[0].name, "roi_fusion");
    EXPECT_STREQ(records[1].name, "condition");
    EXPECT_STREQ(records[2].name, "sample");
    for (const SpanRecord& r : records) EXPECT_EQ(r.trace_id, 42u);
    // The nested span's parent is the outer span; roots have parent 0.
    EXPECT_EQ(records[0].parent_id, records[1].span_id);
    EXPECT_EQ(records[1].parent_id, 0u);
    EXPECT_EQ(records[2].parent_id, 0u);
    EXPECT_NE(records[1].span_id, records[2].span_id);
    // Durations come straight off the manual clock.
    EXPECT_EQ(records[0].end_ns - records[0].start_ns, 1'000'000);
    EXPECT_EQ(records[1].end_ns - records[1].start_ns, 3'000'000);
    EXPECT_EQ(records[2].end_ns - records[2].start_ns, 30'000'000);
    EXPECT_EQ(buffer.recorded(), 3);
    EXPECT_EQ(buffer.dropped(), 0);
}

TEST(TraceTest, SummaryFoldsRepeatedStagesByNameAndDepth) {
    TraceBuffer buffer(16);
    ManualClock clock;
    Trace trace(7, &buffer, &clock);
    for (int attempt = 0; attempt < 3; ++attempt) {
        Span span("sample");
        clock.advance_ms(4.0);
    }
    {
        Span span("decode");
        clock.advance_ms(1.5);
    }
    const SpanSummary summary = trace.summary();
    ASSERT_EQ(summary.entries.size(), 2u);  // first-open order
    EXPECT_STREQ(summary.entries[0].name, "sample");
    EXPECT_EQ(summary.entries[0].count, 3);
    EXPECT_EQ(summary.entries[0].depth, 0);
    EXPECT_NEAR(summary.entries[0].total_ms, 12.0, 1e-9);
    EXPECT_STREQ(summary.entries[1].name, "decode");
    EXPECT_EQ(summary.entries[1].count, 1);
    EXPECT_EQ(summary.to_string(), "sample=3x12.00ms decode=1x1.50ms");
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
    TraceBuffer buffer(4);
    for (int i = 0; i < 10; ++i) {
        SpanRecord record;
        record.trace_id = static_cast<std::uint64_t>(i);
        record.name = "overflow";
        buffer.record(record);
    }
    EXPECT_EQ(buffer.recorded(), 10);
    EXPECT_EQ(buffer.dropped(), 6);
    const std::vector<SpanRecord> kept = buffer.snapshot();
    ASSERT_EQ(kept.size(), 4u);
    // Oldest-to-newest: the last four records survive.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(kept[static_cast<std::size_t>(i)].trace_id,
                  static_cast<std::uint64_t>(6 + i));
    }
    buffer.clear();
    EXPECT_EQ(buffer.recorded(), 0);
    EXPECT_EQ(buffer.dropped(), 0);
    EXPECT_TRUE(buffer.snapshot().empty());
}

TEST(TraceTest, SpanWithoutTraceRecordsToProcessBufferWithIdZero) {
    const long long before = TraceBuffer::instance().recorded();
    {
        Span span("orphan_stage");
    }
    EXPECT_EQ(TraceBuffer::instance().recorded(), before + 1);
    const std::vector<SpanRecord> records =
        TraceBuffer::instance().snapshot();
    ASSERT_FALSE(records.empty());
    EXPECT_EQ(records.back().trace_id, 0u);
    EXPECT_STREQ(records.back().name, "orphan_stage");
}

TEST(TraceTest, DisabledSpansRecordNothing) {
    const EnabledGuard off(false);
    TraceBuffer buffer(8);
    ManualClock clock;
    MetricsRegistry reg;
    Histogram& h = reg.histogram("aero_demo_stage_ms", "stage", {1.0});
    {
        Trace trace(9, &buffer, &clock);
        Span span("stage", &h);
        clock.advance_ms(5.0);
    }
    EXPECT_EQ(buffer.recorded(), 0);
    EXPECT_EQ(h.snapshot().count, 0);
}

TEST(TraceTest, RequestIdsAreMonotonicAndNonZero) {
    const std::uint64_t a = next_request_id();
    const std::uint64_t b = next_request_id();
    EXPECT_GT(a, 0u);
    EXPECT_GT(b, a);
}

TEST(TraceTest, TraceInstallsAndRestoresLogRid) {
    EXPECT_EQ(util::thread_rid(), 0u);
    {
        Trace outer(11);
        EXPECT_EQ(util::thread_rid(), 11u);
        {
            Trace inner(12);
            EXPECT_EQ(util::thread_rid(), 12u);
        }
        EXPECT_EQ(util::thread_rid(), 11u);
    }
    EXPECT_EQ(util::thread_rid(), 0u);
}

// ---- exposition -------------------------------------------------------------

/// Hermetic fixture the golden tests share: a local registry + a local
/// trace driven by a manual clock, so both renders are exact bytes.
struct GoldenFixture {
    MetricsRegistry registry;
    TraceBuffer buffer{8};
    ManualClock clock;

    GoldenFixture() {
        Counter& requests = registry.counter(
            "aero_demo_requests_total", "line one\nwith \\ backslash");
        requests.inc(2);
        registry.gauge("aero_demo_queue_depth", "queued requests").set(3.5);
        Histogram& latency = registry.histogram("aero_demo_latency_ms",
                                                "request latency",
                                                {1.0, 2.5});
        latency.observe(0.5);
        latency.observe(2.0);
        latency.observe(99.0);

        Trace trace(1, &buffer, &clock);
        {
            Span span("condition");
            clock.advance_ms(2.0);
        }
        {
            Span span("sample");
            clock.advance_ms(30.0);
        }
    }
};

TEST(ExpositionTest, GoldenPrometheusText) {
    GoldenFixture fixture;
    const std::string expected =
        "# HELP aero_demo_latency_ms request latency\n"
        "# TYPE aero_demo_latency_ms histogram\n"
        "aero_demo_latency_ms_bucket{le=\"1\"} 1\n"
        "aero_demo_latency_ms_bucket{le=\"2.5\"} 2\n"
        "aero_demo_latency_ms_bucket{le=\"+Inf\"} 3\n"
        "aero_demo_latency_ms_sum 101.5\n"
        "aero_demo_latency_ms_count 3\n"
        "# HELP aero_demo_queue_depth queued requests\n"
        "# TYPE aero_demo_queue_depth gauge\n"
        "aero_demo_queue_depth 3.5\n"
        "# HELP aero_demo_requests_total line one\\nwith \\\\ backslash\n"
        "# TYPE aero_demo_requests_total counter\n"
        "aero_demo_requests_total 2\n"
        "# HELP aero_trace_spans_recorded_total spans recorded into the "
        "ring\n"
        "# TYPE aero_trace_spans_recorded_total counter\n"
        "aero_trace_spans_recorded_total 2\n"
        "# HELP aero_trace_spans_dropped_total spans overwritten before "
        "being read (ring overflow)\n"
        "# TYPE aero_trace_spans_dropped_total counter\n"
        "aero_trace_spans_dropped_total 0\n"
        "# HELP aero_trace_span_ms per-span-name cumulative time and "
        "count\n"
        "# TYPE aero_trace_span_ms summary\n"
        "aero_trace_span_ms_sum{span=\"condition\"} 2\n"
        "aero_trace_span_ms_count{span=\"condition\"} 1\n"
        "aero_trace_span_ms_sum{span=\"sample\"} 30\n"
        "aero_trace_span_ms_count{span=\"sample\"} 1\n";
    EXPECT_EQ(render_text(fixture.registry, &fixture.buffer), expected);
    // Determinism: rendering twice gives identical bytes.
    EXPECT_EQ(render_text(fixture.registry, &fixture.buffer),
              render_text(fixture.registry, &fixture.buffer));
    // Omitting the trace drops exactly the span appendix.
    const std::string no_trace = render_text(fixture.registry, nullptr);
    EXPECT_EQ(no_trace,
              expected.substr(0, expected.find("# HELP aero_trace_")));
}

TEST(ExpositionTest, GoldenJsonRoundTrips) {
    GoldenFixture fixture;
    const std::string text =
        render_json(fixture.registry, &fixture.buffer);
    EXPECT_EQ(text, render_json(fixture.registry, &fixture.buffer));

    util::JsonValue root;
    std::string error;
    ASSERT_TRUE(util::json_parse(text, &root, &error)) << error;
    const util::JsonValue* metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->size(), 3u);

    const util::JsonValue* counter =
        metrics->find("aero_demo_requests_total");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->find("type")->as_string(), "counter");
    EXPECT_EQ(counter->find("help")->as_string(),
              "line one\nwith \\ backslash");
    EXPECT_DOUBLE_EQ(counter->find("value")->as_number(), 2.0);

    const util::JsonValue* histogram =
        metrics->find("aero_demo_latency_ms");
    ASSERT_NE(histogram, nullptr);
    EXPECT_EQ(histogram->find("type")->as_string(), "histogram");
    const util::JsonValue* buckets = histogram->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->size(), 3u);
    EXPECT_DOUBLE_EQ(buckets->at(0).find("le")->as_number(), 1.0);
    EXPECT_DOUBLE_EQ(buckets->at(0).find("cumulative")->as_number(), 1.0);
    EXPECT_EQ(buckets->at(2).find("le")->as_string(), "+Inf");
    EXPECT_DOUBLE_EQ(buckets->at(2).find("cumulative")->as_number(), 3.0);
    EXPECT_DOUBLE_EQ(histogram->find("sum")->as_number(), 101.5);
    EXPECT_DOUBLE_EQ(histogram->find("count")->as_number(), 3.0);

    const util::JsonValue* trace = root.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_DOUBLE_EQ(trace->find("recorded")->as_number(), 2.0);
    EXPECT_DOUBLE_EQ(trace->find("dropped")->as_number(), 0.0);
    const util::JsonValue* spans = trace->find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_EQ(spans->size(), 2u);
    EXPECT_DOUBLE_EQ(spans->find("sample")->find("total_ms")->as_number(),
                     30.0);
}

TEST(ExpositionTest, PeriodicDumpWritesFileAndStops) {
    const std::string path = "test_obs_periodic_dump.prom";
    std::remove(path.c_str());
    EXPECT_FALSE(start_periodic_dump(0, path));  // disabled period
    ASSERT_TRUE(start_periodic_dump(2, path));
    EXPECT_FALSE(start_periodic_dump(2, path));  // already running
    // Wait for at least one dump cycle to land on disk.
    std::string content;
    for (int i = 0; i < 200 && content.empty(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        std::ifstream in(path);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        content = buffer.str();
    }
    stop_periodic_dump();
    stop_periodic_dump();  // idempotent
    EXPECT_NE(content.find("aero_trace_spans_recorded_total"),
              std::string::npos);
    std::remove(path.c_str());
}

// ---- service integration ----------------------------------------------------

TEST(ObsServiceTest, RequestResultsCarrySpanSummariesAndRequestIds) {
    serve::ServiceConfig config = basic_config();
    config.workers = 2;
    serve::InferenceService service(shared_pipeline(), config);
    const serve::RequestResult a = service.submit(valid_request(50, 0)).get();
    const serve::RequestResult b = service.submit(valid_request(51, 1)).get();
    service.stop();

    ASSERT_EQ(a.outcome, serve::Outcome::kOk) << a.message;
    EXPECT_GT(a.request_id, 0u);
    EXPECT_GT(b.request_id, a.request_id);
    ASSERT_FALSE(a.spans.entries.empty());
    bool saw_condition = false;
    bool saw_sample = false;
    bool saw_decode = false;
    for (const SpanSummaryEntry& entry : a.spans.entries) {
        const std::string name = entry.name;
        saw_condition |= name == "condition";
        saw_sample |= name == "sample";
        saw_decode |= name == "decode";
        EXPECT_GE(entry.count, 1);
        EXPECT_GE(entry.total_ms, 0.0);
    }
    EXPECT_TRUE(saw_condition);
    EXPECT_TRUE(saw_sample);
    EXPECT_TRUE(saw_decode);
    EXPECT_FALSE(a.spans.to_string().empty());

    // The process-wide dump now shows the serve metrics the request fed.
    const std::string text = obs::render_text();
    EXPECT_NE(text.find("# TYPE aero_serve_latency_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("aero_serve_latency_ms_bucket{le=\""),
              std::string::npos);
    EXPECT_NE(text.find("aero_serve_submitted_total"), std::string::npos);
    EXPECT_NE(text.find("aero_serve_breaker_state"), std::string::npos);
    EXPECT_NE(text.find("aero_trace_span_ms_sum{span=\"sample\"}"),
              std::string::npos);
}

TEST(ObsServiceTest, DisablingObsIsBitwiseNeutralOnGeneratedImages) {
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    const auto& sample = shared_substrate().dataset->test()[0];
    const std::string caption =
        shared_substrate().keypoint_test[0].text;

    image::Image enabled_img;
    image::Image disabled_img;
    {
        const EnabledGuard on(true);
        util::Rng rng(1234);
        enabled_img = pipeline.generate(sample, caption, caption, rng);
    }
    {
        const EnabledGuard off(false);
        util::Rng rng(1234);
        disabled_img = pipeline.generate(sample, caption, caption, rng);
    }
    ASSERT_FALSE(enabled_img.empty());
    ASSERT_EQ(enabled_img.data().size(), disabled_img.data().size());
    // Bitwise: the enable switch gates only measurement, never math.
    EXPECT_TRUE(enabled_img.data() == disabled_img.data());
}

// ---- concurrency stress (run under TSan via scripts/check.sh) ---------------

TEST(ObsStressTest, ConcurrentWritersTracesAndRenders) {
    MetricsRegistry reg;
    Counter& ops = reg.counter("aero_demo_stress_total", "ops");
    Gauge& depth = reg.gauge("aero_demo_stress_depth", "depth");
    Histogram& lat =
        reg.histogram("aero_demo_stress_ms", "latency", {1.0, 10.0});
    TraceBuffer buffer(64);  // small: forces overflow under contention

    constexpr int kThreads = 4;
    constexpr int kIterations = 400;
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                ops.inc();
                depth.set(static_cast<double>(i));
                lat.observe(static_cast<double>(i % 20));
                Trace trace(static_cast<std::uint64_t>(t * kIterations + i +
                                                       1),
                            &buffer);
                Span outer("stress_outer");
                Span inner("stress_inner");
            }
        });
    }
    // Concurrent readers: registry collection + trace snapshots.
    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            (void)render_text(reg, &buffer);
            (void)render_json(reg, &buffer);
        }
    });
    for (std::thread& w : writers) w.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(ops.value(), kThreads * kIterations);
    EXPECT_EQ(lat.snapshot().count, kThreads * kIterations);
    EXPECT_EQ(buffer.recorded(), 2LL * kThreads * kIterations);
    EXPECT_EQ(buffer.dropped(), buffer.recorded() - 64);
}

TEST(ObsStressTest, ServiceUnderSlowFaultsWithLiveDumps) {
    util::FaultInjector injector(0x0b5e);
    injector.set_fail_rate("serve_slow", 0.4);
    injector.set_fail_rate("pool_slow", 0.4);

    serve::ServiceConfig config = basic_config();
    config.workers = 3;
    config.queue_capacity = 8;
    config.fault_injector = &injector;
    serve::InferenceService service(shared_pipeline(), config);

    std::atomic<bool> done{false};
    std::thread renderer([&done] {
        while (!done.load(std::memory_order_acquire)) {
            (void)obs::render_text();
            (void)obs::render_json();
        }
    });

    const int total = 12;
    std::vector<std::future<serve::RequestResult>> futures;
    futures.reserve(total);
    for (int i = 0; i < total; ++i) {
        futures.push_back(service.submit(
            valid_request(900 + static_cast<std::uint64_t>(i),
                          static_cast<std::size_t>(i))));
    }
    int resolved = 0;
    for (auto& future : futures) {
        const serve::RequestResult result = future.get();
        if (result.outcome == serve::Outcome::kOk ||
            result.outcome == serve::Outcome::kShed) {
            ++resolved;
        }
        if (result.outcome == serve::Outcome::kOk) {
            EXPECT_GT(result.request_id, 0u);
            EXPECT_FALSE(result.spans.entries.empty());
        }
    }
    service.stop();
    done.store(true, std::memory_order_release);
    renderer.join();
    EXPECT_EQ(resolved, total);
    EXPECT_TRUE(service.stats().balanced());
}

}  // namespace
