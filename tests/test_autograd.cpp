// Numerical gradient checks for every autograd op: the analytic gradient
// from backward() is compared against central finite differences of a
// scalar functional of the op output.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/var.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

using aero::autograd::Var;
using aero::tensor::Tensor;
namespace ag = aero::autograd;

/// Scalarises an arbitrary-output op with a fixed random projection so
/// the check exercises non-uniform upstream gradients.
Var project(const Var& y, const Tensor& weights) {
    const Var w = Var::constant(weights.reshaped(y.value().shape()));
    return ag::sum_all(ag::mul(y, w));
}

/// Checks d(proj(f(x)))/dx against finite differences at every input
/// coordinate of every leaf.
void check_gradients(const std::function<Var(const std::vector<Var>&)>& f,
                     std::vector<Tensor> inputs, float tolerance = 2e-2f,
                     float epsilon = 1e-2f) {
    std::vector<Var> leaves;
    leaves.reserve(inputs.size());
    for (Tensor& t : inputs) leaves.push_back(Var::param(t));

    const Var loss = f(leaves);
    ASSERT_EQ(loss.value().size(), 1);
    loss.backward();

    for (std::size_t leaf_index = 0; leaf_index < leaves.size();
         ++leaf_index) {
        const Tensor analytic = leaves[leaf_index].grad();
        ASSERT_FALSE(analytic.empty())
            << "no gradient reached leaf " << leaf_index;
        for (int i = 0; i < inputs[leaf_index].size(); ++i) {
            auto eval = [&](float delta) {
                std::vector<Var> perturbed;
                for (std::size_t k = 0; k < inputs.size(); ++k) {
                    Tensor t = inputs[k];
                    if (k == leaf_index) t[i] += delta;
                    perturbed.push_back(Var::constant(std::move(t)));
                }
                return f(perturbed).value()[0];
            };
            const float numeric =
                (eval(epsilon) - eval(-epsilon)) / (2.0f * epsilon);
            EXPECT_NEAR(analytic[i], numeric,
                        tolerance * std::max(1.0f, std::abs(numeric)))
                << "leaf " << leaf_index << " coordinate " << i;
        }
    }
}

TEST(Autograd, LeafBackwardSeedsOnes) {
    Var x = Var::param(Tensor::from_values({1.0f, 2.0f}));
    ag::sum_all(x).backward();
    EXPECT_EQ(x.grad()[0], 1.0f);
    EXPECT_EQ(x.grad()[1], 1.0f);
}

TEST(Autograd, GradAccumulatesAcrossUses) {
    Var x = Var::param(Tensor::from_values({3.0f}));
    // y = x + x -> dy/dx = 2
    ag::sum_all(ag::add(x, x)).backward();
    EXPECT_EQ(x.grad()[0], 2.0f);
}

TEST(Autograd, ZeroGradClears) {
    Var x = Var::param(Tensor::from_values({3.0f}));
    ag::sum_all(x).backward();
    x.zero_grad();
    EXPECT_TRUE(x.grad().empty());
}

TEST(Autograd, ConstantGetsNoGradient) {
    Var x = Var::constant(Tensor::from_values({1.0f}));
    Var p = Var::param(Tensor::from_values({2.0f}));
    ag::sum_all(ag::mul(x, p)).backward();
    EXPECT_TRUE(x.grad().empty());
    EXPECT_EQ(p.grad()[0], 1.0f);
}

TEST(GradCheck, AddSubMul) {
    aero::util::Rng rng(1);
    const Tensor proj = Tensor::randn({6}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::mul(ag::add(v[0], v[1]), ag::sub(v[0], v[1])),
                           proj);
        },
        {Tensor::randn({2, 3}, rng), Tensor::randn({2, 3}, rng)});
}

TEST(GradCheck, ScaleAndAddScalar) {
    aero::util::Rng rng(2);
    const Tensor proj = Tensor::randn({4}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::add_scalar(ag::scale(v[0], 2.5f), -1.0f), proj);
        },
        {Tensor::randn({4}, rng)});
}

TEST(GradCheck, Matmul) {
    aero::util::Rng rng(3);
    const Tensor proj = Tensor::randn({2 * 4}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::matmul(v[0], v[1]), proj);
        },
        {Tensor::randn({2, 3}, rng), Tensor::randn({3, 4}, rng)});
}

TEST(GradCheck, Transpose) {
    aero::util::Rng rng(4);
    const Tensor proj = Tensor::randn({6}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::transpose2d(v[0]), proj);
        },
        {Tensor::randn({2, 3}, rng)});
}

TEST(GradCheck, AddRowBias) {
    aero::util::Rng rng(5);
    const Tensor proj = Tensor::randn({6}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::add_row_bias(v[0], v[1]), proj);
        },
        {Tensor::randn({2, 3}, rng), Tensor::randn({3}, rng)});
}

TEST(GradCheck, Activations) {
    aero::util::Rng rng(6);
    const Tensor proj = Tensor::randn({5}, rng);
    for (auto op : {&ag::silu, &ag::tanh, &ag::sigmoid}) {
        check_gradients(
            [&](const std::vector<Var>& v) { return project(op(v[0]), proj); },
            {Tensor::randn({5}, rng)});
    }
}

TEST(GradCheck, ReluAwayFromKink) {
    aero::util::Rng rng(7);
    const Tensor proj = Tensor::randn({5}, rng);
    Tensor x = Tensor::randn({5}, rng);
    for (float& v : x) {
        if (std::abs(v) < 0.1f) v = 0.5f;  // keep clear of the kink
    }
    check_gradients(
        [&](const std::vector<Var>& v) { return project(ag::relu(v[0]), proj); },
        {x});
}

TEST(GradCheck, SoftmaxRows) {
    aero::util::Rng rng(8);
    const Tensor proj = Tensor::randn({6}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::softmax_rows(v[0]), proj);
        },
        {Tensor::randn({2, 3}, rng)});
}

TEST(GradCheck, Conv2d) {
    aero::util::Rng rng(9);
    const Tensor proj = Tensor::randn({2 * 2 * 3 * 3}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::conv2d(v[0], v[1], v[2], {1, 1}), proj);
        },
        {Tensor::randn({2, 2, 3, 3}, rng), Tensor::randn({2, 2, 3, 3}, rng),
         Tensor::randn({2}, rng)});
}

TEST(GradCheck, Conv2dStride2) {
    aero::util::Rng rng(10);
    const Tensor proj = Tensor::randn({1 * 2 * 2 * 2}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::conv2d(v[0], v[1], v[2], {2, 1}), proj);
        },
        {Tensor::randn({1, 1, 4, 4}, rng), Tensor::randn({2, 1, 3, 3}, rng),
         Tensor::randn({2}, rng)});
}

TEST(GradCheck, UpsampleAndPool) {
    aero::util::Rng rng(11);
    const Tensor proj_up = Tensor::randn({1 * 1 * 4 * 4}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::upsample_nearest2x(v[0]), proj_up);
        },
        {Tensor::randn({1, 1, 2, 2}, rng)});
    const Tensor proj_pool = Tensor::randn({1 * 1 * 2 * 2}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::avg_pool2x(v[0]), proj_pool);
        },
        {Tensor::randn({1, 1, 4, 4}, rng)});
}

TEST(GradCheck, AddSpatialBias) {
    aero::util::Rng rng(21);
    const Tensor proj = Tensor::randn({2 * 2 * 2 * 2}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::add_spatial_bias(v[0], v[1]), proj);
        },
        {Tensor::randn({2, 2, 2, 2}, rng), Tensor::randn({2, 2}, rng)});
}

TEST(GradCheck, GlobalAvgPool) {
    aero::util::Rng rng(12);
    const Tensor proj = Tensor::randn({2 * 3}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::global_avg_pool(v[0]), proj);
        },
        {Tensor::randn({2, 3, 2, 2}, rng)});
}

TEST(GradCheck, ReshapeConcatSlice) {
    aero::util::Rng rng(13);
    const Tensor proj = Tensor::randn({2 * 5}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            const Var a = ag::reshape(v[0], {2, 3});
            const Var b = v[1];
            const Var cat = ag::concat({a, b}, 1);  // [2,5]
            return project(ag::slice(cat, 1, 0, 5), proj);
        },
        {Tensor::randn({6}, rng), Tensor::randn({2, 2}, rng)});
}

TEST(GradCheck, LayerNorm) {
    aero::util::Rng rng(14);
    const Tensor proj = Tensor::randn({2 * 4}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::layer_norm_rows(v[0], v[1], v[2]), proj);
        },
        {Tensor::randn({2, 4}, rng), Tensor::randn({4}, rng, 1.0f, 0.2f),
         Tensor::randn({4}, rng)},
        /*tolerance=*/5e-2f, /*epsilon=*/5e-3f);
}

TEST(GradCheck, GroupNorm) {
    aero::util::Rng rng(15);
    const Tensor proj = Tensor::randn({1 * 4 * 2 * 2}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::group_norm(v[0], 2, v[1], v[2]), proj);
        },
        {Tensor::randn({1, 4, 2, 2}, rng), Tensor::randn({4}, rng, 1.0f, 0.2f),
         Tensor::randn({4}, rng)},
        /*tolerance=*/5e-2f, /*epsilon=*/5e-3f);
}

TEST(GradCheck, Embedding) {
    aero::util::Rng rng(16);
    const std::vector<int> ids{0, 2, 2, 1};
    const Tensor proj = Tensor::randn({4 * 3}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            return project(ag::embedding(v[0], ids), proj);
        },
        {Tensor::randn({3, 3}, rng)});
}

TEST(GradCheck, MeanAllAndMse) {
    aero::util::Rng rng(17);
    check_gradients(
        [&](const std::vector<Var>& v) { return ag::mean_all(v[0]); },
        {Tensor::randn({3, 2}, rng)});
    check_gradients(
        [&](const std::vector<Var>& v) { return ag::mse_loss(v[0], v[1]); },
        {Tensor::randn({4}, rng), Tensor::randn({4}, rng)});
}

TEST(GradCheck, CrossEntropy) {
    aero::util::Rng rng(18);
    const std::vector<int> targets{1, 0, 2};
    check_gradients(
        [&](const std::vector<Var>& v) {
            return ag::cross_entropy_rows(v[0], targets);
        },
        {Tensor::randn({3, 3}, rng)});
}

// Parameterized composite-graph gradient check over assorted shapes:
// a two-layer computation mixing matmul, bias, activation and slicing.
class CompositeGradCheck
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompositeGradCheck, DeepGraphGradients) {
    const auto [m, k] = GetParam();
    aero::util::Rng rng(800 + m * 10 + k);
    const Tensor proj = Tensor::randn({m * k}, rng);
    check_gradients(
        [&](const std::vector<Var>& v) {
            const Var h = ag::silu(ag::add_row_bias(
                ag::matmul(v[0], v[1]), v[2]));          // [m,k]
            const Var g = ag::softmax_rows(
                ag::matmul(h, ag::transpose2d(v[1])));   // [m,k_in]
            const Var mixed = ag::matmul(g, v[1]);       // [m,k]
            return project(ag::mul(mixed, h), proj);
        },
        {Tensor::randn({m, k}, rng), Tensor::randn({k, k}, rng),
         Tensor::randn({k}, rng)},
        /*tolerance=*/5e-2f, /*epsilon=*/5e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompositeGradCheck,
                         ::testing::Values(std::make_tuple(2, 3),
                                           std::make_tuple(1, 4),
                                           std::make_tuple(3, 2)));

TEST(Autograd, MseLossValue) {
    const Var a = Var::param(Tensor::from_values({1.0f, 2.0f}));
    const Var b = Var::constant(Tensor::from_values({0.0f, 0.0f}));
    const Var loss = ag::mse_loss(a, b);
    EXPECT_NEAR(loss.value()[0], 2.5f, 1e-6f);
}

TEST(Autograd, CrossEntropyMatchesUniform) {
    // Uniform logits over 4 classes -> loss = ln 4.
    const Var logits = Var::param(Tensor::zeros({2, 4}));
    const Var loss = ag::cross_entropy_rows(logits, {0, 3});
    EXPECT_NEAR(loss.value()[0], std::log(4.0f), 1e-5f);
}

TEST(Autograd, DiamondGraphGradient) {
    // y = (x*x) + (x*x) reused node: dy/dx = 4x.
    Var x = Var::param(Tensor::from_values({3.0f}));
    const Var sq = ag::mul(x, x);
    ag::sum_all(ag::add(sq, sq)).backward();
    EXPECT_NEAR(x.grad()[0], 12.0f, 1e-5f);
}

}  // namespace
