// Serving-layer tests: boundary validation (incl. fuzz), the circuit
// breaker state machine, and the threaded InferenceService under load
// shedding, deadlines, injected transient/encoder faults and a mixed
// soak. The accounting invariant checked throughout: every submit()
// resolves with exactly one typed outcome and stats().balanced() holds.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "serve/service.hpp"
#include "text/parser.hpp"
#include "text/vocabulary.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace {

using namespace aero;
using namespace aero::serve;
using aero::core::AeroDiffusionPipeline;
using aero::core::Budget;
using aero::core::PipelineConfig;
using aero::core::Substrate;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        util::Rng rng(2025);
        return core::build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

/// Untrained (randomly initialised) pipeline: weights are finite, which
/// is all the serving tests need, and it keeps the fixture fast.
const AeroDiffusionPipeline& shared_pipeline() {
    static const AeroDiffusionPipeline pipeline = [] {
        util::Rng rng(7);
        return AeroDiffusionPipeline(PipelineConfig::aero_diffusion(),
                                     shared_substrate(), rng);
    }();
    return pipeline;
}

InferenceRequest valid_request(std::uint64_t seed = 1,
                               std::size_t sample = 0) {
    const Substrate& s = shared_substrate();
    InferenceRequest request;
    request.reference = s.dataset->test()[sample % s.dataset->test().size()];
    request.source_caption =
        s.keypoint_test[sample % s.keypoint_test.size()].text;
    request.target_caption = request.source_caption;
    request.seed = seed;
    return request;
}

ValidationLimits smoke_limits() {
    ValidationLimits limits;
    limits.image_size = Budget::smoke().image_size;
    return limits;
}

ServiceConfig basic_config() {
    ServiceConfig config;
    config.limits = smoke_limits();
    return config;
}

void expect_finite_image(const image::Image& img, int size) {
    ASSERT_FALSE(img.empty());
    EXPECT_EQ(img.width(), size);
    EXPECT_EQ(img.height(), size);
    for (const float v : img.data()) ASSERT_TRUE(std::isfinite(v));
}

// ---- validation -------------------------------------------------------------

TEST(ServeValidationTest, AcceptsGrammarCaptionsAndClampsRoi) {
    const ValidationLimits limits = smoke_limits();
    InferenceRequest request = valid_request();
    std::string message;
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kNone);

    // Partially out-of-bounds inpaint region is clamped, not rejected.
    request.task = TaskKind::kInpaint;
    request.region = {-4.0f, -4.0f, 12.0f, 12.0f};
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kNone);
    EXPECT_GE(request.region.x, 0.0f);
    EXPECT_GE(request.region.y, 0.0f);
    EXPECT_LE(request.region.x + request.region.w,
              static_cast<float>(limits.image_size));
}

TEST(ServeValidationTest, TypedRejections) {
    const ValidationLimits limits = smoke_limits();
    std::string message;

    InferenceRequest request = valid_request();
    request.source_caption = "   ";
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kEmptyCaption);

    request = valid_request();
    request.target_caption = std::string(limits.max_caption_chars + 1, 'a');
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kCaptionTooLong);

    request = valid_request();
    request.source_caption = "an aerial\x01view";
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kCaptionNotText);

    request = valid_request();
    request.source_caption = "qwfp zxcv jklh wruy mnbt asdg";
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kCaptionUnknownWords);

    request = valid_request();
    request.reference.image.at(3, 3, 1) =
        std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadReferenceImage);

    request = valid_request();
    request.reference.image = image::Image(8, 8);
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadReferenceImage);

    request = valid_request();
    request.deadline_ms = -1.0;
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadDeadline);

    request = valid_request();
    request.deadline_ms = std::numeric_limits<double>::infinity();
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadDeadline);

    request = valid_request();
    request.task = TaskKind::kEdit;
    request.strength = 0.0f;
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadStrength);

    // Non-finite strengths must die here: NaN sails through std::clamp,
    // and downstream it would reach a float -> size_t cast (UB).
    request = valid_request();
    request.task = TaskKind::kEdit;
    request.strength = std::numeric_limits<float>::quiet_NaN();
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadStrength);
    request.strength = std::numeric_limits<float>::infinity();
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadStrength);

    request = valid_request();
    request.task = TaskKind::kInpaint;
    request.region = {200.0f, 200.0f, 4.0f, 4.0f};  // fully outside
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadRegion);

    request = valid_request();
    request.task = TaskKind::kInpaint;
    request.region = {2.0f, 2.0f, std::numeric_limits<float>::quiet_NaN(),
                      4.0f};
    EXPECT_EQ(validate_request(request, limits, &message),
              InvalidReason::kBadRegion);
}

/// Fuzz-style garbage through every boundary parser: request validation,
/// the caption parser, the vocabulary tokeniser and the strict JSON
/// parser must type or reject everything — and never crash. (Run under
/// ASan/UBSan via scripts/check.sh.)
TEST(ServeValidationTest, FuzzGarbageNeverCrashes) {
    const ValidationLimits limits = smoke_limits();
    util::Rng rng(0xfa22);
    for (int i = 0; i < 300; ++i) {
        const int length = rng.uniform_int(0, 600);
        std::string garbage(static_cast<std::size_t>(length), '\0');
        for (char& c : garbage) {
            c = static_cast<char>(rng.uniform_int(0, 255));
        }

        InferenceRequest request = valid_request();
        request.task = static_cast<TaskKind>(rng.uniform_int(0, 2));
        request.source_caption = garbage;
        request.target_caption = garbage;
        request.strength = static_cast<float>(rng.uniform(-2.0, 2.0));
        request.deadline_ms = rng.uniform(-1e9, 1e9);
        request.region = {static_cast<float>(rng.uniform(-100.0, 100.0)),
                          static_cast<float>(rng.uniform(-100.0, 100.0)),
                          static_cast<float>(rng.uniform(-50.0, 50.0)),
                          static_cast<float>(rng.uniform(-50.0, 50.0))};
        std::string message;
        (void)validate_request(request, limits, &message);

        // Truncated / oversized / binary input through the text stack.
        (void)text::parse_caption(garbage);
        (void)text::Vocabulary::aerial().encode(garbage);
        (void)text::parse_scenario(garbage);

        // ... and through the strict JSON parser.
        util::JsonValue parsed;
        std::string error;
        (void)util::json_parse(garbage, &parsed, &error);
    }
    // Truncations of a well-formed document must all be rejected or
    // parsed — never crash or hang.
    const std::string doc =
        "{\"format\": 2, \"name\": \"AeroDiffusion\", \"step\": 64}";
    for (std::size_t keep = 0; keep < doc.size(); ++keep) {
        util::JsonValue parsed;
        EXPECT_FALSE(util::json_parse(doc.substr(0, keep), &parsed));
    }
}

// ---- pipeline entry-point hardening ----------------------------------------

TEST(PipelineHardeningTest, RejectsNonFiniteReference) {
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    util::Rng rng(3);
    scene::AerialSample bad = shared_substrate().dataset->test()[0];
    bad.image.at(0, 0, 0) = std::numeric_limits<float>::infinity();

    core::GenerateControl control;
    const image::Image out =
        pipeline.generate(bad, "an aerial view", "an aerial view", rng, -1,
                          &control);
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(control.error.empty());

    // Control-free call sites get an empty image, not UB.
    EXPECT_TRUE(pipeline.generate(bad, "a", "a", rng).empty());
    EXPECT_TRUE(pipeline.generate_edit(bad, "a", "a", 0.5f, rng).empty());
}

TEST(PipelineHardeningTest, RejectsWrongSizeReference) {
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    util::Rng rng(3);
    scene::AerialSample bad = shared_substrate().dataset->test()[0];
    bad.image = image::Image(4, 4, {0.5f, 0.5f, 0.5f});
    EXPECT_TRUE(pipeline.generate(bad, "a", "a", rng).empty());
}

TEST(PipelineHardeningTest, ClampRegionContract) {
    std::string error;
    // NaN -> reject.
    EXPECT_FALSE(AeroDiffusionPipeline::clamp_region(
        {std::nanf(""), 0.0f, 4.0f, 4.0f}, 32, &error));
    // Non-positive size -> reject.
    EXPECT_FALSE(
        AeroDiffusionPipeline::clamp_region({1.0f, 1.0f, 0.0f, 4.0f}, 32,
                                            &error));
    EXPECT_FALSE(
        AeroDiffusionPipeline::clamp_region({1.0f, 1.0f, 4.0f, -2.0f}, 32,
                                            &error));
    // Entirely outside -> reject.
    EXPECT_FALSE(
        AeroDiffusionPipeline::clamp_region({40.0f, 0.0f, 4.0f, 4.0f}, 32,
                                            &error));
    // Partial overlap -> clamped to the intersection.
    const auto clamped = AeroDiffusionPipeline::clamp_region(
        {-2.0f, 30.0f, 6.0f, 6.0f}, 32, &error);
    ASSERT_TRUE(clamped);
    EXPECT_FLOAT_EQ(clamped->x, 0.0f);
    EXPECT_FLOAT_EQ(clamped->w, 4.0f);
    EXPECT_FLOAT_EQ(clamped->y, 30.0f);
    EXPECT_FLOAT_EQ(clamped->h, 2.0f);

    const auto inpainted = AeroDiffusionPipeline::clamp_region(
        {8.0f, 8.0f, 8.0f, 8.0f}, 32, &error);
    ASSERT_TRUE(inpainted);
    EXPECT_FLOAT_EQ(inpainted->w, 8.0f);
}

TEST(PipelineHardeningTest, InpaintWithWildRegionIsSafe) {
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    const auto& sample = shared_substrate().dataset->test()[0];
    util::Rng rng(11);
    // Fully outside: typed rejection, empty image.
    core::GenerateControl control;
    EXPECT_TRUE(pipeline
                    .generate_inpaint(sample, {900.0f, 900.0f, 5.0f, 5.0f},
                                      "a", "a", rng, -1, &control)
                    .empty());
    EXPECT_FALSE(control.error.empty());
    // Partially outside: clamped and rendered.
    const image::Image out = pipeline.generate_inpaint(
        sample, {-10.0f, -10.0f, 20.0f, 20.0f}, "a", "a", rng);
    expect_finite_image(out, shared_substrate().budget.image_size);
}

// ---- circuit breaker --------------------------------------------------------

TEST(CircuitBreakerTest, TripCooldownProbeRecover) {
    CircuitBreaker breaker({/*failure_threshold=*/2, /*open_cooldown=*/3});
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

    EXPECT_TRUE(breaker.allow_conditional());
    breaker.on_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.on_failure();  // second consecutive failure trips it
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.trips(), 1);

    // Cooldown: requests are forced unconditional while Open.
    EXPECT_FALSE(breaker.allow_conditional());
    EXPECT_FALSE(breaker.allow_conditional());
    // Cooldown exhausted: this caller carries the half-open probe.
    EXPECT_TRUE(breaker.allow_conditional());
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    // Only one probe in flight; concurrent requests stay degraded.
    EXPECT_FALSE(breaker.allow_conditional());

    // probe failed: re-open for another cooldown
    breaker.on_failure(/*held_probe=*/true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.trips(), 2);
    EXPECT_FALSE(breaker.allow_conditional());
    EXPECT_FALSE(breaker.allow_conditional());
    EXPECT_TRUE(breaker.allow_conditional());  // next probe
    breaker.on_success(/*held_probe=*/true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.recoveries(), 1);

    // A success resets the failure streak.
    breaker.on_failure();
    breaker.on_success();
    breaker.on_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, AbandonedProbeFreesTheSlot) {
    CircuitBreaker breaker({/*failure_threshold=*/1, /*open_cooldown=*/1});
    breaker.on_failure();  // trips immediately
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    bool probe = false;
    EXPECT_TRUE(breaker.allow_conditional(&probe));
    EXPECT_TRUE(probe);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_FALSE(breaker.allow_conditional(&probe));
    EXPECT_FALSE(probe);

    // The holder bails without a verdict (deadline cancellation): the
    // slot frees, the state stays HalfOpen, and the next request
    // carries a fresh probe instead of the breaker wedging.
    breaker.on_probe_abandoned();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_TRUE(breaker.allow_conditional(&probe));
    EXPECT_TRUE(probe);
    breaker.on_success(/*held_probe=*/true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.recoveries(), 1);
}

// Regression (found by the thread-safety annotation pass): a request
// admitted while the breaker was still Closed can deliver its verdict
// after a trip + cooldown has moved the breaker to HalfOpen. That stale
// verdict must neither close the breaker (fake recovery without a
// probe) nor re-open it (resetting the cooldown under the in-flight
// probe). Only the probe holder transitions out of HalfOpen.
TEST(CircuitBreakerTest, StaleVerdictCannotCloseHalfOpenBreaker) {
    CircuitBreaker breaker({/*failure_threshold=*/1, /*open_cooldown=*/1});
    // A slow request admitted while Closed...
    EXPECT_TRUE(breaker.allow_conditional());
    // ...then the breaker trips and reaches HalfOpen via another request.
    breaker.on_failure();
    bool probe = false;
    EXPECT_TRUE(breaker.allow_conditional(&probe));
    EXPECT_TRUE(probe);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

    // The slow request's success arrives: stale, ignored.
    breaker.on_success(/*held_probe=*/false);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(breaker.recoveries(), 0);

    // And its failure twin would be equally ignored: the cooldown is
    // not reset and the probe slot stays owned by the real probe.
    breaker.on_failure(/*held_probe=*/false);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_EQ(breaker.trips(), 1);

    // The real probe's verdict still decides recovery.
    breaker.on_success(/*held_probe=*/true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_EQ(breaker.recoveries(), 1);
}

TEST(CircuitBreakerTest, StaleFailureWhileOpenDoesNotExtendCooldown) {
    CircuitBreaker breaker({/*failure_threshold=*/1, /*open_cooldown=*/2});
    EXPECT_TRUE(breaker.allow_conditional());  // slow request, Closed
    breaker.on_failure();                      // trips Open
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // One cooldown request passes, then the slow request's failure
    // lands. It must not restart the cooldown: the next distinct
    // request still wins the probe.
    EXPECT_FALSE(breaker.allow_conditional());
    breaker.on_failure(/*held_probe=*/false);
    EXPECT_EQ(breaker.trips(), 1);
    bool probe = false;
    EXPECT_TRUE(breaker.allow_conditional(&probe));
    EXPECT_TRUE(probe);
}

TEST(CircuitBreakerTest, RetryAttemptsDoNotCountTowardCooldown) {
    CircuitBreaker breaker({/*failure_threshold=*/1, /*open_cooldown=*/2});
    breaker.on_failure();
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // Retry attempts (count_cooldown=false) leave the cooldown alone,
    // no matter how many a single request burns.
    for (int i = 0; i < 8; ++i) {
        EXPECT_FALSE(breaker.allow_conditional(nullptr, false));
    }
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    // Exactly open_cooldown distinct requests reach the probe.
    EXPECT_FALSE(breaker.allow_conditional());
    bool probe = false;
    EXPECT_TRUE(breaker.allow_conditional(&probe));
    EXPECT_TRUE(probe);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

// ---- service ----------------------------------------------------------------

TEST(InferenceServiceTest, HappyPathServesConditionalSamples) {
    ServiceConfig config = basic_config();
    config.workers = 2;
    InferenceService service(shared_pipeline(), config);

    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < 4; ++i) {
        futures.push_back(
            service.submit(valid_request(100 + i, i)));
    }
    for (auto& future : futures) {
        const RequestResult result = future.get();
        EXPECT_EQ(result.outcome, Outcome::kOk) << result.message;
        EXPECT_EQ(result.attempts, 1);
        expect_finite_image(result.image,
                            shared_substrate().budget.image_size);
        EXPECT_GE(result.latency_ms, result.queue_ms);
    }
    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 4);
    EXPECT_EQ(stats.outcome(Outcome::kOk), 4);
    EXPECT_TRUE(stats.balanced());
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kClosed);
}

TEST(InferenceServiceTest, DeterministicAcrossWorkerAssignment) {
    ServiceConfig config = basic_config();
    config.workers = 3;
    InferenceService service(shared_pipeline(), config);
    auto a = service.submit(valid_request(42, 1)).get();
    auto b = service.submit(valid_request(42, 1)).get();
    ASSERT_EQ(a.outcome, Outcome::kOk);
    ASSERT_EQ(b.outcome, Outcome::kOk);
    EXPECT_EQ(a.image.data(), b.image.data());
}

TEST(InferenceServiceTest, PipelineRejectsNonFiniteEditStrength) {
    // Defence in depth below validation: a caller driving the pipeline
    // directly with a NaN/Inf strength gets a typed rejection, not a
    // NaN-poisoned clamp feeding a size_t cast.
    util::Rng rng(9);
    const scene::AerialSample& reference = shared_substrate().dataset->test()[0];
    const std::string caption = valid_request().source_caption;
    for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity()}) {
        core::GenerateControl control;
        const image::Image out = shared_pipeline().generate_edit(
            reference, caption, caption, bad, rng, -1, &control);
        EXPECT_TRUE(out.empty());
        EXPECT_FALSE(control.error.empty());
    }
}

TEST(InferenceServiceTest, BatchedOutputBitwiseEqualsSequential) {
    // The tentpole contract end to end: a service whose workers hand
    // sampling jobs to the continuous step batcher returns images
    // bitwise identical to a batching-disabled service, per seed,
    // across generate/edit/inpaint.
    const bool gate = serve::batching_enabled();
    serve::set_batching_enabled(true);
    const auto requests = [] {
        std::vector<InferenceRequest> batch;
        for (int i = 0; i < 6; ++i) {
            InferenceRequest request = valid_request(500 + i, i);
            if (i % 3 == 1) {
                request.task = TaskKind::kEdit;
                request.strength = 0.5f;
            } else if (i % 3 == 2) {
                request.task = TaskKind::kInpaint;
                request.region = {2.0f, 2.0f, 8.0f, 8.0f};
            }
            batch.push_back(std::move(request));
        }
        return batch;
    };

    const auto run = [&](bool batched) {
        ServiceConfig config = basic_config();
        config.workers = batched ? 4 : 2;
        config.batch.enabled = batched;
        config.batch.batch_max = 4;
        InferenceService service(shared_pipeline(), config);
        std::vector<std::future<RequestResult>> futures;
        for (InferenceRequest& request : requests()) {
            futures.push_back(service.submit(std::move(request)));
        }
        std::vector<image::Image> images;
        for (auto& future : futures) {
            RequestResult result = future.get();
            EXPECT_EQ(result.outcome, Outcome::kOk) << result.message;
            images.push_back(std::move(result.image));
        }
        service.stop();
        EXPECT_TRUE(service.stats().balanced());
        return images;
    };

    const std::vector<image::Image> sequential = run(false);
    const std::vector<image::Image> batched = run(true);
    serve::set_batching_enabled(gate);
    ASSERT_EQ(sequential.size(), batched.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i].data(), batched[i].data())
            << "request " << i << " diverged under batching";
    }
}

TEST(InferenceServiceTest, ShedsWhenQueueIsFull) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.queue_capacity = 2;
    InferenceService service(shared_pipeline(), config);

    const int total = 12;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(service.submit(valid_request(200 + i, i)));
    }
    int ok = 0;
    int shed = 0;
    for (auto& future : futures) {
        const RequestResult result = future.get();
        ASSERT_TRUE(result.outcome == Outcome::kOk ||
                    result.outcome == Outcome::kShed)
            << outcome_name(result.outcome);
        if (result.outcome == Outcome::kOk) {
            ++ok;
        } else {
            ++shed;
            EXPECT_TRUE(result.image.empty());
            EXPECT_EQ(result.attempts, 0);
        }
    }
    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.outcome(Outcome::kOk), ok);
    EXPECT_EQ(stats.outcome(Outcome::kShed), shed);
    EXPECT_TRUE(stats.balanced());
    EXPECT_GT(shed, 0);  // 1 worker, capacity 2, 12 fast submits
    EXPECT_GT(ok, 0);
}

TEST(InferenceServiceTest, InvalidRequestsResolveImmediately) {
    InferenceService service(shared_pipeline(), basic_config());
    InferenceRequest bad = valid_request();
    bad.source_caption.clear();
    const RequestResult result = service.submit(std::move(bad)).get();
    EXPECT_EQ(result.outcome, Outcome::kInvalid);
    EXPECT_EQ(result.invalid_reason, InvalidReason::kEmptyCaption);
    EXPECT_TRUE(result.image.empty());
    EXPECT_TRUE(service.stats().balanced());
}

TEST(InferenceServiceTest, DeadlinedRequestsNeverHalfRendered) {
    ServiceConfig config = basic_config();
    config.workers = 2;
    InferenceService service(shared_pipeline(), config);

    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < 6; ++i) {
        InferenceRequest request = valid_request(300 + i, i);
        request.deadline_ms = 0.01;  // expires before any step completes
        futures.push_back(service.submit(std::move(request)));
    }
    for (auto& future : futures) {
        const RequestResult result = future.get();
        EXPECT_EQ(result.outcome, Outcome::kTimeout) << result.message;
        EXPECT_TRUE(result.image.empty());
    }
    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.outcome(Outcome::kTimeout), 6);
    EXPECT_TRUE(stats.balanced());
}

TEST(InferenceServiceTest, RetriesRecoverFromTransientFaults) {
    util::FaultInjector injector(0xbeef);
    injector.set_fail_rate("serve_transient", 0.5);

    ServiceConfig config = basic_config();
    config.workers = 2;
    config.queue_capacity = 16;  // no shedding: this test isolates retry
    config.max_attempts = 6;
    config.backoff_base_ms = 0.1;
    config.backoff_max_ms = 0.5;
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    const int total = 10;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(service.submit(valid_request(400 + i, i)));
    }
    int ok = 0;
    for (auto& future : futures) {
        const RequestResult result = future.get();
        ASSERT_TRUE(result.outcome == Outcome::kOk ||
                    result.outcome == Outcome::kFailed)
            << outcome_name(result.outcome);
        if (result.outcome == Outcome::kOk) ++ok;
    }
    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_TRUE(stats.balanced());
    // At 50% transient rate and 6 attempts nearly all recover, and the
    // recovery must show up as retries.
    EXPECT_GE(ok, total / 2);
    EXPECT_GT(stats.retries, 0);
    EXPECT_GT(injector.injected_count(), 0);
}

TEST(InferenceServiceTest, BreakerTripsThenRecoversViaProbe) {
    util::FaultInjector injector(0xc0de);
    injector.set_fail_rate("condition_encoder", 1.0);

    ServiceConfig config = basic_config();
    config.workers = 1;  // serialise requests for a deterministic walk
    config.max_attempts = 2;
    config.backoff_base_ms = 0.05;
    config.breaker.failure_threshold = 2;
    config.breaker.open_cooldown = 2;
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    // Outage: every conditional attempt fails. Requests still complete —
    // degraded — and the repeated failures trip the breaker.
    for (int i = 0; i < 3; ++i) {
        const RequestResult result =
            service.submit(valid_request(500 + i, i)).get();
        EXPECT_EQ(result.outcome, Outcome::kDegraded) << result.message;
        expect_finite_image(result.image,
                            shared_substrate().budget.image_size);
    }
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kOpen);
    const int trips_after_outage = service.stats().breaker_trips;
    EXPECT_GE(trips_after_outage, 1);

    // While the outage lasts, requests keep completing — degraded, with
    // a finite unconditional image — whether forced by the open breaker
    // or via a failed half-open probe.
    const RequestResult open_result =
        service.submit(valid_request(510, 0)).get();
    EXPECT_EQ(open_result.outcome, Outcome::kDegraded);

    // Encoder heals; after the cooldown a probe closes the breaker.
    injector.set_fail_rate("condition_encoder", 0.0);
    bool recovered = false;
    for (int i = 0; i < 6; ++i) {
        const RequestResult result =
            service.submit(valid_request(520 + i, i)).get();
        if (result.outcome == Outcome::kOk) {
            recovered = true;
            break;
        }
        EXPECT_EQ(result.outcome, Outcome::kDegraded);
    }
    EXPECT_TRUE(recovered);
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kClosed);
    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.breaker_recoveries, 1);
    EXPECT_TRUE(stats.balanced());
}

TEST(InferenceServiceTest, ConcurrentStopJoinsWorkersOnce) {
    InferenceService service(shared_pipeline(), basic_config());
    std::future<RequestResult> pending =
        service.submit(valid_request(800, 0));
    // An explicit stop() racing another (stands in for the destructor):
    // exactly one caller may join each worker thread.
    std::thread racer([&service] { service.stop(); });
    service.stop();
    racer.join();
    // stop() drains queued work before joining, so the request still
    // resolves with a real outcome.
    EXPECT_EQ(pending.get().outcome, Outcome::kOk);
    EXPECT_TRUE(service.stats().balanced());
}

TEST(InferenceServiceTest, AbandonedProbeDoesNotWedgeBreaker) {
    util::FaultInjector injector(0xabcd);
    injector.set_fail_rate("condition_encoder", 1.0);

    ServiceConfig config = basic_config();
    config.workers = 1;
    config.max_attempts = 1;
    config.breaker.failure_threshold = 1;
    config.breaker.open_cooldown = 1;
    config.slow_fault_ms = 100.0;
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    // One failed conditional attempt trips the breaker.
    EXPECT_EQ(service.submit(valid_request(700, 0)).get().outcome,
              Outcome::kDegraded);
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kOpen);

    // The next request wins the half-open probe, then stalls past its
    // deadline (injected slow step) and is cancelled between denoising
    // steps — an exit that once leaked the probe slot forever.
    injector.set_fail_rate("serve_slow", 1.0);
    InferenceRequest stalled = valid_request(701, 1);
    stalled.deadline_ms = 30.0;
    const RequestResult cancelled = service.submit(std::move(stalled)).get();
    EXPECT_EQ(cancelled.outcome, Outcome::kTimeout) << cancelled.message;
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kHalfOpen);

    // Everything heals: the freed slot lets the very next request
    // probe, succeed, and close the breaker.
    injector.set_fail_rate("serve_slow", 0.0);
    injector.set_fail_rate("condition_encoder", 0.0);
    const RequestResult recovered =
        service.submit(valid_request(702, 2)).get();
    EXPECT_EQ(recovered.outcome, Outcome::kOk) << recovered.message;
    EXPECT_EQ(service.breaker_state(), CircuitBreaker::State::kClosed);
    service.stop();

    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.breaker_recoveries, 1);
    EXPECT_TRUE(stats.balanced());
}

/// Acceptance soak: random encoder failures, transient faults, malformed
/// requests, impossible deadlines and queue overload all at once. The
/// service must finish with zero crashes, zero non-finite outputs, a
/// typed outcome per request, and balanced accounting.
TEST(InferenceServiceTest, FaultInjectionSoak) {
    util::FaultInjector injector(0x50a4);
    injector.set_fail_rate("condition_encoder", 0.3);
    injector.set_fail_rate("serve_transient", 0.15);

    ServiceConfig config = basic_config();
    config.workers = 3;
    config.queue_capacity = 5;
    config.max_attempts = 3;
    config.backoff_base_ms = 0.1;
    config.backoff_max_ms = 1.0;
    config.breaker.failure_threshold = 3;
    config.breaker.open_cooldown = 3;
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    const int total = 36;
    const int size = shared_substrate().budget.image_size;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        InferenceRequest request = valid_request(600 + i, i);
        switch (i % 9) {
            case 3:  // malformed: binary caption
                request.source_caption = std::string("\xff\xfe garbage");
                break;
            case 5:  // malformed: poisoned pixels
                request.reference.image.at(1, 1, 0) =
                    std::numeric_limits<float>::quiet_NaN();
                break;
            case 6:  // impossible deadline
                request.deadline_ms = 0.01;
                break;
            case 7:
                request.task = TaskKind::kEdit;
                request.strength = 0.4f;
                break;
            case 8:
                request.task = TaskKind::kInpaint;
                request.region = {4.0f, 4.0f, 12.0f, 12.0f};
                break;
            default: break;
        }
        futures.push_back(service.submit(std::move(request)));
    }

    int with_image = 0;
    for (int i = 0; i < total; ++i) {
        const RequestResult result = futures[static_cast<std::size_t>(i)].get();
        const int o = static_cast<int>(result.outcome);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, kNumOutcomes);
        if (result.outcome == Outcome::kOk ||
            result.outcome == Outcome::kDegraded) {
            expect_finite_image(result.image, size);
            ++with_image;
        } else {
            EXPECT_TRUE(result.image.empty());
        }
        if (i % 9 == 3 || i % 9 == 5) {
            EXPECT_EQ(result.outcome, Outcome::kInvalid);
        }
        if (i % 9 == 6) {  // impossible deadline: timed out unless shed
            EXPECT_TRUE(result.outcome == Outcome::kTimeout ||
                        result.outcome == Outcome::kShed)
                << outcome_name(result.outcome);
        }
    }
    service.stop();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_TRUE(stats.balanced());
    EXPECT_GT(with_image, 0);
    EXPECT_EQ(stats.outcome(Outcome::kInvalid), 8);  // 4x case-3 + 4x case-5
    // Submitting after stop() sheds rather than hangs, and the books
    // still balance.
    const RequestResult after = service.submit(valid_request(999)).get();
    EXPECT_EQ(after.outcome, Outcome::kShed);
    EXPECT_TRUE(service.stats().balanced());
}

// Regression: a request whose deadline expires in the dequeue -> first-
// step window (worker stalled on the previous job) must count as a
// cancellation in cancelled_mid_run, not silently fold into the plain
// queued-timeout bucket — that window once went unaccounted.
TEST(InferenceServiceTest, DequeueToCancelWindowIsAccounted) {
    util::FaultInjector injector(0xd3ad);
    injector.set_fail_rate("serve_slow", 1.0);

    ServiceConfig config = basic_config();
    config.workers = 1;  // serialise: the stalled job blocks the next
    config.queue_capacity = 4;
    config.slow_fault_ms = 60.0;
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    // Job A stalls 60ms inside its attempt; job B's 20ms deadline
    // expires while B waits behind it, so B is dequeued already-dead.
    std::future<RequestResult> slow = service.submit(valid_request(900, 0));
    InferenceRequest doomed = valid_request(901, 1);
    doomed.deadline_ms = 20.0;
    const RequestResult dead = service.submit(std::move(doomed)).get();
    EXPECT_EQ(dead.outcome, Outcome::kTimeout) << dead.message;
    EXPECT_TRUE(dead.cancelled);
    EXPECT_EQ(dead.attempts, 0);  // never reached a denoising step
    EXPECT_TRUE(dead.image.empty());
    EXPECT_EQ(slow.get().outcome, Outcome::kOk);

    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.cancelled_mid_run, 1);
    EXPECT_EQ(stats.outcome(Outcome::kTimeout), 1);
    EXPECT_TRUE(stats.balanced());
}

// drain() with a generous deadline: the whole backlog completes and the
// report says so — this pins the `completed` leg of the classification
// without depending on how fast the host (or a sanitizer build) runs.
TEST(InferenceServiceTest, DrainCompletesBacklogWithinDeadline) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.queue_capacity = 16;
    InferenceService service(shared_pipeline(), config);

    const int total = 3;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(service.submit(valid_request(900 + i, i)));
    }

    const InferenceService::DrainReport report = service.drain(120000.0);
    EXPECT_EQ(report.total(), total);
    EXPECT_EQ(report.completed, total);
    EXPECT_EQ(report.shed, 0);
    EXPECT_EQ(report.cancelled, 0);
    const int size = shared_substrate().budget.image_size;
    for (auto& future : futures) {
        const RequestResult result = future.get();
        EXPECT_EQ(result.outcome, Outcome::kOk) << result.message;
        expect_finite_image(result.image, size);
    }
    EXPECT_FALSE(service.accepting());
    service.stop();
    EXPECT_TRUE(service.stats().balanced());
}

// drain() past its deadline: every still-pending request resolves
// exactly once as completed, shed or cancelled, admission closes, and a
// later stop() still works (it only joins the already-idle workers).
// The first job is allowed to finish *before* the drain so the test
// never races the host speed against the deadline.
TEST(InferenceServiceTest, DrainShedsAndCancelsPastDeadline) {
    util::FaultInjector injector(0xd7a1);
    injector.set_fail_rate("serve_slow", 1.0);

    ServiceConfig config = basic_config();
    config.workers = 1;
    config.queue_capacity = 16;
    config.slow_fault_ms = 30.0;  // every queued job stalls >= 30ms
    config.fault_injector = &injector;
    InferenceService service(shared_pipeline(), config);

    const int total = 8;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(service.submit(valid_request(910 + i, i)));
    }

    // Job 0 completes before the drain; jobs 1..7 are still pending
    // (job 1 needs >= 30ms of stall and the rest sit behind it on the
    // single worker), so the report covers exactly total - 1 requests.
    const int size = shared_substrate().budget.image_size;
    const RequestResult first = futures[0].get();
    ASSERT_EQ(first.outcome, Outcome::kOk) << first.message;
    expect_finite_image(first.image, size);
    // The in-flight count drops just *after* the promise resolves; wait
    // for it so job 0 is out of the drain's pending census for sure.
    const auto census_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (service.queue_depth() > static_cast<std::size_t>(total - 1) &&
           std::chrono::steady_clock::now() < census_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_LE(service.queue_depth(), static_cast<std::size_t>(total - 1));

    const InferenceService::DrainReport report = service.drain(10.0);
    EXPECT_EQ(report.total(), total - 1);
    EXPECT_EQ(report.completed + report.shed + report.cancelled,
              report.total());
    // A 10ms deadline cannot outlast even one 30ms stall: most of the
    // backlog sheds from the queue (an in-flight job cancels instead).
    EXPECT_GE(report.shed, 1);

    // Every future is already resolvable: drain() returns only after
    // the last pending request reached its terminal outcome.
    int completed = 0, shed = 0, cancelled = 0;
    for (std::size_t i = 1; i < futures.size(); ++i) {
        const RequestResult result = futures[i].get();
        switch (result.outcome) {
            case Outcome::kOk:
                expect_finite_image(result.image, size);
                ++completed;
                break;
            case Outcome::kShed:
                ++shed;
                break;
            case Outcome::kTimeout:
                EXPECT_TRUE(result.cancelled);
                ++cancelled;
                break;
            default:
                ADD_FAILURE() << outcome_name(result.outcome);
        }
    }
    EXPECT_EQ(completed, report.completed);
    EXPECT_EQ(shed, report.shed);
    EXPECT_EQ(cancelled, report.cancelled);

    // Admission stays closed; a second drain is a no-op; stop() joins.
    EXPECT_FALSE(service.accepting());
    EXPECT_EQ(service.submit(valid_request(990)).get().outcome,
              Outcome::kShed);
    EXPECT_EQ(service.drain(10.0).total(), 0);
    service.stop();
    EXPECT_TRUE(service.stats().balanced());
}

}  // namespace
