#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace {

using aero::linalg::Matrix;

Matrix random_symmetric(std::size_t n, aero::util::Rng& rng) {
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            a(i, j) = rng.normal();
            a(j, i) = a(i, j);
        }
    }
    return a;
}

Matrix random_psd(std::size_t n, aero::util::Rng& rng) {
    Matrix b(n, n);
    for (auto& v : b.data()) v = rng.normal();
    return b * b.transpose();
}

TEST(Matrix, IdentityAndMultiply) {
    const Matrix i3 = Matrix::identity(3);
    Matrix a(3, 3);
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            a(r, c) = static_cast<double>(r * 3 + c);
        }
    }
    const Matrix prod = a * i3;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(prod(r, c), a(r, c));
        }
    }
}

TEST(Matrix, TransposeRoundTrip) {
    aero::util::Rng rng(3);
    Matrix a(4, 6);
    for (auto& v : a.data()) v = rng.normal();
    const Matrix att = a.transpose().transpose();
    EXPECT_NEAR((a - att).frobenius_norm(), 0.0, 1e-15);
}

TEST(Matrix, TraceOfProductCommutes) {
    aero::util::Rng rng(4);
    Matrix a(5, 5);
    Matrix b(5, 5);
    for (auto& v : a.data()) v = rng.normal();
    for (auto& v : b.data()) v = rng.normal();
    EXPECT_NEAR(trace(a * b), trace(b * a), 1e-9);
}

TEST(Eigen, DiagonalMatrix) {
    Matrix a(3, 3);
    a(0, 0) = 5.0;
    a(1, 1) = -2.0;
    a(2, 2) = 1.0;
    const auto eig = eigen_symmetric(a);
    EXPECT_NEAR(eig.values[0], -2.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    EXPECT_NEAR(eig.values[2], 5.0, 1e-10);
}

TEST(Eigen, ReconstructsMatrix) {
    aero::util::Rng rng(7);
    const Matrix a = random_symmetric(8, rng);
    const auto eig = eigen_symmetric(a);
    // A = V diag(w) V^T
    Matrix d(8, 8);
    for (std::size_t i = 0; i < 8; ++i) d(i, i) = eig.values[i];
    const Matrix recon = eig.vectors * d * eig.vectors.transpose();
    EXPECT_NEAR((a - recon).frobenius_norm(), 0.0, 1e-8);
}

TEST(Eigen, VectorsOrthonormal) {
    aero::util::Rng rng(8);
    const Matrix a = random_symmetric(6, rng);
    const auto eig = eigen_symmetric(a);
    const Matrix vtv = eig.vectors.transpose() * eig.vectors;
    EXPECT_NEAR((vtv - Matrix::identity(6)).frobenius_norm(), 0.0, 1e-9);
}

TEST(SqrtPsd, SquaresBack) {
    aero::util::Rng rng(9);
    const Matrix a = random_psd(6, rng);
    const Matrix root = sqrt_psd(a);
    EXPECT_NEAR((root * root - a).frobenius_norm(), 0.0, 1e-7);
}

TEST(SqrtPsd, IdentityFixedPoint) {
    const Matrix root = sqrt_psd(Matrix::identity(4));
    EXPECT_NEAR((root - Matrix::identity(4)).frobenius_norm(), 0.0, 1e-10);
}

TEST(SqrtPsd, ClampsTinyNegativeEigenvalues) {
    // Nearly-zero matrix with round-off-level negative perturbation.
    Matrix a(2, 2);
    a(0, 0) = -1e-14;
    a(1, 1) = 1.0;
    const Matrix root = sqrt_psd(a);
    EXPECT_NEAR(root(1, 1), 1.0, 1e-10);
    EXPECT_FALSE(std::isnan(root(0, 0)));
}

// Parameterized eigensolver sweep over matrix sizes: reconstruction,
// orthonormality and sqrt-psd round trips must hold at every size.
class EigenSweep : public ::testing::TestWithParam<int> {};

TEST_P(EigenSweep, ReconstructionAndOrthonormality) {
    const auto n = static_cast<std::size_t>(GetParam());
    aero::util::Rng rng(100 + GetParam());
    const Matrix a = random_symmetric(n, rng);
    const auto eig = eigen_symmetric(a);
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) d(i, i) = eig.values[i];
    const Matrix recon = eig.vectors * d * eig.vectors.transpose();
    EXPECT_NEAR((a - recon).frobenius_norm(), 0.0, 1e-7 * (1.0 + GetParam()));
    const Matrix vtv = eig.vectors.transpose() * eig.vectors;
    EXPECT_NEAR((vtv - Matrix::identity(n)).frobenius_norm(), 0.0, 1e-8);
    // Eigenvalues ascending.
    for (std::size_t i = 1; i < n; ++i) {
        EXPECT_LE(eig.values[i - 1], eig.values[i] + 1e-12);
    }
}

TEST_P(EigenSweep, SqrtPsdRoundTrip) {
    const auto n = static_cast<std::size_t>(GetParam());
    aero::util::Rng rng(200 + GetParam());
    const Matrix a = random_psd(n, rng);
    const Matrix root = sqrt_psd(a);
    EXPECT_NEAR((root * root - a).frobenius_norm(), 0.0,
                1e-6 * (1.0 + a.frobenius_norm()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(Covariance, MatchesHandComputation) {
    // Two variables, three observations.
    Matrix samples(3, 2);
    samples(0, 0) = 1.0;
    samples(0, 1) = 2.0;
    samples(1, 0) = 3.0;
    samples(1, 1) = 6.0;
    samples(2, 0) = 5.0;
    samples(2, 1) = 10.0;
    std::vector<double> mean;
    const Matrix cov = covariance(samples, &mean);
    EXPECT_DOUBLE_EQ(mean[0], 3.0);
    EXPECT_DOUBLE_EQ(mean[1], 6.0);
    EXPECT_NEAR(cov(0, 0), 4.0, 1e-12);
    EXPECT_NEAR(cov(1, 1), 16.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), 8.0, 1e-12);
    EXPECT_NEAR(cov(0, 1), cov(1, 0), 1e-12);
}

TEST(Covariance, PsdProperty) {
    aero::util::Rng rng(10);
    Matrix samples(40, 5);
    for (auto& v : samples.data()) v = rng.normal();
    const Matrix cov = covariance(samples, nullptr);
    const auto eig = eigen_symmetric(cov);
    for (double w : eig.values) EXPECT_GE(w, -1e-10);
}

}  // namespace
