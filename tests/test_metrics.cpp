#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "metrics/prd.hpp"
#include "scene/dataset.hpp"

namespace {

using namespace aero::metrics;
using aero::image::Color;
using aero::image::Image;
using aero::linalg::Matrix;

std::vector<Image> noisy_set(int n, const Color& base, float noise,
                             std::uint64_t seed) {
    aero::util::Rng rng(seed);
    std::vector<Image> images;
    images.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Image img(16, 16, base);
        aero::image::fill_rect(img, rng.uniform_int(0, 10),
                               rng.uniform_int(0, 10), 4, 4,
                               {1.0f - base.r, 1.0f - base.g, 1.0f - base.b});
        aero::image::add_gaussian_noise(img, rng, noise);
        images.push_back(std::move(img));
    }
    return images;
}

TEST(FeatureNetTest, DeterministicAcrossInstances) {
    const FeatureNet a;
    const FeatureNet b;
    const Image img(16, 16, {0.3f, 0.5f, 0.7f});
    const auto fa = a.features(img);
    const auto fb = b.features(img);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
        EXPECT_DOUBLE_EQ(fa[i], fb[i]);
    }
}

TEST(FeatureNetTest, DistinctImagesDistinctFeatures) {
    const FeatureNet net;
    const auto fa = net.features(Image(16, 16, {0.9f, 0.1f, 0.1f}));
    const auto fb = net.features(Image(16, 16, {0.1f, 0.1f, 0.9f}));
    double diff = 0.0;
    for (std::size_t i = 0; i < fa.size(); ++i) {
        diff += std::abs(fa[i] - fb[i]);
    }
    EXPECT_GT(diff, 1e-4);
}

TEST(Fid, NearZeroForSameDistribution) {
    const FeatureNet net;
    const auto a = noisy_set(24, {0.4f, 0.5f, 0.3f}, 0.05f, 1);
    const auto b = noisy_set(24, {0.4f, 0.5f, 0.3f}, 0.05f, 2);
    const auto c = noisy_set(24, {0.9f, 0.1f, 0.2f}, 0.05f, 3);
    const double same = fid(net, a, b);
    const double different = fid(net, a, c);
    EXPECT_LT(same, different);
    EXPECT_GE(same, 0.0);
}

TEST(Fid, ZeroForIdenticalSets) {
    const FeatureNet net;
    const auto a = noisy_set(16, {0.5f, 0.5f, 0.5f}, 0.05f, 4);
    EXPECT_NEAR(fid(net, a, a), 0.0, 1e-6);
}

TEST(Fid, SymmetricUnderSwap) {
    const FeatureNet net;
    const auto a = noisy_set(20, {0.4f, 0.5f, 0.3f}, 0.05f, 5);
    const auto b = noisy_set(20, {0.6f, 0.3f, 0.5f}, 0.05f, 6);
    const double ab = fid(net, a, b);
    const double ba = fid(net, b, a);
    EXPECT_NEAR(ab, ba, std::max(1e-6, ab * 1e-3));
}

TEST(Kid, NearZeroSameDistributionAndOrdering) {
    const FeatureNet net;
    const auto a = noisy_set(20, {0.4f, 0.5f, 0.3f}, 0.05f, 7);
    const auto b = noisy_set(20, {0.4f, 0.5f, 0.3f}, 0.05f, 8);
    const auto c = noisy_set(20, {0.9f, 0.1f, 0.2f}, 0.05f, 9);
    const double same = kid(net, a, b);
    const double different = kid(net, a, c);
    EXPECT_LT(same, different);
    // Unbiased estimator can dip slightly below zero on same-dist sets.
    EXPECT_GT(same, -0.05);
}

TEST(MeanPsnrTest, PerfectAndDegraded) {
    const auto a = noisy_set(4, {0.5f, 0.5f, 0.5f}, 0.0f, 10);
    EXPECT_GT(mean_psnr(a, a), 90.0);
    auto noisy = a;
    aero::util::Rng rng(11);
    for (auto& img : noisy) aero::image::add_gaussian_noise(img, rng, 0.1f);
    const double degraded = mean_psnr(a, noisy);
    EXPECT_LT(degraded, 30.0);
    EXPECT_GT(degraded, 5.0);
}

TEST(MeanPsnrTest, ResizesMismatchedImages) {
    std::vector<Image> refs{Image(16, 16, {0.5f, 0.5f, 0.5f})};
    std::vector<Image> gen{Image(8, 8, {0.5f, 0.5f, 0.5f})};
    EXPECT_GT(mean_psnr(refs, gen), 40.0);
}

TEST(EvaluateSynthesis, BetterGeneratorWinsAllMetrics) {
    // "Real" distribution: textured scenes. Good generator = real + small
    // noise; bad generator = gray mush.
    aero::scene::DatasetConfig config;
    config.train_size = 16;
    config.test_size = 8;
    config.image_size = 16;
    const aero::scene::AerialDataset dataset(config);
    std::vector<Image> real_pool;
    for (const auto& s : dataset.train()) real_pool.push_back(s.image);
    std::vector<Image> references;
    for (const auto& s : dataset.test()) references.push_back(s.image);

    aero::util::Rng rng(12);
    std::vector<Image> good;
    std::vector<Image> bad;
    for (const auto& s : dataset.test()) {
        Image g = s.image;
        aero::image::add_gaussian_noise(g, rng, 0.03f);
        good.push_back(std::move(g));
        bad.emplace_back(16, 16, Color{0.5f, 0.5f, 0.5f});
    }

    const FeatureNet net({.image_size = 16});
    const SynthesisScores good_scores =
        evaluate_synthesis(net, real_pool, references, good);
    const SynthesisScores bad_scores =
        evaluate_synthesis(net, real_pool, references, bad);
    EXPECT_LT(good_scores.fid, bad_scores.fid);
    EXPECT_LT(good_scores.kid, bad_scores.kid);
    EXPECT_GT(good_scores.psnr, 15.0);
}

// Property sweep: both FID and KID must increase monotonically (in the
// aggregate) as the generated set is corrupted harder. This is the
// property the whole evaluation relies on.
class CorruptionSweep : public ::testing::TestWithParam<float> {};

TEST_P(CorruptionSweep, FidGrowsWithNoise) {
    const float noise = GetParam();
    const FeatureNet net({.image_size = 16});
    aero::scene::DatasetConfig config;
    config.train_size = 24;
    config.test_size = 8;
    config.image_size = 16;
    const aero::scene::AerialDataset dataset(config);
    std::vector<Image> real;
    for (const auto& s : dataset.train()) real.push_back(s.image);

    aero::util::Rng rng(314);
    std::vector<Image> clean;
    std::vector<Image> corrupted;
    for (const auto& s : dataset.test()) {
        clean.push_back(s.image);
        Image c = s.image;
        aero::image::add_gaussian_noise(c, rng, noise);
        corrupted.push_back(std::move(c));
    }
    const double fid_clean = fid(net, real, clean);
    const double fid_corrupted = fid(net, real, corrupted);
    EXPECT_GT(fid_corrupted, fid_clean);
    const double kid_clean = kid(net, real, clean);
    const double kid_corrupted = kid(net, real, corrupted);
    EXPECT_GT(kid_corrupted, kid_clean);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CorruptionSweep,
                         ::testing::Values(0.1f, 0.2f, 0.4f));

TEST(CorruptionOrdering, BlurAlsoDegradesFid) {
    // Blur removes exactly the small-object texture the paper cares
    // about; the metric must notice.
    const FeatureNet net({.image_size = 16});
    aero::scene::DatasetConfig config;
    config.train_size = 24;
    config.test_size = 8;
    config.image_size = 16;
    const aero::scene::AerialDataset dataset(config);
    std::vector<Image> real;
    for (const auto& s : dataset.train()) real.push_back(s.image);
    std::vector<Image> clean;
    std::vector<Image> blurred;
    for (const auto& s : dataset.test()) {
        clean.push_back(s.image);
        blurred.push_back(aero::image::box_blur(s.image, 2));
    }
    EXPECT_GT(fid(net, real, blurred), fid(net, real, clean));
}

TEST(PrecisionRecall, IdenticalSetsScoreHighOnBoth) {
    aero::util::Rng rng(40);
    Matrix a(30, 4);
    for (auto& v : a.data()) v = rng.normal();
    const auto pr = precision_recall_from_features(a, a, 3);
    EXPECT_GT(pr.precision, 0.95);
    EXPECT_GT(pr.recall, 0.95);
}

TEST(PrecisionRecall, ModeCollapseShowsHighPrecisionLowRecall) {
    // Generated samples = tight cluster around ONE real point:
    // high fidelity, poor coverage.
    aero::util::Rng rng(41);
    Matrix real(40, 3);
    for (auto& v : real.data()) v = rng.normal() * 2.0;
    Matrix collapsed(40, 3);
    for (std::size_t i = 0; i < collapsed.rows(); ++i) {
        for (std::size_t c = 0; c < 3; ++c) {
            collapsed(i, c) = real(0, c) + 0.01 * rng.normal();
        }
    }
    const auto pr = precision_recall_from_features(real, collapsed, 3);
    EXPECT_GT(pr.precision, 0.8);
    EXPECT_LT(pr.recall, 0.5);
}

TEST(PrecisionRecall, OffManifoldShowsLowPrecision) {
    aero::util::Rng rng(42);
    Matrix real(40, 3);
    for (auto& v : real.data()) v = rng.normal();
    Matrix shifted(40, 3);
    for (auto& v : shifted.data()) v = rng.normal() + 15.0;  // far away
    const auto pr = precision_recall_from_features(real, shifted, 3);
    EXPECT_LT(pr.precision, 0.1);
}

TEST(PrecisionRecall, ImageWrapperRuns) {
    const FeatureNet net({.image_size = 16});
    const auto a = noisy_set(12, {0.4f, 0.5f, 0.3f}, 0.05f, 50);
    const auto b = noisy_set(12, {0.4f, 0.5f, 0.3f}, 0.05f, 51);
    const auto pr = precision_recall(net, a, b, 3);
    EXPECT_GE(pr.precision, 0.0);
    EXPECT_LE(pr.precision, 1.0);
    EXPECT_GE(pr.recall, 0.0);
    EXPECT_LE(pr.recall, 1.0);
}

TEST(FidFromFeatures, HandMadeGaussians) {
    // Two 2-D Gaussians with known means and (near) identity covariance:
    // FID ~ ||mu1 - mu2||^2.
    aero::util::Rng rng(13);
    const std::size_t n = 4000;
    Matrix a(n, 2);
    Matrix b(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
        a(i, 0) = rng.normal();
        a(i, 1) = rng.normal();
        b(i, 0) = rng.normal() + 3.0;
        b(i, 1) = rng.normal();
    }
    EXPECT_NEAR(fid_from_features(a, b), 9.0, 0.6);
}

}  // namespace
