// Memory-subsystem tests (DESIGN.md §17): the size-bucketed caching
// arena (bucket rounding, LIFO reuse, LRU trim, bounded residency,
// cross-thread stress), mem::Buffer value semantics and the zero-fill
// neutrality that makes recycled blocks indistinguishable from fresh
// ones, the bounded condition LRU (hit / miss / eviction / overwrite /
// invalidation), bitwise identity of the on- and off-paths through full
// generation, and the serve-level integration (repeat prompts are
// served from the pipeline's condition cache).

#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "mem/arena.hpp"
#include "mem/cache.hpp"
#include "serve/service.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace aero;
using aero::core::AeroDiffusionPipeline;
using aero::core::Budget;
using aero::core::GenerateControl;
using aero::core::PipelineConfig;
using aero::core::Substrate;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;
using aero::tensor::Tensor;

/// Restores the arena / condition-cache gates on scope exit so each
/// test can toggle them freely without leaking state into the next.
struct GateGuard {
    bool arena = mem::Arena::enabled();
    bool cache = mem::cond_cache_enabled();
    ~GateGuard() {
        mem::Arena::set_enabled(arena);
        mem::set_cond_cache_enabled(cache);
    }
};

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        util::Rng rng(2025);
        return core::build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

/// Untrained pipeline: finite weights are all the cache-identity tests
/// need, and it keeps the fixture fast.
const AeroDiffusionPipeline& shared_pipeline() {
    static const AeroDiffusionPipeline pipeline = [] {
        util::Rng rng(7);
        return AeroDiffusionPipeline(PipelineConfig::aero_diffusion(),
                                     shared_substrate(), rng);
    }();
    return pipeline;
}

// ---- arena ------------------------------------------------------------------

TEST(ArenaTest, RoundsUpToBucketAndReusesLifo) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena& arena = mem::Arena::instance();
    arena.trim_all();
    const mem::ArenaStats before = arena.stats();

    std::size_t cap = 0;
    bool owned = false;
    float* p = arena.acquire(100, &cap, &owned);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(owned);
    EXPECT_EQ(cap, 128u);  // 100 floats round up to the 128-float bucket
    arena.release(p, cap);

    // The next same-bucket request reuses the warmest block (LIFO).
    std::size_t cap2 = 0;
    bool owned2 = false;
    float* q = arena.acquire(65, &cap2, &owned2);
    EXPECT_EQ(q, p);
    EXPECT_EQ(cap2, cap);
    arena.release(q, cap2);

    const mem::ArenaStats after = arena.stats();
    EXPECT_EQ(after.requests, before.requests + 2);
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    arena.trim_all();
}

TEST(ArenaTest, OversizedRequestsBypassTheBuckets) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena& arena = mem::Arena::instance();
    const mem::ArenaStats before = arena.stats();
    // One float past the largest bucket: straight to the heap, exact
    // capacity, no arena bookkeeping.
    const std::size_t huge = (std::size_t{64} << 16) + 1;
    {
        mem::Buffer buffer(huge);
        ASSERT_EQ(buffer.size(), huge);
        buffer[0] = 1.0f;
        buffer[huge - 1] = 2.0f;
        EXPECT_EQ(buffer[0], 1.0f);
        EXPECT_EQ(buffer[huge - 1], 2.0f);
    }
    const mem::ArenaStats after = arena.stats();
    EXPECT_EQ(after.requests, before.requests);
    EXPECT_EQ(after.outstanding_bytes, before.outstanding_bytes);
}

TEST(ArenaTest, ResidencyBoundTrimsOldestReleasedFirst) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena& arena = mem::Arena::instance();
    arena.trim_all();
    const long long original_cap = arena.max_resident_bytes();
    const mem::ArenaStats before = arena.stats();

    // Three distinct min-bucket blocks (64 floats = 256 bytes each).
    std::size_t caps[3];
    bool owned[3];
    float* blocks[3];
    for (int i = 0; i < 3; ++i) {
        blocks[i] = arena.acquire(64, &caps[i], &owned[i]);
    }
    // Cap at two blocks, then release all three in order: the first
    // release is the globally least-recently-released, so it is the
    // block the third release trims.
    arena.set_max_resident_bytes(2 * 256);
    for (int i = 0; i < 3; ++i) arena.release(blocks[i], caps[i]);

    const mem::ArenaStats after = arena.stats();
    EXPECT_EQ(after.trims, before.trims + 1);
    EXPECT_LE(after.resident_bytes, 2 * 256);
    // LIFO still serves the newest surviving block.
    std::size_t cap = 0;
    bool is_owned = false;
    float* reused = arena.acquire(64, &cap, &is_owned);
    EXPECT_EQ(reused, blocks[2]);
    arena.release(reused, cap);

    arena.set_max_resident_bytes(original_cap);
    arena.trim_all();
    EXPECT_EQ(arena.stats().resident_bytes, 0);
}

TEST(ArenaTest, DisabledGateBypassesAndDrains) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena& arena = mem::Arena::instance();
    arena.trim_all();

    // Acquire while enabled, then gate off: the release must free
    // directly instead of growing the (disabled) cache.
    std::size_t cap = 0;
    bool owned = false;
    float* p = arena.acquire(64, &cap, &owned);
    ASSERT_TRUE(owned);
    mem::Arena::set_enabled(false);
    const long long resident = arena.stats().resident_bytes;
    arena.release(p, cap);
    EXPECT_EQ(arena.stats().resident_bytes, resident);

    // Disabled acquires bypass entirely: requests stays put.
    const mem::ArenaStats before = arena.stats();
    {
        mem::Buffer buffer(256);
        EXPECT_EQ(buffer.size(), 256u);
    }
    EXPECT_EQ(arena.stats().requests, before.requests);
}

TEST(ArenaTest, CrossThreadAcquireReleaseStress) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena& arena = mem::Arena::instance();
    arena.trim_all();
    const long long outstanding_before = arena.stats().outstanding_bytes;

    // Hammer the free lists from several threads with mixed bucket
    // sizes; TSan (scripts/check.sh runs this suite under it) races the
    // bucket deques, the stats atomics and the trim path.
    constexpr int kThreads = 4;
    constexpr int kIters = 400;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kIters; ++i) {
                const std::size_t n =
                    64 + static_cast<std::size_t>((i * 37 + t * 101) % 4000);
                mem::Buffer buffer(n);
                buffer[0] = static_cast<float>(i);
                buffer[n - 1] = static_cast<float>(t);
                if (i % 97 == 0) mem::Arena::instance().trim_all();
                mem::Buffer copy = buffer;
                EXPECT_EQ(copy[0], buffer[0]);
            }
        });
    }
    for (std::thread& thread : threads) thread.join();
    // Every Buffer returned its block: lent-out bytes are back to the
    // pre-stress level and the cached remainder trims cleanly.
    EXPECT_EQ(arena.stats().outstanding_bytes, outstanding_before);
    arena.trim_all();
    EXPECT_EQ(arena.stats().resident_bytes, 0);
}

// ---- buffer -----------------------------------------------------------------

TEST(BufferTest, RecycledBlocksAreZeroFilled) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    mem::Arena::instance().trim_all();
    // Dirty a block, return it to the arena, take it back: the new
    // Buffer must be indistinguishable from a fresh allocation.
    {
        mem::Buffer dirty(100);
        for (float& v : dirty) v = 123.5f;
    }
    mem::Buffer clean(100);
    for (const float v : clean) EXPECT_EQ(v, 0.0f);
    mem::Arena::instance().trim_all();
}

TEST(BufferTest, ValueSemanticsMatchVector) {
    GateGuard guard;
    mem::Arena::set_enabled(true);
    const float values[4] = {1.0f, 2.0f, 3.0f, 4.0f};
    mem::Buffer a = mem::Buffer::copy_of(values, 4);
    ASSERT_EQ(a.size(), 4u);

    // Deep copy: mutating the copy leaves the original alone.
    mem::Buffer b = a;
    b[0] = -1.0f;
    EXPECT_EQ(a[0], 1.0f);

    // Same-size assignment refills in place, keeping the storage.
    const float* storage = a.data();
    a = b;
    EXPECT_EQ(a.data(), storage);
    EXPECT_EQ(a[0], -1.0f);

    // Moves steal the block and leave the source empty.
    const float* block = b.data();
    mem::Buffer c = std::move(b);
    EXPECT_EQ(c.data(), block);
    EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(c[3], 4.0f);
}

// ---- tensor accessors (the values() foot-gun replacement) -------------------

TEST(TensorAccessorTest, CopyFromRejectsCountMismatch) {
    Tensor t = Tensor::zeros({2, 3});
    const float six[6] = {1, 2, 3, 4, 5, 6};
    EXPECT_THROW(t.copy_from(six, 5), std::invalid_argument);
    t.copy_from(six, 6);
    EXPECT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorAccessorTest, SpanAccessorsRoundTrip) {
    Tensor t = Tensor::from_values({1.0f, 2.0f, 3.0f});
    float sum = 0.0f;
    for (const float v : t) sum += v;  // begin()/end() over raw storage
    EXPECT_EQ(sum, 6.0f);
    const std::vector<float> out = t.to_vector();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[1], 2.0f);
    EXPECT_EQ(t.data()[2], 3.0f);
}

// ---- condition cache --------------------------------------------------------

TEST(ConditionCacheTest, HitMissAndLruEviction) {
    mem::ConditionCacheConfig config;
    config.max_entries = 2;
    config.max_bytes = 1 << 20;
    mem::ConditionCache<std::string> cache(config);

    cache.insert("a", "alpha", 5);
    cache.insert("b", "beta", 4);
    std::string out;
    ASSERT_TRUE(cache.lookup("a", &out));  // refreshes a's recency
    EXPECT_EQ(out, "alpha");
    cache.insert("c", "gamma", 5);  // evicts b, the cold end
    EXPECT_FALSE(cache.lookup("b", &out));
    EXPECT_TRUE(cache.lookup("a", &out));
    EXPECT_TRUE(cache.lookup("c", &out));
    EXPECT_EQ(cache.entries(), 2);
}

TEST(ConditionCacheTest, ByteBoundEvictsButKeepsLastEntry) {
    mem::ConditionCacheConfig config;
    config.max_entries = 100;
    config.max_bytes = 100;
    mem::ConditionCache<std::string> cache(config);

    cache.insert("a", "x", 60);
    cache.insert("b", "y", 60);  // 120 bytes > 100: a is evicted
    std::string out;
    EXPECT_FALSE(cache.lookup("a", &out));
    EXPECT_EQ(cache.entries(), 1);
    EXPECT_EQ(cache.bytes(), 60);

    // An entry larger than the whole budget is accepted and becomes the
    // sole (and next) eviction candidate rather than thrashing forever.
    cache.insert("huge", "z", 1000);
    EXPECT_EQ(cache.entries(), 1);
    EXPECT_EQ(cache.bytes(), 1000);
    EXPECT_TRUE(cache.lookup("huge", &out));
}

TEST(ConditionCacheTest, OverwriteRefreshesValueAndBytes) {
    mem::ConditionCache<std::string> cache(mem::ConditionCacheConfig{});
    cache.insert("k", "old", 10);
    cache.insert("k", "new", 30);
    EXPECT_EQ(cache.entries(), 1);
    EXPECT_EQ(cache.bytes(), 30);
    std::string out;
    ASSERT_TRUE(cache.lookup("k", &out));
    EXPECT_EQ(out, "new");
}

TEST(ConditionCacheTest, InvalidateAllDropsEntriesAndCounts) {
    const mem::CacheStats before = mem::cache_stats();
    mem::ConditionCache<std::string> cache(mem::ConditionCacheConfig{});
    cache.insert("a", "x", 8);
    cache.insert("b", "y", 8);
    cache.invalidate_all();
    EXPECT_EQ(cache.entries(), 0);
    EXPECT_EQ(cache.bytes(), 0);
    std::string out;
    EXPECT_FALSE(cache.lookup("a", &out));
    const mem::CacheStats after = mem::cache_stats();
    EXPECT_GE(after.invalidations, before.invalidations + 1);
    EXPECT_EQ(after.entries, before.entries);  // global gauges stay honest
    EXPECT_EQ(after.bytes, before.bytes);
}

// ---- pipeline integration ---------------------------------------------------

TEST(PipelineCacheTest, RepeatGenerateHitsAndStaysBitwiseIdentical) {
    GateGuard guard;
    const Substrate& s = shared_substrate();
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;

    // On-path: first call may miss, the repeat must hit.
    mem::Arena::set_enabled(true);
    mem::set_cond_cache_enabled(true);
    GenerateControl first;
    util::Rng rng_a(5);
    const image::Image warm =
        pipeline.generate(sample, caption, caption, rng_a, 0, &first);
    GenerateControl repeat;
    util::Rng rng_b(5);
    const image::Image hit =
        pipeline.generate(sample, caption, caption, rng_b, 0, &repeat);
    EXPECT_TRUE(repeat.condition_cached);
    ASSERT_EQ(warm.data().size(), hit.data().size());
    EXPECT_TRUE(warm.data() == hit.data());

    // Off-path (both gates): bitwise identical to the on-path — the
    // subsystem's core contract.
    mem::Arena::set_enabled(false);
    mem::set_cond_cache_enabled(false);
    GenerateControl off;
    util::Rng rng_c(5);
    const image::Image plain =
        pipeline.generate(sample, caption, caption, rng_c, 0, &off);
    EXPECT_FALSE(off.condition_cached);
    ASSERT_EQ(plain.data().size(), warm.data().size());
    EXPECT_TRUE(plain.data() == warm.data());
}

TEST(PipelineCacheTest, BypassFlagSkipsLookupAndInsert) {
    GateGuard guard;
    mem::set_cond_cache_enabled(true);
    const Substrate& s = shared_substrate();
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    const auto& sample = s.dataset->test()[1];
    const std::string caption = s.keypoint_test[1].text;

    const int entries_before = pipeline.condition_cache_entries();
    GenerateControl control;
    control.bypass_condition_cache = true;  // breaker half-open probe
    util::Rng rng(11);
    pipeline.generate(sample, caption, caption, rng, 1, &control);
    EXPECT_FALSE(control.condition_cached);
    EXPECT_EQ(pipeline.condition_cache_entries(), entries_before);
}

TEST(PipelineCacheTest, ParameterLoadInvalidates) {
    GateGuard guard;
    mem::set_cond_cache_enabled(true);
    const Substrate& s = shared_substrate();
    util::Rng rng(31);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;

    util::Rng gen(5);
    pipeline.generate(sample, caption, caption, gen, 0);
    EXPECT_GE(pipeline.condition_cache_entries(), 1);

    const std::string path = testing::TempDir() + "/aero_mem_invalidate";
    ASSERT_TRUE(pipeline.save(path));
    ASSERT_TRUE(pipeline.load(path));
    // New parameters would encode differently; stale entries are gone.
    EXPECT_EQ(pipeline.condition_cache_entries(), 0);
    std::remove((path + ".unet").c_str());
    std::remove((path + ".cond").c_str());
}

// ---- serve integration ------------------------------------------------------

TEST(ServeCacheTest, RepeatPromptsServeFromTheConditionCache) {
    GateGuard guard;
    mem::set_cond_cache_enabled(true);
    serve::ServiceConfig config;
    config.workers = 2;
    config.limits.image_size = Budget::smoke().image_size;
    serve::InferenceService service(shared_pipeline(), config);

    const Substrate& s = shared_substrate();
    serve::InferenceRequest request;
    request.reference = s.dataset->test()[2 % s.dataset->test().size()];
    request.source_caption =
        s.keypoint_test[2 % s.keypoint_test.size()].text;
    request.target_caption = request.source_caption;
    request.seed = 77;

    // Warm the cache with one request, then replay the prompt.
    const serve::RequestResult warm = service.submit(request).get();
    ASSERT_EQ(warm.outcome, serve::Outcome::kOk) << warm.message;

    std::vector<std::future<serve::RequestResult>> futures;
    for (int i = 0; i < 4; ++i) {
        serve::InferenceRequest repeat = request;
        repeat.seed = 100 + static_cast<std::uint64_t>(i);
        futures.push_back(service.submit(std::move(repeat)));
    }
    for (auto& future : futures) {
        const serve::RequestResult result = future.get();
        EXPECT_EQ(result.outcome, serve::Outcome::kOk) << result.message;
        EXPECT_TRUE(result.condition_cached);
    }
    service.stop();
    EXPECT_TRUE(service.stats().balanced());
}

}  // namespace
