#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "diffusion/autoencoder.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/sentinel.hpp"
#include "diffusion/trainer.hpp"
#include "diffusion/unet.hpp"

namespace {

using namespace aero::diffusion;
using aero::autograd::Var;
using aero::tensor::Tensor;

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

TEST(Schedule, MonotoneBetaAndDecayingAlphaBar) {
    // reference_steps == steps: betas are exactly the configured range.
    const NoiseSchedule schedule({64, 0.001f, 0.012f, 64});
    EXPECT_EQ(schedule.steps(), 64);
    for (int t = 1; t < schedule.steps(); ++t) {
        EXPECT_GT(schedule.beta(t), schedule.beta(t - 1));
        EXPECT_LT(schedule.alpha_bar(t), schedule.alpha_bar(t - 1));
    }
    EXPECT_NEAR(schedule.beta(0), 0.001f, 1e-6f);
    EXPECT_NEAR(schedule.beta(schedule.steps() - 1), 0.012f, 1e-6f);
    EXPECT_GT(schedule.alpha_bar(schedule.steps() - 1), 0.0f);
    EXPECT_LT(schedule.alpha_bar(schedule.steps() - 1), 1.0f);
}

TEST(Schedule, ShortScheduleStillReachesNoise) {
    // A shortened schedule rescales betas so the terminal state is (near)
    // pure noise -- otherwise DDIM would start off-distribution.
    const NoiseSchedule short_schedule({64, 0.001f, 0.012f});  // ref 1000
    EXPECT_LT(short_schedule.alpha_bar(63), 0.05f);
    const NoiseSchedule paper(ScheduleConfig::paper());
    EXPECT_LT(paper.alpha_bar(999), 0.05f);
    // And the paper discretisation keeps its exact betas.
    EXPECT_NEAR(paper.beta(0), 0.001f, 1e-6f);
    EXPECT_NEAR(paper.beta(999), 0.012f, 1e-6f);
}

TEST(Schedule, PaperConfiguration) {
    const ScheduleConfig paper = ScheduleConfig::paper();
    EXPECT_EQ(paper.steps, 1000);
    EXPECT_FLOAT_EQ(paper.beta_start, 0.001f);
    EXPECT_FLOAT_EQ(paper.beta_end, 0.012f);
}

TEST(Schedule, QSampleMixesSignalAndNoise) {
    const NoiseSchedule schedule({64, 0.001f, 0.012f});
    const Tensor z0 = Tensor::full({2, 2}, 1.0f);
    const Tensor eps = Tensor::full({2, 2}, -1.0f);
    // At t=0 mostly signal.
    const Tensor early = schedule.q_sample(z0, 0, eps);
    EXPECT_GT(early[0], 0.8f);
    // At the last step mostly noise.
    const Tensor late = schedule.q_sample(z0, 63, eps);
    EXPECT_LT(late[0], early[0]);
}

TEST(Schedule, PredictZ0InvertsQSample) {
    aero::util::Rng rng(1);
    const NoiseSchedule schedule({32, 0.001f, 0.012f});
    const Tensor z0 = Tensor::randn({3, 4, 4}, rng);
    const Tensor eps = Tensor::randn({3, 4, 4}, rng);
    const int t = 17;
    const Tensor zt = schedule.q_sample(z0, t, eps);
    const Tensor recovered = schedule.predict_z0(zt, t, eps);
    for (int i = 0; i < z0.size(); ++i) {
        EXPECT_NEAR(recovered[i], z0[i], 1e-4f);
    }
}

// Parameterized sweep: schedule invariants must hold for any step count,
// including the paper's T=1000 and aggressive short schedules.
class ScheduleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleSweep, TerminalStateIsNearNoise) {
    const NoiseSchedule schedule({GetParam(), 0.001f, 0.012f, 1000});
    EXPECT_LT(schedule.alpha_bar(schedule.steps() - 1), 0.06f);
    EXPECT_GT(schedule.alpha_bar(0), 0.5f);
}

TEST_P(ScheduleSweep, BetasAreValidProbabilities) {
    const NoiseSchedule schedule({GetParam(), 0.001f, 0.012f, 1000});
    for (int t = 0; t < schedule.steps(); ++t) {
        EXPECT_GT(schedule.beta(t), 0.0f);
        EXPECT_LT(schedule.beta(t), 0.5f);
        EXPECT_NEAR(schedule.alpha(t), 1.0f - schedule.beta(t), 1e-7f);
    }
}

TEST_P(ScheduleSweep, ParameterizationConversionsInvert) {
    const NoiseSchedule schedule({GetParam(), 0.001f, 0.012f, 1000});
    aero::util::Rng rng(31 + GetParam());
    const Tensor z0 = Tensor::randn({2, 3, 3}, rng);
    const Tensor eps = Tensor::randn({2, 3, 3}, rng);
    for (int t : {0, schedule.steps() / 2, schedule.steps() - 1}) {
        const Tensor zt = schedule.q_sample(z0, t, eps);
        for (auto param : {Parameterization::kEpsilon, Parameterization::kV}) {
            const Tensor target = schedule.training_target(z0, eps, t, param);
            const Tensor eps_back = schedule.to_epsilon(target, zt, t, param);
            const Tensor z0_back = schedule.to_z0(target, zt, t, param);
            for (int i = 0; i < z0.size(); ++i) {
                EXPECT_NEAR(eps_back[i], eps[i], 1e-3f)
                    << "t=" << t << " param=" << static_cast<int>(param);
                EXPECT_NEAR(z0_back[i], z0[i], 1e-3f)
                    << "t=" << t << " param=" << static_cast<int>(param);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(StepCounts, ScheduleSweep,
                         ::testing::Values(8, 16, 64, 250, 1000));

UNetConfig tiny_unet_config() {
    UNetConfig config;
    config.in_channels = 4;
    config.base_channels = 8;
    config.cond_dim = 8;
    config.heads = 2;
    config.time_dim = 8;
    config.groups = 2;
    return config;
}

TEST(TimeEmbeddingTest, DistinctStepsDistinctEmbeddings) {
    aero::util::Rng rng(2);
    TimeEmbedding emb(16, rng);
    const Var e = emb.forward({0, 10, 63}, 64);
    EXPECT_EQ(e.value().dim(0), 3);
    float diff = 0.0f;
    for (int j = 0; j < 16; ++j) {
        diff += std::abs(e.value()[0 * 16 + j] - e.value()[2 * 16 + j]);
    }
    EXPECT_GT(diff, 1e-3f);
}

TEST(UNetTest, ForwardPreservesShape) {
    aero::util::Rng rng(3);
    UNet unet(tiny_unet_config(), rng);
    const Var z = Var::constant(Tensor::randn({2, 4, 8, 8}, rng));
    const Tensor cond = Tensor::randn({3, 8}, rng);
    const Var out = unet.forward(z, {5, 20}, 64, {cond, Tensor()});
    EXPECT_EQ(out.value().dim(0), 2);
    EXPECT_EQ(out.value().dim(1), 4);
    EXPECT_EQ(out.value().dim(2), 8);
    EXPECT_EQ(out.value().dim(3), 8);
}

TEST(UNetTest, ConditionChangesOutput) {
    aero::util::Rng rng(4);
    UNet unet(tiny_unet_config(), rng);
    const Tensor z = Tensor::randn({4, 8, 8}, rng);
    const Tensor cond_a = Tensor::randn({2, 8}, rng);
    const Tensor cond_b = Tensor::randn({2, 8}, rng);
    const Tensor out_a = unet.denoise(z, 10, 64, cond_a);
    const Tensor out_b = unet.denoise(z, 10, 64, cond_b);
    const Tensor out_null = unet.denoise(z, 10, 64, Tensor());
    float diff_ab = 0.0f;
    float diff_an = 0.0f;
    for (int i = 0; i < out_a.size(); ++i) {
        diff_ab += std::abs(out_a[i] - out_b[i]);
        diff_an += std::abs(out_a[i] - out_null[i]);
    }
    EXPECT_GT(diff_ab, 1e-4f);
    EXPECT_GT(diff_an, 1e-4f);
}

TEST(UNetTest, TimestepChangesOutput) {
    aero::util::Rng rng(5);
    UNet unet(tiny_unet_config(), rng);
    const Tensor z = Tensor::randn({4, 8, 8}, rng);
    const Tensor a = unet.denoise(z, 1, 64, Tensor());
    const Tensor b = unet.denoise(z, 60, 64, Tensor());
    float diff = 0.0f;
    for (int i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
    EXPECT_GT(diff, 1e-4f);
}

TEST(UNetTest, GradientsReachEveryParameter) {
    aero::util::Rng rng(6);
    UNet unet(tiny_unet_config(), rng);
    const Var z = Var::constant(Tensor::randn({2, 4, 8, 8}, rng));
    const Tensor cond = Tensor::randn({2, 8}, rng);
    // One conditioned and one null-token sample so every branch
    // (including the learned null token) participates.
    aero::autograd::mean_all(unet.forward(z, {7, 12}, 64, {cond, Tensor()}))
        .backward();
    int with_grad = 0;
    int total = 0;
    for (const Var& p : unet.parameters()) {
        ++total;
        if (!p.grad().empty()) ++with_grad;
    }
    // Everything except possibly unused branches must receive gradient.
    EXPECT_EQ(with_grad, total);
}

TEST(Trainer, LossDecreasesOnToyData) {
    aero::util::Rng rng(7);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({16, 0.001f, 0.012f});
    // Toy dataset: two fixed latents with distinct conditions.
    std::vector<Tensor> latents;
    std::vector<Tensor> conds;
    latents.push_back(Tensor::full({4, 8, 8}, 0.5f));
    latents.push_back(Tensor::full({4, 8, 8}, -0.5f));
    conds.push_back(Tensor::full({1, 8}, 1.0f));
    conds.push_back(Tensor::full({1, 8}, -1.0f));

    DiffusionTrainConfig config;
    config.steps = 60;
    config.batch_size = 2;
    config.lr = 3e-3f;
    const DiffusionTrainStats stats =
        train_diffusion(unet, schedule, latents, conds, config, rng);
    EXPECT_LT(stats.tail_loss, stats.first_loss);
}

// ---- divergence sentinel ----------------------------------------------------

SentinelConfig tight_sentinel() {
    SentinelConfig config;
    config.snapshot_interval = 1;
    config.warmup_steps = 4;
    config.spike_factor = 10.0f;
    config.max_rollbacks = 2;
    return config;
}

TEST(Sentinel, NanLossRollsBackParamsAndReducesLr) {
    Var x = Var::param(Tensor::from_values({1.0f, 2.0f}));
    aero::nn::Adam opt({x}, {.lr = 0.1f});
    DivergenceSentinel sentinel({x}, opt, tight_sentinel());

    EXPECT_EQ(sentinel.observe(0, 1.0f, 1.0f),
              DivergenceSentinel::Action::kProceed);
    // Simulate the optimizer poisoning the weights after a good step.
    x.mutable_value()[0] = 77.0f;
    EXPECT_EQ(sentinel.observe(1, kNan, 1.0f),
              DivergenceSentinel::Action::kRollback);
    EXPECT_FLOAT_EQ(x.value()[0], 1.0f);  // restored to last snapshot
    EXPECT_FLOAT_EQ(x.value()[1], 2.0f);
    EXPECT_FLOAT_EQ(opt.config().lr, 0.05f);
    EXPECT_EQ(sentinel.nan_events(), 1);
    EXPECT_EQ(sentinel.rollbacks(), 1);
    EXPECT_FALSE(sentinel.diverged());
}

TEST(Sentinel, NeverSnapshotsNonFiniteParameters) {
    // A poisoned weight can leave the loss finite for a while (e.g. the
    // null-condition token only enters CFG-dropped batches). The
    // snapshot refresh must not capture it, or rollback would restore
    // the corruption.
    Var x = Var::param(Tensor::from_values({1.0f, 2.0f}));
    aero::nn::Adam opt({x}, {.lr = 0.1f});
    DivergenceSentinel sentinel({x}, opt, tight_sentinel());  // interval 1

    x.mutable_value()[1] = kNan;  // asymptomatic corruption
    EXPECT_EQ(sentinel.observe(0, 1.0f, 1.0f),  // finite loss: "healthy"
              DivergenceSentinel::Action::kProceed);
    EXPECT_EQ(sentinel.observe(1, kNan, 1.0f),  // now it surfaces
              DivergenceSentinel::Action::kRollback);
    EXPECT_FLOAT_EQ(x.value()[0], 1.0f);  // pre-poison state restored
    EXPECT_FLOAT_EQ(x.value()[1], 2.0f);
}

TEST(Sentinel, InfiniteGradientNormAlsoTriggersRollback) {
    Var x = Var::param(Tensor::from_values({1.0f}));
    aero::nn::Adam opt({x}, {});
    DivergenceSentinel sentinel({x}, opt, tight_sentinel());
    EXPECT_EQ(sentinel.observe(0, 0.5f,
                               std::numeric_limits<float>::infinity()),
              DivergenceSentinel::Action::kRollback);
    EXPECT_EQ(sentinel.nan_events(), 1);
}

TEST(Sentinel, ExhaustedRollbackBudgetDeclaresDivergence) {
    Var x = Var::param(Tensor::from_values({1.0f}));
    aero::nn::Adam opt({x}, {});
    DivergenceSentinel sentinel({x}, opt, tight_sentinel());  // budget 2
    EXPECT_EQ(sentinel.observe(0, kNan, 1.0f),
              DivergenceSentinel::Action::kRollback);
    EXPECT_EQ(sentinel.observe(1, kNan, 1.0f),
              DivergenceSentinel::Action::kRollback);
    EXPECT_EQ(sentinel.observe(2, kNan, 1.0f),
              DivergenceSentinel::Action::kAbort);
    EXPECT_TRUE(sentinel.diverged());
    EXPECT_EQ(sentinel.rollbacks(), 2);
    EXPECT_EQ(sentinel.nan_events(), 3);
}

TEST(Sentinel, LossSpikeDetectedAfterWarmupOnly) {
    Var x = Var::param(Tensor::from_values({1.0f}));
    aero::nn::Adam opt({x}, {});
    DivergenceSentinel sentinel({x}, opt, tight_sentinel());
    // During warmup even a huge loss passes (the EMA is still priming).
    EXPECT_EQ(sentinel.observe(0, 1.0f, 1.0f),
              DivergenceSentinel::Action::kProceed);
    EXPECT_EQ(sentinel.observe(1, 100.0f, 1.0f),
              DivergenceSentinel::Action::kProceed);
    // Settle the EMA past warmup, then spike.
    int step = 2;
    for (; step < 10; ++step) {
        ASSERT_EQ(sentinel.observe(step, 1.0f, 1.0f),
                  DivergenceSentinel::Action::kProceed);
    }
    EXPECT_EQ(sentinel.observe(step, 10.0f * sentinel.smoothed_loss() * 2.0f,
                               1.0f),
              DivergenceSentinel::Action::kRollback);
    EXPECT_EQ(sentinel.spike_events(), 1);
    EXPECT_EQ(sentinel.nan_events(), 0);
}

TEST(Sentinel, DisabledSentinelNeverIntervenes) {
    Var x = Var::param(Tensor::from_values({1.0f}));
    aero::nn::Adam opt({x}, {.lr = 0.1f});
    SentinelConfig config;
    config.enabled = false;
    DivergenceSentinel sentinel({x}, opt, config);
    EXPECT_EQ(sentinel.observe(0, kNan, kNan),
              DivergenceSentinel::Action::kProceed);
    EXPECT_EQ(sentinel.rollbacks(), 0);
    EXPECT_FLOAT_EQ(opt.config().lr, 0.1f);
}

// ---- fault-injected training ------------------------------------------------

/// Toy training run shared by the recovery tests: fixed data, seeded
/// RNG, tight sentinel. `injector` may be null for the clean baseline.
DiffusionTrainStats run_toy_training(std::uint64_t seed,
                                     aero::util::FaultInjector* injector,
                                     int steps = 80) {
    aero::util::Rng rng(seed);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({16, 0.001f, 0.012f});
    std::vector<Tensor> latents;
    std::vector<Tensor> conds;
    latents.push_back(Tensor::full({4, 8, 8}, 0.5f));
    latents.push_back(Tensor::full({4, 8, 8}, -0.5f));
    conds.push_back(Tensor::full({1, 8}, 1.0f));
    conds.push_back(Tensor::full({1, 8}, -1.0f));

    DiffusionTrainConfig config;
    config.steps = steps;
    config.batch_size = 2;
    config.lr = 3e-3f;
    config.sentinel.snapshot_interval = 4;
    config.sentinel.lr_decay = 0.7f;
    config.fault_injector = injector;
    return train_diffusion(unet, schedule, latents, conds, config, rng);
}

TEST(Trainer, NanInjectionTriggersRollbackAndRecoversWithinBand) {
    // Acceptance criterion: a NaN poked into the weights at step k rolls
    // back, training completes, and the tail loss lands within 20% of an
    // uninjected run with the same seed.
    const DiffusionTrainStats clean = run_toy_training(7, nullptr);
    ASSERT_FALSE(clean.diverged);
    ASSERT_EQ(clean.rollbacks, 0);

    aero::util::FaultInjector injector(1);
    injector.arm_nan(20, "param");
    const DiffusionTrainStats faulted = run_toy_training(7, &injector);
    EXPECT_EQ(injector.injected_count(), 1);
    EXPECT_GE(faulted.nan_events, 1);
    EXPECT_GE(faulted.rollbacks, 1);
    EXPECT_FALSE(faulted.diverged);
    EXPECT_LT(faulted.tail_loss, faulted.first_loss);
    EXPECT_NEAR(faulted.tail_loss, clean.tail_loss,
                0.2f * clean.tail_loss);
}

TEST(Trainer, GradientAndLossInjectionBothCaught) {
    aero::util::FaultInjector injector(2);
    injector.arm_nan(15, "grad");
    injector.arm_nan(30, "loss");
    const DiffusionTrainStats stats = run_toy_training(9, &injector);
    EXPECT_EQ(injector.injected_count(), 2);
    EXPECT_EQ(stats.nan_events, 2);
    EXPECT_EQ(stats.rollbacks, 2);
    EXPECT_FALSE(stats.diverged);
    EXPECT_TRUE(std::isfinite(stats.tail_loss));
}

TEST(Trainer, ForcedLossSpikeRollsBack) {
    aero::util::FaultInjector injector(3);
    injector.arm_spike(40, 100.0f);
    const DiffusionTrainStats stats = run_toy_training(11, &injector);
    EXPECT_EQ(injector.injected_count(), 1);
    EXPECT_EQ(stats.nan_events, 0);
    EXPECT_EQ(stats.rollbacks, 1);
    EXPECT_FALSE(stats.diverged);
}

TEST(Trainer, PersistentPoisoningDeclaresDivergence) {
    aero::util::FaultInjector injector(4);
    // More consecutive NaN losses than the rollback budget allows.
    for (int step = 10; step < 20; ++step) injector.arm_nan(step, "loss");
    const DiffusionTrainStats stats = run_toy_training(13, &injector);
    EXPECT_TRUE(stats.diverged);
    EXPECT_GT(stats.nan_events, stats.rollbacks);
    // Weights stay the last good snapshot: the recorded losses (all from
    // healthy steps) are still finite.
    EXPECT_TRUE(std::isfinite(stats.final_loss));
}

TEST(Samplers, OutputShapesAndFiniteness) {
    aero::util::Rng rng(8);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({8, 0.001f, 0.012f});
    const Tensor cond = Tensor::randn({2, 8}, rng);

    const DdpmSampler ddpm(unet, schedule);
    const Tensor a = ddpm.sample({4, 8, 8}, cond, rng);
    EXPECT_EQ(a.dim(0), 4);
    for (float v : a) EXPECT_TRUE(std::isfinite(v));

    DdimConfig ddim_config;
    ddim_config.inference_steps = 4;
    ddim_config.guidance_scale = 7.0f;
    const DdimSampler ddim(unet, schedule, ddim_config);
    const Tensor b = ddim.sample({4, 8, 8}, cond, rng);
    EXPECT_EQ(b.dim(1), 8);
    for (float v : b) EXPECT_TRUE(std::isfinite(v));
}

TEST(Samplers, DdimGuidanceChangesSample) {
    aero::util::Rng rng(9);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({8, 0.001f, 0.012f});
    const Tensor cond = Tensor::randn({2, 8}, rng);

    DdimConfig weak;
    weak.inference_steps = 4;
    weak.guidance_scale = 1.0f;
    DdimConfig strong = weak;
    strong.guidance_scale = 7.0f;

    aero::util::Rng rng_a(42);
    aero::util::Rng rng_b(42);
    const Tensor a =
        DdimSampler(unet, schedule, weak).sample({4, 8, 8}, cond, rng_a);
    const Tensor b =
        DdimSampler(unet, schedule, strong).sample({4, 8, 8}, cond, rng_b);
    float diff = 0.0f;
    for (int i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
    EXPECT_GT(diff, 1e-4f);
}

TEST(Samplers, DdimDeterministicGivenSeed) {
    aero::util::Rng rng(10);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({8, 0.001f, 0.012f});
    DdimConfig config;
    config.inference_steps = 4;
    aero::util::Rng rng_a(5);
    aero::util::Rng rng_b(5);
    const DdimSampler sampler(unet, schedule, config);
    const Tensor a = sampler.sample({4, 8, 8}, Tensor(), rng_a);
    const Tensor b = sampler.sample({4, 8, 8}, Tensor(), rng_b);
    for (int i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Samplers, HeunIsDeterministicAndDiffersFromEuler) {
    aero::util::Rng rng(22);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({16, 0.001f, 0.012f});
    DdimConfig euler_config;
    euler_config.inference_steps = 6;
    euler_config.guidance_scale = 1.0f;
    DdimConfig heun_config = euler_config;
    heun_config.use_heun = true;
    const Tensor cond = Tensor::randn({2, 8}, rng);

    aero::util::Rng a1(3);
    aero::util::Rng a2(3);
    const Tensor heun_a =
        DdimSampler(unet, schedule, heun_config).sample({4, 8, 8}, cond, a1);
    const Tensor heun_b =
        DdimSampler(unet, schedule, heun_config).sample({4, 8, 8}, cond, a2);
    for (int i = 0; i < heun_a.size(); ++i) {
        EXPECT_EQ(heun_a[i], heun_b[i]);
    }

    aero::util::Rng e1(3);
    const Tensor euler =
        DdimSampler(unet, schedule, euler_config).sample({4, 8, 8}, cond, e1);
    float diff = 0.0f;
    for (int i = 0; i < euler.size(); ++i) {
        diff += std::abs(euler[i] - heun_a[i]);
        EXPECT_TRUE(std::isfinite(heun_a[i]));
    }
    EXPECT_GT(diff, 1e-4f);
}

TEST(Samplers, StochasticEtaNeverTakesHeunBranch) {
    // Regression: the Heun gate used to test the *per-step* sigma
    // (`sigma == 0`), but sigma is a rounded float product — with a
    // positive eta it can still underflow to exactly 0 on steps where
    // the schedule factors are small. This setup makes that concrete:
    // beta_start = 6e-8 puts alpha_bar(0) one ulp below 1, and a
    // denormal eta keeps every sigma numerically irrelevant while the
    // t=1 -> t=0 step's sigma rounds to exactly 0.0f. The old gate
    // silently ran the Heun corrector on that step of a stochastic
    // (eta > 0) trajectory; the fixed gate (config eta) must make
    // use_heun a strict no-op, i.e. bitwise-identical samples.
    aero::util::Rng rng(23);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({8, 6e-8f, 0.02f, 8});
    const float eta = 1e-44f;
    ASSERT_GT(eta, 0.0f);
    const float ab0 = schedule.alpha_bar(0);
    const float ab1 = schedule.alpha_bar(1);
    ASSERT_LT(ab0, 1.0f);  // no 0/0 anywhere in the sigma formula
    // The sampler's own sigma expression for the t=1 -> t=0 step
    // underflows to exactly zero despite eta > 0 — the precondition the
    // old gate mishandled.
    const float sigma10 = eta *
                          std::sqrt((1.0f - ab0) / (1.0f - ab1)) *
                          std::sqrt(1.0f - ab1 / ab0);
    ASSERT_EQ(sigma10, 0.0f);

    DdimConfig stochastic;
    stochastic.inference_steps = 8;
    stochastic.guidance_scale = 1.0f;
    stochastic.eta = eta;
    DdimConfig stochastic_heun = stochastic;
    stochastic_heun.use_heun = true;

    const Tensor cond = Tensor::randn({2, 8}, rng);
    aero::util::Rng a(9);
    aero::util::Rng b(9);
    const Tensor plain =
        DdimSampler(unet, schedule, stochastic).sample({4, 8, 8}, cond, a);
    const Tensor with_heun = DdimSampler(unet, schedule, stochastic_heun)
                                 .sample({4, 8, 8}, cond, b);
    for (int i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i], with_heun[i]) << "at " << i;
    }
}

TEST(Samplers, EditStrengthControlsDeviation) {
    // Low-strength SDEdit stays closer to the source latent than
    // high-strength.
    aero::util::Rng rng(20);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({16, 0.001f, 0.012f});
    DdimConfig config;
    config.inference_steps = 8;
    config.guidance_scale = 1.0f;
    const DdimSampler sampler(unet, schedule, config);
    const Tensor source = Tensor::randn({4, 8, 8}, rng);
    const Tensor cond = Tensor::randn({2, 8}, rng);

    auto deviation = [&](float strength) {
        double total = 0.0;
        for (int trial = 0; trial < 3; ++trial) {
            aero::util::Rng trial_rng(100 + trial);
            const Tensor out = sampler.edit(source, cond, strength, trial_rng);
            for (int i = 0; i < out.size(); ++i) {
                const double d = out[i] - source[i];
                total += d * d;
            }
        }
        return total;
    };
    EXPECT_LT(deviation(0.2f), deviation(1.0f));
}

TEST(Samplers, InpaintPreservesUnmaskedRegion) {
    aero::util::Rng rng(21);
    UNet unet(tiny_unet_config(), rng);
    const NoiseSchedule schedule({16, 0.001f, 0.012f});
    DdimConfig config;
    config.inference_steps = 8;
    config.guidance_scale = 1.0f;
    const DdimSampler sampler(unet, schedule, config);
    const Tensor source = Tensor::randn({4, 8, 8}, rng);
    // Mask: regenerate the left half only.
    Tensor mask({4, 8, 8});
    for (int c = 0; c < 4; ++c) {
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 4; ++x) mask[(c * 8 + y) * 8 + x] = 1.0f;
        }
    }
    const Tensor out = sampler.inpaint(source, mask, Tensor(), rng);
    // The kept (right) half must match the source exactly (final step
    // re-imposes the clean source there).
    for (int c = 0; c < 4; ++c) {
        for (int y = 0; y < 8; ++y) {
            for (int x = 4; x < 8; ++x) {
                EXPECT_FLOAT_EQ(out[(c * 8 + y) * 8 + x],
                                source[(c * 8 + y) * 8 + x]);
            }
        }
    }
    // And the regenerated half must differ.
    float diff = 0.0f;
    for (int c = 0; c < 4; ++c) {
        for (int y = 0; y < 8; ++y) {
            for (int x = 0; x < 4; ++x) {
                diff += std::abs(out[(c * 8 + y) * 8 + x] -
                                 source[(c * 8 + y) * 8 + x]);
            }
        }
    }
    EXPECT_GT(diff, 0.1f);
}

TEST(AutoencoderTest, ShapesRoundTrip) {
    aero::util::Rng rng(11);
    AutoencoderConfig config;
    config.image_size = 32;
    config.base_channels = 8;
    LatentAutoencoder ae(config, rng);
    const Var images = Var::constant(Tensor::randn({2, 3, 32, 32}, rng));
    const Var z = ae.encode(images);
    EXPECT_EQ(z.value().dim(1), config.latent_channels);
    EXPECT_EQ(z.value().dim(2), 8);
    const Var recon = ae.decode(z);
    EXPECT_EQ(recon.value().dim(1), 3);
    EXPECT_EQ(recon.value().dim(2), 32);
    for (float v : recon.value()) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(AutoencoderTest, TrainingImprovesReconstruction) {
    aero::util::Rng rng(12);
    AutoencoderConfig config;
    config.image_size = 32;
    config.base_channels = 8;
    LatentAutoencoder ae(config, rng);

    // Small set of structured images.
    std::vector<aero::image::Image> images;
    for (int i = 0; i < 6; ++i) {
        aero::image::Image img(32, 32,
                               {0.2f + 0.1f * static_cast<float>(i), 0.4f,
                                0.8f - 0.1f * static_cast<float>(i)});
        aero::image::fill_rect(img, 4 * i, 8, 6, 6, {1.0f, 1.0f, 1.0f});
        images.push_back(std::move(img));
    }
    AutoencoderTrainConfig train_config;
    train_config.steps = 80;
    train_config.batch_size = 4;
    const AutoencoderTrainStats stats =
        train_autoencoder(ae, images, train_config, rng);
    EXPECT_LT(stats.final_loss, stats.first_loss);
    EXPECT_GT(stats.latent_scale, 0.0f);

    // Round-trip of a training image should be closer than a black frame.
    const Tensor z = ae.encode_image(images[0]);
    const aero::image::Image recon = ae.decode_latent(z);
    const double psnr_recon = aero::image::psnr(images[0], recon);
    const aero::image::Image black(32, 32);
    const double psnr_black = aero::image::psnr(images[0], black);
    EXPECT_GT(psnr_recon, psnr_black);
}

}  // namespace
