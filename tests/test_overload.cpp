// Overload-control tests: AIMD limit convergence under a ManualClock,
// CoDel drop arming/acceleration/reset, degradation-ladder monotonicity
// and batch bias, the step-histogram p99 signal, the per-client token
// bucket (unit + service accounting), priority dequeue ordering with
// the anti-starvation bound, the expired-deadline-at-admission
// regression, bitwise neutrality under AERO_OVERLOAD=0, an end-to-end
// ladder shed, and a TSan chaos soak combining overload_spike with
// replica_slow on the router. The serve accounting invariant holds
// throughout: submitted == sum over outcomes, and by_rung sums to the
// terminal count.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/overload.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "util/fault.hpp"
#include "util/rate_limit.hpp"

namespace {

using namespace aero;
using namespace aero::serve;
using aero::core::AeroDiffusionPipeline;
using aero::core::Budget;
using aero::core::PipelineConfig;
using aero::core::Substrate;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        util::Rng rng(2025);
        return core::build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

/// Untrained pipeline — finite weights are all these tests need.
const AeroDiffusionPipeline& shared_pipeline() {
    static const AeroDiffusionPipeline pipeline = [] {
        util::Rng rng(7);
        return AeroDiffusionPipeline(PipelineConfig::aero_diffusion(),
                                     shared_substrate(), rng);
    }();
    return pipeline;
}

InferenceRequest valid_request(std::uint64_t seed = 1,
                               std::size_t sample = 0) {
    const Substrate& s = shared_substrate();
    InferenceRequest request;
    request.reference = s.dataset->test()[sample % s.dataset->test().size()];
    request.source_caption =
        s.keypoint_test[sample % s.keypoint_test.size()].text;
    request.target_caption = request.source_caption;
    request.seed = seed;
    return request;
}

ServiceConfig basic_config() {
    ServiceConfig config;
    config.limits.image_size = Budget::smoke().image_size;
    // Tests pin rate limiting explicitly; don't inherit the env.
    config.rate_limit = util::RateLimitConfig{};
    return config;
}

/// A controller config that is live and reacts on every evaluation.
OverloadConfig live_overload() {
    OverloadConfig config;
    config.enabled = true;
    return config;
}

// ---- AIMD concurrency limit -------------------------------------------------

TEST(AdmissionControllerTest, AimdConvergesDownThenRecovers) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.min_limit = 1;
    config.max_limit = 8;
    config.additive_increase = 1.0;
    config.decrease_factor = 0.5;
    config.interval_ms = 1.0;
    config.window = 4;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);  // 1ms
    AdmissionController controller(config, &clock);
    ASSERT_TRUE(controller.enabled());
    EXPECT_EQ(controller.limit(), 8);

    // Sustained 5x-target latencies: one multiplicative decrease per
    // interval until the floor (8 -> 4 -> 2 -> 1).
    for (int i = 0; i < 20; ++i) {
        clock.advance_ms(2.0);
        controller.on_finish(50.0);
    }
    EXPECT_EQ(controller.limit(), config.min_limit);
    EXPECT_GE(controller.decreases(), 3);
    EXPECT_GT(controller.load_index(), 1.0);

    // On-target windows earn additive increases back to the ceiling.
    for (int i = 0; i < 40; ++i) {
        clock.advance_ms(2.0);
        controller.on_finish(1.0);
    }
    EXPECT_EQ(controller.limit(), config.max_limit);
    EXPECT_LT(controller.load_index(), 1.0);
}

TEST(AdmissionControllerTest, DecreasesAreRateLimitedToOnePerInterval) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.max_limit = 64;
    config.decrease_factor = 0.5;
    config.interval_ms = 100.0;
    config.window = 4;
    obs::ManualClock clock;
    clock.set_ns(200'000'000);
    AdmissionController controller(config, &clock);

    // Many overshooting finishes inside one interval: at most one
    // decrease may land (64 -> 32, not a free-fall to the floor).
    for (int i = 0; i < 10; ++i) {
        clock.advance_ms(1.0);
        controller.on_finish(100.0);
    }
    EXPECT_EQ(controller.decreases(), 1);
    EXPECT_EQ(controller.limit(), 32);
}

// ---- CoDel queue discipline -------------------------------------------------

TEST(AdmissionControllerTest, CodelArmsDropsAcceleratesAndResets) {
    OverloadConfig config = live_overload();
    config.codel_target_ms = 10.0;
    config.codel_interval_ms = 100.0;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);

    // Below target: never drops, keeps the discipline disarmed.
    EXPECT_FALSE(controller.codel_drop(5.0));

    // First overage arms the grace interval but does not drop.
    EXPECT_FALSE(controller.codel_drop(15.0));
    clock.advance_ms(50.0);
    EXPECT_FALSE(controller.codel_drop(15.0));  // still inside the grace

    // Sustained past the interval: drop.
    clock.advance_ms(60.0);
    EXPECT_TRUE(controller.codel_drop(15.0));
    EXPECT_EQ(controller.codel_drops(), 1);

    // Next drop accelerates: interval / sqrt(2) ~ 70.7ms.
    clock.advance_ms(50.0);
    EXPECT_FALSE(controller.codel_drop(15.0));
    clock.advance_ms(25.0);
    EXPECT_TRUE(controller.codel_drop(15.0));
    EXPECT_EQ(controller.codel_drops(), 2);

    // A dip under target resets; the next overage re-arms from scratch.
    EXPECT_FALSE(controller.codel_drop(2.0));
    EXPECT_FALSE(controller.codel_drop(15.0));
    clock.advance_ms(150.0);
    EXPECT_TRUE(controller.codel_drop(15.0));
}

// ---- degradation ladder -----------------------------------------------------

TEST(AdmissionControllerTest, LadderIsMonotoneInLoadAndBatchIsNeverMilder) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.load_smoothing = 1.0;  // index tracks the newest sample exactly
    config.interval_ms = 0.0;     // evaluate on every finish
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);

    DegradeRung last = DegradeRung::kFull;
    const double latencies[] = {5.0, 12.0, 17.0, 25.0, 40.0};
    for (const double ms : latencies) {
        clock.advance_ms(1.0);
        controller.on_finish(ms);
        const DegradeRung rung = controller.rung_for(Priority::kInteractive);
        EXPECT_GE(rung, last) << "ladder must not skip down as load rises";
        EXPECT_GE(controller.rung_for(Priority::kBatch), rung);
        last = rung;
    }
    // 40ms against a 10ms target = index 4.0, past every threshold.
    EXPECT_EQ(last, DegradeRung::kShed);
}

TEST(AdmissionControllerTest, BatchBiasDegradesBatchFirst) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.load_smoothing = 1.0;
    config.interval_ms = 0.0;
    config.batch_bias = 0.5;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);

    // Index 0.8: interactive still full, batch reads 1.3 -> rung 1.
    clock.advance_ms(1.0);
    controller.on_finish(8.0);
    EXPECT_EQ(controller.rung_for(Priority::kInteractive),
              DegradeRung::kFull);
    EXPECT_EQ(controller.rung_for(Priority::kBatch),
              DegradeRung::kReducedSteps);
}

TEST(AdmissionControllerTest, PollDecaysAFullShedRungWithoutCompletions) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.load_smoothing = 0.5;
    config.interval_ms = 10.0;
    obs::ManualClock clock;
    clock.set_ns(20'000'000);
    AdmissionController controller(config, &clock);

    controller.on_finish(100.0);  // index 5.0: straight to shed
    EXPECT_EQ(controller.rung_for(Priority::kInteractive),
              DegradeRung::kShed);

    // Shed admissions complete nothing; arrival polls alone must decay
    // the index and walk the ladder back down (no stuck-at-shed
    // latch). Polls re-evaluate on the CoDel timescale.
    for (int i = 0; i < 20; ++i) {
        clock.advance_ms(config.codel_interval_ms);
        controller.poll();
    }
    EXPECT_EQ(controller.rung_for(Priority::kInteractive),
              DegradeRung::kFull);
    EXPECT_LT(controller.load_index(), 1.0);
}

TEST(AdmissionControllerTest, SpikeInjectionEscalatesImmediately) {
    OverloadConfig config = live_overload();
    config.latency_target_ms = 10.0;
    config.load_smoothing = 1.0;
    config.spike_factor = 8.0;
    obs::ManualClock clock;
    clock.set_ns(20'000'000);  // past the decrease interval
    AdmissionController controller(config, &clock);
    EXPECT_EQ(controller.rung_for(Priority::kInteractive),
              DegradeRung::kFull);

    controller.inject_spike();
    EXPECT_GT(controller.load_index(), 3.0);
    EXPECT_EQ(controller.rung_for(Priority::kInteractive),
              DegradeRung::kShed);
    EXPECT_GE(controller.decreases(), 1);
}

// ---- step-histogram p99 signal ---------------------------------------------

TEST(AdmissionControllerTest, StepHistogramP99DrivesDecreases) {
    if (!obs::enabled()) GTEST_SKIP() << "obs disabled; no step signal";
    OverloadConfig config = live_overload();
    config.latency_target_ms = 1000.0;  // request latencies look benign
    config.step_target_ms = 1.0;
    config.interval_ms = 0.0;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);

    // The controller baselines the cumulative histogram at
    // construction, so only these observations feed its delta-p99.
    obs::Histogram& steps = obs::MetricsRegistry::instance().histogram(
        "aero_diffusion_step_ms", "single DDIM denoising step, ms",
        obs::default_ms_buckets());
    for (int i = 0; i < 20; ++i) steps.observe(40.0);

    clock.advance_ms(1.0);
    controller.on_finish(0.01);  // benign end-to-end latency
    EXPECT_GE(controller.step_p99_ms(), 40.0);
    EXPECT_GE(controller.decreases(), 1);
    EXPECT_LT(controller.limit(), config.max_limit);
}

TEST(AdmissionControllerTest, StepSignalStaysNormalizedAtBatchGreaterThanOne) {
    if (!obs::enabled()) GTEST_SKIP() << "obs disabled; no step signal";
    // A batched denoising step amortises N requests, so the sampler
    // records elapsed / N once per participant into the step histogram
    // (sampler.cpp). This pins the contract from the controller's side:
    // per-request-normalized observations at a benign per-request cost
    // must NOT trip the AIMD decrease, while the same batch recorded
    // raw (the pre-normalization bug: one 8x observation per step)
    // must.
    OverloadConfig config = live_overload();
    config.latency_target_ms = 1000.0;  // request latencies look benign
    config.step_target_ms = 1.5;
    config.interval_ms = 0.0;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);

    obs::Histogram& steps = obs::MetricsRegistry::instance().histogram(
        "aero_diffusion_step_ms", "single DDIM denoising step, ms",
        obs::default_ms_buckets());
    // A batch of 8 whose step took 8 ms of wall time: 8 normalized
    // observations of 1 ms each. Per-request cost is under target.
    for (int i = 0; i < 8; ++i) steps.observe(1.0);
    clock.advance_ms(1.0);
    controller.on_finish(0.01);
    EXPECT_LE(controller.step_p99_ms(), config.step_target_ms);
    EXPECT_EQ(controller.decreases(), 0);
    EXPECT_EQ(controller.limit(), config.max_limit);

    // Normalization must not dull the signal either: a batch whose
    // per-request cost genuinely breaches the target (8 ms each — what
    // the raw pre-normalization recording would also have claimed for
    // the fast batch above) still trips the decrease.
    for (int i = 0; i < 8; ++i) steps.observe(8.0);
    clock.advance_ms(1.0);
    controller.on_finish(0.01);
    EXPECT_GT(controller.step_p99_ms(), config.step_target_ms);
    EXPECT_GE(controller.decreases(), 1);
    EXPECT_LT(controller.limit(), config.max_limit);
}

// ---- disabled controller is the identity ------------------------------------

TEST(AdmissionControllerTest, DisabledControllerIsIdentity) {
    OverloadConfig config;  // enabled = false
    config.max_limit = 16;
    obs::ManualClock clock;
    clock.set_ns(1'000'000);
    AdmissionController controller(config, &clock);
    EXPECT_FALSE(controller.enabled());
    for (int i = 0; i < 10; ++i) {
        clock.advance_ms(100.0);
        controller.on_finish(1e6);
    }
    EXPECT_EQ(controller.limit(), 16);
    EXPECT_FALSE(controller.codel_drop(1e6));
    EXPECT_EQ(controller.rung_for(Priority::kBatch), DegradeRung::kFull);
    EXPECT_EQ(controller.decreases(), 0);
}

// ---- per-client token bucket ------------------------------------------------

TEST(RateLimiterTest, BurstSpendRefillAndExemption) {
    util::RateLimitConfig config;
    config.qps = 2.0;
    config.burst = 2.0;
    util::RateLimiter limiter(config);
    ASSERT_TRUE(limiter.enabled());

    std::int64_t now = 0;
    EXPECT_TRUE(limiter.admit("alice", now));
    EXPECT_TRUE(limiter.admit("alice", now));
    EXPECT_FALSE(limiter.admit("alice", now));  // burst exhausted
    EXPECT_TRUE(limiter.admit("", now));        // anonymous: exempt
    EXPECT_TRUE(limiter.admit("", now));

    now += 500'000'000;  // +0.5s at 2 qps = one token back
    EXPECT_TRUE(limiter.admit("alice", now));
    EXPECT_FALSE(limiter.admit("alice", now));
    EXPECT_EQ(limiter.rejected(), 2);

    // Refill clamps at burst: a long idle gap does not bank tokens.
    now += 60'000'000'000;
    EXPECT_TRUE(limiter.admit("alice", now));
    EXPECT_TRUE(limiter.admit("alice", now));
    EXPECT_FALSE(limiter.admit("alice", now));
}

TEST(RateLimiterTest, UnconfiguredLimiterAdmitsEverything) {
    util::RateLimiter limiter(util::RateLimitConfig{});
    EXPECT_FALSE(limiter.enabled());
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.admit("alice", 0));
    EXPECT_EQ(limiter.rejected(), 0);
}

TEST(OverloadServiceTest, RateLimitedClientsShedWithAccounting) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.rate_limit.qps = 1.0;
    config.rate_limit.burst = 1.0;
    InferenceService service(shared_pipeline(), config);

    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < 3; ++i) {
        InferenceRequest request = valid_request(10 + i, i);
        request.options.client_id = "bulk-client";
        futures.push_back(service.submit(std::move(request)));
    }
    int shed = 0;
    for (auto& f : futures) {
        const RequestResult r = f.get();
        if (r.outcome == Outcome::kShed) {
            ++shed;
            EXPECT_NE(r.message.find("rate limited"), std::string::npos);
        }
    }
    service.stop();
    // Burst 1 at 1 qps, three back-to-back submits: exactly two shed.
    EXPECT_EQ(shed, 2);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rate_limited, 2);
    EXPECT_EQ(stats.outcome(Outcome::kShed), 2);
    EXPECT_TRUE(stats.balanced());
}

// ---- expired-deadline admission (regression) --------------------------------

TEST(OverloadServiceTest, ExpiredDeadlineAtAdmissionIsTimeoutNotShed) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    InferenceService service(shared_pipeline(), config);

    // 1e-9 ms passes validation (finite, non-negative, under the cap)
    // but truncates to an already-expired steady-clock deadline.
    InferenceRequest request = valid_request(21);
    request.deadline_ms = 1e-9;
    const RequestResult result = service.submit(std::move(request)).get();
    EXPECT_EQ(result.outcome, Outcome::kTimeout);
    EXPECT_EQ(result.message, "deadline expired at admission");
    EXPECT_FALSE(result.cancelled);
    // Never enqueued: the queue-wait accounting window must stay empty.
    EXPECT_EQ(result.queue_ms, 0.0);

    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.outcome(Outcome::kTimeout), 1);
    EXPECT_EQ(stats.outcome(Outcome::kShed), 0);
    EXPECT_TRUE(stats.balanced());
}

TEST(OverloadServiceTest, ExpiredDeadlineBeatsQueueFullClassification) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.queue_capacity = 1;
    InferenceService service(shared_pipeline(), config);

    // Keep the worker and the queue busy, then submit an expired
    // request: it must classify kTimeout even if the queue is full.
    std::vector<std::future<RequestResult>> busy;
    busy.push_back(service.submit(valid_request(31, 0)));
    busy.push_back(service.submit(valid_request(32, 1)));
    InferenceRequest expired = valid_request(33, 2);
    expired.deadline_ms = 1e-9;
    const RequestResult result = service.submit(std::move(expired)).get();
    EXPECT_EQ(result.outcome, Outcome::kTimeout);
    EXPECT_EQ(result.message, "deadline expired at admission");
    for (auto& f : busy) f.get();
    service.stop();
    EXPECT_TRUE(service.stats().balanced());
}

// ---- priority queueing ------------------------------------------------------

/// Absolute pickup instant (ms since t0) of a request submitted at
/// `submitted` whose result reports `queue_ms` of queue wait.
double pickup_ms(std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point submitted,
                 const RequestResult& result) {
    const double submit_ms =
        std::chrono::duration<double, std::milli>(submitted - t0).count();
    return submit_ms + result.queue_ms;
}

TEST(OverloadServiceTest, InteractiveDequeuesBeforeBatch) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.overload.batch_max_wait_ms = 1e9;  // starvation bound inert
    InferenceService service(shared_pipeline(), config);

    const auto t0 = std::chrono::steady_clock::now();
    // Occupy the single worker, then enqueue batch before interactive.
    auto first = service.submit(valid_request(41, 0));
    InferenceRequest batch = valid_request(42, 1);
    batch.options.priority = Priority::kBatch;
    const auto batch_at = std::chrono::steady_clock::now();
    auto batch_future = service.submit(std::move(batch));
    const auto inter_at = std::chrono::steady_clock::now();
    auto inter_future = service.submit(valid_request(43, 2));

    const RequestResult inter = inter_future.get();
    const RequestResult batched = batch_future.get();
    first.get();
    service.stop();

    // The interactive request submitted later was picked up earlier.
    EXPECT_LT(pickup_ms(t0, inter_at, inter),
              pickup_ms(t0, batch_at, batched));
    EXPECT_TRUE(service.stats().balanced());
}

TEST(OverloadServiceTest, AgedBatchHeadBeatsInteractive) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.overload.batch_max_wait_ms = 0.0;  // any wait trips the bound
    InferenceService service(shared_pipeline(), config);

    const auto t0 = std::chrono::steady_clock::now();
    auto first = service.submit(valid_request(51, 0));
    InferenceRequest batch = valid_request(52, 1);
    batch.options.priority = Priority::kBatch;
    const auto batch_at = std::chrono::steady_clock::now();
    auto batch_future = service.submit(std::move(batch));
    const auto inter_at = std::chrono::steady_clock::now();
    auto inter_future = service.submit(valid_request(53, 2));

    const RequestResult inter = inter_future.get();
    const RequestResult batched = batch_future.get();
    first.get();
    service.stop();

    EXPECT_LT(pickup_ms(t0, batch_at, batched),
              pickup_ms(t0, inter_at, inter));
    EXPECT_TRUE(service.stats().balanced());
}

// ---- degraded generation paths ---------------------------------------------

TEST(OverloadPipelineTest, DegradedControlsProduceFiniteFullSizeImages) {
    const AeroDiffusionPipeline& pipeline = shared_pipeline();
    const scene::AerialSample& ref = shared_substrate().dataset->test()[0];
    const std::string caption = shared_substrate().keypoint_test[0].text;
    const int size = Budget::smoke().image_size;

    core::GenerateControl control;
    control.max_steps = 2;
    control.half_resolution = true;
    util::Rng rng(42);
    const image::Image degraded =
        pipeline.generate(ref, caption, caption, rng, -1, &control);
    ASSERT_FALSE(degraded.empty());
    EXPECT_EQ(degraded.width(), size);
    EXPECT_EQ(degraded.height(), size);
    for (const float v : degraded.data()) ASSERT_TRUE(std::isfinite(v));

    // A default control block is bitwise-identical to no control block.
    util::Rng rng_a(43), rng_b(43);
    core::GenerateControl inert;
    const image::Image plain =
        pipeline.generate(ref, caption, caption, rng_a, -1, nullptr);
    const image::Image with_inert =
        pipeline.generate(ref, caption, caption, rng_b, -1, &inert);
    ASSERT_EQ(plain.data().size(), with_inert.data().size());
    EXPECT_EQ(std::memcmp(plain.data().data(), with_inert.data().data(),
                          plain.data().size() * sizeof(float)),
              0);
}

// ---- ladder end to end ------------------------------------------------------

TEST(OverloadServiceTest, SaturatedLadderShedsAtAdmission) {
    ServiceConfig config = basic_config();
    config.workers = 1;
    config.overload.enabled = true;
    config.overload.latency_target_ms = 1e-3;  // everything overshoots
    // Long interval: the second submit's poll() must not decay the
    // index before the rung is read.
    config.overload.interval_ms = 1000.0;
    config.overload.load_smoothing = 1.0;
    InferenceService service(shared_pipeline(), config);

    // First request admits at kFull (no load signal yet) and, on
    // finish, drives the load index far past the shed threshold.
    const RequestResult first = service.submit(valid_request(61, 0)).get();
    EXPECT_EQ(first.rung, DegradeRung::kFull);
    ASSERT_TRUE(first.outcome == Outcome::kOk ||
                first.outcome == Outcome::kDegraded);

    const RequestResult second = service.submit(valid_request(62, 1)).get();
    EXPECT_EQ(second.outcome, Outcome::kShed);
    EXPECT_EQ(second.rung, DegradeRung::kShed);
    EXPECT_NE(second.message.find("degradation ladder"), std::string::npos);

    service.stop();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.by_rung[static_cast<int>(DegradeRung::kFull)], 1);
    EXPECT_EQ(stats.by_rung[static_cast<int>(DegradeRung::kShed)], 1);
    long long rung_sum = 0;
    for (const long long n : stats.by_rung) rung_sum += n;
    EXPECT_EQ(rung_sum, stats.terminal());
    EXPECT_TRUE(stats.balanced());
}

// ---- AERO_OVERLOAD=0 bitwise neutrality -------------------------------------

TEST(OverloadServiceTest, DisabledSwitchIsBitwiseNeutral) {
    ServiceConfig plain_config = basic_config();
    plain_config.workers = 1;
    image::Image baseline;
    {
        InferenceService service(shared_pipeline(), plain_config);
        const RequestResult r = service.submit(valid_request(71, 0)).get();
        ASSERT_EQ(r.outcome, Outcome::kOk);
        baseline = r.image;
    }

    // Aggressive overload config, but the process switch is off: every
    // result must match the plain service bit for bit.
    const bool prev = overload_enabled();
    set_overload_enabled(false);
    {
        ServiceConfig config = plain_config;
        config.overload.enabled = true;
        config.overload.latency_target_ms = 1e-3;
        config.overload.interval_ms = 0.0;
        config.overload.load_smoothing = 1.0;
        InferenceService service(shared_pipeline(), config);
        for (int i = 0; i < 2; ++i) {
            InferenceRequest request = valid_request(71, 0);
            if (i == 1) request.options.priority = Priority::kBatch;
            const RequestResult r = service.submit(std::move(request)).get();
            ASSERT_EQ(r.outcome, Outcome::kOk);
            EXPECT_EQ(r.rung, DegradeRung::kFull);
            ASSERT_EQ(r.image.data().size(), baseline.data().size());
            EXPECT_EQ(std::memcmp(r.image.data().data(),
                                  baseline.data().data(),
                                  baseline.data().size() * sizeof(float)),
                      0);
        }
        EXPECT_TRUE(service.stats().balanced());
    }
    set_overload_enabled(prev);
}

// ---- chaos soak (TSan-covered via scripts/check.sh) -------------------------

TEST(OverloadChaosTest, RouterSoakStaysBalancedUnderSpikesAndFaults) {
    util::FaultInjector injector(1234);
    injector.set_fail_rate("overload_spike", 0.2);
    injector.set_fail_rate("replica_slow", 0.1);

    RouterConfig config;
    config.replicas = 2;
    config.service = basic_config();
    config.service.workers = 2;
    config.service.queue_capacity = 4;
    config.service.overload.enabled = true;
    config.service.overload.latency_target_ms = 30.0;
    config.service.overload.batch_max_wait_ms = 20.0;
    config.service.rate_limit.qps = 200.0;
    config.service.rate_limit.burst = 8.0;
    config.fault_injector = &injector;
    config.probe_request = valid_request(77, 0);
    Router router(shared_pipeline(), config);

    constexpr int kRequests = 48;
    std::vector<std::future<RequestResult>> futures;
    futures.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        InferenceRequest request = valid_request(100 + i, i);
        if (i % 3 == 0) request.options.priority = Priority::kBatch;
        if (i % 4 == 0) request.deadline_ms = 200.0;
        request.options.client_id = (i % 2 == 0) ? "alice" : "bob";
        futures.push_back(router.submit(std::move(request)));
    }
    for (auto& f : futures) {
        const RequestResult r = f.get();
        if (r.outcome == Outcome::kOk || r.outcome == Outcome::kDegraded) {
            ASSERT_FALSE(r.image.empty());
        }
    }
    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.submitted, kRequests);
    EXPECT_TRUE(stats.balanced());
}

}  // namespace
