// Continuous cross-request step batching (DESIGN.md §16). The load-
// bearing contract: a batched run is BITWISE identical to the
// sequential path at every batch size — including mid-flight joins,
// early retirements, mixed job kinds and mixed latent shapes — and
// leaves each caller's Rng stream in the same post-run state. Plus the
// sampler bugfix sweep riding along: non-finite edit strengths, the
// mid-Heun cancellation poll, and the per-request normalization of the
// step-time metric.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "util/rng.hpp"

namespace {

using aero::diffusion::BatchedDdimScheduler;
using aero::diffusion::DdimConfig;
using aero::diffusion::DdimSampler;
using aero::diffusion::NoiseSchedule;
using aero::diffusion::SamplerJob;
using aero::diffusion::UNet;
using aero::diffusion::UNetConfig;
using aero::serve::StepBatcher;
using aero::serve::StepBatcherConfig;
using aero::tensor::Tensor;
using aero::util::Rng;

/// Tiny but real UNet (the test_parallel fixture): full architecture,
/// smoke-sized widths, so a 4-step DDIM run is milliseconds.
const UNet& shared_unet() {
    static const UNet unet = [] {
        Rng build_rng(16);
        UNetConfig config;
        config.in_channels = 4;
        config.base_channels = 8;
        config.cond_dim = 8;
        config.heads = 2;
        config.time_dim = 8;
        config.groups = 2;
        return UNet(config, build_rng);
    }();
    return unet;
}

const NoiseSchedule& shared_schedule() {
    static const NoiseSchedule schedule({8, 0.001f, 0.012f, 8});
    return schedule;
}

Tensor shared_condition() {
    static const Tensor condition = [] {
        Rng rng(91);
        return Tensor::randn({3, 8}, rng);
    }();
    return condition;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
    if (!a.same_shape(b)) return false;
    return std::memcmp(a.data(), b.data(),
                       sizeof(float) * static_cast<std::size_t>(a.size())) ==
           0;
}

/// A job recipe: everything needed to build the same SamplerJob twice
/// (once for the sequential reference, once for the batched run), each
/// time with a fresh Rng seeded `seed`.
struct Recipe {
    SamplerJob::Kind kind = SamplerJob::Kind::kSample;
    std::vector<int> shape = {4, 8, 8};
    float strength = 0.6f;
    bool conditioned = false;
    DdimConfig config;
    std::uint64_t seed = 1;
};

SamplerJob build_job(const Recipe& recipe, Rng* rng) {
    SamplerJob job;
    job.kind = recipe.kind;
    job.config = recipe.config;
    job.rng = rng;
    if (recipe.conditioned) job.condition_tokens = shared_condition();
    switch (recipe.kind) {
        case SamplerJob::Kind::kSample:
            job.shape = recipe.shape;
            break;
        case SamplerJob::Kind::kEdit: {
            Rng source_rng(recipe.seed + 1000);
            job.source = Tensor::randn(recipe.shape, source_rng);
            job.strength = recipe.strength;
            break;
        }
        case SamplerJob::Kind::kInpaint: {
            Rng source_rng(recipe.seed + 1000);
            job.source = Tensor::randn(recipe.shape, source_rng);
            job.mask = Tensor(recipe.shape);
            // Regenerate the first half of the latent, keep the rest.
            for (int i = 0; i < job.mask.size() / 2; ++i) {
                job.mask.data()[i] = 1.0f;
            }
            break;
        }
    }
    return job;
}

/// Sequential reference: a private batch-of-one run. Returns the latent
/// and the post-run Rng probe (next_u64) for stream-state comparison.
struct Reference {
    Tensor latent;
    std::uint64_t rng_probe = 0;
};

Reference sequential_reference(const Recipe& recipe) {
    Rng rng(recipe.seed);
    Reference ref;
    ref.latent = aero::diffusion::run_sampler_job(
        shared_unet(), shared_schedule(), build_job(recipe, &rng));
    ref.rng_probe = rng.next_u64();
    return ref;
}

/// Admits every recipe into one scheduler, runs it dry, and checks each
/// job's latent AND post-run Rng stream against the sequential path.
void expect_batched_matches_sequential(const std::vector<Recipe>& recipes,
                                       const char* label) {
    std::vector<Reference> references;
    references.reserve(recipes.size());
    for (const Recipe& recipe : recipes) {
        references.push_back(sequential_reference(recipe));
    }

    BatchedDdimScheduler scheduler(shared_unet(), shared_schedule());
    std::vector<Rng> rngs;
    rngs.reserve(recipes.size());
    for (const Recipe& recipe : recipes) rngs.emplace_back(recipe.seed);
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < recipes.size(); ++i) {
        by_id[scheduler.admit(build_job(recipes[i], &rngs[i]))] = i;
    }
    while (scheduler.step() > 0) {
    }
    std::size_t retired = 0;
    for (BatchedDdimScheduler::Finished& finished :
         scheduler.take_finished()) {
        ASSERT_EQ(by_id.count(finished.id), 1u) << label;
        const std::size_t i = by_id[finished.id];
        EXPECT_FALSE(finished.cancelled) << label << ": job " << i;
        EXPECT_TRUE(bitwise_equal(finished.latent, references[i].latent))
            << label << ": job " << i << " differs from sequential";
        EXPECT_EQ(rngs[i].next_u64(), references[i].rng_probe)
            << label << ": job " << i << " left its Rng stream elsewhere";
        ++retired;
    }
    EXPECT_EQ(retired, recipes.size()) << label;
}

/// Mixed workload covering every code path: plain, CFG, Heun,
/// stochastic eta, edit, inpaint.
std::vector<Recipe> mixed_recipes(std::size_t count) {
    std::vector<Recipe> recipes;
    for (std::size_t i = 0; i < count; ++i) {
        Recipe recipe;
        recipe.seed = 100 + i;
        recipe.config.inference_steps = 4;
        switch (i % 6) {
            case 0:
                break;  // plain unconditional sample
            case 1:
                recipe.conditioned = true;
                recipe.config.guidance_scale = 7.0f;
                break;
            case 2:
                recipe.config.use_heun = true;
                break;
            case 3:
                recipe.config.eta = 0.3f;
                break;
            case 4:
                recipe.kind = SamplerJob::Kind::kEdit;
                recipe.conditioned = true;
                recipe.config.guidance_scale = 3.0f;
                break;
            case 5:
                recipe.kind = SamplerJob::Kind::kInpaint;
                recipe.config.eta = 0.2f;
                break;
        }
        recipes.push_back(recipe);
    }
    return recipes;
}

// ---- bitwise equivalence ----------------------------------------------------

TEST(BatchBitwiseTest, BatchSizesMatchSequential) {
    for (const std::size_t batch : {1u, 2u, 7u}) {
        expect_batched_matches_sequential(mixed_recipes(batch),
                                          "batch of mixed jobs");
    }
}

TEST(BatchBitwiseTest, MixedLatentShapesSplitIntoGroups) {
    // The half-resolution overload rung puts differently-shaped latents
    // into the same step; they must partition into per-shape forwards
    // without perturbing each other.
    std::vector<Recipe> recipes = mixed_recipes(3);
    recipes[1].shape = {4, 4, 4};
    expect_batched_matches_sequential(recipes, "mixed shapes");
}

TEST(BatchBitwiseTest, CompositionOrderDoesNotMatter) {
    const std::vector<Recipe> forward = mixed_recipes(4);
    std::vector<Recipe> reversed(forward.rbegin(), forward.rend());
    expect_batched_matches_sequential(forward, "forward order");
    expect_batched_matches_sequential(reversed, "reversed order");
}

TEST(BatchBitwiseTest, StaggeredJoinsMatchSequential) {
    // A join at a step boundary must not disturb jobs already mid-
    // flight, and the joiner itself must match its own sequential run.
    const std::vector<Recipe> recipes = mixed_recipes(3);
    std::vector<Reference> references;
    for (const Recipe& recipe : recipes) {
        references.push_back(sequential_reference(recipe));
    }

    BatchedDdimScheduler scheduler(shared_unet(), shared_schedule());
    std::vector<Rng> rngs;
    for (const Recipe& recipe : recipes) rngs.emplace_back(recipe.seed);
    std::map<std::uint64_t, std::size_t> by_id;
    by_id[scheduler.admit(build_job(recipes[0], &rngs[0]))] = 0;
    by_id[scheduler.admit(build_job(recipes[1], &rngs[1]))] = 1;
    scheduler.step();
    scheduler.step();
    by_id[scheduler.admit(build_job(recipes[2], &rngs[2]))] = 2;
    while (scheduler.step() > 0) {
    }
    std::size_t retired = 0;
    for (BatchedDdimScheduler::Finished& finished :
         scheduler.take_finished()) {
        const std::size_t i = by_id[finished.id];
        EXPECT_TRUE(bitwise_equal(finished.latent, references[i].latent))
            << "staggered job " << i;
        EXPECT_EQ(rngs[i].next_u64(), references[i].rng_probe)
            << "staggered job " << i;
        ++retired;
    }
    EXPECT_EQ(retired, recipes.size());
}

TEST(BatchBitwiseTest, EarlyRetirementDoesNotPerturbSurvivors) {
    std::vector<Recipe> recipes = mixed_recipes(3);
    // Job 1 cancels at its third step-boundary poll; 0 and 2 run to
    // completion and must still match their sequential references.
    int polls = 0;
    recipes[1].config.should_cancel = [&polls] { return ++polls > 2; };

    std::vector<Reference> references;
    references.push_back(sequential_reference(recipes[0]));
    references.push_back({});  // cancelled: no reference
    references.push_back(sequential_reference(recipes[2]));

    polls = 0;
    BatchedDdimScheduler scheduler(shared_unet(), shared_schedule());
    std::vector<Rng> rngs;
    for (const Recipe& recipe : recipes) rngs.emplace_back(recipe.seed);
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < recipes.size(); ++i) {
        by_id[scheduler.admit(build_job(recipes[i], &rngs[i]))] = i;
    }
    while (scheduler.step() > 0) {
    }
    std::size_t retired = 0;
    for (BatchedDdimScheduler::Finished& finished :
         scheduler.take_finished()) {
        const std::size_t i = by_id[finished.id];
        if (i == 1) {
            EXPECT_TRUE(finished.cancelled);
            EXPECT_TRUE(finished.latent.empty());
        } else {
            EXPECT_FALSE(finished.cancelled);
            EXPECT_TRUE(bitwise_equal(finished.latent, references[i].latent))
                << "survivor " << i << " perturbed by a retirement";
        }
        ++retired;
    }
    EXPECT_EQ(retired, recipes.size());
}

// ---- bugfix: non-finite edit strength ---------------------------------------

TEST(SamplerRegressionTest, NonFiniteEditStrengthReturnsEmpty) {
    DdimConfig config;
    config.inference_steps = 4;
    const DdimSampler sampler(shared_unet(), shared_schedule(), config);
    Rng source_rng(5);
    const Tensor source = Tensor::randn({4, 8, 8}, source_rng);

    for (const float bad : {std::numeric_limits<float>::quiet_NaN(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity()}) {
        Rng rng(6);
        const Tensor out = sampler.edit(source, Tensor(), bad, rng);
        EXPECT_TRUE(out.empty()) << "strength " << bad;
        // The rejected job must not have consumed any noise.
        EXPECT_EQ(rng.next_u64(), Rng(6).next_u64()) << "strength " << bad;
    }

    Rng rng(6);
    EXPECT_FALSE(sampler.edit(source, Tensor(), 0.6f, rng).empty());
}

// ---- bugfix: mid-Heun cancellation poll -------------------------------------

TEST(SamplerRegressionTest, HeunPollsCancellationMidStep) {
    // Heun doubles the NFE per step, so cancellation is polled before
    // the corrector's second evaluation too: 2 polls per step, minus
    // the final step (t_prev < 0 skips the corrector).
    const int steps = 4;
    DdimConfig config;
    config.inference_steps = steps;
    config.use_heun = true;
    int polls = 0;
    config.should_cancel = [&polls] {
        ++polls;
        return false;
    };
    const DdimSampler sampler(shared_unet(), shared_schedule(), config);
    Rng rng(7);
    EXPECT_FALSE(sampler.sample({4, 8, 8}, Tensor(), rng).empty());
    EXPECT_EQ(polls, 2 * steps - 1);

    // Without Heun only the step-boundary poll runs.
    polls = 0;
    config.use_heun = false;
    const DdimSampler plain(shared_unet(), shared_schedule(), config);
    Rng plain_rng(7);
    EXPECT_FALSE(plain.sample({4, 8, 8}, Tensor(), plain_rng).empty());
    EXPECT_EQ(polls, steps);

    // Cancelling on the mid-step poll abandons the run one denoiser
    // evaluation later — not one full Heun step later.
    polls = 0;
    config.use_heun = true;
    config.should_cancel = [&polls] { return ++polls >= 2; };
    const DdimSampler cancelled(shared_unet(), shared_schedule(), config);
    Rng cancel_rng(7);
    EXPECT_TRUE(cancelled.sample({4, 8, 8}, Tensor(), cancel_rng).empty());
    EXPECT_EQ(polls, 2);
}

// ---- bugfix: step metric normalization at batch > 1 -------------------------

TEST(BatchMetricsTest, StepTimeRecordedPerRequestNormalized) {
    if (!aero::obs::enabled()) GTEST_SKIP() << "obs disabled; no metrics";
    aero::obs::MetricsRegistry& registry =
        aero::obs::MetricsRegistry::instance();
    aero::obs::Histogram& step_ms = registry.histogram(
        "aero_diffusion_step_ms", "single DDIM denoising step, ms",
        aero::obs::default_ms_buckets());
    aero::obs::Histogram& batch_size = registry.histogram(
        "aero_batch_size",
        "requests amortised by one batched denoising step",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    aero::obs::Counter& steps = registry.counter(
        "aero_batch_steps_total", "batched denoising steps executed");
    aero::obs::Counter& joins = registry.counter(
        "aero_batch_joins_total",
        "sampling jobs admitted into the step batch");
    aero::obs::Counter& retired = registry.counter(
        "aero_batch_retired_total",
        "sampling jobs retired from the step batch (finished or "
        "cancelled)");

    const auto step_before = step_ms.snapshot();
    const auto size_before = batch_size.snapshot();
    const long long steps_before = steps.value();
    const long long joins_before = joins.value();
    const long long retired_before = retired.value();

    const std::vector<Recipe> recipes = mixed_recipes(3);
    BatchedDdimScheduler scheduler(shared_unet(), shared_schedule());
    std::vector<Rng> rngs;
    for (const Recipe& recipe : recipes) rngs.emplace_back(recipe.seed);
    for (std::size_t i = 0; i < recipes.size(); ++i) {
        scheduler.admit(build_job(recipes[i], &rngs[i]));
    }
    scheduler.step();

    // One batched step over 3 requests: the step histogram gets one
    // NORMALIZED observation per participant (elapsed / 3 each), so the
    // AIMD controller's delta-p99 stays in per-request units, and the
    // batch-size histogram gets exactly one observation of 3.
    EXPECT_EQ(step_ms.snapshot().count - step_before.count, 3);
    EXPECT_EQ(batch_size.snapshot().count - size_before.count, 1);
    EXPECT_EQ(steps.value() - steps_before, 1);
    EXPECT_EQ(joins.value() - joins_before, 3);

    while (scheduler.step() > 0) {
    }
    EXPECT_EQ(scheduler.take_finished().size(), recipes.size());
    // Every join eventually balances with a retirement.
    EXPECT_EQ(retired.value() - retired_before, 3);
}

// ---- serve::StepBatcher -----------------------------------------------------

/// Restores the process-wide AERO_BATCH gate after a test flips it.
class BatchGateGuard {
public:
    BatchGateGuard() : saved_(aero::serve::batching_enabled()) {}
    ~BatchGateGuard() { aero::serve::set_batching_enabled(saved_); }

private:
    bool saved_;
};

TEST(StepBatcherTest, NotLiveConfigsAreTrueNoOps) {
    const BatchGateGuard guard;
    aero::serve::set_batching_enabled(true);
    StepBatcherConfig config;
    config.batch_max = 1;
    EXPECT_FALSE(aero::serve::step_batching_live(config));
    config.batch_max = 8;
    config.enabled = false;
    EXPECT_FALSE(aero::serve::step_batching_live(config));
    config.enabled = true;
    EXPECT_TRUE(aero::serve::step_batching_live(config));
    aero::serve::set_batching_enabled(false);  // AERO_BATCH=0
    EXPECT_FALSE(aero::serve::step_batching_live(config));

    aero::serve::set_batching_enabled(true);
    config.batch_max = 1;
    StepBatcher batcher(shared_unet(), shared_schedule(), config);
    EXPECT_FALSE(batcher.live());
    // Degenerate execute() is the inline sequential path, bit for bit.
    const Recipe recipe = mixed_recipes(1)[0];
    const Reference reference = sequential_reference(recipe);
    Rng rng(recipe.seed);
    EXPECT_TRUE(bitwise_equal(batcher.execute(build_job(recipe, &rng)),
                              reference.latent));
    EXPECT_EQ(batcher.stats().admitted, 0);
}

TEST(StepBatcherTest, ConcurrentCallersGetBitwiseSequentialResults) {
    const BatchGateGuard guard;
    aero::serve::set_batching_enabled(true);
    StepBatcherConfig config;
    config.batch_max = 4;
    StepBatcher batcher(shared_unet(), shared_schedule(), config);
    ASSERT_TRUE(batcher.live());

    const std::vector<Recipe> recipes = mixed_recipes(8);
    std::vector<Reference> references;
    for (const Recipe& recipe : recipes) {
        references.push_back(sequential_reference(recipe));
    }
    std::vector<Tensor> results(recipes.size());
    std::vector<std::uint64_t> probes(recipes.size());
    {
        std::vector<std::thread> callers;
        callers.reserve(recipes.size());
        for (std::size_t i = 0; i < recipes.size(); ++i) {
            callers.emplace_back([&, i] {
                Rng rng(recipes[i].seed);
                results[i] = batcher.execute(build_job(recipes[i], &rng));
                probes[i] = rng.next_u64();
            });
        }
        for (std::thread& caller : callers) caller.join();
    }
    for (std::size_t i = 0; i < recipes.size(); ++i) {
        EXPECT_TRUE(bitwise_equal(results[i], references[i].latent))
            << "caller " << i;
        EXPECT_EQ(probes[i], references[i].rng_probe) << "caller " << i;
    }
    const StepBatcher::Stats stats = batcher.stats();
    EXPECT_EQ(stats.admitted, 8);
    EXPECT_EQ(stats.completed, 8);
    EXPECT_EQ(stats.cancelled, 0);
    EXPECT_GE(stats.peak_batch, 1u);
    EXPECT_LE(stats.peak_batch, 4u);
    batcher.shutdown();
    batcher.shutdown();  // idempotent
    // After shutdown new jobs resolve empty instead of hanging.
    Rng late_rng(3);
    EXPECT_TRUE(
        batcher.execute(build_job(mixed_recipes(1)[0], &late_rng)).empty());
}

TEST(StepBatcherTest, StressMixedCancellationsAndShutdownDrain) {
    // TSan-hunted stress: many callers, a small batch, some jobs
    // cancelling mid-flight, and a shutdown racing the tail. The
    // invariants: every execute() resolves, and the stats balance.
    const BatchGateGuard guard;
    aero::serve::set_batching_enabled(true);
    StepBatcherConfig config;
    config.batch_max = 4;
    StepBatcher batcher(shared_unet(), shared_schedule(), config);

    constexpr std::size_t kCallers = 12;
    std::vector<int> polls(kCallers, 0);
    std::vector<Tensor> results(kCallers);
    {
        std::vector<std::thread> callers;
        for (std::size_t i = 0; i < kCallers; ++i) {
            callers.emplace_back([&, i] {
                Recipe recipe = mixed_recipes(kCallers)[i];
                if (i % 3 == 0) {
                    // Cancel after a couple of denoising steps.
                    recipe.config.should_cancel = [&polls, i] {
                        return ++polls[i] > 2;
                    };
                }
                Rng rng(recipe.seed);
                results[i] = batcher.execute(build_job(recipe, &rng));
            });
        }
        for (std::thread& caller : callers) caller.join();
    }
    batcher.shutdown();
    const StepBatcher::Stats stats = batcher.stats();
    EXPECT_EQ(stats.admitted, static_cast<long long>(kCallers));
    EXPECT_EQ(stats.completed + stats.cancelled,
              static_cast<long long>(kCallers));
    EXPECT_GE(stats.cancelled, static_cast<long long>(kCallers / 3));
    for (std::size_t i = 0; i < kCallers; ++i) {
        if (i % 3 == 0) {
            EXPECT_TRUE(results[i].empty()) << "caller " << i;
        } else {
            EXPECT_FALSE(results[i].empty()) << "caller " << i;
        }
    }
}

}  // namespace
