#include <gtest/gtest.h>

#include <algorithm>

#include "scene/generator.hpp"
#include "text/caption.hpp"
#include "text/llm.hpp"
#include "text/parser.hpp"
#include "text/vocabulary.hpp"

namespace {

using namespace aero::text;
using aero::scene::ObjectClass;
using aero::scene::Scene;
using aero::scene::ScenarioKind;
using aero::scene::TimeOfDay;

TEST(Vocabulary, BasicLookups) {
    const Vocabulary& vocab = Vocabulary::aerial();
    EXPECT_GT(vocab.size(), 100);
    EXPECT_EQ(vocab.word(vocab.id("car")), "car");
    EXPECT_EQ(vocab.id("zzzznotaword"), vocab.unk_id());
    EXPECT_NE(vocab.id("highway"), vocab.unk_id());
}

TEST(Vocabulary, EncodeNormalisesPunctuation) {
    const Vocabulary& vocab = Vocabulary::aerial();
    const auto ids = vocab.encode("A daytime, aerial image.");
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids[1], vocab.id("daytime"));
    for (int id : ids) EXPECT_NE(id, vocab.unk_id());
}

TEST(Vocabulary, DecodeRoundTrip) {
    const Vocabulary& vocab = Vocabulary::aerial();
    const auto ids = vocab.encode("several cars near the highway");
    EXPECT_EQ(vocab.decode(ids), "several cars near the highway");
}

TEST(NormalizeWord, StripsAndLowercases) {
    EXPECT_EQ(normalize_word("Cars,"), "cars");
    EXPECT_EQ(normalize_word("top-down"), "top-down");
    EXPECT_EQ(normalize_word("..."), "");
}

TEST(PromptTemplateTest, TraditionalIsBare) {
    const auto p = PromptTemplate::traditional();
    EXPECT_EQ(p.render(), "Write a description for this image.");
}

TEST(PromptTemplateTest, KeypointAwareMentionsKeypoints) {
    const std::string p = PromptTemplate::keypoint_aware().render();
    EXPECT_NE(p.find("time of day"), std::string::npos);
    EXPECT_NE(p.find("viewpoint"), std::string::npos);
    EXPECT_NE(p.find("objects"), std::string::npos);
    EXPECT_NE(p.find("positions"), std::string::npos);
}

TEST(CaptionHelpers, CountWords) {
    EXPECT_EQ(count_word(0, false), "no");
    EXPECT_EQ(count_word(3, false), "three");
    EXPECT_EQ(count_word(12, false), "twelve");
    EXPECT_EQ(count_word(20, false), "dozens");
    EXPECT_EQ(count_word(60, false), "numerous");
    EXPECT_EQ(count_word(6, true), "several");
    EXPECT_EQ(count_word(30, true), "many");
}

TEST(CaptionHelpers, TrueMentionsSortedByCount) {
    aero::util::Rng rng(1);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kHighway, TimeOfDay::kDay, rng, 0);
    const auto mentions = true_mentions(scene);
    ASSERT_FALSE(mentions.empty());
    for (std::size_t i = 1; i < mentions.size(); ++i) {
        EXPECT_GE(mentions[i - 1].count, mentions[i].count);
    }
    int total = 0;
    for (const auto& m : mentions) total += m.count;
    EXPECT_EQ(total, static_cast<int>(scene.objects.size()));
}

TEST(CaptionHelpers, KeypointCoverage) {
    Caption c;
    EXPECT_FLOAT_EQ(keypoint_coverage(c), 0.0f);
    c.mentions_time = true;
    c.mentions_viewpoint = true;
    c.mentions.push_back({ObjectClass::kCar, 3, false});
    c.mentions_positions = true;
    EXPECT_FLOAT_EQ(keypoint_coverage(c), 1.0f);
}

TEST(SimulatedLlmTest, KeypointAwareCoversEverything) {
    aero::util::Rng scene_rng(2);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kMarket, TimeOfDay::kDay, scene_rng, 0);
    aero::util::Rng rng(3);
    const auto llm = SimulatedLlm::keypoint_aware();
    const Caption c =
        llm.describe(scene, PromptTemplate::keypoint_aware(), rng);
    EXPECT_TRUE(c.mentions_time);
    EXPECT_TRUE(c.mentions_viewpoint);
    EXPECT_FALSE(c.mentions.empty());
    EXPECT_GE(keypoint_coverage(c), 0.75f);
    EXPECT_NE(c.text.find("daytime"), std::string::npos);
    EXPECT_NE(c.text.find("market"), std::string::npos);
}

TEST(SimulatedLlmTest, BlipIsVagueAndSparse) {
    aero::util::Rng scene_rng(4);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kHighway, TimeOfDay::kDay, scene_rng, 0);
    const auto ours = SimulatedLlm::keypoint_aware();
    const auto blip = SimulatedLlm::blip_captioner();
    double ours_cov = 0.0;
    double blip_cov = 0.0;
    double ours_mentions = 0.0;
    double blip_mentions = 0.0;
    aero::util::Rng rng(5);
    const int trials = 40;
    for (int i = 0; i < trials; ++i) {
        const Caption a =
            ours.describe(scene, PromptTemplate::keypoint_aware(), rng);
        const Caption b =
            blip.describe(scene, PromptTemplate::traditional(), rng);
        ours_cov += keypoint_coverage(a);
        blip_cov += keypoint_coverage(b);
        ours_mentions += static_cast<double>(a.mentions.size());
        blip_mentions += static_cast<double>(b.mentions.size());
    }
    EXPECT_GT(ours_cov, blip_cov);
    EXPECT_GT(ours_mentions, blip_mentions * 1.5);
}

TEST(SimulatedLlmTest, NoiseOrderingAcrossBackends) {
    // Average claimed-count error: ours < gemini < gpt4o.
    aero::util::Rng scene_rng(6);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kIntersection, TimeOfDay::kDay, scene_rng, 0);
    const auto truth = true_mentions(scene);
    auto fidelity = [&](const SimulatedLlm& llm, aero::util::Rng rng) {
        double score = 0.0;
        const int trials = 60;
        for (int i = 0; i < trials; ++i) {
            const Caption c =
                llm.describe(scene, PromptTemplate::keypoint_aware(), rng);
            // Fraction of true classes mentioned exactly.
            int exact = 0;
            for (const auto& t : truth) {
                for (const auto& m : c.mentions) {
                    if (m.cls == t.cls && !m.vague && m.count == t.count) {
                        ++exact;
                        break;
                    }
                }
            }
            score += static_cast<double>(exact) /
                     static_cast<double>(truth.size());
        }
        return score / trials;
    };
    const double ours = fidelity(SimulatedLlm::keypoint_aware(),
                                 aero::util::Rng(7));
    const double gemini = fidelity(SimulatedLlm::gemini(),
                                   aero::util::Rng(7));
    const double gpt = fidelity(SimulatedLlm::gpt4o(), aero::util::Rng(7));
    EXPECT_GT(ours, gemini);
    EXPECT_GT(gemini, gpt);
}

TEST(SimulatedLlmTest, CaptionTokenisesCleanly) {
    const Vocabulary& vocab = Vocabulary::aerial();
    aero::util::Rng rng(8);
    for (int k = 0; k < aero::scene::kNumScenarios; ++k) {
        aero::util::Rng scene_rng(100 + static_cast<std::uint64_t>(k));
        const Scene scene = aero::scene::generate_scene(
            static_cast<ScenarioKind>(k),
            k % 2 == 0 ? TimeOfDay::kDay : TimeOfDay::kNight, scene_rng, k);
        const Caption c = SimulatedLlm::keypoint_aware().describe(
            scene, PromptTemplate::keypoint_aware(), rng);
        const auto ids = vocab.encode(c.text);
        ASSERT_FALSE(ids.empty());
        int unknown = 0;
        for (int id : ids) {
            if (id == vocab.unk_id()) ++unknown;
        }
        // The grammar is closed over the vocabulary.
        EXPECT_EQ(unknown, 0) << "scenario " << k << ": " << c.text;
    }
}

TEST(SimulatedLlmTest, NightCaptionSaysNighttime) {
    aero::util::Rng scene_rng(9);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kPlaza, TimeOfDay::kNight, scene_rng, 0);
    aero::util::Rng rng(10);
    const Caption c = SimulatedLlm::keypoint_aware().describe(
        scene, PromptTemplate::keypoint_aware(), rng);
    EXPECT_EQ(c.time, TimeOfDay::kNight);
    EXPECT_NE(c.text.find("nighttime"), std::string::npos);
}

// Parameterized backend sweep: every simulated LLM must produce captions
// that tokenise within the closed vocabulary, mention the scenario, and
// produce non-empty text for every scenario/time combination.
class BackendSweep : public ::testing::TestWithParam<int> {
protected:
    SimulatedLlm backend() const {
        switch (GetParam()) {
            case 0: return SimulatedLlm::keypoint_aware();
            case 1: return SimulatedLlm::gemini();
            case 2: return SimulatedLlm::gpt4o();
            default: return SimulatedLlm::blip_captioner();
        }
    }
};

TEST_P(BackendSweep, CaptionsAreWellFormedEverywhere) {
    const Vocabulary& vocab = Vocabulary::aerial();
    const SimulatedLlm llm = backend();
    aero::util::Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
    for (int k = 0; k < aero::scene::kNumScenarios; ++k) {
        for (TimeOfDay time : {TimeOfDay::kDay, TimeOfDay::kNight}) {
            aero::util::Rng scene_rng(
                700 + static_cast<std::uint64_t>(k) * 2 +
                (time == TimeOfDay::kNight ? 1 : 0));
            const Scene scene = aero::scene::generate_scene(
                static_cast<ScenarioKind>(k), time, scene_rng, k);
            const Caption caption = llm.describe(
                scene, PromptTemplate::keypoint_aware(), rng);
            ASSERT_FALSE(caption.text.empty());
            const auto ids = vocab.encode(caption.text);
            ASSERT_FALSE(ids.empty());
            for (int id : ids) {
                EXPECT_NE(id, vocab.unk_id()) << caption.text;
            }
            EXPECT_EQ(caption.scenario, scene.kind);
        }
    }
}

TEST_P(BackendSweep, DeterministicGivenRngState) {
    const SimulatedLlm llm = backend();
    aero::util::Rng scene_rng(42);
    const Scene scene = aero::scene::generate_scene(
        ScenarioKind::kMarket, TimeOfDay::kDay, scene_rng, 0);
    aero::util::Rng rng_a(9);
    aero::util::Rng rng_b(9);
    const Caption a = llm.describe(scene, PromptTemplate::keypoint_aware(),
                                   rng_a);
    const Caption b = llm.describe(scene, PromptTemplate::keypoint_aware(),
                                   rng_b);
    EXPECT_EQ(a.text, b.text);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSweep,
                         ::testing::Range(0, 4));

TEST(Parser, CountWords) {
    EXPECT_EQ(parse_count_word("three")->count, 3);
    EXPECT_FALSE(parse_count_word("three")->vague);
    EXPECT_TRUE(parse_count_word("several")->vague);
    EXPECT_EQ(parse_count_word("no")->count, 0);
    EXPECT_FALSE(parse_count_word("car").has_value());
}

TEST(Parser, ScenarioRecognition) {
    EXPECT_EQ(parse_scenario("a busy highway under the sun"),
              aero::scene::ScenarioKind::kHighway);
    EXPECT_EQ(parse_scenario("the tranquil park"),
              aero::scene::ScenarioKind::kPark);
    EXPECT_EQ(parse_scenario("A DAYTIME view of an urban intersection"),
              aero::scene::ScenarioKind::kIntersection);
    EXPECT_FALSE(parse_scenario("nothing recognisable").has_value());
}

TEST(Parser, FullCaptionFields) {
    const std::string text =
        "A nighttime aerial image of a bustling market street under a dark "
        "sky, captured from a low altitude at a slightly angled "
        "perspective. There are five cars and several pedestrians in the "
        "scene. Stalls line the left edge.";
    const Caption parsed = parse_caption(text);
    EXPECT_EQ(parsed.time, TimeOfDay::kNight);
    EXPECT_TRUE(parsed.mentions_time);
    EXPECT_EQ(parsed.scenario, ScenarioKind::kMarket);
    EXPECT_EQ(parsed.altitude, aero::scene::AltitudeBand::kLow);
    EXPECT_EQ(parsed.pitch, aero::scene::PitchBand::kSlightAngle);
    ASSERT_EQ(parsed.mentions.size(), 2u);
    EXPECT_EQ(parsed.mentions[0].cls, ObjectClass::kCar);
    EXPECT_EQ(parsed.mentions[0].count, 5);
    EXPECT_TRUE(parsed.mentions[1].vague);
    EXPECT_TRUE(parsed.mentions_positions);
}

TEST(Parser, RoundTripThroughGrammar) {
    // describe() -> text -> parse_caption recovers the structured fields
    // for every scenario and time of day.
    const auto llm = SimulatedLlm::keypoint_aware();
    const auto prompt = PromptTemplate::keypoint_aware();
    aero::util::Rng rng(55);
    for (int k = 0; k < aero::scene::kNumScenarios; ++k) {
        for (TimeOfDay time : {TimeOfDay::kDay, TimeOfDay::kNight}) {
            aero::util::Rng scene_rng(
                900 + static_cast<std::uint64_t>(k) * 2 +
                (time == TimeOfDay::kNight ? 1 : 0));
            const Scene scene = aero::scene::generate_scene(
                static_cast<ScenarioKind>(k), time, scene_rng, k);
            const Caption original = llm.describe(scene, prompt, rng);
            const Caption parsed = parse_caption(original.text);
            EXPECT_EQ(parsed.time, original.time) << original.text;
            EXPECT_EQ(parsed.scenario, original.scenario) << original.text;
            EXPECT_EQ(parsed.altitude, original.altitude) << original.text;
            // Every exact mention survives the round trip.
            for (const ObjectMention& m : original.mentions) {
                if (m.vague || m.count > 12) continue;  // words collapse
                bool found = false;
                for (const ObjectMention& p : parsed.mentions) {
                    if (p.cls == m.cls && p.count == m.count) found = true;
                }
                EXPECT_TRUE(found)
                    << "lost mention of "
                    << aero::scene::class_name(m.cls) << " x" << m.count
                    << " in: " << original.text;
            }
        }
    }
}

TEST(RenderCaptionText, MentionPhrasing) {
    Caption c;
    c.scenario = ScenarioKind::kCampus;
    c.mentions_time = true;
    c.mentions.push_back({ObjectClass::kCar, 1, false});
    c.mentions.push_back({ObjectClass::kPedestrian, 7, true});
    Scene scene;
    scene.kind = ScenarioKind::kCampus;
    const std::string text = render_caption_text(c, scene);
    EXPECT_NE(text.find("one car"), std::string::npos);
    EXPECT_NE(text.find("several pedestrians"), std::string::npos);
}

}  // namespace
