#include <gtest/gtest.h>

#include <cmath>

#include "detect/detector.hpp"
#include "embed/clip.hpp"
#include "embed/encoders.hpp"
#include "embed/fusion.hpp"
#include "scene/dataset.hpp"
#include "text/llm.hpp"

namespace {

using namespace aero::embed;
using aero::autograd::Var;
using aero::tensor::Tensor;
namespace ag = aero::autograd;

EmbedConfig small_config() {
    EmbedConfig config;
    config.dim = 16;
    config.image_size = 32;
    config.heads = 2;
    return config;
}

TEST(ImageEncoderTest, PooledAndTokenShapes) {
    aero::util::Rng rng(1);
    ImageEncoder encoder(small_config(), rng);
    const Var images = Var::constant(Tensor::randn({3, 3, 32, 32}, rng));
    const Var pooled = encoder.forward(images);
    EXPECT_EQ(pooled.value().dim(0), 3);
    EXPECT_EQ(pooled.value().dim(1), 16);

    const Var one = Var::constant(Tensor::randn({1, 3, 32, 32}, rng));
    const Var tokens = encoder.forward_tokens(one);
    EXPECT_EQ(tokens.value().dim(0), 16);  // (32/8)^2
    EXPECT_EQ(tokens.value().dim(1), 16);
}

TEST(TextEncoderTest, HandlesEmptyAndLongInput) {
    aero::util::Rng rng(2);
    TextEncoder encoder(small_config(), rng);
    const Var empty = encoder.forward({});
    EXPECT_EQ(empty.value().dim(0), 1);
    std::vector<int> long_ids(200, 5);
    const Var truncated = encoder.forward_tokens(long_ids);
    EXPECT_LE(truncated.value().dim(0), small_config().max_tokens);
}

TEST(TextEncoderTest, DifferentTextsDifferentEmbeddings) {
    aero::util::Rng rng(3);
    TextEncoder encoder(small_config(), rng);
    const auto& vocab = aero::text::Vocabulary::aerial();
    const Var a = encoder.forward(vocab.encode("a daytime aerial image"));
    const Var b = encoder.forward(vocab.encode("numerous cars near the highway"));
    float diff = 0.0f;
    for (int i = 0; i < a.value().size(); ++i) {
        diff += std::abs(a.value()[i] - b.value()[i]);
    }
    EXPECT_GT(diff, 1e-3f);
}

TEST(NormalizeRows, UnitNorm) {
    aero::util::Rng rng(4);
    const Var x = Var::constant(Tensor::randn({3, 8}, rng, 0.0f, 3.0f));
    const Var y = normalize_rows(x);
    for (int i = 0; i < 3; ++i) {
        float norm = 0.0f;
        for (int j = 0; j < 8; ++j) {
            norm += y.value()[i * 8 + j] * y.value()[i * 8 + j];
        }
        EXPECT_NEAR(norm, 1.0f, 1e-4f);
    }
}

TEST(NormalizeRows, GradientOrthogonalToOutput) {
    // Because ||y|| == 1, gradients must be orthogonal to y per row.
    aero::util::Rng rng(5);
    Var x = Var::param(Tensor::randn({2, 6}, rng));
    const Var y = normalize_rows(x);
    const Var proj = Var::constant(Tensor::randn({2, 6}, rng));
    ag::sum_all(ag::mul(y, proj)).backward();
    for (int i = 0; i < 2; ++i) {
        float dot = 0.0f;
        for (int j = 0; j < 6; ++j) {
            dot += x.grad()[i * 6 + j] * x.value()[i * 6 + j];
        }
        EXPECT_NEAR(dot, 0.0f, 1e-3f);
    }
}

TEST(MeanRows, Average) {
    const Var x = Var::constant(
        Tensor::from_values({1, 2, 3, 5, 6, 7}).reshaped({2, 3}));
    const Var m = mean_rows(x);
    EXPECT_EQ(m.value().dim(0), 1);
    EXPECT_NEAR(m.value()[0], 3.0f, 1e-5f);
    EXPECT_NEAR(m.value()[2], 5.0f, 1e-5f);
}

TEST(ClipModelTest, EmbeddingsAreNormalised) {
    aero::util::Rng rng(6);
    ClipModel clip(small_config(), rng);
    aero::image::Image img(32, 32, {0.4f, 0.3f, 0.6f});
    const Tensor e = clip.embed_image_eval(img);
    float norm = 0.0f;
    for (int i = 0; i < e.size(); ++i) norm += e[i] * e[i];
    EXPECT_NEAR(norm, 1.0f, 1e-4f);
}

TEST(ClipModelTest, ContrastiveTrainingAlignsPairs) {
    // Two visually distinct images with distinct captions: after a few
    // steps the matched similarity must beat the mismatched one.
    aero::util::Rng rng(7);
    ClipModel clip(small_config(), rng);

    std::vector<aero::image::Image> images;
    images.emplace_back(32, 32, aero::image::Color{0.9f, 0.1f, 0.1f});
    images.emplace_back(32, 32, aero::image::Color{0.1f, 0.1f, 0.9f});
    std::vector<std::string> captions{
        "numerous cars near the busy highway",
        "a tranquil park with trees and a pond"};

    ClipTrainConfig config;
    config.steps = 60;
    config.batch_size = 2;
    config.lr = 3e-3f;
    const ClipTrainStats stats =
        train_clip(clip, images, captions, config, rng);
    EXPECT_LT(stats.final_loss, stats.first_loss);

    const float match = clip_score(clip, images[0], captions[0]);
    const float mismatch = clip_score(clip, images[0], captions[1]);
    EXPECT_GT(match, mismatch);
}

TEST(ClipScore, Bounds) {
    aero::util::Rng rng(8);
    ClipModel clip(small_config(), rng);
    aero::image::Image img(32, 32, {0.2f, 0.8f, 0.2f});
    const float score = clip_score(clip, img, "a daytime aerial image");
    EXPECT_GE(score, 0.0f);
    EXPECT_LE(score, 100.0f);
}

TEST(BlipFusionTest, ShapeAndGradients) {
    aero::util::Rng rng(9);
    BlipFusion fusion(small_config(), rng);
    const Var image_tokens = Var::constant(Tensor::randn({16, 16}, rng));
    const Var text_tokens = Var::constant(Tensor::randn({10, 16}, rng));
    const Var fused = fusion.forward(image_tokens, text_tokens);
    EXPECT_EQ(fused.value().dim(0), 1);
    EXPECT_EQ(fused.value().dim(1), 16);
    ag::mean_all(fused).backward();
    for (const Var& p : fusion.parameters()) {
        EXPECT_FALSE(p.grad().empty());
    }
}

TEST(BlipFusionTest, StartsAsTextPassThrough) {
    // By design the attention fades in: at init C_xg is exactly the
    // pooled text tokens (identity head), independent of the image.
    aero::util::Rng rng(10);
    BlipFusion fusion(small_config(), rng);
    const Var text = Var::constant(Tensor::randn({6, 16}, rng));
    const Var img_a = Var::constant(Tensor::randn({16, 16}, rng));
    const Var img_b = Var::constant(Tensor::randn({16, 16}, rng));
    const Var fa = fusion.forward(img_a, text);
    const Var fb = fusion.forward(img_b, text);
    for (int i = 0; i < fa.value().size(); ++i) {
        EXPECT_NEAR(fa.value()[i], fb.value()[i], 1e-6f);
    }
}

TEST(BlipFusionTest, SensitiveToImageContentAfterTraining) {
    aero::util::Rng rng(10);
    BlipFusion fusion(small_config(), rng);
    const Var text = Var::constant(Tensor::randn({6, 16}, rng));
    const Var img_a = Var::constant(Tensor::randn({16, 16}, rng));
    const Var img_b = Var::constant(Tensor::randn({16, 16}, rng));

    // One optimisation step makes the attention path live.
    aero::nn::Adam opt(fusion.parameters(), {.lr = 0.05f});
    opt.zero_grad();
    const Var target = Var::constant(Tensor::randn({1, 16}, rng));
    ag::mse_loss(fusion.forward(img_a, text), target).backward();
    opt.step();

    const Var fa = fusion.forward(img_a, text);
    const Var fb = fusion.forward(img_b, text);
    float diff = 0.0f;
    for (int i = 0; i < fa.value().size(); ++i) {
        diff += std::abs(fa.value()[i] - fb.value()[i]);
    }
    EXPECT_GT(diff, 1e-5f);
}

TEST(RegionFeatureAugmenterTest, ShapesWithAndWithoutRois) {
    aero::util::Rng rng(11);
    RegionFeatureAugmenter augmenter(small_config(), rng);
    const Var global = Var::constant(Tensor::randn({1, 16}, rng));
    const Var rois = Var::constant(Tensor::randn({5, 16}, rng));
    const Var labels = Var::constant(Tensor::randn({5, 16}, rng));
    const Var fused = augmenter.forward(global, rois, labels);
    EXPECT_EQ(fused.value().dim(0), 1);
    EXPECT_EQ(fused.value().dim(1), 16);
    const Var plain = augmenter.forward(global);
    EXPECT_EQ(plain.value().dim(1), 16);
}

TEST(RegionFeatureAugmenterTest, StartsAsGlobalFeature) {
    // Fade-in design: at init f̂_X equals the plain global feature.
    aero::util::Rng rng(12);
    RegionFeatureAugmenter augmenter(small_config(), rng);
    const Var global = Var::constant(Tensor::randn({1, 16}, rng));
    const Var rois = Var::constant(Tensor::randn({4, 16}, rng));
    const Var labels = Var::constant(Tensor::randn({4, 16}, rng));
    const Var fused = augmenter.forward(global, rois, labels);
    for (int i = 0; i < fused.value().size(); ++i) {
        EXPECT_NEAR(fused.value()[i], global.value()[i], 1e-5f);
    }
}

TEST(RegionFeatureAugmenterTest, RoisChangeTheResultAfterTraining) {
    aero::util::Rng rng(12);
    RegionFeatureAugmenter augmenter(small_config(), rng);
    const Var global = Var::constant(Tensor::randn({1, 16}, rng));
    const Var rois_a = Var::constant(Tensor::randn({4, 16}, rng));
    const Var rois_b = Var::constant(Tensor::randn({4, 16}, rng));
    const Var labels = Var::constant(Tensor::randn({4, 16}, rng));

    aero::nn::Adam opt(augmenter.parameters(), {.lr = 0.05f});
    opt.zero_grad();
    const Var target = Var::constant(Tensor::randn({1, 16}, rng));
    ag::mse_loss(augmenter.forward(global, rois_a, labels), target)
        .backward();
    opt.step();

    const Var fa = augmenter.forward(global, rois_a, labels);
    const Var fb = augmenter.forward(global, rois_b, labels);
    float diff = 0.0f;
    for (int i = 0; i < fa.value().size(); ++i) {
        diff += std::abs(fa.value()[i] - fb.value()[i]);
    }
    EXPECT_GT(diff, 1e-6f);
}

TEST(RegionFeatureAugmenterTest, GradientsReachAllParams) {
    aero::util::Rng rng(13);
    RegionFeatureAugmenter augmenter(small_config(), rng);
    const Var global = Var::constant(Tensor::randn({1, 16}, rng));
    const Var rois = Var::constant(Tensor::randn({3, 16}, rng));
    const Var labels = Var::constant(Tensor::randn({3, 16}, rng));
    ag::mean_all(augmenter.forward(global, rois, labels)).backward();
    for (const Var& p : augmenter.parameters()) {
        EXPECT_FALSE(p.grad().empty());
    }
}

TEST(Integration, RoiPipelineEndToEnd) {
    // ROIs from ground-truth boxes -> image encoder -> augmenter.
    aero::scene::DatasetConfig ds_config;
    ds_config.train_size = 1;
    ds_config.test_size = 1;
    ds_config.image_size = 32;
    const aero::scene::AerialDataset dataset(ds_config);
    const auto& sample = dataset.train()[0];

    aero::util::Rng rng(14);
    const EmbedConfig config = small_config();
    ImageEncoder encoder(config, rng);
    TextEncoder text_encoder(config, rng);
    RegionFeatureAugmenter augmenter(config, rng);

    std::vector<aero::scene::BoundingBox> top_boxes(
        sample.gt_boxes.begin(),
        sample.gt_boxes.begin() + std::min<std::size_t>(4, sample.gt_boxes.size()));
    const auto rois =
        aero::detect::extract_rois(sample.image, top_boxes, 32);
    ASSERT_FALSE(rois.empty());

    std::vector<Var> roi_feats;
    std::vector<Var> label_feats;
    const auto& vocab = aero::text::Vocabulary::aerial();
    for (std::size_t i = 0; i < rois.size(); ++i) {
        roi_feats.push_back(encoder.forward(Var::constant(
            rois[i].to_tensor_chw().reshaped({1, 3, 32, 32}))));
        label_feats.push_back(text_encoder.forward(
            vocab.encode(aero::scene::class_name(top_boxes[i].cls))));
    }
    const Var global = encoder.forward(Var::constant(
        sample.image.to_tensor_chw().reshaped({1, 3, 32, 32})));
    const Var fused = augmenter.forward(global, ag::concat(roi_feats, 0),
                                        ag::concat(label_feats, 0));
    EXPECT_EQ(fused.value().dim(0), 1);
    EXPECT_EQ(fused.value().dim(1), config.dim);
}

}  // namespace
