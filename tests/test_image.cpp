#include <gtest/gtest.h>

#include <cstdio>

#include "image/image.hpp"
#include "image/transforms.hpp"

namespace {

using aero::image::Color;
using aero::image::Image;

TEST(Image, ConstructionAndFill) {
    Image img(4, 3, {0.2f, 0.4f, 0.6f});
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_FLOAT_EQ(img.at(2, 1, 1), 0.4f);
}

TEST(Image, PixelRoundTrip) {
    Image img(2, 2);
    img.set_pixel(1, 0, {0.1f, 0.5f, 0.9f});
    const Color c = img.pixel(1, 0);
    EXPECT_FLOAT_EQ(c.g, 0.5f);
}

TEST(Image, BlendPixel) {
    Image img(1, 1, {0.0f, 0.0f, 0.0f});
    img.blend_pixel(0, 0, {1.0f, 1.0f, 1.0f}, 0.25f);
    EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.25f);
}

TEST(Image, Clamp01) {
    Image img(1, 1, {2.0f, -1.0f, 0.5f});
    img.clamp01();
    EXPECT_FLOAT_EQ(img.at(0, 0, 0), 1.0f);
    EXPECT_FLOAT_EQ(img.at(0, 0, 1), 0.0f);
    EXPECT_FLOAT_EQ(img.at(0, 0, 2), 0.5f);
}

TEST(Image, MeanLuminance) {
    Image dark(4, 4, {0.0f, 0.0f, 0.0f});
    Image bright(4, 4, {1.0f, 1.0f, 1.0f});
    EXPECT_LT(dark.mean_luminance(), 0.01f);
    EXPECT_GT(bright.mean_luminance(), 0.99f);
}

TEST(Image, TensorRoundTrip) {
    Image img(3, 2);
    img.set_pixel(0, 0, {0.0f, 0.5f, 1.0f});
    img.set_pixel(2, 1, {0.25f, 0.75f, 0.1f});
    const auto t = img.to_tensor_chw();
    EXPECT_EQ(t.dim(0), 3);
    EXPECT_EQ(t.dim(1), 2);
    EXPECT_EQ(t.dim(2), 3);
    // [0,1] maps to [-1,1]
    EXPECT_NEAR(t[0], -1.0f, 1e-6f);
    const Image back = Image::from_tensor_chw(t);
    for (std::size_t i = 0; i < img.data().size(); ++i) {
        EXPECT_NEAR(back.data()[i], img.data()[i], 1e-5f);
    }
}

TEST(Image, PpmRoundTrip) {
    Image img(5, 4);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 5; ++x) {
            img.set_pixel(x, y,
                          {static_cast<float>(x) / 4.0f,
                           static_cast<float>(y) / 3.0f, 0.5f});
        }
    }
    const std::string path = testing::TempDir() + "/aero_img.ppm";
    ASSERT_TRUE(aero::image::write_ppm(img, path));
    Image back;
    ASSERT_TRUE(aero::image::read_ppm(path, &back));
    ASSERT_EQ(back.width(), 5);
    ASSERT_EQ(back.height(), 4);
    for (std::size_t i = 0; i < img.data().size(); ++i) {
        EXPECT_NEAR(back.data()[i], img.data()[i], 1.0f / 255.0f);
    }
    std::remove(path.c_str());
}

TEST(Resize, PreservesConstantImage) {
    const Image img(8, 8, {0.3f, 0.6f, 0.9f});
    const Image small = aero::image::resize_bilinear(img, 3, 5);
    EXPECT_EQ(small.width(), 3);
    EXPECT_EQ(small.height(), 5);
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 3; ++x) {
            EXPECT_NEAR(small.at(x, y, 0), 0.3f, 1e-5f);
        }
    }
}

TEST(Resize, UpscaleInterpolates) {
    Image img(2, 1);
    img.set_pixel(0, 0, {0.0f, 0.0f, 0.0f});
    img.set_pixel(1, 0, {1.0f, 1.0f, 1.0f});
    const Image big = aero::image::resize_bilinear(img, 4, 1);
    EXPECT_LT(big.at(0, 0, 0), big.at(3, 0, 0));
}

TEST(Crop, ExtractsRegion) {
    Image img(6, 6);
    img.set_pixel(3, 2, {1.0f, 0.0f, 0.0f});
    const Image c = aero::image::crop(img, 2, 1, 3, 3);
    EXPECT_EQ(c.width(), 3);
    EXPECT_FLOAT_EQ(c.at(1, 1, 0), 1.0f);
}

TEST(Crop, ClampsOutOfBounds) {
    Image img(4, 4, {0.5f, 0.5f, 0.5f});
    const Image c = aero::image::crop(img, -2, -2, 3, 3);
    EXPECT_FLOAT_EQ(c.at(0, 0, 0), 0.5f);
}

TEST(Draw, FillRect) {
    Image img(8, 8);
    aero::image::fill_rect(img, 2, 2, 3, 2, {1.0f, 0.0f, 0.0f});
    EXPECT_FLOAT_EQ(img.at(2, 2, 0), 1.0f);
    EXPECT_FLOAT_EQ(img.at(4, 3, 0), 1.0f);
    EXPECT_FLOAT_EQ(img.at(5, 2, 0), 0.0f);
    // Out-of-bounds rect is clipped, not UB.
    aero::image::fill_rect(img, 6, 6, 10, 10, {0.0f, 1.0f, 0.0f});
    EXPECT_FLOAT_EQ(img.at(7, 7, 1), 1.0f);
}

TEST(Draw, OrientedRectRotates) {
    Image axis(16, 16);
    Image rot(16, 16);
    aero::image::fill_oriented_rect(axis, 8, 8, 10, 2, 0.0f, {1, 1, 1});
    aero::image::fill_oriented_rect(rot, 8, 8, 10, 2, 1.5708f, {1, 1, 1});
    // Horizontal bar covers (13,8); vertical bar covers (8,13).
    EXPECT_GT(axis.at(12, 8, 0), 0.5f);
    EXPECT_LT(axis.at(8, 12, 0), 0.5f);
    EXPECT_GT(rot.at(8, 12, 0), 0.5f);
    EXPECT_LT(rot.at(12, 8, 0), 0.5f);
}

TEST(Draw, DiskAndLine) {
    Image img(16, 16);
    aero::image::fill_disk(img, 8, 8, 3.0f, {0, 1, 0});
    EXPECT_FLOAT_EQ(img.at(8, 8, 1), 1.0f);
    EXPECT_FLOAT_EQ(img.at(14, 14, 1), 0.0f);
    aero::image::draw_line(img, 0, 0, 15, 0, 1.0f, {1, 0, 0});
    EXPECT_GT(img.at(7, 0, 0), 0.5f);
}

TEST(Filters, BoxBlurSmooths) {
    Image img(9, 9);
    img.set_pixel(4, 4, {1.0f, 1.0f, 1.0f});
    const Image blurred = aero::image::box_blur(img, 1);
    EXPECT_LT(blurred.at(4, 4, 0), 1.0f);
    EXPECT_GT(blurred.at(3, 4, 0), 0.0f);
    // Energy is conserved away from borders.
    double total = 0.0;
    for (float v : blurred.data()) total += v;
    EXPECT_NEAR(total, 3.0, 1e-4);
}

TEST(Filters, NoiseChangesImage) {
    aero::util::Rng rng(1);
    Image img(8, 8, {0.5f, 0.5f, 0.5f});
    aero::image::add_gaussian_noise(img, rng, 0.1f);
    double var = 0.0;
    for (float v : img.data()) {
        var += (v - 0.5) * (v - 0.5);
    }
    var /= static_cast<double>(img.data().size());
    EXPECT_GT(var, 1e-4);
    EXPECT_LT(var, 0.05);
}

TEST(Filters, AdjustTone) {
    Image img(2, 2, {0.5f, 0.5f, 0.5f});
    aero::image::adjust_tone(img, {0.5f, 1.0f, 2.0f}, {0.0f, 0.1f, 0.0f});
    EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.25f);
    EXPECT_FLOAT_EQ(img.at(0, 0, 1), 0.6f);
    EXPECT_FLOAT_EQ(img.at(0, 0, 2), 1.0f);  // clamped
}

// Parameterized resize sweep: constant images stay constant and output
// sizes are exact for arbitrary aspect changes.
class ResizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ResizeSweep, ConstantImagePreserved) {
    const auto [w0, h0, w1, h1] = GetParam();
    const Image img(w0, h0, {0.3f, 0.6f, 0.9f});
    const Image out = aero::image::resize_bilinear(img, w1, h1);
    ASSERT_EQ(out.width(), w1);
    ASSERT_EQ(out.height(), h1);
    for (int y = 0; y < h1; ++y) {
        for (int x = 0; x < w1; ++x) {
            EXPECT_NEAR(out.at(x, y, 0), 0.3f, 1e-5f);
            EXPECT_NEAR(out.at(x, y, 2), 0.9f, 1e-5f);
        }
    }
}

TEST_P(ResizeSweep, EnergyRoughlyPreservedOnSmoothImages) {
    const auto [w0, h0, w1, h1] = GetParam();
    // Smooth gradient image: mean value survives resampling.
    Image img(w0, h0);
    for (int y = 0; y < h0; ++y) {
        for (int x = 0; x < w0; ++x) {
            const float v = static_cast<float>(x + y) /
                            static_cast<float>(w0 + h0);
            img.set_pixel(x, y, {v, v, v});
        }
    }
    const Image out = aero::image::resize_bilinear(img, w1, h1);
    EXPECT_NEAR(out.mean_luminance(), img.mean_luminance(), 0.05f);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ResizeSweep,
    ::testing::Values(std::make_tuple(8, 8, 16, 16),
                      std::make_tuple(16, 16, 8, 8),
                      std::make_tuple(32, 16, 16, 32),
                      std::make_tuple(7, 13, 13, 7),
                      std::make_tuple(1, 1, 4, 4)));

TEST(Draw, OrientedRectAreaStableUnderRotation) {
    // The covered area of a rotated rectangle must stay roughly equal at
    // any angle (property of the scan-fill).
    for (float angle : {0.0f, 0.4f, 0.8f, 1.2f, 1.57f}) {
        Image img(64, 64);
        aero::image::fill_oriented_rect(img, 32, 32, 20, 8, angle,
                                        {1, 1, 1});
        double covered = 0.0;
        for (float v : img.data()) covered += v;
        covered /= 3.0;  // three channels
        EXPECT_NEAR(covered, 160.0, 30.0) << "angle " << angle;
    }
}

TEST(Transforms, FlipsAreInvolutions) {
    aero::util::Rng rng(60);
    Image img(7, 5);
    for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
    const Image h2 = aero::image::flip_horizontal(
        aero::image::flip_horizontal(img));
    const Image v2 = aero::image::flip_vertical(
        aero::image::flip_vertical(img));
    for (std::size_t i = 0; i < img.data().size(); ++i) {
        EXPECT_EQ(h2.data()[i], img.data()[i]);
        EXPECT_EQ(v2.data()[i], img.data()[i]);
    }
}

TEST(Transforms, Rotate90FourTimesIsIdentity) {
    aero::util::Rng rng(61);
    Image img(6, 4);
    for (auto& v : img.data()) v = static_cast<float>(rng.uniform());
    Image rotated = img;
    for (int i = 0; i < 4; ++i) rotated = aero::image::rotate90_cw(rotated);
    ASSERT_EQ(rotated.width(), img.width());
    for (std::size_t i = 0; i < img.data().size(); ++i) {
        EXPECT_EQ(rotated.data()[i], img.data()[i]);
    }
    // One turn swaps dimensions.
    const Image once = aero::image::rotate90_cw(img);
    EXPECT_EQ(once.width(), img.height());
    EXPECT_EQ(once.height(), img.width());
}

TEST(Transforms, BoxTransformsTrackPixels) {
    // Mark a pixel, transform image and box, check the box still covers
    // the marked pixel.
    Image img(16, 12);
    img.set_pixel(3, 2, {1.0f, 0.0f, 0.0f});
    const aero::image::Box box{3.0f, 2.0f, 1.0f, 1.0f};

    const Image flipped = aero::image::flip_horizontal(img);
    const auto fbox = aero::image::flip_box_horizontal(box, 16);
    EXPECT_GT(flipped.at(static_cast<int>(fbox.x), static_cast<int>(fbox.y),
                         0),
              0.5f);

    const Image vflipped = aero::image::flip_vertical(img);
    const auto vbox = aero::image::flip_box_vertical(box, 12);
    EXPECT_GT(vflipped.at(static_cast<int>(vbox.x),
                          static_cast<int>(vbox.y), 0),
              0.5f);

    const Image rotated = aero::image::rotate90_cw(img);
    const auto rbox = aero::image::rotate_box90_cw(box, 16, 12);
    EXPECT_GT(rotated.at(static_cast<int>(rbox.x), static_cast<int>(rbox.y),
                         0),
              0.5f);
    // Width/height swap for the rotated box.
    EXPECT_FLOAT_EQ(rbox.w, box.h);
    EXPECT_FLOAT_EQ(rbox.h, box.w);
}

TEST(Psnr, IdenticalIsCapped) {
    const Image img(4, 4, {0.5f, 0.2f, 0.7f});
    EXPECT_DOUBLE_EQ(aero::image::psnr(img, img), 99.0);
}

TEST(Psnr, KnownValue) {
    Image a(2, 2, {0.0f, 0.0f, 0.0f});
    Image b(2, 2, {0.1f, 0.1f, 0.1f});
    // MSE = 0.01 -> PSNR = 20 dB.
    EXPECT_NEAR(aero::image::psnr(a, b), 20.0, 1e-6);
}

TEST(Psnr, OrderingMatchesError) {
    Image ref(4, 4, {0.5f, 0.5f, 0.5f});
    Image close(4, 4, {0.55f, 0.55f, 0.55f});
    Image far(4, 4, {0.9f, 0.9f, 0.9f});
    EXPECT_GT(aero::image::psnr(ref, close), aero::image::psnr(ref, far));
}

}  // namespace
