// Router tests: consistent-hash routing determinism (bitwise-identical
// to a single service), failover on replica crash, the replica health
// state machine (breaker-Open == Suspect, never Down), warm-up
// admission after supervised restart, forced hedging, and a chaos soak
// with random crash/restart mid-stream. The accounting invariant
// checked throughout: every Router::submit() resolves with exactly one
// typed outcome and RouterStats::balanced() holds, whatever replicas
// die.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "serve/router.hpp"
#include "util/fault.hpp"
#include "util/hash.hpp"

namespace {

using namespace aero;
using namespace aero::serve;
using aero::core::AeroDiffusionPipeline;
using aero::core::Budget;
using aero::core::PipelineConfig;
using aero::core::Substrate;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        util::Rng rng(2025);
        return core::build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

const AeroDiffusionPipeline& shared_pipeline() {
    static const AeroDiffusionPipeline pipeline = [] {
        util::Rng rng(7);
        return AeroDiffusionPipeline(PipelineConfig::aero_diffusion(),
                                     shared_substrate(), rng);
    }();
    return pipeline;
}

InferenceRequest valid_request(std::uint64_t seed = 1,
                               std::size_t sample = 0) {
    const Substrate& s = shared_substrate();
    InferenceRequest request;
    request.reference = s.dataset->test()[sample % s.dataset->test().size()];
    request.source_caption =
        s.keypoint_test[sample % s.keypoint_test.size()].text;
    request.target_caption = request.source_caption;
    request.seed = seed;
    return request;
}

/// Base config: 2 replicas, 1 worker each, fast supervisor cadence and
/// quick restarts so lifecycle tests stay sub-second. Probing is off by
/// default (empty probe caption); tests that need recovery enable it.
RouterConfig base_config() {
    RouterConfig config;
    config.replicas = 2;
    config.service.workers = 1;
    config.service.queue_capacity = 32;
    config.service.limits.image_size = Budget::smoke().image_size;
    config.hedging = false;
    config.probe_interval_ms = 5.0;
    // Generous: a sanitizer build stretches a probe generate well past
    // the production 500ms default, and a timed-out probe counts as a
    // failure — which would pin a Warming replica out of Healthy.
    config.probe_deadline_ms = 60000.0;
    config.health.probe_window = 1;
    config.health.restart_backoff_base_ms = 1.0;
    config.health.restart_backoff_max_ms = 10.0;
    config.reroute_backoff_base_ms = 0.1;
    config.reroute_backoff_max_ms = 1.0;
    return config;
}

void expect_finite_image(const image::Image& img, int size) {
    ASSERT_FALSE(img.empty());
    EXPECT_EQ(img.width(), size);
    EXPECT_EQ(img.height(), size);
    for (const float v : img.data()) ASSERT_TRUE(std::isfinite(v));
}

bool wait_until(const std::function<bool()>& done, double timeout_ms) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<long long>(timeout_ms));
    while (std::chrono::steady_clock::now() < deadline) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return done();
}

// ---- sharding key -----------------------------------------------------------

TEST(RouterKeyTest, CanonicalKeyNormalisesCaseAndWhitespace) {
    InferenceRequest a = valid_request();
    a.source_caption = "  Runway   NEAR\tforest ";
    a.target_caption = "Two  Aircraft";
    InferenceRequest b = valid_request();
    b.source_caption = "runway near forest";
    b.target_caption = "two aircraft";
    EXPECT_EQ(canonical_prompt_key(a), canonical_prompt_key(b));
    EXPECT_EQ(util::fnv1a64(canonical_prompt_key(a)),
              util::fnv1a64(canonical_prompt_key(b)));

    // Task kind and caption content both shard.
    b.task = TaskKind::kEdit;
    EXPECT_NE(canonical_prompt_key(a), canonical_prompt_key(b));
    b.task = a.task;
    b.target_caption = "three aircraft";
    EXPECT_NE(canonical_prompt_key(a), canonical_prompt_key(b));
}

// ---- routing ----------------------------------------------------------------

TEST(RouterTest, ServesAcrossReplicasWithBalancedAccounting) {
    Router router(shared_pipeline(), base_config());
    const int total = 8;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(router.submit(valid_request(100 + i, i)));
    }
    const int size = shared_substrate().budget.image_size;
    for (auto& future : futures) {
        const RequestResult result = future.get();
        ASSERT_EQ(result.outcome, Outcome::kOk) << result.message;
        expect_finite_image(result.image, size);
        EXPECT_GE(result.replica, 0);
        EXPECT_LT(result.replica, 2);
        EXPECT_EQ(result.reroutes, 0);
        EXPECT_FALSE(result.hedged);
    }
    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_EQ(stats.outcome(Outcome::kOk), total);
    EXPECT_TRUE(stats.balanced());
    EXPECT_TRUE(router.all_healthy());

    // Submitting after stop() sheds rather than hangs.
    EXPECT_EQ(router.submit(valid_request(999)).get().outcome,
              Outcome::kShed);
    EXPECT_TRUE(router.stats().balanced());
}

TEST(RouterTest, FaultFreeRoutingIsDeterministicAndBitwiseIdentical) {
    RouterConfig config = base_config();
    // Single service with the identical template: images must match
    // the router's bitwise, replica placement notwithstanding.
    InferenceService single(shared_pipeline(), config.service);
    Router router(shared_pipeline(), config);

    std::vector<int> placement;
    for (int i = 0; i < 6; ++i) {
        const InferenceRequest request = valid_request(200 + i, i);
        const RequestResult via_router = router.submit(request).get();
        const RequestResult via_single = single.submit(request).get();
        ASSERT_EQ(via_router.outcome, Outcome::kOk) << via_router.message;
        ASSERT_EQ(via_single.outcome, Outcome::kOk) << via_single.message;
        ASSERT_EQ(via_router.image.data().size(),
                  via_single.image.data().size());
        // Bitwise: per-request determinism depends only on the request
        // seed, never on which replica or worker ran it.
        EXPECT_EQ(std::memcmp(via_router.image.data().data(),
                              via_single.image.data().data(),
                              via_router.image.data().size() * sizeof(float)),
                  0)
            << "request " << i << " diverged";
        placement.push_back(via_router.replica);
    }
    // Re-submitting the same keys reproduces the same placement: the
    // ring is a pure function of the canonical prompt key.
    for (int i = 0; i < 6; ++i) {
        const RequestResult replay =
            router.submit(valid_request(200 + i, i)).get();
        ASSERT_EQ(replay.outcome, Outcome::kOk);
        EXPECT_EQ(replay.replica, placement[static_cast<std::size_t>(i)]);
    }
    router.stop();
    single.stop();
    EXPECT_TRUE(router.stats().balanced());
}

TEST(RouterTest, FailsOverWhenReplicaCrashesMidStream) {
    util::FaultInjector injector(0xfa11);
    RouterConfig config = base_config();
    config.fault_injector = &injector;  // forwarded, all rates zero
    config.probe_request = valid_request(42, 0);
    Router router(shared_pipeline(), config);

    const int total = 12;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(router.submit(valid_request(300 + i, i)));
    }
    // Let work start, then kill replica 0 with most of it in flight;
    // its queued + running requests must fail over, not get lost.
    futures[0].wait();
    router.inject_crash(0);

    const int size = shared_substrate().budget.image_size;
    for (auto& future : futures) {
        const RequestResult result = future.get();
        ASSERT_EQ(result.outcome, Outcome::kOk) << result.message;
        expect_finite_image(result.image, size);
    }

    // The supervisor restarts the replica and clean probes re-admit it.
    EXPECT_TRUE(wait_until([&] { return router.all_healthy(); }, 60000.0))
        << replica_state_name(router.replica_state(0));
    const RouterStats stats = router.stats();
    EXPECT_GE(stats.crashes, 1);
    EXPECT_GE(stats.restarts, 1);
    EXPECT_GE(stats.probes, 1);
    router.stop();
    EXPECT_TRUE(router.stats().balanced());
}

TEST(RouterTest, ShedsBoundedWhenEveryReplicaIsDown) {
    RouterConfig config = base_config();
    config.replicas = 1;
    config.no_replica_wait_ms = 30.0;
    config.health.restart_backoff_base_ms = 5000.0;  // stays Down
    config.health.restart_backoff_max_ms = 5000.0;
    Router router(shared_pipeline(), config);

    router.inject_crash(0);
    EXPECT_EQ(router.replica_state(0), ReplicaState::kDown);
    const RequestResult result = router.submit(valid_request(400)).get();
    EXPECT_EQ(result.outcome, Outcome::kShed) << result.message;
    EXPECT_EQ(result.replica, -1);
    router.stop();
    EXPECT_TRUE(router.stats().balanced());
}

// ---- replica health state machine ------------------------------------------

// A replica whose condition-encoder breaker is Open is degraded, not
// dead: the supervisor must park it at Suspect — never escalate it to
// Down — and it keeps serving finite unconditional samples.
TEST(RouterTest, BreakerOpenReplicaReportsSuspectNotDown) {
    util::FaultInjector injector(0xb4ea);
    injector.set_fail_rate("condition_encoder", 1.0);

    RouterConfig config = base_config();
    config.replicas = 1;
    config.fault_injector = &injector;
    config.probe_request = valid_request(42, 0);
    config.service.max_attempts = 2;
    config.service.backoff_base_ms = 0.05;
    config.service.breaker.failure_threshold = 2;
    config.service.breaker.open_cooldown = 1000;  // stays open
    Router router(shared_pipeline(), config);

    const int size = shared_substrate().budget.image_size;
    for (int i = 0; i < 4; ++i) {
        const RequestResult result =
            router.submit(valid_request(500 + i, i)).get();
        ASSERT_EQ(result.outcome, Outcome::kDegraded) << result.message;
        expect_finite_image(result.image, size);
    }
    EXPECT_TRUE(wait_until(
        [&] { return router.replica_state(0) == ReplicaState::kSuspect; },
        60000.0))
        << replica_state_name(router.replica_state(0));

    // Still serving while Suspect, and never killed: degraded samples
    // and probes are oks to the lifecycle, whatever the breaker says.
    for (int i = 0; i < 4; ++i) {
        const RequestResult result =
            router.submit(valid_request(510 + i, i)).get();
        ASSERT_EQ(result.outcome, Outcome::kDegraded) << result.message;
        expect_finite_image(result.image, size);
        const ReplicaState state = router.replica_state(0);
        EXPECT_TRUE(state == ReplicaState::kSuspect ||
                    state == ReplicaState::kHealthy)
            << replica_state_name(state);
    }
    EXPECT_EQ(router.replica_state(0), ReplicaState::kSuspect);
    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.crashes, 0);
    EXPECT_EQ(stats.restarts, 0);
    EXPECT_TRUE(stats.balanced());
}

// TSan-stress variant: concurrent submitters race the supervisor's
// probes and breaker observations while the encoder is down. Exercises
// the Replica state transitions, latency ring and stats counters from
// many threads at once.
TEST(RouterTest, BreakerOpenSuspectServesConcurrentLoad) {
    util::FaultInjector injector(0x5057);
    injector.set_fail_rate("condition_encoder", 1.0);

    RouterConfig config = base_config();
    config.fault_injector = &injector;
    config.probe_request = valid_request(42, 0);
    config.service.max_attempts = 2;
    config.service.backoff_base_ms = 0.05;
    config.service.breaker.failure_threshold = 2;
    config.service.breaker.open_cooldown = 1000;
    Router router(shared_pipeline(), config);

    constexpr int kThreads = 3;
    constexpr int kPerThread = 4;
    std::atomic<int> degraded{0};
    std::atomic<int> bad{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const RequestResult result =
                    router.submit(valid_request(600 + t * 16 + i, i)).get();
                if (result.outcome == Outcome::kDegraded) {
                    degraded.fetch_add(1);
                } else if (result.outcome != Outcome::kShed) {
                    bad.fetch_add(1);  // kOk impossible: encoder is down
                }
            }
        });
    }
    for (std::thread& thread : submitters) thread.join();
    EXPECT_EQ(bad.load(), 0);
    EXPECT_GE(degraded.load(), kThreads * kPerThread - 2);
    for (int r = 0; r < router.replica_count(); ++r) {
        const ReplicaState state = router.replica_state(r);
        EXPECT_TRUE(state == ReplicaState::kSuspect ||
                    state == ReplicaState::kHealthy)
            << replica_state_name(state);
    }
    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.crashes, 0);
    EXPECT_TRUE(stats.balanced());
}

TEST(RouterTest, WarmingReplicaTakesCappedTraffic) {
    RouterConfig config = base_config();
    // No probing: a restarted replica stays Warming, pinning the
    // admission cap open for observation.
    config.health.warmup_admit_fraction = 0.25;
    Router router(shared_pipeline(), config);

    router.inject_crash(0);
    ASSERT_TRUE(wait_until(
        [&] { return router.replica_state(0) == ReplicaState::kWarming; },
        60000.0))
        << replica_state_name(router.replica_state(0));

    const long long routed0_before = router.replica_snapshot(0).routed;
    const long long routed1_before = router.replica_snapshot(1).routed;
    const int total = 40;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        futures.push_back(router.submit(valid_request(700 + i, i)));
    }
    for (auto& future : futures) {
        ASSERT_EQ(future.get().outcome, Outcome::kOk);
    }
    const long long routed0 = router.replica_snapshot(0).routed -
                              routed0_before;
    const long long routed1 = router.replica_snapshot(1).routed -
                              routed1_before;
    EXPECT_EQ(router.replica_state(0), ReplicaState::kWarming);
    // The Warming replica sees real traffic — but only its capped
    // fraction; the Healthy replica carries the bulk.
    EXPECT_GE(routed0, 1);
    EXPECT_LT(routed0 * 2, routed1);
    EXPECT_EQ(routed0 + routed1, total);
    router.stop();
    EXPECT_TRUE(router.stats().balanced());
}

// ---- hedging ----------------------------------------------------------------

TEST(RouterTest, ForcedHedgeRacesASecondReplica) {
    util::FaultInjector injector(0x43d6);
    injector.set_fail_rate("replica_slow", 1.0);  // every dispatch hedges

    RouterConfig config = base_config();
    config.hedging = true;
    config.fault_injector = &injector;
    Router router(shared_pipeline(), config);

    const int size = shared_substrate().budget.image_size;
    const int total = 4;
    for (int i = 0; i < total; ++i) {
        const RequestResult result =
            router.submit(valid_request(800 + i, i)).get();
        ASSERT_EQ(result.outcome, Outcome::kOk) << result.message;
        // Same request seed on either replica: the winner's image is
        // correct whichever side finished first.
        expect_finite_image(result.image, size);
        EXPECT_TRUE(result.hedged);
    }
    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_GE(stats.hedges, total);
    EXPECT_TRUE(stats.balanced());
}

// ---- chaos soak -------------------------------------------------------------

// Acceptance soak for the tentpole: random replica crashes and
// restarts, dropped probes, forced hedges, deadlines and malformed
// requests, all mid-stream under concurrent load. Afterwards: every
// request resolved exactly once (balanced accounting, nothing lost or
// double-completed) and the fleet returns to all-Healthy once the
// faults stop.
TEST(RouterTest, ChaosSoakBalancedAccountingAndRecovery) {
    util::FaultInjector injector(0xc4a0);
    injector.set_fail_rate("replica_crash", 0.08);
    injector.set_fail_rate("replica_probe_fail", 0.2);
    injector.set_fail_rate("replica_slow", 0.1);
    injector.set_fail_rate("serve_transient", 0.05);

    RouterConfig config = base_config();
    config.hedging = true;
    config.fault_injector = &injector;
    config.probe_request = valid_request(42, 0);
    config.crash_drain_ms = 2.0;
    config.no_replica_wait_ms = 2000.0;
    config.service.backoff_base_ms = 0.1;
    config.service.backoff_max_ms = 1.0;
    Router router(shared_pipeline(), config);

    const int total = 36;
    const int size = shared_substrate().budget.image_size;
    std::vector<std::future<RequestResult>> futures;
    for (int i = 0; i < total; ++i) {
        InferenceRequest request = valid_request(900 + i, i);
        if (i % 9 == 4) request.source_caption = "   ";     // kInvalid
        if (i % 9 == 7) request.deadline_ms = 40.0;         // tight
        futures.push_back(router.submit(std::move(request)));
        if (i == total / 3) router.inject_crash(0);   // deterministic
        if (i == total / 2) router.inject_crash(1);   // mid-stream kills
    }

    int with_image = 0;
    for (int i = 0; i < total; ++i) {
        const RequestResult result = futures[static_cast<std::size_t>(i)].get();
        const int o = static_cast<int>(result.outcome);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, kNumOutcomes);
        if (result.outcome == Outcome::kOk ||
            result.outcome == Outcome::kDegraded) {
            expect_finite_image(result.image, size);
            ++with_image;
        } else {
            EXPECT_TRUE(result.image.empty());
        }
        if (i % 9 == 4) {
            EXPECT_EQ(result.outcome, Outcome::kInvalid);
        }
    }
    EXPECT_GT(with_image, 0);

    // Faults stop; the supervisor restarts whatever is down and clean
    // probes re-admit every replica.
    injector.set_fail_rate("replica_crash", 0.0);
    injector.set_fail_rate("replica_probe_fail", 0.0);
    injector.set_fail_rate("replica_slow", 0.0);
    injector.set_fail_rate("serve_transient", 0.0);
    EXPECT_TRUE(wait_until([&] { return router.all_healthy(); }, 60000.0))
        << replica_state_name(router.replica_state(0)) << "/"
        << replica_state_name(router.replica_state(1));

    router.stop();
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.submitted, total);
    EXPECT_TRUE(stats.balanced()) << "submitted=" << stats.submitted
                                  << " terminal=" << stats.terminal();
    EXPECT_GE(stats.crashes, 2);
    EXPECT_GE(stats.restarts, 2);
    EXPECT_GE(stats.probes, 1);
}

}  // namespace
