// Runtime lock-order validator tests (util/sync, AERO_LOCK_ORDER).
//
// The seeded-inversion regression drives two threads through a pair of
// mutexes: the forward thread takes a -> b, the inverted thread —
// gated on the "lock_order_invert" fault point — takes b -> a. With
// the fault armed the validator must report the cycle with both lock
// stacks; with the fault off both threads acquire in the declared
// order concurrently and the whole suite runs TSan-clean.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/fault.hpp"
#include "util/sync.hpp"

namespace {

using aero::util::FaultInjector;
using aero::util::Mutex;
using aero::util::MutexLock;
namespace lock_order = aero::util::lock_order;

/// RAII: turns the validator on for one test and restores the
/// untracked default afterwards so unrelated suites stay zero-cost.
class ScopedValidator {
public:
    ScopedValidator() {
        lock_order::set_enabled_for_testing(true);
        lock_order::reset();
    }
    ~ScopedValidator() {
        lock_order::reset();
        lock_order::set_enabled_for_testing(false);
    }
};

TEST(LockOrder, SeededInversionReportsCycleWithBothStacks) {
    const ScopedValidator validator;
    FaultInjector injector;
    injector.set_fail_rate("lock_order_invert", 1.0);

    Mutex a("sync_test_a");
    Mutex b("sync_test_b");
    const auto forward = [&] {
        const MutexLock la(a);
        const MutexLock lb(b);
    };
    // Sequential threads: the inversion must be caught from the edge
    // history alone, without ever constructing a real deadlock.
    std::thread t1(forward);
    t1.join();
    std::thread t2([&] {
        if (injector.should_fail("lock_order_invert")) {
            const MutexLock lb(b);
            const MutexLock la(a);
        } else {
            forward();
        }
    });
    t2.join();

    EXPECT_EQ(lock_order::violation_count(), 1);
    const std::string report = lock_order::last_report();
    EXPECT_NE(report.find("inversion"), std::string::npos);
    EXPECT_NE(report.find("sync_test_a"), std::string::npos);
    EXPECT_NE(report.find("sync_test_b"), std::string::npos);
    // Both stacks appear: the inverted thread's and the forward one's.
    EXPECT_NE(report.find("sync_test_b -> sync_test_a"), std::string::npos);
    EXPECT_NE(report.find("sync_test_a -> sync_test_b"), std::string::npos);
}

TEST(LockOrder, ConsistentOrderAcrossThreadsIsClean) {
    const ScopedValidator validator;
    FaultInjector injector;
    injector.set_fail_rate("lock_order_invert", 0.0);

    Mutex a("sync_clean_a");
    Mutex b("sync_clean_b");
    const auto forward = [&] {
        for (int i = 0; i < 200; ++i) {
            const MutexLock la(a);
            const MutexLock lb(b);
        }
    };
    // Concurrent this time: same declared order on both threads is the
    // TSan-clean configuration the satellite contract names.
    std::thread t1(forward);
    std::thread t2([&] {
        for (int i = 0; i < 200; ++i) {
            if (injector.should_fail("lock_order_invert")) {
                const MutexLock lb(b);
                const MutexLock la(a);
            } else {
                const MutexLock la(a);
                const MutexLock lb(b);
            }
        }
    });
    t1.join();
    t2.join();

    EXPECT_EQ(lock_order::violation_count(), 0);
    EXPECT_EQ(lock_order::last_report(), "");
}

TEST(LockOrder, ReacquisitionOfHeldMutexReported) {
    const ScopedValidator validator;
    Mutex m("sync_reacquire");
    {
        const MutexLock outer(m);
        // Probe the validator directly instead of re-locking for real
        // (that would self-deadlock the test binary): on_acquire runs
        // before the underlying lock blocks, which is exactly the hook
        // order Mutex::lock uses.
        lock_order::on_acquire(&m, "sync_reacquire");
        lock_order::on_release(&m);
    }
    EXPECT_EQ(lock_order::violation_count(), 1);
    EXPECT_NE(lock_order::last_report().find("re-acquisition"),
              std::string::npos);
}

TEST(LockOrder, ThreeLockCycleAcrossThreeThreadsReported) {
    const ScopedValidator validator;
    Mutex a("sync_tri_a");
    Mutex b("sync_tri_b");
    Mutex c("sync_tri_c");
    const auto pair_order = [](Mutex& first, Mutex& second) {
        const MutexLock l1(first);
        const MutexLock l2(second);
    };
    std::thread t1([&] { pair_order(a, b); });
    t1.join();
    std::thread t2([&] { pair_order(b, c); });
    t2.join();
    EXPECT_EQ(lock_order::violation_count(), 0);
    std::thread t3([&] { pair_order(c, a); });
    t3.join();
    EXPECT_EQ(lock_order::violation_count(), 1);
    EXPECT_NE(lock_order::last_report().find("inversion"),
              std::string::npos);
}

TEST(LockOrder, DestroyedMutexLeavesNoStaleEdges) {
    const ScopedValidator validator;
    Mutex a("sync_stale_a");
    {
        Mutex tmp("sync_stale_tmp");
        const MutexLock la(a);
        const MutexLock lt(tmp);
    }  // tmp destroyed: its edges must not poison later cycles
    Mutex fresh("sync_stale_fresh");
    {
        const MutexLock lf(fresh);
        const MutexLock la(a);
    }
    EXPECT_EQ(lock_order::violation_count(), 0);
}

TEST(LockOrder, DisabledByDefaultAndRecordsNothing) {
    // ctest processes do not set AERO_LOCK_ORDER, and the suite-wide
    // default restored by ScopedValidator is off: acquisitions here
    // must not be tracked at all.
    ASSERT_FALSE(lock_order::enabled());
    Mutex a("sync_off_a");
    Mutex b("sync_off_b");
    {
        const MutexLock la(a);
        const MutexLock lb(b);
    }
    {
        const MutexLock lb(b);
        const MutexLock la(a);
    }
    EXPECT_EQ(lock_order::violation_count(), 0);
    EXPECT_EQ(lock_order::last_report(), "");
}

}  // namespace
