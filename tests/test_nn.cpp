#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nn/attention.hpp"
#include "nn/ema.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "util/fault.hpp"

namespace {

using aero::autograd::Var;
using aero::tensor::Tensor;
namespace ag = aero::autograd;
namespace nn = aero::nn;

/// Bitwise snapshot of all parameter values of a module.
std::vector<std::vector<float>> snapshot_params(const nn::Module& module) {
    std::vector<std::vector<float>> snapshot;
    for (const Var& p : module.parameters()) {
        snapshot.push_back(p.value().to_vector());
    }
    return snapshot;
}

::testing::AssertionResult params_bit_identical(
    const nn::Module& module, const std::vector<std::vector<float>>& snapshot) {
    const auto params = module.parameters();
    if (params.size() != snapshot.size()) {
        return ::testing::AssertionFailure() << "parameter count changed";
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].value().to_vector() != snapshot[i]) {
            return ::testing::AssertionFailure()
                   << "tensor " << i << " was mutated";
        }
    }
    return ::testing::AssertionSuccess();
}

TEST(Linear, ShapesAndParamCount) {
    aero::util::Rng rng(1);
    nn::Linear layer(4, 6, rng);
    EXPECT_EQ(layer.parameter_count(), 4 * 6 + 6);
    const Var x = Var::constant(Tensor::ones({3, 4}));
    const Var y = layer.forward(x);
    EXPECT_EQ(y.value().dim(0), 3);
    EXPECT_EQ(y.value().dim(1), 6);
}

TEST(Linear, NoBiasVariant) {
    aero::util::Rng rng(2);
    nn::Linear layer(4, 6, rng, /*with_bias=*/false);
    EXPECT_EQ(layer.parameter_count(), 24);
}

TEST(Conv2dLayer, Shapes) {
    aero::util::Rng rng(3);
    nn::Conv2d conv(3, 8, 3, 2, 1, rng);
    const Var x = Var::constant(Tensor::ones({2, 3, 8, 8}));
    const Var y = conv.forward(x);
    EXPECT_EQ(y.value().dim(1), 8);
    EXPECT_EQ(y.value().dim(2), 4);
}

TEST(GroupNormLayer, NormalisesGroups) {
    nn::GroupNorm norm(4, 2);
    aero::util::Rng rng(4);
    const Var x = Var::constant(Tensor::randn({2, 4, 3, 3}, rng, 5.0f, 2.0f));
    const Var y = norm.forward(x);
    // With unit gamma / zero beta the per-group mean must be ~0, var ~1.
    const auto& v = y.value();
    const int spatial = 9;
    for (int b = 0; b < 2; ++b) {
        for (int g = 0; g < 2; ++g) {
            double mean = 0.0;
            double var = 0.0;
            for (int ch = g * 2; ch < g * 2 + 2; ++ch) {
                for (int s = 0; s < spatial; ++s) {
                    mean += v[((b * 4 + ch) * spatial) + s];
                }
            }
            mean /= 2 * spatial;
            for (int ch = g * 2; ch < g * 2 + 2; ++ch) {
                for (int s = 0; s < spatial; ++s) {
                    const double d = v[((b * 4 + ch) * spatial) + s] - mean;
                    var += d * d;
                }
            }
            var /= 2 * spatial;
            EXPECT_NEAR(mean, 0.0, 1e-4);
            EXPECT_NEAR(var, 1.0, 1e-2);
        }
    }
}

TEST(EmbeddingLayer, LooksUpRows) {
    aero::util::Rng rng(5);
    nn::Embedding emb(10, 4, rng);
    const Var out = emb.forward({3, 3, 7});
    EXPECT_EQ(out.value().dim(0), 3);
    EXPECT_EQ(out.value().dim(1), 4);
    for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(out.value()[0 * 4 + j], out.value()[1 * 4 + j]);
    }
}

TEST(Attention, OutputShapeSelfAndCross) {
    aero::util::Rng rng(6);
    nn::MultiHeadAttention attn(8, 2, rng);
    const Var x = Var::constant(Tensor::randn({5, 8}, rng));
    const Var ctx = Var::constant(Tensor::randn({3, 8}, rng));
    EXPECT_EQ(attn.forward(x).value().dim(0), 5);
    const Var y = attn.forward(x, ctx);
    EXPECT_EQ(y.value().dim(0), 5);
    EXPECT_EQ(y.value().dim(1), 8);
}

TEST(Attention, GradientsFlowToAllProjections) {
    aero::util::Rng rng(7);
    nn::MultiHeadAttention attn(4, 2, rng);
    const Var x = Var::constant(Tensor::randn({3, 4}, rng));
    ag::mean_all(attn.forward(x)).backward();
    for (const Var& p : attn.parameters()) {
        EXPECT_FALSE(p.grad().empty());
    }
}

TEST(TransformerBlock, PreservesShape) {
    aero::util::Rng rng(8);
    nn::TransformerBlock block(8, 2, rng);
    const Var x = Var::constant(Tensor::randn({4, 8}, rng));
    const Var y = block.forward(x);
    EXPECT_EQ(y.value().dim(0), 4);
    EXPECT_EQ(y.value().dim(1), 8);
}

TEST(Attention, UniformWeightsWhenContextRowsIdentical) {
    // If every context token is identical, attention scores are constant
    // per query row, so all query rows receive the same attended value.
    aero::util::Rng rng(40);
    nn::MultiHeadAttention attn(8, 2, rng);
    const Var query = Var::constant(Tensor::randn({4, 8}, rng));
    Tensor ctx({3, 8});
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 8; ++j) ctx[i * 8 + j] = 0.1f * (j + 1);
    }
    const Var out = attn.forward(query, Var::constant(ctx));
    for (int row = 1; row < 4; ++row) {
        for (int j = 0; j < 8; ++j) {
            EXPECT_NEAR(out.value()[row * 8 + j], out.value()[j], 1e-5f);
        }
    }
}

TEST(Linear, InitZeroAndIdentity) {
    aero::util::Rng rng(41);
    nn::Linear square(4, 4, rng);
    square.init_identity();
    const Var x = Var::constant(Tensor::randn({2, 4}, rng));
    const Var y = square.forward(x);
    for (int i = 0; i < x.value().size(); ++i) {
        EXPECT_NEAR(y.value()[i], x.value()[i], 1e-6f);
    }
    nn::Linear zero(4, 6, rng);
    zero.init_zero();
    const Var z = zero.forward(x);
    for (float v : z.value()) EXPECT_EQ(v, 0.0f);
}

TEST(Attention, ZeroOutputProjectionMakesNoOpResidual) {
    aero::util::Rng rng(42);
    nn::MultiHeadAttention attn(8, 2, rng);
    attn.init_output_zero();
    const Var x = Var::constant(Tensor::randn({3, 8}, rng));
    const Var out = attn.forward(x);
    for (float v : out.value()) EXPECT_EQ(v, 0.0f);
}

// Parameterized attention-dimension sweep.
class AttentionDims
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AttentionDims, ShapesAndFiniteness) {
    const auto [dim, heads, tq, tk] = GetParam();
    aero::util::Rng rng(43);
    nn::MultiHeadAttention attn(dim, heads, rng);
    const Var q = Var::constant(Tensor::randn({tq, dim}, rng));
    const Var ctx = Var::constant(Tensor::randn({tk, dim}, rng));
    const Var out = attn.forward(q, ctx);
    EXPECT_EQ(out.value().dim(0), tq);
    EXPECT_EQ(out.value().dim(1), dim);
    for (float v : out.value()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, AttentionDims,
    ::testing::Values(std::make_tuple(4, 1, 1, 1),
                      std::make_tuple(8, 2, 5, 3),
                      std::make_tuple(16, 4, 2, 9),
                      std::make_tuple(32, 8, 7, 7)));

TEST(Adam, MinimisesQuadratic) {
    // Optimize ||x - target||^2 to near zero.
    Var x = Var::param(Tensor::from_values({5.0f, -3.0f}));
    const Var target = Var::constant(Tensor::from_values({1.0f, 2.0f}));
    nn::Adam opt({x}, {.lr = 0.1f, .weight_decay = 0.0f});
    for (int step = 0; step < 300; ++step) {
        opt.zero_grad();
        ag::mse_loss(x, target).backward();
        opt.step();
    }
    EXPECT_NEAR(x.value()[0], 1.0f, 0.05f);
    EXPECT_NEAR(x.value()[1], 2.0f, 0.05f);
}

TEST(Adam, WeightDecayShrinksUnusedParams) {
    Var used = Var::param(Tensor::from_values({1.0f}));
    Var x = Var::param(Tensor::from_values({4.0f}));
    nn::Adam opt({x}, {.lr = 0.05f, .weight_decay = 0.5f});
    const Var target = Var::constant(Tensor::from_values({4.0f}));
    for (int step = 0; step < 50; ++step) {
        opt.zero_grad();
        ag::mse_loss(x, target).backward();
        opt.step();
    }
    // decay pulls x below its loss-optimal 4.0
    EXPECT_LT(x.value()[0], 4.0f);
    (void)used;
}

TEST(Adam, ClipGradNorm) {
    Var x = Var::param(Tensor::from_values({10.0f, 0.0f}));
    nn::Adam opt({x}, {});
    opt.zero_grad();
    ag::mse_loss(x, Var::constant(Tensor::zeros({2}))).backward();
    const float pre = opt.clip_grad_norm(0.5f);
    EXPECT_GT(pre, 0.5f);
    double norm = 0.0;
    for (float g : x.grad()) norm += static_cast<double>(g) * g;
    EXPECT_NEAR(std::sqrt(norm), 0.5, 1e-4);
}

TEST(TrainingIntegration, SmallMlpLearnsXor) {
    aero::util::Rng rng(42);
    nn::Mlp mlp(2, 16, 1, rng);
    nn::Adam opt(mlp.parameters(), {.lr = 0.02f, .weight_decay = 0.0f});
    const Tensor inputs =
        Tensor::from_values({0, 0, 0, 1, 1, 0, 1, 1}).reshaped({4, 2});
    const Tensor targets = Tensor::from_values({0, 1, 1, 0}).reshaped({4, 1});
    float final_loss = 1.0f;
    for (int step = 0; step < 800; ++step) {
        opt.zero_grad();
        const Var pred = mlp.forward(Var::constant(inputs));
        const Var loss = ag::mse_loss(pred, Var::constant(targets));
        loss.backward();
        opt.step();
        final_loss = loss.value()[0];
    }
    EXPECT_LT(final_loss, 0.03f);
}

TEST(Ema, TracksAndAppliesAverage) {
    Var x = Var::param(Tensor::from_values({0.0f}));
    nn::Ema ema({x}, 0.5f);
    x.mutable_value()[0] = 8.0f;
    ema.update();  // shadow = 0.5*0 + 0.5*8 = 4
    ema.apply();
    EXPECT_FLOAT_EQ(x.value()[0], 4.0f);
    ema.restore();
    EXPECT_FLOAT_EQ(x.value()[0], 8.0f);
}

TEST(Ema, ConvergesToConstantParameter) {
    Var x = Var::param(Tensor::from_values({2.0f}));
    nn::Ema ema({x}, 0.9f);
    // Parameter never moves: shadow converges to it.
    for (int i = 0; i < 200; ++i) ema.update();
    ema.apply();
    EXPECT_NEAR(x.value()[0], 2.0f, 1e-4f);
}

TEST(Ema, SmoothsOscillation) {
    Var x = Var::param(Tensor::from_values({0.0f}));
    nn::Ema ema({x}, 0.95f);
    // Oscillating parameter +1/-1: the average ends near 0.
    for (int i = 0; i < 400; ++i) {
        x.mutable_value()[0] = (i % 2 == 0) ? 1.0f : -1.0f;
        ema.update();
    }
    ema.apply();
    EXPECT_NEAR(x.value()[0], 0.0f, 0.1f);
}

TEST(Serialize, RoundTrip) {
    aero::util::Rng rng(9);
    nn::Mlp a(3, 5, 2, rng);
    nn::Mlp b(3, 5, 2, rng);  // different init
    const std::string path = testing::TempDir() + "/aero_params.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    ASSERT_TRUE(nn::load_parameters(b, path));
    const auto pa = a.parameters();
    const auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        for (int j = 0; j < pa[i].value().size(); ++j) {
            EXPECT_EQ(pa[i].value()[j], pb[i].value()[j]);
        }
    }
    std::remove(path.c_str());
}

TEST(Serialize, RejectsMismatchedModule) {
    aero::util::Rng rng(10);
    nn::Mlp a(3, 5, 2, rng);
    nn::Mlp wrong(3, 6, 2, rng);
    const std::string path = testing::TempDir() + "/aero_params2.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    EXPECT_FALSE(nn::load_parameters(wrong, path));
    std::remove(path.c_str());
}

TEST(Serialize, MismatchedLoadLeavesModuleBitIdentical) {
    // Regression: load_parameters used to stream tensors directly into
    // the module, so a shape mismatch partway through left it partially
    // updated. Stage-then-commit must keep the target pristine.
    aero::util::Rng rng(30);
    nn::Mlp a(3, 5, 2, rng);
    // Same parameter count and first-tensor shape would be wrong anyway,
    // but make the FIRST tensors match so a streaming loader would have
    // already written data before hitting the mismatch: Mlp(3,5,2) and
    // Mlp(3,5,4) share the first Linear exactly.
    nn::Mlp wrong(3, 5, 4, rng);
    const std::string path = testing::TempDir() + "/aero_params_partial.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    const auto before = snapshot_params(wrong);
    EXPECT_FALSE(nn::load_parameters(wrong, path));
    EXPECT_TRUE(params_bit_identical(wrong, before));
    std::remove(path.c_str());
}

TEST(Serialize, AtomicSaveLeavesNoTempFileAndOverwrites) {
    aero::util::Rng rng(31);
    nn::Mlp a(3, 5, 2, rng);
    nn::Mlp b(3, 5, 2, rng);  // different weights
    const std::string path = testing::TempDir() + "/aero_params_atomic.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    // Overwriting with another module's weights replaces the file whole.
    ASSERT_TRUE(nn::save_parameters(b, path));
    nn::Mlp check(3, 5, 2, rng);
    ASSERT_TRUE(nn::load_parameters(check, path));
    EXPECT_TRUE(params_bit_identical(check, snapshot_params(b)));
    std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncatedFileAtEveryLength) {
    aero::util::Rng rng(32);
    nn::Mlp a(2, 3, 1, rng);
    nn::Mlp target(2, 3, 1, rng);
    const std::string path = testing::TempDir() + "/aero_params_trunc.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    const auto full_size = std::filesystem::file_size(path);
    const auto before = snapshot_params(target);
    // Every proper prefix of the file must be rejected without mutation.
    for (std::size_t keep = 0; keep < full_size; keep += 3) {
        ASSERT_TRUE(nn::save_parameters(a, path));
        ASSERT_TRUE(aero::util::FaultInjector::truncate_file(path, keep));
        EXPECT_FALSE(nn::load_parameters(target, path)) << "kept " << keep;
        EXPECT_TRUE(params_bit_identical(target, before)) << "kept " << keep;
    }
    std::remove(path.c_str());
}

TEST(Serialize, RejectsEveryGarbageByteFlip) {
    // CRC + header validation fuzz: flipping any single byte anywhere in
    // the checkpoint must make the load fail cleanly, module untouched.
    aero::util::Rng rng(33);
    nn::Mlp a(2, 3, 1, rng);
    nn::Mlp target(2, 3, 1, rng);
    const std::string path = testing::TempDir() + "/aero_params_flip.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    const auto size = std::filesystem::file_size(path);
    const auto before = snapshot_params(target);
    for (std::size_t offset = 0; offset < size; ++offset) {
        ASSERT_TRUE(nn::save_parameters(a, path));
        ASSERT_TRUE(aero::util::FaultInjector::flip_byte(path, offset, 0x40));
        EXPECT_FALSE(nn::load_parameters(target, path))
            << "flip at offset " << offset << " was accepted";
        EXPECT_TRUE(params_bit_identical(target, before))
            << "flip at offset " << offset;
    }
    std::remove(path.c_str());
}

TEST(Serialize, RejectsTrailingBytes) {
    aero::util::Rng rng(34);
    nn::Mlp a(2, 3, 1, rng);
    const std::string path = testing::TempDir() + "/aero_params_trail.bin";
    ASSERT_TRUE(nn::save_parameters(a, path));
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.put('\0');
    }
    nn::Mlp target(2, 3, 1, rng);
    EXPECT_FALSE(nn::load_parameters(target, path));
    std::remove(path.c_str());
}

TEST(Serialize, RefusesOldFormatV1Checkpoint) {
    // A v1 file for the exact same module (old layout: magic, count,
    // rank/dims/floats, no version and no checksums) must be refused on
    // format grounds alone.
    aero::util::Rng rng(35);
    nn::Mlp module(2, 3, 1, rng);
    const std::string path = testing::TempDir() + "/aero_params_v1.bin";
    {
        std::ofstream out(path, std::ios::binary);
        const std::uint32_t magic = 0x41455244;  // "AERD"
        const auto params = module.parameters();
        const auto count = static_cast<std::uint32_t>(params.size());
        out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
        out.write(reinterpret_cast<const char*>(&count), sizeof(count));
        for (const Var& p : params) {
            const Tensor& t = p.value();
            const auto rank = static_cast<std::uint32_t>(t.rank());
            out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
            for (int d = 0; d < t.rank(); ++d) {
                const auto extent = static_cast<std::uint32_t>(t.dim(d));
                out.write(reinterpret_cast<const char*>(&extent),
                          sizeof(extent));
            }
            out.write(reinterpret_cast<const char*>(t.data()),
                      static_cast<std::streamsize>(sizeof(float) * t.size()));
        }
    }
    nn::Mlp target(2, 3, 1, rng);
    const auto before = snapshot_params(target);
    EXPECT_FALSE(nn::load_parameters(target, path));
    EXPECT_TRUE(params_bit_identical(target, before));
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileFailsCleanly) {
    aero::util::Rng rng(36);
    nn::Mlp target(2, 3, 1, rng);
    const auto before = snapshot_params(target);
    EXPECT_FALSE(nn::load_parameters(
        target, testing::TempDir() + "/aero_params_nope.bin"));
    EXPECT_TRUE(params_bit_identical(target, before));
}

TEST(Module, ZeroGradClearsTree) {
    aero::util::Rng rng(11);
    nn::Mlp mlp(2, 4, 1, rng);
    ag::mean_all(mlp.forward(Var::constant(Tensor::ones({1, 2})))).backward();
    bool any = false;
    for (const Var& p : mlp.parameters()) any = any || !p.grad().empty();
    EXPECT_TRUE(any);
    mlp.zero_grad();
    for (const Var& p : mlp.parameters()) EXPECT_TRUE(p.grad().empty());
}

}  // namespace
