#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <fstream>
#include <cstdio>

#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/fault_points.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace {

using aero::util::Rng;

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(9);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniform_int(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, NormalMoments) {
    Rng rng(11);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
    Rng rng(13);
    const std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i) {
        counts[rng.categorical(weights)]++;
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalDegenerate) {
    Rng rng(17);
    EXPECT_EQ(rng.categorical({0.0, 0.0}), 1u);
}

TEST(Rng, ForkIndependence) {
    Rng parent(99);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Strings, Join) {
    EXPECT_EQ(aero::util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(aero::util::join({}, ", "), "");
    EXPECT_EQ(aero::util::join({"solo"}, "+"), "solo");
}

TEST(Strings, SplitWhitespace) {
    const auto t = aero::util::split_whitespace("  a bb\tccc\nd  ");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], "a");
    EXPECT_EQ(t[3], "d");
}

TEST(Strings, Split) {
    const auto f = aero::util::split("a,,b", ',');
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[1], "");
}

TEST(Strings, FormatFixed) {
    EXPECT_EQ(aero::util::format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(aero::util::format_fixed(78.154, 2), "78.15");
}

TEST(Strings, PadRight) {
    EXPECT_EQ(aero::util::pad_right("ab", 4), "ab  ");
    EXPECT_EQ(aero::util::pad_right("abcdef", 3), "abc");
}

TEST(Strings, ToLower) {
    EXPECT_EQ(aero::util::to_lower("AbC 1!"), "abc 1!");
}

TEST(Json, ScalarsAndEscaping) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(3).dump(), "3");
    EXPECT_EQ(JsonValue(3.25).dump(), "3.25");
    EXPECT_EQ(JsonValue("a\"b\n").dump(), "\"a\\\"b\\n\"");
    EXPECT_EQ(aero::util::json_escape("tab\there"), "tab\\there");
}

TEST(Json, ObjectAndArrayStructure) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("name", "table1").set("fid", 1.5);
    JsonValue rows = JsonValue::array();
    rows.push(JsonValue(1)).push(JsonValue(2));
    root.set("rows", std::move(rows));
    const std::string text = root.dump();
    EXPECT_NE(text.find("\"name\": \"table1\""), std::string::npos);
    EXPECT_NE(text.find("\"fid\": 1.5"), std::string::npos);
    EXPECT_NE(text.find('['), std::string::npos);
    // Overwrite keeps single key.
    root.set("fid", 2.0);
    EXPECT_EQ(root.dump().find("1.5"), std::string::npos);
}

TEST(Json, EmptyContainers) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue::object().dump(), "{}");
    EXPECT_EQ(JsonValue::array().dump(), "[]");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(Json, WriteFile) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("ok", true);
    const std::string path = testing::TempDir() + "/aero_test.json";
    ASSERT_TRUE(root.write_file(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"ok\": true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(JsonParse, RoundTripsWriterOutput) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("name", "table1").set("fid", 1.5).set("ok", true);
    JsonValue rows = JsonValue::array();
    rows.push(JsonValue(1)).push(JsonValue("two")).push(JsonValue());
    root.set("rows", std::move(rows));

    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(aero::util::json_parse(root.dump(), &parsed, &error)) << error;
    ASSERT_TRUE(parsed.is_object());
    ASSERT_NE(parsed.find("name"), nullptr);
    EXPECT_EQ(parsed.find("name")->as_string(), "table1");
    EXPECT_DOUBLE_EQ(parsed.find("fid")->as_number(), 1.5);
    EXPECT_TRUE(parsed.find("ok")->as_bool());
    const JsonValue* rows_back = parsed.find("rows");
    ASSERT_NE(rows_back, nullptr);
    ASSERT_EQ(rows_back->size(), 3u);
    EXPECT_DOUBLE_EQ(rows_back->at(0).as_number(), 1.0);
    EXPECT_EQ(rows_back->at(1).as_string(), "two");
    EXPECT_TRUE(rows_back->at(2).is_null());
}

TEST(JsonParse, ScalarsNumbersAndEscapes) {
    using aero::util::JsonValue;
    JsonValue v;
    ASSERT_TRUE(aero::util::json_parse("-12.5e2", &v, nullptr));
    EXPECT_DOUBLE_EQ(v.as_number(), -1250.0);
    ASSERT_TRUE(aero::util::json_parse("\"a\\n\\u0041\"", &v, nullptr));
    EXPECT_EQ(v.as_string(), "a\nA");
    ASSERT_TRUE(aero::util::json_parse("  [ ]  ", &v, nullptr));
    EXPECT_TRUE(v.is_array());
    EXPECT_EQ(v.size(), 0u);
}

TEST(JsonParse, RejectsMalformedInput) {
    using aero::util::JsonValue;
    JsonValue v;
    std::string error;
    const char* bad[] = {
        "",                      // empty document
        "{\"a\": 1",             // unterminated object
        "\"unterminated",        // unterminated string
        "\"bad escape \\q\"",    // invalid escape
        "[1, 2,]",               // stray comma
        "{\"a\" 1}",             // missing colon
        "01x",                   // trailing garbage
        "1.",                    // digits required after '.'
        "1e",                    // digits required in exponent
        "{'a': 1}",              // single quotes
    };
    for (const char* text : bad) {
        EXPECT_FALSE(aero::util::json_parse(text, &v, &error))
            << "accepted: " << text;
        EXPECT_FALSE(error.empty());
    }
}

TEST(JsonParse, RejectsNanAndInfLiterals) {
    using aero::util::JsonValue;
    JsonValue v;
    for (const char* text : {"NaN", "nan", "Infinity", "-Infinity", "inf"}) {
        EXPECT_FALSE(aero::util::json_parse(text, &v, nullptr))
            << "accepted: " << text;
    }
    // The writer emits non-finite numbers as null; that round-trips.
    ASSERT_TRUE(aero::util::json_parse(JsonValue(std::nan("")).dump(), &v,
                                       nullptr));
    EXPECT_TRUE(v.is_null());
}

TEST(JsonParse, RejectsDeepNestingButAcceptsShallow) {
    using aero::util::JsonValue;
    const auto nested = [](int depth) {
        std::string text;
        for (int i = 0; i < depth; ++i) text += '[';
        text += '1';
        for (int i = 0; i < depth; ++i) text += ']';
        return text;
    };
    JsonValue v;
    std::string error;
    EXPECT_TRUE(
        aero::util::json_parse(nested(aero::util::kMaxJsonDepth), &v, &error))
        << error;
    EXPECT_FALSE(aero::util::json_parse(
        nested(aero::util::kMaxJsonDepth + 1), &v, &error));
    EXPECT_NE(error.find("nesting"), std::string::npos);
    // Way past the limit must fail cleanly too, not overflow the stack.
    EXPECT_FALSE(aero::util::json_parse(nested(100000), &v, nullptr));
}

TEST(JsonParse, FileRoundTrip) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("step", 17).set("lr", 0.5);
    const std::string path = testing::TempDir() + "/aero_parse.json";
    ASSERT_TRUE(root.write_file(path));
    JsonValue parsed;
    ASSERT_TRUE(aero::util::json_parse_file(path, &parsed, nullptr));
    EXPECT_DOUBLE_EQ(parsed.find("step")->as_number(), 17.0);
    EXPECT_FALSE(aero::util::json_parse_file(path + ".missing", &parsed,
                                             nullptr));
    std::remove(path.c_str());
}

TEST(Crc32, KnownVectorsAndIncremental) {
    // "123456789" -> 0xcbf43926 is the canonical CRC-32 check value.
    const char* check = "123456789";
    EXPECT_EQ(aero::util::crc32(check, 9), 0xcbf43926u);
    EXPECT_EQ(aero::util::crc32("", 0), 0u);
    // Incremental computation matches one-shot.
    const std::uint32_t head = aero::util::crc32(check, 4);
    EXPECT_EQ(aero::util::crc32(check + 4, 5, head),
              aero::util::crc32(check, 9));
    // Single-bit difference changes the checksum.
    EXPECT_NE(aero::util::crc32("a", 1), aero::util::crc32("b", 1));
}

TEST(FaultInjector, NanFaultsFireOnceAtArmedPoint) {
    aero::util::FaultInjector injector(3);
    injector.arm_nan(5, "loss");
    injector.arm_nan(5, "grad");
    EXPECT_FALSE(injector.fires(4, "loss"));
    EXPECT_FALSE(injector.fires(5, "param"));
    EXPECT_TRUE(injector.fires(5, "loss"));
    EXPECT_FALSE(injector.fires(5, "loss"));  // one-shot
    EXPECT_TRUE(injector.fires(5, "grad"));
    EXPECT_EQ(injector.injected_count(), 2);
}

TEST(FaultInjector, SpikeFactorDefaultsToOne) {
    aero::util::FaultInjector injector(4);
    injector.arm_spike(2, 50.0f);
    EXPECT_FLOAT_EQ(injector.spike_factor(1), 1.0f);
    EXPECT_FLOAT_EQ(injector.spike_factor(2), 50.0f);
    EXPECT_FLOAT_EQ(injector.spike_factor(2), 1.0f);  // one-shot
    EXPECT_EQ(injector.injected_count(), 1);
}

TEST(FaultInjector, FileCorruptionHelpers) {
    const std::string path = testing::TempDir() + "/aero_fault.bin";
    {
        std::ofstream out(path, std::ios::binary);
        const std::string payload(64, 'x');
        out.write(payload.data(), 64);
    }
    // Flip a byte and verify exactly one position changed.
    ASSERT_TRUE(aero::util::FaultInjector::flip_byte(path, 10, 0x01));
    {
        std::ifstream in(path, std::ios::binary);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        ASSERT_EQ(content.size(), 64u);
        EXPECT_EQ(content[10], 'x' ^ 0x01);
        EXPECT_EQ(content[9], 'x');
    }
    // Random flip past a protected header region.
    aero::util::FaultInjector injector(9);
    ASSERT_TRUE(injector.flip_random_byte(path, 32));
    {
        std::ifstream in(path, std::ios::binary);
        std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        for (int i = 0; i < 32; ++i) {
            if (i == 10) continue;
            EXPECT_EQ(content[static_cast<std::size_t>(i)], 'x');
        }
    }
    // Truncation.
    ASSERT_TRUE(aero::util::FaultInjector::truncate_file(path, 16));
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        EXPECT_EQ(in.tellg(), 16);
    }
    EXPECT_FALSE(aero::util::FaultInjector::truncate_file(path, 999));
    EXPECT_FALSE(
        aero::util::FaultInjector::truncate_file(path + ".missing", 1));
    std::remove(path.c_str());
}

TEST(FaultInjector, RejectsUnregisteredPointNames) {
    // Arming a point that is not in util/fault_points.hpp would schedule
    // a fault that never fires; fail loudly at arming time instead.
    aero::util::FaultInjector injector(1);
    EXPECT_THROW(  // aero-lint: allow(fault-registry)
        injector.arm_nan(0, "no_such_point"), std::invalid_argument);
    EXPECT_THROW(  // aero-lint: allow(fault-registry)
        injector.set_fail_rate("no_such_point", 0.5), std::invalid_argument);
    // Registered names are accepted, and the registry helper agrees.
    injector.arm_nan(0, "loss");
    injector.set_fail_rate("serve_transient", 0.1);
    EXPECT_TRUE(aero::util::is_registered_fault_point("condition_encoder"));
    EXPECT_FALSE(aero::util::is_registered_fault_point("no_such_point"));
    // Unarmed lookups stay cheap no-ops regardless of registration.
    EXPECT_FALSE(injector.should_fail("serve_slow"));
}

TEST(ParseNumbers, CheckedIntParsing) {
    int value = 0;
    EXPECT_TRUE(aero::util::parse_int("42", &value));
    EXPECT_EQ(value, 42);
    EXPECT_TRUE(aero::util::parse_int("-7", &value));
    EXPECT_EQ(value, -7);
    value = 99;
    EXPECT_FALSE(aero::util::parse_int("", &value));
    EXPECT_FALSE(aero::util::parse_int("-", &value));
    EXPECT_FALSE(aero::util::parse_int("12abc", &value));
    EXPECT_FALSE(aero::util::parse_int("4.5", &value));
    EXPECT_FALSE(aero::util::parse_int("99999999999999999999", &value));
    EXPECT_EQ(value, 99);  // untouched on failure
}

TEST(ParseNumbers, CheckedDoubleParsing) {
    double value = 0.0;
    EXPECT_TRUE(aero::util::parse_double("2.5", &value));
    EXPECT_DOUBLE_EQ(value, 2.5);
    EXPECT_TRUE(aero::util::parse_double("-1e-3", &value));
    EXPECT_DOUBLE_EQ(value, -1e-3);
    value = 9.0;
    EXPECT_FALSE(aero::util::parse_double("", &value));
    EXPECT_FALSE(aero::util::parse_double("1.0x", &value));
    EXPECT_FALSE(aero::util::parse_double("nan", &value));
    EXPECT_FALSE(aero::util::parse_double("inf", &value));
    EXPECT_FALSE(aero::util::parse_double("1e999", &value));
    EXPECT_DOUBLE_EQ(value, 9.0);  // untouched on failure
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
    // Sanity check for the mutex-guarded log_line: hammer it from several
    // threads below the active threshold (no stderr noise) and once above.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 250; ++i) {
                aero::util::log_line(aero::util::LogLevel::kDebug,
                                     "thread " + std::to_string(t));
            }
        });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(aero::util::log_threshold(), aero::util::LogLevel::kInfo);
}

TEST(Env, FallbacksAndScale) {
    EXPECT_EQ(aero::util::env_int("AERO_NO_SUCH_VAR_XYZ", 17), 17);
    EXPECT_DOUBLE_EQ(aero::util::env_double("AERO_NO_SUCH_VAR_XYZ", 2.5), 2.5);
    EXPECT_EQ(aero::util::env_string("AERO_NO_SUCH_VAR_XYZ", "x"), "x");
    // Tests run with AERO_BENCH_SCALE=0 (set by CMake).
    EXPECT_EQ(aero::util::bench_scale(), 0);
    EXPECT_EQ(aero::util::scaled(1, 10, 100), 1);
}

// ---- thread pool ------------------------------------------------------------

using aero::util::ThreadPool;

/// Chunks seen by one parallel_for, in claim order.
std::vector<std::pair<std::int64_t, std::int64_t>> collect_chunks(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    std::int64_t grain) {
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    aero::util::Mutex mutex;
    pool.parallel_for(begin, end, grain,
                      [&](std::int64_t lo, std::int64_t hi) {
                          const aero::util::MutexLock lock(mutex);
                          chunks.emplace_back(lo, hi);
                      });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnArguments) {
    ThreadPool serial(1);
    ThreadPool wide(4);
    for (const auto& [begin, end, grain] :
         {std::array<std::int64_t, 3>{0, 100, 7},
          std::array<std::int64_t, 3>{3, 4, 10},
          std::array<std::int64_t, 3>{0, 64, 64},
          std::array<std::int64_t, 3>{5, 5, 1}}) {
        const auto a = collect_chunks(serial, begin, end, grain);
        const auto b = collect_chunks(wide, begin, end, grain);
        EXPECT_EQ(a, b) << begin << ".." << end << " grain " << grain;
        // Chunks tile [begin, end) exactly.
        std::int64_t expect_lo = begin;
        for (const auto& [lo, hi] : a) {
            EXPECT_EQ(lo, expect_lo);
            EXPECT_GT(hi, lo);
            EXPECT_LE(hi - lo, grain);
            expect_lo = hi;
        }
        EXPECT_EQ(expect_lo, end > begin ? end : begin);
    }
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(3);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(0, 1000, 17, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
    ThreadPool pool(2);
    int calls = 0;
    pool.parallel_for(5, 5, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    pool.parallel_for(9, 3, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, PropagatesFirstException) {
    ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [](std::int64_t lo, std::int64_t) {
                              if (lo == 42) {
                                  throw std::runtime_error("chunk 42");
                              }
                          }),
        std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, 1, [&](std::int64_t, std::int64_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
        // Must not deadlock: nested calls run serially on this thread.
        pool.parallel_for(0, 4, 1,
                          [&](std::int64_t, std::int64_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, ResizeChangesSize) {
    ThreadPool pool(2);
    EXPECT_EQ(pool.size(), 2);
    pool.resize(5);
    EXPECT_EQ(pool.size(), 5);
    std::atomic<int> count{0};
    pool.parallel_for(0, 50, 3, [&](std::int64_t lo, std::int64_t hi) {
        count += static_cast<int>(hi - lo);
    });
    EXPECT_EQ(count.load(), 50);
    pool.resize(1);
    EXPECT_EQ(pool.size(), 1);
}

TEST(ThreadPool, DefaultThreadsClampsToValidRange) {
    const int threads = ThreadPool::default_threads();
    EXPECT_GE(threads, 1);
    EXPECT_LE(threads, aero::util::kMaxThreads);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
    // Several "service workers" issue parallel_for against one pool at
    // once — the TSan build of this test is the data-race gate. The
    // pool_slow fault point widens the race windows.
    ThreadPool pool(4);
    aero::util::FaultInjector injector(123);
    injector.set_fail_rate("pool_slow", 0.2);
    pool.set_fault_injector(&injector);
    std::vector<std::thread> callers;
    std::array<std::int64_t, 6> sums{};
    for (int t = 0; t < 6; ++t) {
        callers.emplace_back([&pool, &sums, t] {
            for (int round = 0; round < 20; ++round) {
                std::array<std::int64_t, 16> partial{};
                pool.parallel_for(
                    0, 160, 10, [&](std::int64_t lo, std::int64_t hi) {
                        std::int64_t acc = 0;
                        for (std::int64_t i = lo; i < hi; ++i) acc += i;
                        partial[static_cast<std::size_t>(lo / 10)] = acc;
                    });
                std::int64_t total = 0;
                for (std::int64_t p : partial) total += p;
                sums[static_cast<std::size_t>(t)] = total;
            }
        });
    }
    for (auto& caller : callers) caller.join();
    pool.set_fault_injector(nullptr);
    for (std::int64_t sum : sums) EXPECT_EQ(sum, 160 * 159 / 2);
}

}  // namespace
