#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include <fstream>
#include <cstdio>

#include "util/env.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using aero::util::Rng;

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng rng(9);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.uniform_int(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, NormalMoments) {
    Rng rng(11);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, CategoricalRespectsWeights) {
    Rng rng(13);
    const std::vector<double> weights{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 8000; ++i) {
        counts[rng.categorical(weights)]++;
    }
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0]);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, CategoricalDegenerate) {
    Rng rng(17);
    EXPECT_EQ(rng.categorical({0.0, 0.0}), 1u);
}

TEST(Rng, ForkIndependence) {
    Rng parent(99);
    Rng a = parent.fork(0);
    Rng b = parent.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(5);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Strings, Join) {
    EXPECT_EQ(aero::util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(aero::util::join({}, ", "), "");
    EXPECT_EQ(aero::util::join({"solo"}, "+"), "solo");
}

TEST(Strings, SplitWhitespace) {
    const auto t = aero::util::split_whitespace("  a bb\tccc\nd  ");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], "a");
    EXPECT_EQ(t[3], "d");
}

TEST(Strings, Split) {
    const auto f = aero::util::split("a,,b", ',');
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[1], "");
}

TEST(Strings, FormatFixed) {
    EXPECT_EQ(aero::util::format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(aero::util::format_fixed(78.154, 2), "78.15");
}

TEST(Strings, PadRight) {
    EXPECT_EQ(aero::util::pad_right("ab", 4), "ab  ");
    EXPECT_EQ(aero::util::pad_right("abcdef", 3), "abc");
}

TEST(Strings, ToLower) {
    EXPECT_EQ(aero::util::to_lower("AbC 1!"), "abc 1!");
}

TEST(Json, ScalarsAndEscaping) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(3).dump(), "3");
    EXPECT_EQ(JsonValue(3.25).dump(), "3.25");
    EXPECT_EQ(JsonValue("a\"b\n").dump(), "\"a\\\"b\\n\"");
    EXPECT_EQ(aero::util::json_escape("tab\there"), "tab\\there");
}

TEST(Json, ObjectAndArrayStructure) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("name", "table1").set("fid", 1.5);
    JsonValue rows = JsonValue::array();
    rows.push(JsonValue(1)).push(JsonValue(2));
    root.set("rows", std::move(rows));
    const std::string text = root.dump();
    EXPECT_NE(text.find("\"name\": \"table1\""), std::string::npos);
    EXPECT_NE(text.find("\"fid\": 1.5"), std::string::npos);
    EXPECT_NE(text.find('['), std::string::npos);
    // Overwrite keeps single key.
    root.set("fid", 2.0);
    EXPECT_EQ(root.dump().find("1.5"), std::string::npos);
}

TEST(Json, EmptyContainers) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue::object().dump(), "{}");
    EXPECT_EQ(JsonValue::array().dump(), "[]");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
    using aero::util::JsonValue;
    EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(Json, WriteFile) {
    using aero::util::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("ok", true);
    const std::string path = testing::TempDir() + "/aero_test.json";
    ASSERT_TRUE(root.write_file(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("\"ok\": true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Env, FallbacksAndScale) {
    EXPECT_EQ(aero::util::env_int("AERO_NO_SUCH_VAR_XYZ", 17), 17);
    EXPECT_DOUBLE_EQ(aero::util::env_double("AERO_NO_SUCH_VAR_XYZ", 2.5), 2.5);
    EXPECT_EQ(aero::util::env_string("AERO_NO_SUCH_VAR_XYZ", "x"), "x");
    // Tests run with AERO_BENCH_SCALE=0 (set by CMake).
    EXPECT_EQ(aero::util::bench_scale(), 0);
    EXPECT_EQ(aero::util::scaled(1, 10, 100), 1);
}

}  // namespace
