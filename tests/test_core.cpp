#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "baselines/models.hpp"
#include "core/condition.hpp"
#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "metrics/metrics.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace {

using namespace aero::core;
using aero::scene::AerialDataset;
using aero::scene::DatasetConfig;

/// One tiny substrate shared by every test in this binary (expensive to
/// build, cheap to reuse; all consumers treat it as const).
const Substrate& shared_substrate() {
    static const Substrate substrate = [] {
        Budget budget = Budget::smoke();
        DatasetConfig config;
        config.train_size = budget.train_images;
        config.test_size = budget.test_images;
        config.image_size = budget.image_size;
        static const AerialDataset dataset(config);
        aero::util::Rng rng(2025);
        return build_substrate(dataset, budget, rng);
    }();
    return substrate;
}

TEST(BudgetTest, SmokeIsSmallestAndFromScaleIsSane) {
    const Budget smoke = Budget::smoke();
    const Budget standard{};
    EXPECT_LT(smoke.train_images, standard.train_images);
    EXPECT_LT(smoke.diffusion_steps, standard.diffusion_steps);
    EXPECT_LE(smoke.diffusion_steps, 60);
    const Budget b = Budget::from_scale();
    EXPECT_GT(b.train_images, 0);
    EXPECT_GT(b.eval_samples, 0);
    EXPECT_GE(b.ddim_steps, 1);
}

TEST(SubstrateTest, AllComponentsBuilt) {
    const Substrate& s = shared_substrate();
    EXPECT_NE(s.clip, nullptr);
    EXPECT_NE(s.autoencoder, nullptr);
    EXPECT_NE(s.detector, nullptr);
    EXPECT_NE(s.feature_net, nullptr);
    EXPECT_GT(s.latent_scale, 0.0f);
    EXPECT_EQ(s.keypoint_train.size(), s.dataset->train().size());
    EXPECT_EQ(s.generic_test.size(), s.dataset->test().size());
    EXPECT_EQ(s.train_latents.size(), s.dataset->train().size());
}

TEST(SubstrateTest, KeypointCaptionsRicherThanGeneric) {
    const Substrate& s = shared_substrate();
    double keypoint_cov = 0.0;
    double generic_cov = 0.0;
    for (std::size_t i = 0; i < s.keypoint_train.size(); ++i) {
        keypoint_cov += aero::text::keypoint_coverage(s.keypoint_train[i]);
        generic_cov += aero::text::keypoint_coverage(s.generic_train[i]);
    }
    EXPECT_GT(keypoint_cov, generic_cov);
}

TEST(SubstrateTest, LatentsAreNormalised) {
    const Substrate& s = shared_substrate();
    double sum_sq = 0.0;
    long count = 0;
    for (const auto& z : s.train_latents) {
        for (float v : z) {
            sum_sq += static_cast<double>(v) * v;
            ++count;
        }
    }
    const double rms = std::sqrt(sum_sq / static_cast<double>(count));
    EXPECT_GT(rms, 0.3);
    EXPECT_LT(rms, 3.0);
}

TEST(ConditionTest, FeaturesHaveExpectedShapes) {
    const Substrate& s = shared_substrate();
    const auto& sample = s.dataset->train()[0];
    const std::string caption = s.keypoint_train[0].text;
    const ConditionFeatures features = compute_condition_features(
        s, sample, caption, caption, /*use_object_detection=*/true, 8);
    const int d = s.embed_config.dim;
    EXPECT_EQ(features.image_tokens.dim(1), d);
    EXPECT_EQ(features.text_tokens.dim(1), d);
    EXPECT_EQ(features.clip_text.dim(0), 1);
    EXPECT_EQ(features.global_feature.dim(1), d);
    if (!features.roi_features.empty()) {
        EXPECT_EQ(features.roi_features.dim(1), d);
        EXPECT_EQ(features.roi_features.dim(0),
                  features.label_embeddings.dim(0));
    }
}

TEST(ConditionTest, EncoderRowCountsMatchFlags) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(7);
    const auto& sample = s.dataset->train()[0];
    const std::string caption = s.keypoint_train[0].text;
    const ConditionFeatures features = compute_condition_features(
        s, sample, caption, caption, true, 8);

    // Full: C_xg, C_g, then the enhanced token set (f̂_X slot + regions).
    ConditionEncoder full(s.embed_config, true, true, true, rng);
    const int roi_rows = features.roi_features.empty()
                             ? 0
                             : features.roi_features.dim(0);
    EXPECT_EQ(full.encode(features).value().dim(0),
              features.roi_features.empty() ? 3 : 3 + roi_rows);

    ConditionEncoder text_only(s.embed_config, false, false, false, rng);
    EXPECT_EQ(text_only.encode(features).value().dim(0), 1);  // C_g

    ConditionEncoder no_fusion(s.embed_config, false, true, true, rng);
    EXPECT_EQ(no_fusion.encode(features).value().dim(0), 2);
}

TEST(ConditionTest, EncoderGradientsFlow) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(8);
    const auto& sample = s.dataset->train()[0];
    const std::string caption = s.keypoint_train[0].text;
    const ConditionFeatures features = compute_condition_features(
        s, sample, caption, caption, true, 8);
    ConditionEncoder encoder(s.embed_config, true, true, true, rng);
    aero::autograd::mean_all(encoder.encode(features)).backward();
    int with_grad = 0;
    for (const auto& p : encoder.parameters()) {
        if (!p.grad().empty()) ++with_grad;
    }
    EXPECT_GT(with_grad, 0);
}

TEST(PipelineConfigTest, Presets) {
    EXPECT_EQ(PipelineConfig::aero_diffusion().variant,
              ModelVariant::kAeroDiffusion);
    EXPECT_FALSE(PipelineConfig::stable_diffusion().use_keypoint_captions);
    EXPECT_FALSE(PipelineConfig::versatile_diffusion().use_blip_fusion);
    const PipelineConfig row1 = PipelineConfig::ablation(false, false, false);
    EXPECT_FALSE(row1.use_blip_fusion);
    EXPECT_FALSE(row1.use_image_feature);
    const PipelineConfig row4 = PipelineConfig::ablation(true, true, true);
    EXPECT_TRUE(row4.use_object_detection);
}

TEST(PipelineTest, FitAndGenerate) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(9);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    EXPECT_GT(pipeline.parameter_count(), 1000);
    const auto stats = pipeline.fit(rng);
    EXPECT_GT(stats.first_loss, 0.0f);
    EXPECT_TRUE(std::isfinite(stats.tail_loss));

    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;
    const aero::image::Image generated =
        pipeline.generate(sample, caption, caption, rng, 0);
    EXPECT_EQ(generated.width(), s.budget.image_size);
    for (float v : generated.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(PipelineTest, ViewpointTransitionChangesOutput) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(10);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    pipeline.fit(rng);
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;
    const std::string moved =
        "A daytime aerial image of a tranquil park captured from a low "
        "altitude from an angle to the side.";
    aero::util::Rng rng_a(5);
    aero::util::Rng rng_b(5);
    const auto img_same = pipeline.generate(sample, caption, caption, rng_a, 0);
    const auto img_moved = pipeline.generate(sample, caption, moved, rng_b, 0);
    double diff = 0.0;
    for (std::size_t i = 0; i < img_same.data().size(); ++i) {
        diff += std::abs(img_same.data()[i] - img_moved.data()[i]);
    }
    EXPECT_GT(diff, 0.01);
}

TEST(PipelineTest, SaveLoadRoundTrip) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng_a(21);
    aero::util::Rng rng_b(22);  // different init
    AeroDiffusionPipeline a(PipelineConfig::aero_diffusion(), s, rng_a);
    AeroDiffusionPipeline b(PipelineConfig::aero_diffusion(), s, rng_b);
    a.fit(rng_a);
    const std::string path = testing::TempDir() + "/aero_pipeline";
    ASSERT_TRUE(a.save(path));
    ASSERT_TRUE(b.load(path));

    // Identical weights -> identical generations for the same seed.
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;
    aero::util::Rng g1(5);
    aero::util::Rng g2(5);
    const auto img_a = a.generate(sample, caption, caption, g1, 0);
    const auto img_b = b.generate(sample, caption, caption, g2, 0);
    ASSERT_EQ(img_a.data().size(), img_b.data().size());
    for (std::size_t i = 0; i < img_a.data().size(); ++i) {
        EXPECT_EQ(img_a.data()[i], img_b.data()[i]);
    }
    std::remove((path + ".unet").c_str());
    std::remove((path + ".cond").c_str());
}

TEST(PipelineTest, LoadRejectsMismatchedArchitecture) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(23);
    AeroDiffusionPipeline full(PipelineConfig::aero_diffusion(), s, rng);
    const std::string path = testing::TempDir() + "/aero_pipeline_mismatch";
    ASSERT_TRUE(full.save(path));
    // Text-only variant has a different condition encoder.
    AeroDiffusionPipeline text_only(PipelineConfig::stable_diffusion(), s,
                                    rng);
    EXPECT_FALSE(text_only.load(path));
    std::remove((path + ".unet").c_str());
    std::remove((path + ".cond").c_str());
}

TEST(PipelineTest, EditAndInpaintProduceValidImages) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(24);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    pipeline.fit(rng);
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;

    const auto edited =
        pipeline.generate_edit(sample, caption, caption, 0.4f, rng, 0);
    EXPECT_EQ(edited.width(), s.budget.image_size);
    for (float v : edited.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    // Low-strength edits stay closer to the reference than full
    // generations (averaged over the image).
    aero::util::Rng rng_gen(7);
    const auto generated =
        pipeline.generate(sample, caption, caption, rng_gen, 0);
    const double psnr_edit = aero::image::psnr(sample.image, edited);
    const double psnr_gen = aero::image::psnr(sample.image, generated);
    EXPECT_GT(psnr_edit, psnr_gen - 3.0);  // never dramatically worse

    aero::scene::BoundingBox region{4, 4, 12, 12};
    const auto inpainted = pipeline.generate_inpaint(
        sample, region, caption, caption, rng, 0);
    EXPECT_EQ(inpainted.width(), s.budget.image_size);
}

void remove_checkpoint(const std::string& path) {
    std::remove((path + ".unet").c_str());
    std::remove((path + ".cond").c_str());
    std::remove((path + ".meta.json").c_str());
}

TEST(CheckpointTest, SaveLoadRoundTripRecordsStep) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng_a(31);
    aero::util::Rng rng_b(32);  // different init
    AeroDiffusionPipeline a(PipelineConfig::aero_diffusion(), s, rng_a);
    AeroDiffusionPipeline b(PipelineConfig::aero_diffusion(), s, rng_b);
    a.fit(rng_a);
    const std::string path = testing::TempDir() + "/aero_ckpt";
    ASSERT_TRUE(a.save_checkpoint(path, 17));

    int step = -1;
    ASSERT_TRUE(b.load_checkpoint(path, &step));
    EXPECT_EQ(step, 17);

    // Restored weights generate bit-identically for the same seed.
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;
    aero::util::Rng g1(5);
    aero::util::Rng g2(5);
    const auto img_a = a.generate(sample, caption, caption, g1, 0);
    const auto img_b = b.generate(sample, caption, caption, g2, 0);
    ASSERT_EQ(img_a.data().size(), img_b.data().size());
    for (std::size_t i = 0; i < img_a.data().size(); ++i) {
        EXPECT_EQ(img_a.data()[i], img_b.data()[i]);
    }
    remove_checkpoint(path);
}

TEST(CheckpointTest, RejectsMissingGarbageAndWrongFormatMetadata) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(33);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    const std::string path = testing::TempDir() + "/aero_ckpt_meta";
    ASSERT_TRUE(pipeline.save_checkpoint(path, 5));

    EXPECT_FALSE(pipeline.load_checkpoint(path + "_nonexistent"));

    {  // malformed JSON sidecar
        std::ofstream meta(path + ".meta.json");
        meta << "{ \"format\": 2, \"step\": ";  // truncated
    }
    EXPECT_FALSE(pipeline.load_checkpoint(path));

    {  // valid JSON, old/unknown format version
        aero::util::JsonValue meta = aero::util::JsonValue::object();
        meta.set("format", 1);
        meta.set("step", 5);
        ASSERT_TRUE(meta.write_file(path + ".meta.json"));
    }
    EXPECT_FALSE(pipeline.load_checkpoint(path));
    remove_checkpoint(path);
}

TEST(CheckpointTest, FitWritesPeriodicCheckpointsAndResumes) {
    const Substrate& s = shared_substrate();
    const std::string path = testing::TempDir() + "/aero_ckpt_mid";
    PipelineConfig config = PipelineConfig::aero_diffusion();
    config.checkpoint_path = path;
    config.checkpoint_interval = 7;  // smoke budget trains 30 steps

    aero::util::Rng rng_a(34);
    AeroDiffusionPipeline a(config, s, rng_a);
    a.fit(rng_a);

    // Mid-training checkpoint exists and records a step on the cadence.
    aero::util::JsonValue meta;
    ASSERT_TRUE(
        aero::util::json_parse_file(path + ".meta.json", &meta));
    const aero::util::JsonValue* step = meta.find("step");
    ASSERT_NE(step, nullptr);
    const int recorded = static_cast<int>(step->as_number());
    EXPECT_GT(recorded, 0);
    EXPECT_EQ(recorded % config.checkpoint_interval, 0);

    // A fresh pipeline resumes from it and finishes the remaining steps.
    config.resume = true;
    aero::util::Rng rng_b(35);
    AeroDiffusionPipeline b(config, s, rng_b);
    int loaded_step = -1;
    ASSERT_TRUE(b.load_checkpoint(path, &loaded_step));
    EXPECT_EQ(loaded_step, recorded);
    const auto stats = b.fit(rng_b);
    EXPECT_FALSE(stats.diverged);
    EXPECT_TRUE(std::isfinite(stats.final_loss));
    remove_checkpoint(path);
}

TEST(PipelineTest, NanInjectionDuringFitRollsBackAndCompletes) {
    const Substrate& s = shared_substrate();
    aero::util::FaultInjector injector(41);
    injector.arm_nan(4, "param");
    PipelineConfig config = PipelineConfig::aero_diffusion();
    config.fault_injector = &injector;
    config.sentinel.snapshot_interval = 2;

    aero::util::Rng rng(36);
    AeroDiffusionPipeline pipeline(config, s, rng);
    const auto stats = pipeline.fit(rng);
    EXPECT_EQ(injector.injected_count(), 1);
    EXPECT_EQ(stats.nan_events, 1);
    EXPECT_GE(stats.rollbacks, 1);
    EXPECT_FALSE(stats.diverged);
    EXPECT_TRUE(std::isfinite(stats.tail_loss));
    EXPECT_GT(stats.tail_loss, 0.0f);
}

TEST(PipelineTest, PoisonedConditionEncoderDegradesToUnconditional) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(37);
    AeroDiffusionPipeline pipeline(PipelineConfig::aero_diffusion(), s, rng);
    // Parameter Vars share storage with the module, so poisoning the
    // copies corrupts the encoder exactly like a real numerical fault.
    for (aero::autograd::Var p : pipeline.condition_encoder().parameters()) {
        for (float& v : p.mutable_value()) {
            v = std::numeric_limits<float>::quiet_NaN();
        }
    }
    const auto& sample = s.dataset->test()[0];
    const std::string caption = s.keypoint_test[0].text;
    const auto img = pipeline.generate(sample, caption, caption, rng, 0);
    EXPECT_EQ(img.width(), s.budget.image_size);
    for (float v : img.data()) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(BaselineModels, AllSixFitAndGenerate) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(11);
    auto models = aero::baselines::make_table1_models(s, rng);
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0]->name(), "DDPM");
    EXPECT_EQ(models[5]->name(), "AeroDiffusion");

    // Fit and sample just the two cheapest to keep the smoke test fast:
    // DDPM (distinct code path) and Versatile (pipeline path).
    for (const std::size_t index : {std::size_t{3}}) {
        auto& model = *models[index];
        model.fit(rng);
        const auto img = model.generate(s.dataset->test()[0], 0, rng);
        EXPECT_EQ(img.width(), s.budget.image_size);
    }
}

TEST(BaselineModels, DdpmIsUnconditionalPixelSpace) {
    const Substrate& s = shared_substrate();
    aero::util::Rng rng(12);
    aero::baselines::DdpmBaseline ddpm(s, rng);
    ddpm.fit(rng);
    const auto img = ddpm.generate(s.dataset->test()[0], 0, rng);
    EXPECT_EQ(img.width(), s.budget.image_size);
    EXPECT_EQ(img.height(), s.budget.image_size);
}

}  // namespace
