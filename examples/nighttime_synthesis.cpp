// Nighttime synthesis (Fig. 5 workflow): take a daytime scene and
// generate its nighttime counterpart purely by conditioning on a
// nighttime caption -- lighting keypoints in the text drive the
// high-noise rendering conditions.

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "text/llm.hpp"

int main() {
    using namespace aero;

    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    // Train on a half-night mixture so the model knows the conditions.
    dataset_config.generator.night_fraction = 0.5;
    const scene::AerialDataset dataset(dataset_config);

    util::Rng rng(404);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    pipeline.fit(rng);

    // Find a daytime test scene.
    int day_index = 0;
    for (std::size_t i = 0; i < dataset.test().size(); ++i) {
        if (dataset.test()[i].scene.time == scene::TimeOfDay::kDay) {
            day_index = static_cast<int>(i);
            break;
        }
    }
    const auto& reference =
        dataset.test()[static_cast<std::size_t>(day_index)];
    const std::string day_caption =
        substrate.keypoint_test[static_cast<std::size_t>(day_index)].text;

    // Caption for the same scene at night.
    const scene::AerialSample night_gt =
        scene::relight_sample(reference, scene::TimeOfDay::kNight);
    util::Rng cap_rng(17);
    const std::string night_caption =
        text::SimulatedLlm::keypoint_aware()
            .describe(night_gt.scene, text::PromptTemplate::keypoint_aware(),
                      cap_rng)
            .text;

    std::printf("day caption:\n  %s\n\n", day_caption.c_str());
    std::printf("night caption:\n  %s\n\n", night_caption.c_str());

    const image::Image generated = pipeline.generate(
        reference, day_caption, night_caption, rng, day_index);

    image::write_ppm(reference.image, "night_day_reference.ppm");
    image::write_ppm(night_gt.image, "night_groundtruth.ppm");
    image::write_ppm(generated, "night_generated.ppm");

    std::printf("luminance: day reference %.3f, night ground truth %.3f, "
                "generated %.3f\n",
                reference.image.mean_luminance(),
                night_gt.image.mean_luminance(),
                generated.mean_luminance());
    std::printf("wrote night_day_reference.ppm, night_groundtruth.ppm, "
                "night_generated.ppm\n");
    return 0;
}
