// Region inpainting: regenerate one region of an aerial image under
// text guidance while preserving the rest (RePaint-style latent
// inpainting on top of the trained AeroDiffusion model). A downstream
// use of the paper's system: scrubbing or re-imagining part of a scene
// (e.g. for privacy or augmentation) without touching the context.

#include <cstdio>

#include "aerodiffusion.hpp"

int main() {
    using namespace aero;

    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    const scene::AerialDataset dataset(dataset_config);

    util::Rng rng(606);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    pipeline.fit(rng);

    const auto& reference = dataset.test().front();
    const std::string caption = substrate.keypoint_test.front().text;

    // Regenerate the central quarter of the scene.
    const int size = budget.image_size;
    scene::BoundingBox region;
    region.x = static_cast<float>(size) * 0.25f;
    region.y = static_cast<float>(size) * 0.25f;
    region.w = static_cast<float>(size) * 0.5f;
    region.h = static_cast<float>(size) * 0.5f;

    const image::Image inpainted = pipeline.generate_inpaint(
        reference, region, caption, caption, rng, 0);

    image::write_ppm(reference.image, "inpaint_reference.ppm");
    image::write_ppm(inpainted, "inpaint_result.ppm");

    // The border must be (nearly) preserved; the centre regenerated.
    double border_diff = 0.0;
    double centre_diff = 0.0;
    int border_px = 0;
    int centre_px = 0;
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            const bool inside =
                x >= static_cast<int>(region.x) &&
                x < static_cast<int>(region.x + region.w) &&
                y >= static_cast<int>(region.y) &&
                y < static_cast<int>(region.y + region.h);
            for (int c = 0; c < 3; ++c) {
                const double d = std::abs(inpainted.at(x, y, c) -
                                          reference.image.at(x, y, c));
                if (inside) {
                    centre_diff += d;
                    ++centre_px;
                } else {
                    border_diff += d;
                    ++border_px;
                }
            }
        }
    }
    std::printf("mean abs change: preserved border %.4f, regenerated "
                "centre %.4f\n",
                border_diff / border_px, centre_diff / centre_px);
    std::printf("wrote inpaint_reference.ppm and inpaint_result.ppm\n");
    return 0;
}
