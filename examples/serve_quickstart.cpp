// Serving quickstart: put the hardened InferenceService in front of a
// trained pipeline and watch the failure policy work.
//
//   1. Build dataset + substrate, train a small AeroDiffusion pipeline.
//   2. Start the service (2 workers, bounded queue).
//   3. Submit a mixed batch: valid requests, a garbage caption, a
//      non-finite reference image, and a request with a 1 ms deadline.
//   4. Inject a condition-encoder outage, trip the circuit breaker, and
//      observe degraded (unconditional) fallbacks until the probe heals.
//   5. Dump the process-wide metrics registry in Prometheus text format:
//      queue depth/wait, latency histograms, breaker state, and the
//      per-stage span summary collected by the tracer.
//
// Run with AERO_BENCH_SCALE=0 for a fast demo.

#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "aerodiffusion.hpp"
#include "obs/exposition.hpp"
#include "serve/service.hpp"

int main() {
    using namespace aero;

    // 1. Substrate + trained pipeline ---------------------------------------
    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    const scene::AerialDataset dataset(dataset_config);
    util::Rng rng(2025);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    std::printf("training pipeline (%d params, %d steps)...\n",
                pipeline.parameter_count(), budget.diffusion_steps);
    pipeline.fit(rng);

    // 2. Service ------------------------------------------------------------
    util::FaultInjector injector(0xfee1);
    serve::ServiceConfig config;
    config.workers = 2;
    config.queue_capacity = 16;
    config.fault_injector = &injector;
    serve::InferenceService service(pipeline, config);

    auto make_request = [&](std::size_t slot) {
        serve::InferenceRequest request;
        request.reference = dataset.test()[slot % dataset.test().size()];
        request.source_caption =
            substrate.keypoint_test[slot % substrate.keypoint_test.size()]
                .text;
        request.target_caption = request.source_caption;
        request.seed = 40 + slot;
        return request;
    };
    auto show = [](const char* label, const serve::RequestResult& result) {
        std::printf("  %-22s -> %-8s (%.1f ms, %d attempt%s)%s%s\n", label,
                    serve::outcome_name(result.outcome), result.latency_ms,
                    result.attempts, result.attempts == 1 ? "" : "s",
                    result.message.empty() ? "" : " : ",
                    result.message.c_str());
    };

    // 3. Mixed batch --------------------------------------------------------
    std::printf("mixed batch:\n");
    {
        std::vector<std::pair<const char*,
                              std::future<serve::RequestResult>>> batch;
        batch.emplace_back("valid generate",
                           service.submit(make_request(0)));

        serve::InferenceRequest garbage = make_request(1);
        garbage.target_caption = "\x01\x02 not a caption \xff";
        batch.emplace_back("garbage caption",
                           service.submit(std::move(garbage)));

        serve::InferenceRequest poisoned = make_request(2);
        poisoned.reference.image.at(0, 0, 0) = std::nanf("");
        batch.emplace_back("NaN reference pixel",
                           service.submit(std::move(poisoned)));

        serve::InferenceRequest hurried = make_request(3);
        hurried.deadline_ms = 1.0;  // expires while queued or mid-run
        batch.emplace_back("1 ms deadline",
                           service.submit(std::move(hurried)));

        for (auto& [label, future] : batch) show(label, future.get());
    }

    // 4. Encoder outage: trip the breaker, then heal ------------------------
    std::printf("condition-encoder outage (fail rate 1.0):\n");
    injector.set_fail_rate("condition_encoder", 1.0);
    for (std::size_t i = 0; i < 4; ++i) {
        show("during outage", service.submit(make_request(10 + i)).get());
    }
    std::printf("  breaker state: %s\n",
                serve::breaker_state_name(service.breaker_state()));

    injector.set_fail_rate("condition_encoder", 0.0);
    std::printf("encoder healed; probe should close the breaker:\n");
    for (std::size_t i = 0; i < 4; ++i) {
        show("after heal", service.submit(make_request(20 + i)).get());
    }
    std::printf("  breaker state: %s\n",
                serve::breaker_state_name(service.breaker_state()));

    service.stop();
    const serve::ServiceStats stats = service.stats();
    std::printf("stats: %lld submitted | ok %lld, degraded %lld, invalid "
                "%lld, timeout %lld, shed %lld, failed %lld | retries %lld "
                "| breaker trips/recoveries %d/%d | balanced=%s\n",
                stats.submitted, stats.outcome(serve::Outcome::kOk),
                stats.outcome(serve::Outcome::kDegraded),
                stats.outcome(serve::Outcome::kInvalid),
                stats.outcome(serve::Outcome::kTimeout),
                stats.outcome(serve::Outcome::kShed),
                stats.outcome(serve::Outcome::kFailed), stats.retries,
                stats.breaker_trips, stats.breaker_recoveries,
                stats.balanced() ? "yes" : "NO");

    // 5. Prometheus dump ----------------------------------------------------
    std::printf("\nmetrics (Prometheus text exposition):\n%s",
                obs::render_text().c_str());
    return stats.balanced() ? 0 : 1;
}
