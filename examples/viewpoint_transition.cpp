// Viewpoint transition (Table III workflow) as an API consumer: take a
// reference aerial image, edit its caption to describe a different
// drone position, and generate the new view.

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "text/llm.hpp"

int main() {
    using namespace aero;

    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    const scene::AerialDataset dataset(dataset_config);

    util::Rng rng(99);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    pipeline.fit(rng);

    const auto& reference = dataset.test().front();
    const std::string source_caption = substrate.keypoint_test.front().text;

    // Three target viewpoints, described only through caption edits.
    struct Transition {
        const char* label;
        float altitude;
        float pitch;
    };
    const Transition transitions[] = {
        {"closer (low altitude)", 0.6f, 0.1f},
        {"oblique side view", 1.0f, 0.55f},
        {"high overview", 1.35f, 0.05f},
    };

    std::printf("reference caption:\n  %s\n\n", source_caption.c_str());
    image::write_ppm(reference.image, "viewpoint_reference.ppm");

    const auto llm = text::SimulatedLlm::keypoint_aware();
    const auto prompt = text::PromptTemplate::keypoint_aware();
    int index = 0;
    for (const Transition& transition : transitions) {
        scene::Camera camera = reference.scene.camera;
        camera.altitude = transition.altitude;
        camera.pitch = transition.pitch;
        const scene::AerialSample target =
            scene::reproject_sample(reference, camera);
        util::Rng cap_rng(200 + static_cast<std::uint64_t>(index));
        const std::string target_caption =
            llm.describe(target.scene, prompt, cap_rng).text;

        util::Rng gen_rng(300 + static_cast<std::uint64_t>(index));
        const image::Image generated = pipeline.generate(
            reference, source_caption, target_caption, gen_rng, 0);

        const std::string path =
            "viewpoint_" + std::to_string(index) + ".ppm";
        image::write_ppm(generated, path);
        const float score =
            embed::clip_score(*substrate.clip, generated, target_caption);
        std::printf("[%s]\n  G': %.100s...\n  wrote %s (CLIP vs G' = %.2f)\n\n",
                    transition.label, target_caption.c_str(), path.c_str(),
                    score);
        ++index;
    }
    return 0;
}
