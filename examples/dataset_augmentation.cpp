// Dataset augmentation via conditional interpolation -- the paper's
// motivating use case (Sec. I): a surveillance dataset holds "scene A
// top-down", "scene A oblique" and "scene B top-down", but is missing
// "scene B oblique". AeroDiffusion synthesises the missing condition by
// pairing scene B's image features with an oblique-viewpoint caption.

#include <cstdio>

#include "core/pipeline.hpp"
#include "core/substrate.hpp"
#include "text/llm.hpp"

int main() {
    using namespace aero;

    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    const scene::AerialDataset dataset(dataset_config);

    util::Rng rng(31);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    pipeline.fit(rng);

    // "Scene B": a residential test scene captured top-down only.
    int scene_b = 0;
    for (std::size_t i = 0; i < dataset.test().size(); ++i) {
        if (scene::pitch_band(dataset.test()[i].scene.camera) ==
            scene::PitchBand::kTopDown) {
            scene_b = static_cast<int>(i);
            break;
        }
    }
    const auto& reference = dataset.test()[static_cast<std::size_t>(scene_b)];
    const std::string available_caption =
        substrate.keypoint_test[static_cast<std::size_t>(scene_b)].text;

    // The missing condition: the same scene from a 45-degree oblique view.
    scene::Camera oblique = reference.scene.camera;
    oblique.pitch = 0.5f;
    oblique.altitude = 0.8f;
    const scene::AerialSample target =
        scene::reproject_sample(reference, oblique);
    util::Rng cap_rng(7);
    const std::string missing_caption =
        text::SimulatedLlm::keypoint_aware()
            .describe(target.scene, text::PromptTemplate::keypoint_aware(),
                      cap_rng)
            .text;

    std::printf("available condition:\n  %s\n\n", available_caption.c_str());
    std::printf("missing condition to synthesise:\n  %s\n\n",
                missing_caption.c_str());

    // Conditional interpolation: reference image features + new caption.
    const image::Image synthesised = pipeline.generate(
        reference, available_caption, missing_caption, rng, scene_b);

    image::write_ppm(reference.image, "augment_available_view.ppm");
    image::write_ppm(target.image, "augment_groundtruth_view.ppm");
    image::write_ppm(synthesised, "augment_synthesised_view.ppm");
    std::printf("wrote augment_available_view.ppm, "
                "augment_groundtruth_view.ppm, augment_synthesised_view.ppm\n");

    // How useful is the synthetic sample? Compare its distance to the
    // true missing view against the available view.
    const auto f_syn = substrate.feature_net->features(synthesised);
    const auto f_gt = substrate.feature_net->features(target.image);
    const auto f_ref = substrate.feature_net->features(reference.image);
    double d_gt = 0.0;
    double d_ref = 0.0;
    for (std::size_t i = 0; i < f_syn.size(); ++i) {
        d_gt += (f_syn[i] - f_gt[i]) * (f_syn[i] - f_gt[i]);
        d_ref += (f_syn[i] - f_ref[i]) * (f_syn[i] - f_ref[i]);
    }
    std::printf("feature distance^2 to missing view: %.3f, to available "
                "view: %.3f\n",
                d_gt, d_ref);
    return 0;
}
