// Quickstart: the minimal end-to-end AeroDiffusion flow.
//
//   1. Build a synthetic paired text-aerial dataset.
//   2. Build the shared substrate (captions, CLIP, detector, autoencoder).
//   3. Train the AeroDiffusion pipeline (Eq. 6).
//   4. Generate one aerial image from a test caption and save it.
//
// Run with AERO_BENCH_SCALE=0 for a ~15 s demo, or 1 for better quality.

#include <cstdio>

#include "aerodiffusion.hpp"

int main() {
    using namespace aero;

    // 1. Dataset ------------------------------------------------------------
    const core::Budget budget = core::Budget::from_scale();
    scene::DatasetConfig dataset_config;
    dataset_config.train_size = budget.train_images;
    dataset_config.test_size = budget.test_images;
    dataset_config.image_size = budget.image_size;
    const scene::AerialDataset dataset(dataset_config);
    std::printf("dataset: %zu train / %zu test images of %dx%d\n",
                dataset.train().size(), dataset.test().size(),
                budget.image_size, budget.image_size);

    // 2. Substrate ----------------------------------------------------------
    util::Rng rng(2025);
    const core::Substrate substrate =
        core::build_substrate(dataset, budget, rng);
    std::printf("example keypoint-aware caption:\n  %s\n",
                substrate.keypoint_train.front().text.c_str());

    // 3. Train AeroDiffusion --------------------------------------------------
    core::AeroDiffusionPipeline pipeline(
        core::PipelineConfig::aero_diffusion(), substrate, rng);
    std::printf("training %d parameters for %d steps...\n",
                pipeline.parameter_count(), budget.diffusion_steps);
    const auto stats = pipeline.fit(rng);
    std::printf("diffusion loss: %.3f -> %.3f\n", stats.first_loss,
                stats.tail_loss);

    // 4. Generate -------------------------------------------------------------
    const auto& reference = dataset.test().front();
    const std::string& caption = substrate.keypoint_test.front().text;
    const image::Image generated =
        pipeline.generate(reference, caption, caption, rng, 0);
    image::write_ppm(reference.image, "quickstart_reference.ppm");
    image::write_ppm(generated, "quickstart_generated.ppm");
    std::printf("wrote quickstart_reference.ppm and quickstart_generated.ppm\n");
    std::printf("caption used:\n  %s\n", caption.c_str());
    return 0;
}
