// Exports the paired text-aerial dataset (the paper's contribution (2)):
// renders every sample to a PPM, writes its keypoint-aware caption and
// its annotations (bounding boxes) to sidecar text files, and emits an
// index. The result is the on-disk artifact a downstream user would
// train their own model on.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "scene/dataset.hpp"
#include "text/llm.hpp"
#include "util/env.hpp"

int main(int argc, char** argv) {
    using namespace aero;

    const std::string out_dir = argc > 1 ? argv[1] : "paired_dataset";
    std::filesystem::create_directories(out_dir);

    scene::DatasetConfig config;
    config.train_size = util::scaled(12, 64, 256);
    config.test_size = util::scaled(4, 16, 64);
    config.image_size = util::scaled(32, 64, 64);
    const scene::AerialDataset dataset(config);

    const auto llm = text::SimulatedLlm::keypoint_aware();
    const auto prompt = text::PromptTemplate::keypoint_aware();
    util::Rng rng(2025);

    std::ofstream index(out_dir + "/index.tsv");
    index << "id\tsplit\tscenario\ttime\tobjects\timage\tcaption\tboxes\n";

    auto export_split = [&](const std::vector<scene::AerialSample>& split,
                            const char* split_name, int offset) {
        for (std::size_t i = 0; i < split.size(); ++i) {
            const scene::AerialSample& sample = split[i];
            const int id = offset + static_cast<int>(i);
            const std::string stem =
                out_dir + "/" + std::string(split_name) + "_" +
                std::to_string(id);

            image::write_ppm(sample.image, stem + ".ppm");

            const text::Caption caption =
                llm.describe(sample.scene, prompt, rng);
            std::ofstream(stem + ".txt") << caption.text << "\n";

            std::ofstream boxes(stem + ".boxes");
            boxes << "# x y w h class score\n";
            for (const scene::BoundingBox& box : sample.gt_boxes) {
                boxes << box.x << ' ' << box.y << ' ' << box.w << ' '
                      << box.h << ' ' << scene::class_name(box.cls) << ' '
                      << box.score << "\n";
            }

            index << id << '\t' << split_name << '\t'
                  << scene::scenario_name(sample.scene.kind) << '\t'
                  << (sample.scene.time == scene::TimeOfDay::kDay ? "day"
                                                                  : "night")
                  << '\t' << sample.scene.objects.size() << '\t' << stem
                  << ".ppm\t" << stem << ".txt\t" << stem << ".boxes\n";
        }
        return static_cast<int>(split.size());
    };

    int count = export_split(dataset.train(), "train", 0);
    count += export_split(dataset.test(), "test", count);

    std::printf("exported %d paired samples (image + caption + boxes) to "
                "%s/\n",
                count, out_dir.c_str());
    std::printf("index written to %s/index.tsv\n", out_dir.c_str());
    return 0;
}
