#include "baselines/models.hpp"

#include <cassert>

#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace aero::baselines {

PipelineModel::PipelineModel(const core::PipelineConfig& config,
                             const core::Substrate& substrate,
                             util::Rng& rng)
    : pipeline_(config, substrate, rng) {}

void PipelineModel::fit(util::Rng& rng) { pipeline_.fit(rng); }

image::Image PipelineModel::generate(const scene::AerialSample& reference,
                                     int index, util::Rng& rng) const {
    const auto& captions = pipeline_.test_captions();
    assert(index >= 0 && index < static_cast<int>(captions.size()));
    const std::string& caption =
        captions[static_cast<std::size_t>(index)].text;
    return pipeline_.generate(reference, caption, caption, rng, index);
}

namespace {

diffusion::UNetConfig pixel_unet_config(const core::Substrate& substrate) {
    diffusion::UNetConfig config;
    config.in_channels = 3;  // pixel space
    config.base_channels = 12;
    config.cond_dim = substrate.embed_config.dim;
    config.time_dim = 32;
    return config;
}

}  // namespace

DdpmBaseline::DdpmBaseline(const core::Substrate& substrate, util::Rng& rng)
    : substrate_(&substrate),
      schedule_({substrate.budget.schedule_steps, 0.001f, 0.012f}),
      unet_(pixel_unet_config(substrate), rng) {}

void DdpmBaseline::fit(util::Rng& rng) {
    const int size = substrate_->budget.image_size;
    std::vector<tensor::Tensor> pixels;
    std::vector<tensor::Tensor> no_cond;
    pixels.reserve(substrate_->dataset->train().size());
    for (const scene::AerialSample& sample : substrate_->dataset->train()) {
        pixels.push_back(sample.image.to_tensor_chw());
        no_cond.emplace_back();
    }
    diffusion::DiffusionTrainConfig config;
    config.steps = substrate_->budget.diffusion_steps;
    config.batch_size =
        std::max(2, substrate_->budget.batch_size / 2);  // pixel space costs more
    config.condition_dropout = 1.0f;  // strictly unconditional
    const auto stats = diffusion::train_diffusion(unet_, schedule_, pixels,
                                                  no_cond, config, rng);
    util::log_info() << "DDPM: diffusion loss " << stats.first_loss << " -> "
                     << stats.tail_loss;
    (void)size;
}

image::Image DdpmBaseline::generate(const scene::AerialSample& reference,
                                    int index, util::Rng& rng) const {
    (void)reference;
    (void)index;
    const int size = substrate_->budget.image_size;
    const diffusion::DdpmSampler sampler(unet_, schedule_);
    const tensor::Tensor pixels =
        sampler.sample({3, size, size}, tensor::Tensor(), rng);
    return image::Image::from_tensor_chw(pixels);
}

std::vector<std::unique_ptr<SynthesisModel>> make_table1_models(
    const core::Substrate& substrate, util::Rng& rng) {
    std::vector<std::unique_ptr<SynthesisModel>> models;
    models.push_back(std::make_unique<DdpmBaseline>(substrate, rng));
    models.push_back(std::make_unique<PipelineModel>(
        core::PipelineConfig::stable_diffusion(), substrate, rng));
    models.push_back(std::make_unique<PipelineModel>(
        core::PipelineConfig::arldm(), substrate, rng));
    models.push_back(std::make_unique<PipelineModel>(
        core::PipelineConfig::versatile_diffusion(), substrate, rng));
    models.push_back(std::make_unique<PipelineModel>(
        core::PipelineConfig::make_a_scene(), substrate, rng));
    models.push_back(std::make_unique<PipelineModel>(
        core::PipelineConfig::aero_diffusion(), substrate, rng));
    return models;
}

}  // namespace aero::baselines
