#pragma once
// The five SOTA baselines of Table I behind a uniform interface.
// DDPM is a genuinely separate model (unconditional, pixel-space);
// the four conditional baselines are conditioning variants of the shared
// latent-diffusion substrate (see core::ModelVariant), mirroring how the
// paper's comparison isolates what information reaches the denoiser.

#include <memory>
#include <string>

#include "core/pipeline.hpp"

namespace aero::baselines {

/// A trainable image-synthesis model evaluated by the benchmark harness.
class SynthesisModel {
public:
    virtual ~SynthesisModel() = default;

    virtual const std::string& name() const = 0;
    /// Trains the model on the substrate's training split.
    virtual void fit(util::Rng& rng) = 0;
    /// Generates an image for the `index`-th test sample.
    virtual image::Image generate(const scene::AerialSample& reference,
                                  int index, util::Rng& rng) const = 0;
};

/// Adapter exposing a core pipeline (AeroDiffusion or a conditional
/// baseline variant) through the harness interface. Uses the test-split
/// caption of the model's captioner as both G and G'.
class PipelineModel : public SynthesisModel {
public:
    PipelineModel(const core::PipelineConfig& config,
                  const core::Substrate& substrate, util::Rng& rng);

    const std::string& name() const override { return pipeline_.name(); }
    void fit(util::Rng& rng) override;
    image::Image generate(const scene::AerialSample& reference, int index,
                          util::Rng& rng) const override;

    const core::AeroDiffusionPipeline& pipeline() const { return pipeline_; }

private:
    core::AeroDiffusionPipeline pipeline_;
};

/// Unconditional pixel-space DDPM (the probabilistic baseline): trains
/// an epsilon-UNet directly on RGB tensors and samples with full-length
/// ancestral DDPM.
class DdpmBaseline : public SynthesisModel {
public:
    DdpmBaseline(const core::Substrate& substrate, util::Rng& rng);

    const std::string& name() const override { return name_; }
    void fit(util::Rng& rng) override;
    image::Image generate(const scene::AerialSample& reference, int index,
                          util::Rng& rng) const override;

private:
    std::string name_ = "DDPM";
    const core::Substrate* substrate_;
    diffusion::NoiseSchedule schedule_;
    diffusion::UNet unet_;
};

/// All six Table-I models (five baselines + AeroDiffusion), ready to fit.
std::vector<std::unique_ptr<SynthesisModel>> make_table1_models(
    const core::Substrate& substrate, util::Rng& rng);

}  // namespace aero::baselines
