#pragma once
// AeroDiffusion end-to-end pipeline (the paper's contribution) and its
// conditioning variants, which double as the conditional baselines of
// Table I. A pipeline owns a UNet denoiser plus a trainable condition
// encoder; the frozen substrate (CLIP / autoencoder / detector) is
// shared across models so comparisons isolate the conditioning.

#include <functional>
#include <optional>

#include "core/condition.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/trainer.hpp"
#include "mem/cache.hpp"

namespace aero::core {

/// Conditioning recipe (see DESIGN.md, experiment index).
enum class ModelVariant {
    kAeroDiffusion,     ///< keypoint captions + BLIP fusion + f̂_X (ours)
    kStableDiffusion,   ///< generic captions, text-only conditioning
    kArldm,             ///< SD + BLIP fusion + autoregressive history token
    kVersatile,         ///< text-only, multi-flow (text/image) training
    kMakeAScene,        ///< text + scene-layout token
};

struct PipelineConfig {
    ModelVariant variant = ModelVariant::kAeroDiffusion;
    std::string name = "AeroDiffusion";

    bool use_keypoint_captions = true;  ///< ours vs generic BLIP captions
    /// Optional caption override (Table II trains the same architecture
    /// on captions from different simulated LLMs). Must stay alive for
    /// the pipeline's lifetime and align with the dataset splits.
    const std::vector<text::Caption>* custom_train_captions = nullptr;
    const std::vector<text::Caption>* custom_test_captions = nullptr;
    bool use_blip_fusion = true;        ///< include C_xg
    bool use_image_feature = true;      ///< include the f̂_X row at all
    bool use_object_detection = true;   ///< ROI-augment the f̂_X row
    int max_rois = 12;

    int unet_base_channels = 24;
    float lr = 2e-3f;
    float condition_dropout = 0.1f;
    /// Latent models default to v-prediction: it balances denoising
    /// information across timesteps so conditioning pays off under small
    /// budgets (deviation from the paper's Eq. 6 epsilon target,
    /// documented in DESIGN.md).
    diffusion::Parameterization parameterization =
        diffusion::Parameterization::kV;

    /// Global L2 gradient-norm clip applied every fit() step.
    float grad_clip = 5.0f;
    /// Divergence detection / rollback policy guarding fit().
    diffusion::SentinelConfig sentinel;
    /// When non-empty and `checkpoint_interval > 0`, fit() writes
    /// save_checkpoint(checkpoint_path, step) every interval steps; with
    /// `resume == true` it first restores that checkpoint (if present)
    /// and continues from the recorded step.
    std::string checkpoint_path;
    int checkpoint_interval = 0;
    bool resume = false;
    /// Test-only fault injection; same points as the trainer ("param",
    /// "grad", "loss", plus arm_spike on the loss).
    util::FaultInjector* fault_injector = nullptr;

    /// Ready-made configurations.
    static PipelineConfig aero_diffusion();
    static PipelineConfig stable_diffusion();
    static PipelineConfig arldm();
    static PipelineConfig versatile_diffusion();
    static PipelineConfig make_a_scene();
    /// Table IV ablation row: which components are enabled.
    static PipelineConfig ablation(bool with_blip, bool with_keypoint_llm,
                                   bool with_object_detection);
};

/// Per-call control block for the generate* entry points, used by the
/// serving layer. Inputs: a cancellation predicate polled between
/// denoising steps, a switch that forces the unconditional path (open
/// circuit breaker), and a fault injector for the "condition_encoder"
/// point. Outputs report what actually happened so the caller can type
/// the outcome instead of inspecting pixels.
struct GenerateControl {
    /// Polled between denoising steps; true abandons the run (the
    /// returned image is empty, never half-rendered).
    std::function<bool()> should_cancel;
    /// Skip the condition encoder entirely and sample unconditionally
    /// (marked degraded). Used while a circuit breaker is open.
    bool force_unconditional = false;
    /// Probabilistic "condition_encoder" faults (tests / soak benches).
    util::FaultInjector* fault_injector = nullptr;
    /// Degradation knobs driven by the serving overload ladder
    /// (serve/overload.hpp). `max_steps` caps the DDIM step count
    /// (0 = no cap); `half_resolution` samples a half-size latent and
    /// nearest-upsamples it back before decoding (generate() only —
    /// edit/inpaint anchor on the full-resolution source latent, so
    /// they honour the step cap alone). Both default off, keeping the
    /// control block bitwise-neutral for callers that never set them.
    int max_steps = 0;
    bool half_resolution = false;
    /// When non-null, the sampling loop is handed off to this executor
    /// as a diffusion::SamplerJob (the serve layer's continuous step
    /// batcher) instead of running inline. The executor receives the
    /// caller's Rng by pointer and draws from it in sequential order,
    /// so output is bitwise identical either way; null (the default)
    /// keeps the entry points a true no-op relative to the pre-batching
    /// code path.
    diffusion::SamplerExecutor* executor = nullptr;
    /// Skip the condition cache for this call. Circuit-breaker half-open
    /// probes must exercise the real encoder path — a cache hit would
    /// report the breaker healthy without testing the thing that broke.
    bool bypass_condition_cache = false;

    bool cancelled = false;  ///< run abandoned via should_cancel
    bool degraded = false;   ///< sampled unconditionally (fallback/forced)
    bool condition_cached = false;  ///< condition served from the LRU cache
    std::string error;       ///< non-empty when input validation rejected
};

class AeroDiffusionPipeline {
public:
    AeroDiffusionPipeline(const PipelineConfig& config,
                          const Substrate& substrate, util::Rng& rng);

    /// Trains the denoiser and condition encoder jointly (Eq. 6).
    diffusion::DiffusionTrainStats fit(util::Rng& rng);

    /// Synthesises an image conditioned on a reference sample (source of
    /// image features / ROIs), its source caption G_i, and the target
    /// caption G'_i (Table III changes G' to move the viewpoint).
    /// `sample_index` feeds variant-specific extras (ARLDM history).
    /// All generate* entry points validate the reference up front (see
    /// validate_reference) and return an empty image — with the reason
    /// in `control->error` when a control block is given — instead of
    /// propagating non-finite pixels into the encoders.
    image::Image generate(const scene::AerialSample& reference,
                          const std::string& source_caption,
                          const std::string& target_caption, util::Rng& rng,
                          int sample_index = -1,
                          GenerateControl* control = nullptr) const;

    /// SDEdit-style variant of generate(): anchors the synthesis on the
    /// reference image's latent, re-noised to `strength` * T, so low
    /// strengths preserve layout while the target caption steers the
    /// rest. Useful for "closer viewpoint" transitions (Table III).
    image::Image generate_edit(const scene::AerialSample& reference,
                               const std::string& source_caption,
                               const std::string& target_caption,
                               float strength, util::Rng& rng,
                               int sample_index = -1,
                               GenerateControl* control = nullptr) const;

    /// Regenerates only the given pixel-space region (RePaint-style
    /// latent inpainting); the rest of the reference is preserved.
    image::Image generate_inpaint(const scene::AerialSample& reference,
                                  const scene::BoundingBox& region,
                                  const std::string& source_caption,
                                  const std::string& target_caption,
                                  util::Rng& rng,
                                  int sample_index = -1,
                                  GenerateControl* control = nullptr) const;

    /// Validates a reference sample for the generate* entry points: the
    /// image must be present, match the substrate budget's dimensions,
    /// and contain only finite pixels. Fills `error` on failure.
    bool validate_reference(const scene::AerialSample& reference,
                            std::string* error) const;

    /// Clamps `region` into an image_size x image_size frame. Rejects
    /// (nullopt + `error`) non-finite coordinates, non-positive sizes,
    /// and regions entirely outside the image; partial overlaps are
    /// clamped to the intersection.
    static std::optional<scene::BoundingBox> clamp_region(
        const scene::BoundingBox& region, int image_size,
        std::string* error);

    /// The captions this model trains on (per its captioner choice).
    const std::vector<text::Caption>& train_captions() const;
    const std::vector<text::Caption>& test_captions() const;

    const std::string& name() const { return config_.name; }
    const PipelineConfig& config() const { return config_; }
    int parameter_count() const;

    /// Checkpoints the trained weights (denoiser + condition encoder) to
    /// `<path>.unet` / `<path>.cond`. The substrate is NOT included; a
    /// loaded pipeline must be constructed against the same substrate
    /// configuration.
    bool save(const std::string& path) const;
    /// Restores weights saved by save(); returns false on any mismatch.
    bool load(const std::string& path);

    /// save() plus a `<path>.meta.json` sidecar recording the checkpoint
    /// format version, pipeline name, and training step reached, so a
    /// later run can resume mid-training.
    bool save_checkpoint(const std::string& path, int step) const;
    /// Restores a save_checkpoint() snapshot. Rejects missing/malformed
    /// metadata and mismatched checkpoint formats; on success writes the
    /// recorded step into `*resume_step` (when non-null).
    bool load_checkpoint(const std::string& path, int* resume_step = nullptr);

    const ConditionEncoder& condition_encoder() const {
        return condition_encoder_;
    }

    /// Live entries in this pipeline's condition cache (stats / tests).
    /// The cache is consulted by every generate* call unless gated off
    /// (AERO_COND_CACHE=0) or bypassed per-call, and invalidated by
    /// load()/fit() — see DESIGN.md §17.
    int condition_cache_entries() const { return condition_cache_.entries(); }

    /// Read-only access to the denoiser and schedule for serve-side
    /// batching engines (serve::StepBatcher builds its
    /// diffusion::BatchedDdimScheduler over them). Safe to share across
    /// threads: inference never mutates model state.
    const diffusion::UNet& unet() const { return unet_; }
    const diffusion::NoiseSchedule& noise_schedule() const {
        return schedule_;
    }

private:
    ConditionFeatures features_for(const scene::AerialSample& sample,
                                   const std::string& caption,
                                   const std::string& target_caption,
                                   int sample_index, bool is_train) const;
    /// Variant-specific extra condition rows.
    Tensor extra_tokens(const scene::AerialSample& sample, int sample_index,
                        bool is_train) const;
    /// Encodes `features`, but degrades to the unconditional null token
    /// (empty tensor, logged) when the encoding is non-finite — so a
    /// corrupted encoder yields a plain sample instead of NaN images.
    Tensor checked_condition(const ConditionFeatures& features,
                             GenerateControl* control) const;

    /// The condition span shared by the generate* entry points: handles
    /// the forced-unconditional and injected-fault short-circuits, then
    /// consults the condition cache (unless gated off or bypassed), and
    /// only on a miss runs features_for + checked_condition. Finite,
    /// non-degraded encodings are inserted for the next identical call.
    Tensor condition_for(const scene::AerialSample& reference,
                         const std::string& source_caption,
                         const std::string& target_caption, int sample_index,
                         GenerateControl* control) const;

    /// Cache identity of a condition span: canonical captions
    /// (util::canonical_prompt — the same canonicalisation the serve
    /// router shards on) + a content hash of the reference scene
    /// (pixels, ground-truth boxes) + the sample index feeding
    /// variant-specific extra tokens.
    std::string condition_cache_key(const scene::AerialSample& reference,
                                    const std::string& source_caption,
                                    const std::string& target_caption,
                                    int sample_index) const;

    PipelineConfig config_;
    const Substrate* substrate_;
    diffusion::NoiseSchedule schedule_;
    diffusion::UNet unet_;
    ConditionEncoder condition_encoder_;
    std::vector<ConditionFeatures> train_features_;
    mutable mem::ConditionCache<Tensor> condition_cache_;
};

}  // namespace aero::core
