#include "core/config.hpp"

#include "util/env.hpp"

namespace aero::core {

Budget Budget::smoke() {
    Budget b;
    b.train_images = 10;
    b.test_images = 6;
    b.image_size = 32;
    b.ae_steps = 25;
    b.clip_steps = 25;
    b.detector_steps = 25;
    b.diffusion_steps = 30;
    b.batch_size = 4;
    b.schedule_steps = 16;
    b.ddim_steps = 4;
    b.eval_samples = 6;
    return b;
}

namespace {

/// Per-field environment overrides for experimentation, e.g.
/// AERO_DIFFUSION_STEPS=800 ./bench_table4_ablation.
Budget apply_env_overrides(Budget b) {
    b.train_images = util::env_int("AERO_TRAIN_IMAGES", b.train_images);
    b.test_images = util::env_int("AERO_TEST_IMAGES", b.test_images);
    b.ae_steps = util::env_int("AERO_AE_STEPS", b.ae_steps);
    b.clip_steps = util::env_int("AERO_CLIP_STEPS", b.clip_steps);
    b.detector_steps = util::env_int("AERO_DETECTOR_STEPS", b.detector_steps);
    b.diffusion_steps =
        util::env_int("AERO_DIFFUSION_STEPS", b.diffusion_steps);
    b.schedule_steps = util::env_int("AERO_SCHEDULE_STEPS", b.schedule_steps);
    b.ddim_steps = util::env_int("AERO_DDIM_STEPS", b.ddim_steps);
    b.guidance_scale = static_cast<float>(
        util::env_double("AERO_GUIDANCE", b.guidance_scale));
    b.eval_samples = util::env_int("AERO_EVAL_SAMPLES", b.eval_samples);
    return b;
}

}  // namespace

Budget Budget::from_scale() {
    switch (util::bench_scale()) {
        case 0: return apply_env_overrides(smoke());
        case 2: {
            Budget b;
            b.train_images = 256;
            b.test_images = 64;
            b.ae_steps = 500;
            b.clip_steps = 400;
            b.detector_steps = 500;
            b.diffusion_steps = 1200;
            b.batch_size = 8;
            b.schedule_steps = 128;
            b.ddim_steps = 20;
            b.eval_samples = 48;
            return apply_env_overrides(b);
        }
        default: return apply_env_overrides(Budget{});
    }
}

}  // namespace aero::core
