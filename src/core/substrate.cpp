#include "core/substrate.hpp"

#include "obs/clock.hpp"
#include "tensor/ops.hpp"
#include "util/log.hpp"

namespace aero::core {

std::vector<text::Caption> caption_split(
    const std::vector<scene::AerialSample>& samples,
    const text::SimulatedLlm& llm, const text::PromptTemplate& prompt,
    util::Rng& rng) {
    std::vector<text::Caption> captions;
    captions.reserve(samples.size());
    for (const scene::AerialSample& sample : samples) {
        captions.push_back(llm.describe(sample.scene, prompt, rng));
    }
    return captions;
}

Substrate build_substrate(const scene::AerialDataset& dataset,
                          const Budget& budget, util::Rng& rng) {
    obs::Stopwatch timer;
    Substrate substrate;
    substrate.dataset = &dataset;
    substrate.budget = budget;
    substrate.embed_config.image_size = budget.image_size;

    // 1. The paired text-aerial dataset: keypoint-aware captions (Eq. 1)
    //    plus the generic baseline captions.
    {
        util::Rng caption_rng = rng.fork(1);
        const auto keypoint_llm = text::SimulatedLlm::keypoint_aware();
        const auto keypoint_prompt = text::PromptTemplate::keypoint_aware();
        substrate.keypoint_train = caption_split(
            dataset.train(), keypoint_llm, keypoint_prompt, caption_rng);
        substrate.keypoint_test = caption_split(
            dataset.test(), keypoint_llm, keypoint_prompt, caption_rng);
        const auto generic_llm = text::SimulatedLlm::blip_captioner();
        const auto generic_prompt = text::PromptTemplate::traditional();
        substrate.generic_train = caption_split(
            dataset.train(), generic_llm, generic_prompt, caption_rng);
        substrate.generic_test = caption_split(
            dataset.test(), generic_llm, generic_prompt, caption_rng);
    }

    std::vector<image::Image> train_images;
    std::vector<std::string> train_caption_texts;
    train_images.reserve(dataset.train().size());
    for (std::size_t i = 0; i < dataset.train().size(); ++i) {
        train_images.push_back(dataset.train()[i].image);
        train_caption_texts.push_back(substrate.keypoint_train[i].text);
    }

    // 2. CLIP on the keypoint-aware pairs.
    {
        util::Rng clip_rng = rng.fork(2);
        substrate.clip = std::make_unique<embed::ClipModel>(
            substrate.embed_config, clip_rng);
        embed::ClipTrainConfig config;
        config.steps = budget.clip_steps;
        config.batch_size = budget.batch_size;
        const auto stats = embed::train_clip(*substrate.clip, train_images,
                                             train_caption_texts, config,
                                             clip_rng);
        util::log_info() << "substrate: CLIP loss " << stats.first_loss
                         << " -> " << stats.final_loss;
    }

    // 3. Detector (the YOLO stand-in) on GT annotations.
    {
        util::Rng det_rng = rng.fork(3);
        detect::DetectorConfig config;
        config.image_size = budget.image_size;
        config.grid = budget.image_size / 4;
        substrate.detector =
            std::make_unique<detect::GridDetector>(config, det_rng);
        detect::DetectorTrainConfig train_config;
        train_config.steps = budget.detector_steps;
        train_config.batch_size = budget.batch_size;
        const auto stats = detect::train_detector(
            *substrate.detector, dataset.train(), train_config, det_rng);
        util::log_info() << "substrate: detector loss " << stats.first_loss
                         << " -> " << stats.final_loss;
    }

    // 4. Latent autoencoder on train images.
    {
        util::Rng ae_rng = rng.fork(4);
        diffusion::AutoencoderConfig config;
        config.image_size = budget.image_size;
        substrate.autoencoder =
            std::make_unique<diffusion::LatentAutoencoder>(config, ae_rng);
        diffusion::AutoencoderTrainConfig train_config;
        train_config.steps = budget.ae_steps;
        train_config.batch_size = budget.batch_size;
        const auto stats = diffusion::train_autoencoder(
            *substrate.autoencoder, train_images, train_config, ae_rng);
        substrate.latent_scale = stats.latent_scale;
        util::log_info() << "substrate: AE loss " << stats.first_loss
                         << " -> " << stats.final_loss << ", latent scale "
                         << stats.latent_scale;
    }

    // 5. Normalised latents for diffusion training.
    substrate.train_latents.reserve(dataset.train().size());
    for (const scene::AerialSample& sample : dataset.train()) {
        substrate.train_latents.push_back(tensor::scale(
            substrate.autoencoder->encode_image(sample.image),
            substrate.latent_scale));
    }

    // 6. Fixed evaluation features.
    metrics::FeatureNetConfig fn_config;
    fn_config.image_size = budget.image_size;
    substrate.feature_net = std::make_unique<metrics::FeatureNet>(fn_config);

    util::log_info() << "substrate built in " << timer.seconds() << "s";
    return substrate;
}

}  // namespace aero::core
