#pragma once
// The feature-augmented condition network (Sec. IV-C-2).
//
// Per sample we cache the frozen-encoder outputs (`ConditionFeatures`);
// the trainable `ConditionEncoder` (BLIP fusion + region augmenter)
// turns them into the condition token matrix C = [C_xg ; C_g ; f̂_X]
// (Eq. 5) -- optionally extended with variant-specific rows used by the
// baselines (ARLDM history, Make-a-Scene layout).

#include "core/substrate.hpp"
#include "embed/fusion.hpp"

namespace aero::core {

using autograd::Var;
using tensor::Tensor;

/// Frozen-encoder features for one (sample, caption, target) triple.
struct ConditionFeatures {
    Tensor image_tokens;      ///< [Ti, d] CLIP image-tower tokens of X_i
    Tensor text_tokens;       ///< [Tt, d] CLIP text-tower tokens of G_i
    Tensor clip_text;         ///< [1, d] pooled CLIP embedding of G'_i
    Tensor clip_image;        ///< [1, d] pooled CLIP embedding of X_i
    Tensor global_feature;    ///< [1, d] f_X
    Tensor roi_features;      ///< [R, d] detector ROI features (may be empty)
    Tensor label_embeddings;  ///< [R, d] ROI label-text embeddings
    Tensor extra_tokens;      ///< [E, d] variant-specific rows (may be empty)
};

/// Computes the cached features. `target_caption` is G'_i (equal to the
/// source caption during training); detection runs only when `use_od`.
ConditionFeatures compute_condition_features(const Substrate& substrate,
                                             const scene::AerialSample& sample,
                                             const std::string& caption,
                                             const std::string& target_caption,
                                             bool use_object_detection,
                                             int max_rois);

/// Trainable condition head: assembles C from cached features.
class ConditionEncoder : public nn::Module {
public:
    /// `use_image_feature` gates the f̂_X row entirely (text-only
    /// baselines like plain Stable Diffusion set it false);
    /// `use_region_augment` upgrades that row from a plain projection of
    /// f_X to the ROI-augmented f̂_X of Eq. 2-3.
    ConditionEncoder(const embed::EmbedConfig& config, bool use_blip_fusion,
                     bool use_image_feature, bool use_region_augment,
                     util::Rng& rng);

    /// Condition token matrix [K, d] as a live graph node.
    Var encode(const ConditionFeatures& features) const;

    bool use_blip_fusion() const { return use_blip_fusion_; }
    bool use_image_feature() const { return use_image_feature_; }
    bool use_region_augment() const { return use_region_augment_; }

private:
    bool use_blip_fusion_;
    bool use_image_feature_;
    bool use_region_augment_;
    embed::BlipFusion blip_;
    embed::RegionFeatureAugmenter augmenter_;
};

}  // namespace aero::core
