#pragma once
// Shared pretrained substrate for all generative models in a benchmark:
// the latent autoencoder, the CLIP dual encoder, the trained detector,
// the evaluation FeatureNet and the caption sets. Holding these fixed
// across models mirrors the paper's setup (every baseline fine-tunes on
// the same pretrained encoders) and lets differences isolate the
// conditioning -- the quantity the paper's comparison actually varies.

#include <memory>

#include "core/config.hpp"
#include "detect/detector.hpp"
#include "diffusion/autoencoder.hpp"
#include "embed/clip.hpp"
#include "metrics/feature_net.hpp"
#include "scene/dataset.hpp"
#include "text/llm.hpp"

namespace aero::core {

struct Substrate {
    const scene::AerialDataset* dataset = nullptr;
    Budget budget;

    embed::EmbedConfig embed_config;
    std::unique_ptr<embed::ClipModel> clip;
    std::unique_ptr<diffusion::LatentAutoencoder> autoencoder;
    float latent_scale = 1.0f;
    std::unique_ptr<detect::GridDetector> detector;
    std::unique_ptr<metrics::FeatureNet> feature_net;

    /// Keypoint-aware captions (ours), aligned with dataset splits.
    std::vector<text::Caption> keypoint_train;
    std::vector<text::Caption> keypoint_test;
    /// Generic captions from the simulated BLIP captioner (baselines).
    std::vector<text::Caption> generic_train;
    std::vector<text::Caption> generic_test;

    /// Pre-encoded, scale-normalised training latents [C, s, s].
    std::vector<tensor::Tensor> train_latents;

    Substrate() = default;
    Substrate(const Substrate&) = delete;
    Substrate& operator=(const Substrate&) = delete;
    Substrate(Substrate&&) = default;
    Substrate& operator=(Substrate&&) = default;
};

/// Builds and trains the full substrate: captions both ways, CLIP on the
/// keypoint-aware pairs, detector on GT boxes, autoencoder on the train
/// images, then caches normalised latents.
Substrate build_substrate(const scene::AerialDataset& dataset,
                          const Budget& budget, util::Rng& rng);

/// Captions a split with the given simulated LLM and prompt template.
std::vector<text::Caption> caption_split(
    const std::vector<scene::AerialSample>& samples,
    const text::SimulatedLlm& llm, const text::PromptTemplate& prompt,
    util::Rng& rng);

}  // namespace aero::core
