#include "core/pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "nn/ema.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace aero::core {

namespace ag = aero::autograd;

PipelineConfig PipelineConfig::aero_diffusion() { return PipelineConfig{}; }

PipelineConfig PipelineConfig::stable_diffusion() {
    PipelineConfig config;
    config.variant = ModelVariant::kStableDiffusion;
    config.name = "Stable Diffusion";
    config.use_keypoint_captions = false;
    config.use_blip_fusion = true;  // Table I SD == ablation row 2 (+BLIP)
    config.use_image_feature = false;
    config.use_object_detection = false;
    return config;
}

PipelineConfig PipelineConfig::arldm() {
    PipelineConfig config;
    config.variant = ModelVariant::kArldm;
    config.name = "ARLDM";
    config.use_keypoint_captions = false;
    config.use_blip_fusion = true;
    config.use_image_feature = false;
    config.use_object_detection = false;
    return config;
}

PipelineConfig PipelineConfig::versatile_diffusion() {
    PipelineConfig config;
    config.variant = ModelVariant::kVersatile;
    config.name = "Versatile Diffusion";
    config.use_keypoint_captions = false;
    config.use_blip_fusion = false;
    config.use_image_feature = false;
    config.use_object_detection = false;
    return config;
}

PipelineConfig PipelineConfig::make_a_scene() {
    PipelineConfig config;
    config.variant = ModelVariant::kMakeAScene;
    config.name = "Make-a-Scene";
    config.use_keypoint_captions = false;
    config.use_blip_fusion = false;
    config.use_image_feature = false;
    config.use_object_detection = false;
    return config;
}

PipelineConfig PipelineConfig::ablation(bool with_blip,
                                        bool with_keypoint_llm,
                                        bool with_object_detection) {
    PipelineConfig config;
    config.variant = ModelVariant::kAeroDiffusion;
    config.use_blip_fusion = with_blip;
    config.use_keypoint_captions = with_keypoint_llm;
    config.use_object_detection = with_object_detection;
    // The f̂_X row only enters once object detection enables it, matching
    // the ablation's "OD" column; earlier rows are text(+fusion)-only.
    config.use_image_feature = with_object_detection;
    config.name = "ablation";
    return config;
}

namespace {

diffusion::UNetConfig unet_config_for(const PipelineConfig& config,
                                      const Substrate& substrate) {
    diffusion::UNetConfig unet;
    unet.in_channels = substrate.autoencoder->config().latent_channels;
    unet.base_channels = config.unet_base_channels;
    unet.cond_dim = substrate.embed_config.dim;
    unet.time_dim = 32;
    return unet;
}

/// Deterministic random projection used for Make-a-Scene layout tokens.
tensor::Tensor layout_projection(int rows, int cols) {
    util::Rng rng(0x5ce9e);
    return tensor::Tensor::randn({rows, cols}, rng, 0.0f, 0.5f);
}

}  // namespace

AeroDiffusionPipeline::AeroDiffusionPipeline(const PipelineConfig& config,
                                             const Substrate& substrate,
                                             util::Rng& rng)
    : config_(config),
      substrate_(&substrate),
      schedule_({substrate.budget.schedule_steps, 0.001f, 0.012f}),
      unet_(unet_config_for(config, substrate), rng),
      condition_encoder_(substrate.embed_config, config.use_blip_fusion,
                         config.use_image_feature,
                         config.use_object_detection, rng) {}

const std::vector<text::Caption>& AeroDiffusionPipeline::train_captions()
    const {
    if (config_.custom_train_captions) return *config_.custom_train_captions;
    return config_.use_keypoint_captions ? substrate_->keypoint_train
                                         : substrate_->generic_train;
}

const std::vector<text::Caption>& AeroDiffusionPipeline::test_captions()
    const {
    if (config_.custom_test_captions) return *config_.custom_test_captions;
    return config_.use_keypoint_captions ? substrate_->keypoint_test
                                         : substrate_->generic_test;
}

int AeroDiffusionPipeline::parameter_count() const {
    return unet_.parameter_count() + condition_encoder_.parameter_count();
}

bool AeroDiffusionPipeline::save(const std::string& path) const {
    return nn::save_parameters(unet_, path + ".unet") &&
           nn::save_parameters(condition_encoder_, path + ".cond");
}

bool AeroDiffusionPipeline::load(const std::string& path) {
    const bool ok = nn::load_parameters(unet_, path + ".unet") &&
                    nn::load_parameters(condition_encoder_, path + ".cond");
    // New encoder weights make every cached condition stale.
    if (ok) condition_cache_.invalidate_all();
    return ok;
}

bool AeroDiffusionPipeline::save_checkpoint(const std::string& path,
                                            int step) const {
    if (!save(path)) return false;
    util::JsonValue meta = util::JsonValue::object();
    meta.set("format", static_cast<int>(nn::kCheckpointVersion));
    meta.set("name", config_.name);
    meta.set("step", step);
    return meta.write_file(path + ".meta.json");
}

bool AeroDiffusionPipeline::load_checkpoint(const std::string& path,
                                            int* resume_step) {
    const std::string meta_path = path + ".meta.json";
    util::JsonValue meta;
    std::string error;
    if (!util::json_parse_file(meta_path, &meta, &error)) {
        util::log_warn() << "checkpoint " << meta_path
                         << " rejected: " << error;
        return false;
    }
    const util::JsonValue* format = meta.find("format");
    if (!format ||
        format->as_number(-1.0) != static_cast<double>(nn::kCheckpointVersion)) {
        util::log_warn() << "checkpoint " << meta_path
                         << " rejected: unsupported format (want v"
                         << nn::kCheckpointVersion << ")";
        return false;
    }
    if (!load(path)) return false;
    if (resume_step) {
        const util::JsonValue* step = meta.find("step");
        *resume_step = step ? static_cast<int>(step->as_number(0.0)) : 0;
    }
    return true;
}

Tensor AeroDiffusionPipeline::extra_tokens(const scene::AerialSample& sample,
                                           int sample_index,
                                           bool is_train) const {
    switch (config_.variant) {
        case ModelVariant::kArldm: {
            // Autoregressive "story history": the CLIP image embedding of
            // the previous sample in the split.
            const auto& split = is_train ? substrate_->dataset->train()
                                         : substrate_->dataset->test();
            if (split.empty()) return Tensor();
            const int prev =
                sample_index <= 0 ? static_cast<int>(split.size()) - 1
                                  : sample_index - 1;
            return substrate_->clip->embed_image_eval(
                split[static_cast<std::size_t>(prev)].image);
        }
        case ModelVariant::kMakeAScene: {
            // Coarse 4x4 layout occupancy from the scene annotation,
            // projected into the condition space.
            const int grid = 4;
            Tensor occupancy({1, grid * grid});
            const float size =
                static_cast<float>(substrate_->budget.image_size);
            for (const scene::BoundingBox& box : sample.gt_boxes) {
                const int gx = std::clamp(
                    static_cast<int>(box.cx() / size * grid), 0, grid - 1);
                const int gy = std::clamp(
                    static_cast<int>(box.cy() / size * grid), 0, grid - 1);
                occupancy[gy * grid + gx] += 0.1f;
            }
            // occupancy [1,16] x projection [16, d]
            const Tensor projection =
                layout_projection(grid * grid, substrate_->embed_config.dim);
            return tensor::matmul(occupancy, projection);
        }
        default: return Tensor();
    }
}

ConditionFeatures AeroDiffusionPipeline::features_for(
    const scene::AerialSample& sample, const std::string& caption,
    const std::string& target_caption, int sample_index,
    bool is_train) const {
    ConditionFeatures features = compute_condition_features(
        *substrate_, sample, caption, target_caption,
        config_.use_object_detection, config_.max_rois);
    features.extra_tokens = extra_tokens(sample, sample_index, is_train);
    return features;
}

diffusion::DiffusionTrainStats AeroDiffusionPipeline::fit(util::Rng& rng) {
    // Training mutates the encoder from the first step on; drop cached
    // conditions now and again once the final (EMA-applied) weights land.
    condition_cache_.invalidate_all();
    const auto& train_split = substrate_->dataset->train();
    const auto& captions = train_captions();
    assert(train_split.size() == captions.size());
    assert(train_split.size() == substrate_->train_latents.size());

    // Cache frozen-encoder features per training sample (G' == G during
    // training: the model learns to reconstruct the described scene).
    train_features_.clear();
    train_features_.reserve(train_split.size());
    for (std::size_t i = 0; i < train_split.size(); ++i) {
        train_features_.push_back(features_for(train_split[i],
                                               captions[i].text,
                                               captions[i].text,
                                               static_cast<int>(i), true));
    }

    // Joint optimisation of theta (UNet) and the condition parameters.
    std::vector<Var> params = unet_.parameters();
    {
        const std::vector<Var> cond_params = condition_encoder_.parameters();
        params.insert(params.end(), cond_params.begin(), cond_params.end());
    }
    nn::Adam opt(params, {.lr = config_.lr, .weight_decay = 1e-5f});

    int start_step = 0;
    if (config_.resume && !config_.checkpoint_path.empty() &&
        load_checkpoint(config_.checkpoint_path, &start_step)) {
        util::log_info() << config_.name << ": resumed from checkpoint at step "
                         << start_step;
    }
    // Built AFTER any resume load so the EMA shadow and the sentinel's
    // good-state snapshot both start from the restored weights.
    nn::Ema ema(params, /*decay=*/0.99f);
    diffusion::DivergenceSentinel sentinel(params, opt, config_.sentinel);
    util::FaultInjector* injector = config_.fault_injector;

    const Budget& budget = substrate_->budget;
    const std::vector<int>& latent_shape =
        substrate_->train_latents.front().shape();
    const int c = latent_shape[0];
    const int h = latent_shape[1];
    const int w = latent_shape[2];
    const int batch = std::min<int>(budget.batch_size,
                                    static_cast<int>(train_split.size()));

    diffusion::DiffusionTrainStats stats;
    double tail_sum = 0.0;
    int tail_count = 0;
    bool first_recorded = false;
    for (int step = start_step; step < budget.diffusion_steps; ++step) {
        diffusion::inject_param_fault(injector, step, params);

        std::vector<Tensor> noisy;
        std::vector<Tensor> noise;
        std::vector<int> timesteps;
        std::vector<Var> conds;
        for (int b = 0; b < batch; ++b) {
            const int i = rng.uniform_int(
                0, static_cast<int>(train_split.size()) - 1);
            const int t = rng.uniform_int(0, schedule_.steps() - 1);
            const Tensor eps = Tensor::randn(latent_shape, rng);
            const Tensor& z0 =
                substrate_->train_latents[static_cast<std::size_t>(i)];
            noisy.push_back(
                schedule_.q_sample(z0, t, eps).reshaped({1, c, h, w}));
            noise.push_back(schedule_.training_target(
                z0, eps, t, config_.parameterization));
            timesteps.push_back(t);

            if (rng.bernoulli(config_.condition_dropout)) {
                conds.emplace_back();  // null token (CFG dropout)
                continue;
            }
            ConditionFeatures features =
                train_features_[static_cast<std::size_t>(i)];
            if (config_.variant == ModelVariant::kVersatile &&
                rng.bernoulli(0.5)) {
                // Multi-flow training: the text slot sometimes carries the
                // image embedding instead (Versatile's shared core).
                features.clip_text = features.clip_image;
            }
            conds.push_back(condition_encoder_.encode(features));
        }

        const Var z_t = Var::constant(tensor::concat(noisy, 0));
        const Var target = Var::constant(
            tensor::concat(noise, 0).reshaped({batch, c, h, w}));

        opt.zero_grad();
        const Var eps_pred =
            unet_.forward(z_t, timesteps, schedule_.steps(), conds);
        const Var loss = ag::mse_loss(eps_pred, target);  // Eq. 6
        loss.backward();
        diffusion::inject_grad_fault(injector, step, params);
        const float grad_norm = opt.clip_grad_norm(config_.grad_clip);
        const float value =
            diffusion::inject_loss_fault(injector, step, loss.value()[0]);

        // The sentinel rules before the update lands: a poisoned or
        // spiking step is rolled back (joint UNet + condition-encoder
        // state) instead of applied.
        const auto action = sentinel.observe(step, value, grad_norm);
        if (action == diffusion::DivergenceSentinel::Action::kAbort) break;
        if (action == diffusion::DivergenceSentinel::Action::kRollback) {
            continue;
        }

        opt.step();
        ema.update();

        if (!first_recorded) {
            stats.first_loss = value;
            first_recorded = true;
        }
        stats.final_loss = value;
        if (step >= budget.diffusion_steps * 3 / 4) {
            tail_sum += value;
            ++tail_count;
        }

        if (!config_.checkpoint_path.empty() &&
            config_.checkpoint_interval > 0 &&
            (step + 1) % config_.checkpoint_interval == 0) {
            if (!save_checkpoint(config_.checkpoint_path, step + 1)) {
                util::log_warn()
                    << config_.name << ": periodic checkpoint at step "
                    << (step + 1) << " failed to write "
                    << config_.checkpoint_path << "; training continues";
            }
        }
    }
    if (tail_count > 0) {
        stats.tail_loss = static_cast<float>(tail_sum / tail_count);
    }
    stats.nan_events = sentinel.nan_events();
    stats.rollbacks = sentinel.rollbacks();
    stats.diverged = sentinel.diverged();
    if (!stats.diverged) ema.apply();  // sample from the averaged weights
    condition_cache_.invalidate_all();
    util::log_info() << config_.name << ": diffusion loss "
                     << stats.first_loss << " -> " << stats.tail_loss;
    return stats;
}

namespace {

diffusion::DdimConfig ddim_config_for(const PipelineConfig& config,
                                      const Budget& budget,
                                      const GenerateControl* control) {
    diffusion::DdimConfig ddim_config;
    ddim_config.inference_steps = budget.ddim_steps;
    // Overload-ladder step cap (reduced-steps rung and below): fewer
    // denoising steps trade sample quality for latency under load.
    if (control != nullptr && control->max_steps > 0) {
        ddim_config.inference_steps =
            std::min(ddim_config.inference_steps, control->max_steps);
    }
    ddim_config.guidance_scale = budget.guidance_scale;
    ddim_config.parameterization = config.parameterization;
    return ddim_config;
}

}  // namespace

bool AeroDiffusionPipeline::validate_reference(
    const scene::AerialSample& reference, std::string* error) const {
    const image::Image& img = reference.image;
    if (img.empty()) {
        if (error) *error = "reference image is empty";
        return false;
    }
    const int size = substrate_->budget.image_size;
    if (img.width() != size || img.height() != size) {
        if (error) {
            *error = "reference image is " + std::to_string(img.width()) +
                     "x" + std::to_string(img.height()) + ", expected " +
                     std::to_string(size) + "x" + std::to_string(size);
        }
        return false;
    }
    for (const float v : img.data()) {
        if (!std::isfinite(v)) {
            if (error) *error = "reference image contains non-finite pixels";
            return false;
        }
    }
    return true;
}

std::optional<scene::BoundingBox> AeroDiffusionPipeline::clamp_region(
    const scene::BoundingBox& region, int image_size, std::string* error) {
    if (!std::isfinite(region.x) || !std::isfinite(region.y) ||
        !std::isfinite(region.w) || !std::isfinite(region.h)) {
        if (error) *error = "region has non-finite coordinates";
        return std::nullopt;
    }
    if (region.w <= 0.0f || region.h <= 0.0f) {
        if (error) *error = "region has non-positive size";
        return std::nullopt;
    }
    const float s = static_cast<float>(image_size);
    const float x0 = std::max(region.x, 0.0f);
    const float y0 = std::max(region.y, 0.0f);
    const float x1 = std::min(region.x + region.w, s);
    const float y1 = std::min(region.y + region.h, s);
    if (x0 >= x1 || y0 >= y1) {
        if (error) *error = "region lies entirely outside the image";
        return std::nullopt;
    }
    scene::BoundingBox clamped = region;
    clamped.x = x0;
    clamped.y = y0;
    clamped.w = x1 - x0;
    clamped.h = y1 - y0;
    return clamped;
}

Tensor AeroDiffusionPipeline::checked_condition(
    const ConditionFeatures& features, GenerateControl* control) const {
    Tensor cond = condition_encoder_.encode(features).value();
    for (const float v : cond) {
        if (!std::isfinite(v)) {
            util::log_warn() << config_.name
                             << ": non-finite condition encoding; degrading "
                                "to unconditional sampling";
            if (control) control->degraded = true;
            return Tensor();
        }
    }
    return cond;
}

std::string AeroDiffusionPipeline::condition_cache_key(
    const scene::AerialSample& reference, const std::string& source_caption,
    const std::string& target_caption, int sample_index) const {
    // Canonical captions are semantically lossless for the encoders: the
    // vocabulary lowercases and splits on whitespace, so canonical twins
    // tokenise — and therefore encode — identically.
    std::string key;
    key.reserve(source_caption.size() + target_caption.size() + 24);
    util::append_canonical_prompt(key, source_caption);
    key += '|';
    util::append_canonical_prompt(key, target_caption);
    key += '|';
    // Scene identity: content-hash the reference pixels and annotation
    // (ROIs and extra tokens derive from them), chaining one fnv1a64.
    const std::vector<float>& pixels = reference.image.data();
    const int dims[2] = {reference.image.width(), reference.image.height()};
    std::uint64_t hash = util::fnv1a64(dims, sizeof(dims));
    hash = util::fnv1a64(pixels.data(), pixels.size() * sizeof(float), hash);
    for (const scene::BoundingBox& box : reference.gt_boxes) {
        const float fields[5] = {box.x, box.y, box.w, box.h, box.score};
        hash = util::fnv1a64(fields, sizeof(fields), hash);
        const int cls = static_cast<int>(box.cls);
        hash = util::fnv1a64(&cls, sizeof(cls), hash);
    }
    // sample_index feeds variant-specific extra tokens (ARLDM history).
    hash = util::fnv1a64(&sample_index, sizeof(sample_index), hash);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    key += hex;
    return key;
}

Tensor AeroDiffusionPipeline::condition_for(
    const scene::AerialSample& reference, const std::string& source_caption,
    const std::string& target_caption, int sample_index,
    GenerateControl* control) const {
    // Forced-unconditional and injected-fault short-circuits come first
    // and never touch the cache: a degraded call must behave identically
    // with caching on or off, and the injector must be drawn exactly
    // once per call.
    if (control && control->force_unconditional) {
        control->degraded = true;
        return Tensor();
    }
    util::FaultInjector* injector =
        control ? control->fault_injector : nullptr;
    if (injector && injector->should_fail("condition_encoder")) {
        util::log_warn() << config_.name
                         << ": injected condition-encoder fault; degrading "
                            "to unconditional sampling";
        control->degraded = true;
        return Tensor();
    }
    const bool use_cache =
        mem::cond_cache_enabled() &&
        !(control && control->bypass_condition_cache);
    std::string key;
    if (use_cache) {
        key = condition_cache_key(reference, source_caption, target_caption,
                                  sample_index);
        Tensor cached;
        if (condition_cache_.lookup(key, &cached)) {
            // The encoders are deterministic (determinism lint dirs
            // cover this layer), so the hit is bitwise identical to a
            // recompute — the caller's Rng is untouched either way.
            if (control) control->condition_cached = true;
            return cached;
        }
    }
    const ConditionFeatures features = features_for(
        reference, source_caption, target_caption, sample_index, false);
    Tensor cond = checked_condition(features, control);
    if (use_cache && !cond.empty()) {
        // Only finite, non-degraded encodings are cacheable; byte cost
        // is the value payload plus the key.
        condition_cache_.insert(
            key, cond,
            static_cast<long long>(cond.size()) *
                    static_cast<long long>(sizeof(float)) +
                static_cast<long long>(key.size()));
    }
    return cond;
}

namespace {

/// Rejection path shared by the generate* entry points.
image::Image rejected(const std::string& name, const std::string& what,
                      const std::string& error, GenerateControl* control) {
    util::log_error() << name << ": " << what << " rejected: " << error;
    if (control) control->error = error;
    return image::Image();
}

/// Per-stage latency histograms, resolved once; the spans below feed
/// them and attach to whatever obs::Trace the caller (a serve worker)
/// has active.
struct StageMetrics {
    obs::Histogram* condition;
    obs::Histogram* sample;
    obs::Histogram* decode;
};

/// Hands the sampling loop to the control's executor (the serve-side
/// continuous step batcher) when one is installed; otherwise runs the
/// job inline on a batch-of-one scheduler — the exact pre-batching code
/// path, so a null executor is a true no-op.
tensor::Tensor dispatch_job(const diffusion::UNet& unet,
                            const diffusion::NoiseSchedule& schedule,
                            GenerateControl* control,
                            diffusion::SamplerJob job) {
    if (control != nullptr && control->executor != nullptr) {
        return control->executor->execute(std::move(job));
    }
    return diffusion::run_sampler_job(unet, schedule, std::move(job));
}

const StageMetrics& stage_metrics() {
    static const StageMetrics metrics = [] {
        obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
        StageMetrics m;
        m.condition = &reg.histogram("aero_pipeline_condition_ms",
                                     "condition encode stage, ms",
                                     obs::default_ms_buckets());
        m.sample = &reg.histogram("aero_pipeline_sample_ms",
                                  "DDIM sampling loop, ms",
                                  obs::default_ms_buckets());
        m.decode = &reg.histogram("aero_pipeline_decode_ms",
                                  "latent -> image decode, ms",
                                  obs::default_ms_buckets());
        return m;
    }();
    return metrics;
}

}  // namespace

image::Image AeroDiffusionPipeline::generate(
    const scene::AerialSample& reference, const std::string& source_caption,
    const std::string& target_caption, util::Rng& rng, int sample_index,
    GenerateControl* control) const {
    std::string error;
    if (!validate_reference(reference, &error)) {
        return rejected(config_.name, "generate", error, control);
    }
    Tensor cond;
    {
        const obs::Span span("condition", stage_metrics().condition);
        cond = condition_for(reference, source_caption, target_caption,
                             sample_index, control);
    }

    diffusion::DdimConfig ddim =
        ddim_config_for(config_, substrate_->budget, control);
    if (control) ddim.should_cancel = control->should_cancel;
    const auto& ae_config = substrate_->autoencoder->config();
    const int s = ae_config.latent_size();
    // Overload-ladder reduced-resolution rung: sample a half-size
    // latent and nearest-upsample it back to the decoder's fixed input
    // size — quarter the per-step UNet cost for a softer image. Only
    // when the halved grid still divides cleanly through the UNet's
    // two-resolution trunk.
    const bool half = control != nullptr && control->half_resolution &&
                      s >= 4 && s % 2 == 0;
    const int sample_s = half ? s / 2 : s;
    Tensor latent;
    {
        const obs::Span span("sample", stage_metrics().sample);
        diffusion::SamplerJob job;
        job.kind = diffusion::SamplerJob::Kind::kSample;
        job.shape = {ae_config.latent_channels, sample_s, sample_s};
        job.condition_tokens = cond;
        job.config = ddim;
        job.rng = &rng;
        latent = dispatch_job(unet_, schedule_, control, std::move(job));
    }
    if (latent.empty()) {  // cancelled between denoising steps
        if (control) control->cancelled = true;
        return image::Image();
    }
    if (half) {
        latent = tensor::upsample_nearest2x(
                     latent.reshaped({1, ae_config.latent_channels,
                                      sample_s, sample_s}))
                     .reshaped({ae_config.latent_channels, s, s});
    }
    const obs::Span span("decode", stage_metrics().decode);
    // Undo the latent normalisation before decoding.
    latent = tensor::scale(latent, 1.0f / substrate_->latent_scale);
    return substrate_->autoencoder->decode_latent(latent);
}

image::Image AeroDiffusionPipeline::generate_edit(
    const scene::AerialSample& reference, const std::string& source_caption,
    const std::string& target_caption, float strength, util::Rng& rng,
    int sample_index, GenerateControl* control) const {
    std::string error;
    if (!validate_reference(reference, &error)) {
        return rejected(config_.name, "generate_edit", error, control);
    }
    // A NaN strength would sail through the sampler's std::clamp into a
    // size_t start-index cast (UB); reject it here like any other
    // malformed input, before touching the encoders.
    if (!std::isfinite(strength)) {
        return rejected(config_.name, "generate_edit",
                        "edit strength must be finite", control);
    }
    Tensor cond;
    {
        const obs::Span span("condition", stage_metrics().condition);
        cond = condition_for(reference, source_caption, target_caption,
                             sample_index, control);
    }

    diffusion::DdimConfig ddim =
        ddim_config_for(config_, substrate_->budget, control);
    if (control) ddim.should_cancel = control->should_cancel;
    Tensor latent;
    {
        const obs::Span span("sample", stage_metrics().sample);
        diffusion::SamplerJob job;
        job.kind = diffusion::SamplerJob::Kind::kEdit;
        job.source = tensor::scale(
            substrate_->autoencoder->encode_image(reference.image),
            substrate_->latent_scale);
        job.strength = strength;
        job.condition_tokens = cond;
        job.config = ddim;
        job.rng = &rng;
        latent = dispatch_job(unet_, schedule_, control, std::move(job));
    }
    if (latent.empty()) {
        if (control) control->cancelled = true;
        return image::Image();
    }
    const obs::Span span("decode", stage_metrics().decode);
    latent = tensor::scale(latent, 1.0f / substrate_->latent_scale);
    return substrate_->autoencoder->decode_latent(latent);
}

image::Image AeroDiffusionPipeline::generate_inpaint(
    const scene::AerialSample& reference, const scene::BoundingBox& region,
    const std::string& source_caption, const std::string& target_caption,
    util::Rng& rng, int sample_index, GenerateControl* control) const {
    std::string error;
    if (!validate_reference(reference, &error)) {
        return rejected(config_.name, "generate_inpaint", error, control);
    }
    const std::optional<scene::BoundingBox> clamped =
        clamp_region(region, substrate_->budget.image_size, &error);
    if (!clamped) {
        return rejected(config_.name, "generate_inpaint", error, control);
    }
    Tensor cond;
    {
        const obs::Span span("condition", stage_metrics().condition);
        cond = condition_for(reference, source_caption, target_caption,
                             sample_index, control);
    }

    const auto& ae_config = substrate_->autoencoder->config();
    const int s = ae_config.latent_size();
    const float scale = static_cast<float>(s) /
                        static_cast<float>(substrate_->budget.image_size);
    // Pixel-space box -> latent-space mask (1 = regenerate).
    Tensor mask({ae_config.latent_channels, s, s});
    const int x0 = std::clamp(static_cast<int>(clamped->x * scale), 0, s - 1);
    const int y0 = std::clamp(static_cast<int>(clamped->y * scale), 0, s - 1);
    const int x1 = std::clamp(
        static_cast<int>(std::ceil((clamped->x + clamped->w) * scale)),
        x0 + 1, s);
    const int y1 = std::clamp(
        static_cast<int>(std::ceil((clamped->y + clamped->h) * scale)),
        y0 + 1, s);
    for (int c = 0; c < ae_config.latent_channels; ++c) {
        for (int y = y0; y < y1; ++y) {
            for (int x = x0; x < x1; ++x) {
                mask[(c * s + y) * s + x] = 1.0f;
            }
        }
    }

    diffusion::DdimConfig ddim =
        ddim_config_for(config_, substrate_->budget, control);
    if (control) ddim.should_cancel = control->should_cancel;
    Tensor latent;
    {
        const obs::Span span("sample", stage_metrics().sample);
        diffusion::SamplerJob job;
        job.kind = diffusion::SamplerJob::Kind::kInpaint;
        job.source = tensor::scale(
            substrate_->autoencoder->encode_image(reference.image),
            substrate_->latent_scale);
        job.mask = mask;
        job.condition_tokens = cond;
        job.config = ddim;
        job.rng = &rng;
        latent = dispatch_job(unet_, schedule_, control, std::move(job));
    }
    if (latent.empty()) {
        if (control) control->cancelled = true;
        return image::Image();
    }
    const obs::Span span("decode", stage_metrics().decode);
    latent = tensor::scale(latent, 1.0f / substrate_->latent_scale);
    return substrate_->autoencoder->decode_latent(latent);
}

}  // namespace aero::core
