#pragma once
// Experiment budgets. The paper trains 50 epochs on 6,471 images of
// 512x512 on 8xA100; this library runs the same pipeline shapes at
// CPU-tractable sizes, scaled by AERO_BENCH_SCALE (0 = smoke for tests,
// 1 = default bench, 2 = paper-shaped overnight run).

namespace aero::core {

struct Budget {
    int train_images = 128;
    int test_images = 48;
    int image_size = 32;

    int ae_steps = 180;
    int clip_steps = 180;
    int detector_steps = 220;
    int diffusion_steps = 650;
    int batch_size = 6;

    int schedule_steps = 64;   ///< T (paper: 1000)
    int ddim_steps = 10;       ///< DDIM inference steps (paper: 250)
    /// Classifier-free guidance. The paper uses 7.0; at CPU scale the
    /// denoiser is far smaller, so strong guidance pushes latents off
    /// manifold -- 2.0 keeps the conditioning benefit without artifacts
    /// (deviation documented in DESIGN.md).
    float guidance_scale = 2.0f;

    /// Generated images per model for metrics. Each eval sample is a
    /// DISTINCT test scene: repeating scenes shrinks the generated
    /// covariance and biases FID against well-conditioned models.
    int eval_samples = 48;

    /// Budget for the current AERO_BENCH_SCALE.
    static Budget from_scale();
    /// Seconds-fast budget used by unit tests.
    static Budget smoke();
};

}  // namespace aero::core
