#include "core/condition.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace aero::core {

namespace ag = aero::autograd;

namespace {

obs::Histogram& roi_fusion_histogram() {
    static obs::Histogram& histogram =
        obs::MetricsRegistry::instance().histogram(
            "aero_pipeline_roi_fusion_ms",
            "detection + ROI feature extraction, ms",
            obs::default_ms_buckets());
    return histogram;
}

}  // namespace

ConditionFeatures compute_condition_features(const Substrate& substrate,
                                             const scene::AerialSample& sample,
                                             const std::string& caption,
                                             const std::string& target_caption,
                                             bool use_object_detection,
                                             int max_rois) {
    ConditionFeatures features;
    const embed::ClipModel& clip = *substrate.clip;
    const text::Vocabulary& vocab = text::Vocabulary::aerial();
    const int size = substrate.budget.image_size;

    image::Image sized = sample.image;
    if (sized.width() != size) {
        sized = image::resize_bilinear(sized, size, size);
    }
    const Var image_var = Var::constant(
        sized.to_tensor_chw().reshaped({1, 3, size, size}));

    features.image_tokens =
        clip.image_encoder().forward_tokens(image_var).value();
    features.text_tokens =
        clip.text_encoder().forward_tokens(vocab.encode(caption)).value();
    features.clip_text = clip.embed_text_eval(target_caption);
    features.clip_image = clip.embed_image_eval(sample.image);
    features.global_feature =
        clip.image_encoder().forward(image_var).value();

    if (use_object_detection && substrate.detector) {
        const obs::Span span("roi_fusion", &roi_fusion_histogram());
        std::vector<scene::BoundingBox> boxes =
            substrate.detector->detect(sample.image);
        std::sort(boxes.begin(), boxes.end(),
                  [](const scene::BoundingBox& a, const scene::BoundingBox& b) {
                      return a.score > b.score;
                  });
        if (static_cast<int>(boxes.size()) > max_rois) {
            boxes.resize(static_cast<std::size_t>(max_rois));
        }
        if (!boxes.empty()) {
            const auto rois =
                detect::extract_rois(sample.image, boxes, size);
            std::vector<Tensor> roi_rows;
            std::vector<Tensor> label_rows;
            roi_rows.reserve(rois.size());
            for (std::size_t i = 0; i < rois.size(); ++i) {
                const Var roi_var = Var::constant(
                    rois[i].to_tensor_chw().reshaped({1, 3, size, size}));
                roi_rows.push_back(
                    clip.image_encoder().forward(roi_var).value());
                label_rows.push_back(
                    clip.text_encoder()
                        .forward(vocab.encode(scene::class_name(boxes[i].cls)))
                        .value());
            }
            features.roi_features = tensor::concat(roi_rows, 0);
            features.label_embeddings = tensor::concat(label_rows, 0);
        }
    }
    return features;
}

ConditionEncoder::ConditionEncoder(const embed::EmbedConfig& config,
                                   bool use_blip_fusion,
                                   bool use_image_feature,
                                   bool use_region_augment, util::Rng& rng)
    : use_blip_fusion_(use_blip_fusion),
      use_image_feature_(use_image_feature),
      use_region_augment_(use_region_augment && use_image_feature),
      blip_(config, rng),
      augmenter_(config, rng) {
    if (use_blip_fusion_) register_child(blip_);
    if (use_image_feature_) register_child(augmenter_);
}

Var ConditionEncoder::encode(const ConditionFeatures& features) const {
    std::vector<Var> rows;

    // C_xg = BLIP(X_i, G_i): deep image-text fusion.
    if (use_blip_fusion_) {
        rows.push_back(blip_.forward(Var::constant(features.image_tokens),
                                     Var::constant(features.text_tokens)));
    }

    // C_g = CLIP(G'_i): target-caption semantics.
    rows.push_back(Var::constant(features.clip_text));

    // f̂_X: region-augmented image representation (Eq. 2-3). With
    // detection enabled the full attention-enhanced token set (enriched
    // global slot + per-region features) conditions the denoiser, so
    // small-object detail survives the pooling.
    if (use_image_feature_) {
        const Var global = Var::constant(features.global_feature);
        if (use_region_augment_ && !features.roi_features.empty()) {
            rows.push_back(augmenter_.forward_tokens(
                global, Var::constant(features.roi_features),
                Var::constant(features.label_embeddings)));
        } else {
            rows.push_back(augmenter_.forward(global));
        }
    }

    if (!features.extra_tokens.empty()) {
        rows.push_back(Var::constant(features.extra_tokens));
    }
    return ag::concat(rows, 0);
}

}  // namespace aero::core
