#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace aero::util {

namespace {

std::atomic<int> g_threshold = []() {
    if (const char* env = std::getenv("AERO_LOG_LEVEL")) {
        int v = 0;
        if (parse_int(env, &v) && v >= 0 && v <= 3) return v;
    }
    return static_cast<int>(LogLevel::kInfo);
}();

thread_local std::uint64_t t_rid = 0;

const char* level_tag(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
    }
    return "?????";
}

}  // namespace

LogLevel log_threshold() { return static_cast<LogLevel>(g_threshold.load()); }

void set_log_threshold(LogLevel level) {
    g_threshold.store(static_cast<int>(level));
}

void set_thread_rid(std::uint64_t rid) { t_rid = rid; }

std::uint64_t thread_rid() { return t_rid; }

void log_line(LogLevel level, const std::string& message,
              std::uint64_t rid) {
    // One atomic threshold read, then a mutex so concurrent callers
    // (e.g. a sentinel logging from parallel training loops) never
    // interleave partial lines.
    if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed))
        return;
    if (rid == 0) rid = t_rid;
    static Mutex mutex;
    const MutexLock lock(mutex);
    if (rid != 0) {
        std::fprintf(stderr, "[aero %s] rid=%llu %s\n", level_tag(level),
                     static_cast<unsigned long long>(rid), message.c_str());
    } else {
        std::fprintf(stderr, "[aero %s] %s\n", level_tag(level),
                     message.c_str());
    }
}

}  // namespace aero::util
