#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace aero::util {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
    for (auto& member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
    elements_.push_back(std::move(value));
    return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
    if (!is_object()) return nullptr;
    for (const auto& member : members_) {
        if (member.first == key) return &member.second;
    }
    return nullptr;
}

std::size_t JsonValue::size() const {
    if (is_object()) return members_.size();
    if (is_array()) return elements_.size();
    return 0;
}

namespace {

std::string format_number(double v) {
    if (std::isnan(v) || std::isinf(v)) return "null";
    // Integers print without a decimal point.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", v);
        return buffer;
    }
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
}

}  // namespace

std::string JsonValue::dump(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
        case Kind::kNull: return "null";
        case Kind::kBool: return bool_ ? "true" : "false";
        case Kind::kNumber: return format_number(number_);
        case Kind::kString: return '"' + json_escape(string_) + '"';
        case Kind::kObject: {
            if (members_.empty()) return "{}";
            std::ostringstream out;
            out << "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                out << pad_in << '"' << json_escape(members_[i].first)
                    << "\": " << members_[i].second.dump(indent + 1);
                if (i + 1 < members_.size()) out << ',';
                out << '\n';
            }
            out << pad << '}';
            return out.str();
        }
        case Kind::kArray: {
            if (elements_.empty()) return "[]";
            std::ostringstream out;
            out << "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                out << pad_in << elements_[i].dump(indent + 1);
                if (i + 1 < elements_.size()) out << ',';
                out << '\n';
            }
            out << pad << ']';
            return out.str();
        }
    }
    return "null";
}

bool JsonValue::write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << dump() << '\n';
    return static_cast<bool>(out);
}

// ---- parser -----------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    bool parse(JsonValue* out, std::string* error) {
        skip_whitespace();
        JsonValue value;
        if (!parse_value(&value, 0)) {
            if (error) *error = message_ + " at offset " + std::to_string(pos_);
            return false;
        }
        skip_whitespace();
        if (pos_ != text_.size()) {
            if (error) {
                *error = "trailing characters at offset " +
                         std::to_string(pos_);
            }
            return false;
        }
        *out = std::move(value);
        return true;
    }

private:
    bool fail(const std::string& message) {
        message_ = message;
        return false;
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    bool consume(char expected, const char* what) {
        if (pos_ >= text_.size() || text_[pos_] != expected) {
            return fail(std::string("expected ") + what);
        }
        ++pos_;
        return true;
    }

    bool parse_value(JsonValue* out, int depth) {
        if (depth > kMaxJsonDepth) return fail("nesting too deep");
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        switch (text_[pos_]) {
            case '{': return parse_object(out, depth);
            case '[': return parse_array(out, depth);
            case '"': {
                std::string s;
                if (!parse_string(&s)) return false;
                *out = JsonValue(std::move(s));
                return true;
            }
            case 't':
            case 'f':
            case 'n': return parse_keyword(out);
            default: return parse_number(out);
        }
    }

    bool parse_keyword(JsonValue* out) {
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            *out = JsonValue(true);
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            *out = JsonValue(false);
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            *out = JsonValue();
            return true;
        }
        // Catches NaN / Infinity / nan / inf explicitly: they are not
        // JSON, and silently mapping them to 0 would mask corruption.
        return fail("invalid literal (NaN/Inf are not valid JSON)");
    }

    bool parse_number(JsonValue* out) {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        std::size_t digits = 0;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            ++digits;
        }
        if (digits == 0) return fail("expected value");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            std::size_t frac = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++frac;
            }
            if (frac == 0) return fail("expected digits after decimal point");
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            std::size_t exp = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++exp;
            }
            if (exp == 0) return fail("expected exponent digits");
        }
        double value = 0.0;
        if (!parse_double(
                std::string_view(text_).substr(start, pos_ - start),
                &value)) {
            return fail("number out of range");
        }
        *out = JsonValue(value);
        return true;
    }

    bool parse_string(std::string* out) {
        if (!consume('"', "string")) return false;
        std::string result;
        while (true) {
            if (pos_ >= text_.size()) return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') break;
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("unescaped control character in string");
            }
            if (c != '\\') {
                result.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': result.push_back('"'); break;
                case '\\': result.push_back('\\'); break;
                case '/': result.push_back('/'); break;
                case 'b': result.push_back('\b'); break;
                case 'f': result.push_back('\f'); break;
                case 'n': result.push_back('\n'); break;
                case 'r': result.push_back('\r'); break;
                case 't': result.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        return fail("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            return fail("invalid \\u escape");
                        }
                    }
                    // UTF-8 encode (BMP only; surrogate pairs land as two
                    // 3-byte sequences, fine for our diagnostics use).
                    if (code < 0x80) {
                        result.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        result.push_back(
                            static_cast<char>(0xc0 | (code >> 6)));
                        result.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        result.push_back(
                            static_cast<char>(0xe0 | (code >> 12)));
                        result.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        result.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                }
                default: return fail("invalid escape character");
            }
        }
        *out = std::move(result);
        return true;
    }

    bool parse_object(JsonValue* out, int depth) {
        ++pos_;  // '{'
        JsonValue object = JsonValue::object();
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = std::move(object);
            return true;
        }
        while (true) {
            skip_whitespace();
            std::string key;
            if (!parse_string(&key)) return false;
            skip_whitespace();
            if (!consume(':', "':'")) return false;
            skip_whitespace();
            JsonValue value;
            if (!parse_value(&value, depth + 1)) return false;
            object.set(key, std::move(value));
            skip_whitespace();
            if (pos_ >= text_.size()) return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                break;
            }
            return fail("expected ',' or '}'");
        }
        *out = std::move(object);
        return true;
    }

    bool parse_array(JsonValue* out, int depth) {
        ++pos_;  // '['
        JsonValue array = JsonValue::array();
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = std::move(array);
            return true;
        }
        while (true) {
            skip_whitespace();
            JsonValue value;
            if (!parse_value(&value, depth + 1)) return false;
            array.push(std::move(value));
            skip_whitespace();
            if (pos_ >= text_.size()) return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                break;
            }
            return fail("expected ',' or ']'");
        }
        *out = std::move(array);
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string message_;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue* out, std::string* error) {
    return Parser(text).parse(out, error);
}

bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error) {
    std::ifstream in(path);
    if (!in) {
        if (error) *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return json_parse(buffer.str(), out, error);
}

bool parse_int(std::string_view text, int* out) {
    int value = 0;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, value);
    if (ec != std::errc() || ptr != end) return false;
    *out = value;
    return true;
}

bool parse_double(std::string_view text, double* out) {
    double value = 0.0;
    const char* end = text.data() + text.size();
    // from_chars is locale-free; chars_format::general excludes hex
    // floats, and ptr == end rejects whitespace and trailing garbage.
    // It still parses "nan"/"inf" literals, hence the isfinite check.
    const auto [ptr, ec] = std::from_chars(text.data(), end, value,
                                           std::chars_format::general);
    if (ec != std::errc() || ptr != end) return false;
    if (!std::isfinite(value)) return false;
    *out = value;
    return true;
}

}  // namespace aero::util
