#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace aero::util {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                    out += buffer;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
    for (auto& member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
    elements_.push_back(std::move(value));
    return *this;
}

namespace {

std::string format_number(double v) {
    if (std::isnan(v) || std::isinf(v)) return "null";
    // Integers print without a decimal point.
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", v);
        return buffer;
    }
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6g", v);
    return buffer;
}

}  // namespace

std::string JsonValue::dump(int indent) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
        case Kind::kNull: return "null";
        case Kind::kBool: return bool_ ? "true" : "false";
        case Kind::kNumber: return format_number(number_);
        case Kind::kString: return '"' + json_escape(string_) + '"';
        case Kind::kObject: {
            if (members_.empty()) return "{}";
            std::ostringstream out;
            out << "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                out << pad_in << '"' << json_escape(members_[i].first)
                    << "\": " << members_[i].second.dump(indent + 1);
                if (i + 1 < members_.size()) out << ',';
                out << '\n';
            }
            out << pad << '}';
            return out.str();
        }
        case Kind::kArray: {
            if (elements_.empty()) return "[]";
            std::ostringstream out;
            out << "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                out << pad_in << elements_[i].dump(indent + 1);
                if (i + 1 < elements_.size()) out << ',';
                out << '\n';
            }
            out << pad << ']';
            return out.str();
        }
    }
    return "null";
}

bool JsonValue::write_file(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << dump() << '\n';
    return static_cast<bool>(out);
}

}  // namespace aero::util
