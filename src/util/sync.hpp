#pragma once
// Annotated synchronisation primitives: a std::mutex whose type carries
// the AERO_CAPABILITY annotation so Clang's -Wthread-safety analysis can
// check AERO_GUARDED_BY contracts on any standard library (libstdc++'s
// std::mutex is not annotated). Off Clang the annotations compile away;
// the only residual cost per lock/unlock is one relaxed atomic load for
// the runtime lock-order validator gate (below).
//
// Usage (see src/serve/service.hpp for the full idiom):
//
//   util::Mutex mutex_;
//   int counter_ AERO_GUARDED_BY(mutex_) = 0;
//
//   void bump() AERO_EXCLUDES(mutex_) {
//       const util::MutexLock lock(mutex_);
//       ++counter_;
//   }
//
// Condition-variable waits use util::CondVar (condition_variable_any)
// with a std::unique_lock<util::Mutex>; the waiting function is marked
// AERO_NO_THREAD_SAFETY_ANALYSIS because the analysis cannot follow a
// lock that is released and re-acquired inside wait().
//
// ---- Runtime lock-order validation (AERO_LOCK_ORDER=1) --------------
//
// The static lock-order pass in tools/aero_lint approximates the lock
// graph syntactically; the runtime validator closes the gap for orders
// it cannot see (locks reached through function pointers, data-
// dependent paths). When AERO_LOCK_ORDER=1 every Mutex acquisition
// pushes onto a per-thread held-lock stack and records an ordering edge
// (top-of-stack -> acquired) into a global acquisition-edge graph. An
// edge that closes a cycle — this thread acquires B while holding A
// after some thread acquired A while holding B — is a potential
// deadlock: the validator reports BOTH lock stacks (the current
// thread's and the one snapshotted when the conflicting edge was first
// recorded), bumps lock_order::violation_count(), and keeps running so
// a test can assert on the report. Re-acquiring a held mutex
// (guaranteed self-deadlock on std::mutex) is reported the same way.
//
// When the env var is unset the entire machinery is one relaxed atomic
// load per lock()/unlock(); nothing is recorded and no internal mutex
// is ever touched. CondVar waits are tracked correctly because the
// hooks live on Mutex itself: wait()'s internal unlock/relock pops and
// re-pushes the held stack.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>

#include "util/annotations.hpp"

namespace aero::util {

class Mutex;

namespace lock_order {

/// -1 = not yet initialised from the environment, 0 = off, 1 = on.
/// Exposed so Mutex's hot path can gate on one relaxed load.
extern std::atomic<int> g_state;

/// Slow path: reads AERO_LOCK_ORDER once and caches into g_state.
bool init_from_env();

/// True when the validator is active. One relaxed load after the first
/// call (the acceptance contract for AERO_LOCK_ORDER unset).
inline bool enabled() {
    const int state = g_state.load(std::memory_order_relaxed);
    if (state >= 0) return state != 0;
    return init_from_env();
}

/// Test hook: force the validator on/off regardless of the environment
/// (ctest processes do not carry AERO_LOCK_ORDER).
void set_enabled_for_testing(bool on);

/// Acquisition hooks, called by Mutex when enabled(). `on_acquire` runs
/// BEFORE the underlying lock blocks, so an inversion is reported even
/// when it would deadlock for real.
void on_acquire(const Mutex* mutex, const char* name);
void on_try_acquire(const Mutex* mutex, const char* name);
void on_release(const Mutex* mutex);
void on_destroy(const Mutex* mutex);

/// Number of inversions (cycles or re-acquisitions) reported so far.
int violation_count();

/// Human-readable report of the most recent violation ("" when none):
/// both lock stacks with mutex names and thread ids.
std::string last_report();

/// Test hook: clears the edge graph, the violation counter and the
/// last report. Call with all tracked threads joined.
void reset();

}  // namespace lock_order

/// std::mutex with a capability annotation. Satisfies BasicLockable, so
/// std::unique_lock<Mutex> and CondVar::wait work unchanged. The
/// optional name labels the mutex in lock-order violation reports;
/// unnamed mutexes report as their address.
class AERO_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    explicit Mutex(const char* name) : name_(name) {}
    ~Mutex() {
        if (lock_order::enabled()) lock_order::on_destroy(this);
    }
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() AERO_ACQUIRE() {
        if (lock_order::enabled()) lock_order::on_acquire(this, name_);
        mutex_.lock();
    }
    void unlock() AERO_RELEASE() {
        mutex_.unlock();
        if (lock_order::enabled()) lock_order::on_release(this);
    }
    bool try_lock() AERO_TRY_ACQUIRE(true) {
        const bool acquired = mutex_.try_lock();
        // A successful try_lock orders later blocking acquisitions (it
        // is pushed as held) but records no edge itself: a try_lock
        // cannot block, so it cannot be a deadlock victim.
        if (acquired && lock_order::enabled()) {
            lock_order::on_try_acquire(this, name_);
        }
        return acquired;
    }

private:
    std::mutex mutex_;
    const char* name_ = nullptr;
};

/// Scoped lock over Mutex (std::lock_guard cannot carry the
/// scoped-capability annotation for a wrapped mutex type).
class AERO_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) AERO_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() AERO_RELEASE() { mutex_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Condition variable compatible with util::Mutex. _any costs one level
/// of indirection over std::condition_variable; the serving queue waits
/// are milliseconds-scale, so checkability wins.
using CondVar = std::condition_variable_any;

}  // namespace aero::util
