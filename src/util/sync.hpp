#pragma once
// Annotated synchronisation primitives: a std::mutex whose type carries
// the AERO_CAPABILITY annotation so Clang's -Wthread-safety analysis can
// check AERO_GUARDED_BY contracts on any standard library (libstdc++'s
// std::mutex is not annotated). Zero-cost wrappers: off Clang they
// compile to the underlying std types.
//
// Usage (see src/serve/service.hpp for the full idiom):
//
//   util::Mutex mutex_;
//   int counter_ AERO_GUARDED_BY(mutex_) = 0;
//
//   void bump() AERO_EXCLUDES(mutex_) {
//       const util::MutexLock lock(mutex_);
//       ++counter_;
//   }
//
// Condition-variable waits use util::CondVar (condition_variable_any)
// with a std::unique_lock<util::Mutex>; the waiting function is marked
// AERO_NO_THREAD_SAFETY_ANALYSIS because the analysis cannot follow a
// lock that is released and re-acquired inside wait().

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace aero::util {

/// std::mutex with a capability annotation. Satisfies BasicLockable, so
/// std::unique_lock<Mutex> and CondVar::wait work unchanged.
class AERO_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() AERO_ACQUIRE() { mutex_.lock(); }
    void unlock() AERO_RELEASE() { mutex_.unlock(); }
    bool try_lock() AERO_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

private:
    std::mutex mutex_;
};

/// Scoped lock over Mutex (std::lock_guard cannot carry the
/// scoped-capability annotation for a wrapped mutex type).
class AERO_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) AERO_ACQUIRE(mutex) : mutex_(mutex) {
        mutex_.lock();
    }
    ~MutexLock() AERO_RELEASE() { mutex_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mutex_;
};

/// Condition variable compatible with util::Mutex. _any costs one level
/// of indirection over std::condition_variable; the serving queue waits
/// are milliseconds-scale, so checkability wins.
using CondVar = std::condition_variable_any;

}  // namespace aero::util
