#pragma once
// Deterministic fault-injection harness for robustness tests.
//
// Training loops and checkpoint code expose named injection points
// ("loss", "grad", "param", ...). Tests arm a seeded `FaultInjector`
// with faults scheduled at specific steps; production code paths carry a
// null injector and pay only a pointer check. File-corruption helpers
// (truncate / flip-byte) simulate torn or bit-rotted checkpoints.
//
// The serving layer adds probabilistic points ("condition_encoder",
// "serve_transient", "serve_slow") hit from concurrent worker threads, so every
// mutating member is guarded by an internal mutex; one injector can be
// shared by a whole service.
//
// Point names are not free-form: arming an injection point whose name is
// missing from the central registry (util/fault_points.hpp) throws
// std::invalid_argument, and aero_lint statically checks every literal
// used at a call site against the same table.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace aero::util {

class FaultInjector {
public:
    explicit FaultInjector(std::uint64_t seed = 0);

    /// Arms a one-shot NaN poke: `fires(step, point)` reports true once.
    /// Throws std::invalid_argument for unregistered point names.
    void arm_nan(int step, const std::string& point) AERO_EXCLUDES(mutex_);

    /// Arms a one-shot loss spike: `spike_factor(step)` returns `factor`
    /// (>= 1) at that step, 1.0 otherwise.
    void arm_spike(int step, float factor) AERO_EXCLUDES(mutex_);

    /// True exactly once for an armed (step, point) pair; counts the hit.
    bool fires(int step, const std::string& point) AERO_EXCLUDES(mutex_);

    /// Multiplier to apply to the loss at `step` (1.0 when unarmed).
    float spike_factor(int step) AERO_EXCLUDES(mutex_);

    /// Sets the probability that `should_fail(point)` reports a fault.
    /// Rate <= 0 clears the point. Callable while a service is running
    /// (tests heal an outage by dropping the rate back to zero). Throws
    /// std::invalid_argument for unregistered point names.
    void set_fail_rate(const std::string& point, double rate)
        AERO_EXCLUDES(mutex_);

    /// Seeded Bernoulli draw at `point`'s configured rate (false when
    /// unconfigured). Counts delivered faults; safe from any thread.
    bool should_fail(const std::string& point) AERO_EXCLUDES(mutex_);

    /// Faults actually delivered so far (tests assert full delivery).
    int injected_count() const AERO_EXCLUDES(mutex_);

    /// Seeded generator for randomised corruption offsets. Deliberately
    /// bypasses the guard (hence the analysis opt-out): only for
    /// single-threaded test setup, never from service workers.
    Rng& rng() AERO_NO_THREAD_SAFETY_ANALYSIS { return rng_; }

    // ---- file corruption ----------------------------------------------------

    /// Truncates the file to `keep_bytes` (simulates a torn write).
    /// Returns false on I/O error or if the file is already shorter.
    static bool truncate_file(const std::string& path,
                              std::size_t keep_bytes);

    /// XORs the byte at `offset` with `mask` (simulates bit rot).
    static bool flip_byte(const std::string& path, std::size_t offset,
                          unsigned char mask = 0xff);

    /// Flips one uniformly random byte strictly after `min_offset`
    /// (use to spare the header and corrupt the payload).
    bool flip_random_byte(const std::string& path, std::size_t min_offset = 0)
        AERO_EXCLUDES(mutex_);

private:
    struct NanFault {
        int step;
        std::string point;
        bool delivered = false;
    };
    struct SpikeFault {
        int step;
        float factor;
        bool delivered = false;
    };

    mutable Mutex mutex_;
    Rng rng_ AERO_GUARDED_BY(mutex_);
    std::vector<NanFault> nan_faults_ AERO_GUARDED_BY(mutex_);
    std::vector<SpikeFault> spike_faults_ AERO_GUARDED_BY(mutex_);
    std::map<std::string, double> fail_rates_ AERO_GUARDED_BY(mutex_);
    int injected_ AERO_GUARDED_BY(mutex_) = 0;
};

}  // namespace aero::util
