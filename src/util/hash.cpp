#include "util/hash.hpp"

#include <array>

namespace aero::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    // splitmix64 finaliser: FNV alone clusters short keys in the low
    // bits, which would bunch vnodes on the consistent-hash ring.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

std::uint64_t fnv1a64(const std::string& text, std::uint64_t seed) {
    return fnv1a64(text.data(), text.size(), seed);
}

}  // namespace aero::util
