#pragma once
// Central registry of fault-injection point names.
//
// Every name passed to FaultInjector::should_fail / fires / arm_nan /
// set_fail_rate must appear here, and every entry must be documented in
// DESIGN.md (the aero_lint tool enforces both directions, and the
// injector rejects unregistered names at runtime). Keeping the table in
// one header means a grep for a point name always lands on its
// definition, and a scaling PR that adds a point cannot forget to
// document where in the request lifecycle it fires.
//
// To add a point: append {name, where-it-fires} below, mention the name
// in DESIGN.md §8/§9, then use it at exactly that place in the code.

#include <cstring>

namespace aero::util {

struct FaultPoint {
    const char* name;
    const char* fires_at;  ///< one-line description of the injection site
};

inline constexpr FaultPoint kFaultPoints[] = {
    {"loss", "trainer: loss value corrupted to NaN before the backward pass"},
    {"grad", "trainer: first available gradient poisoned after backward"},
    {"param", "trainer: first weight poisoned before the forward pass"},
    {"condition_encoder",
     "pipeline: condition-encoder failure on the conditional sampling path"},
    {"serve_transient",
     "service worker: transient fault before an attempt starts (retryable)"},
    {"serve_slow",
     "service worker: stall inside an attempt, after breaker admission"},
    {"pool_slow",
     "thread pool: worker stalls ~1ms before executing a claimed chunk"},
    {"replica_crash",
     "router supervisor: kills a replica service (drain + stop) as if the "
     "process died; in-flight work resolves shed/cancelled and the replica "
     "goes Down until its supervised restart"},
    {"replica_slow",
     "router dispatcher: treats the primary dispatch as already past the "
     "hedge latency threshold, forcing an immediate hedged re-dispatch"},
    {"replica_probe_fail",
     "router supervisor: a synthetic health probe fails without reaching "
     "the replica (probe path outage)"},
    {"overload_spike",
     "service worker: feeds the admission controller a synthetic latency "
     "spike at dequeue (spike_factor x latency target), deterministically "
     "driving an AIMD decrease and degradation-ladder escalation in soaks"},
    {"lock_order_invert",
     "test_sync: flips a two-mutex acquisition to the inverted order so "
     "the runtime lock-order validator (AERO_LOCK_ORDER, DESIGN.md "
     "section 15) must report the cycle; off, both threads acquire in "
     "the declared order and the test runs TSan-clean"},
};

inline constexpr int kNumFaultPoints =
    static_cast<int>(sizeof(kFaultPoints) / sizeof(kFaultPoints[0]));

/// True when `name` is a registered injection point. Cheap enough for
/// the injector's runtime guard (the table is a handful of entries).
inline bool is_registered_fault_point(const char* name) {
    for (const FaultPoint& point : kFaultPoints) {
        if (std::strcmp(point.name, name) == 0) return true;
    }
    return false;
}

}  // namespace aero::util
