#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace aero::util {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string to_lower(std::string text) {
    for (char& c : text) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return text;
}

void append_canonical_prompt(std::string& out, const std::string& text) {
    bool pending_space = false;
    bool emitted = false;
    for (const char c : text) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            pending_space = emitted;
            continue;
        }
        if (pending_space) {
            out += ' ';
            pending_space = false;
        }
        out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        emitted = true;
    }
}

std::string canonical_prompt(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    append_canonical_prompt(out, text);
    return out;
}

std::vector<std::string> split_whitespace(const std::string& text) {
    std::vector<std::string> tokens;
    std::string current;
    for (char c : text) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) tokens.push_back(current);
    return tokens;
}

std::vector<std::string> split(const std::string& text, char delim) {
    std::vector<std::string> fields;
    std::string current;
    for (char c : text) {
        if (c == delim) {
            fields.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    fields.push_back(current);
    return fields;
}

std::string format_fixed(double value, int decimals) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string pad_right(std::string text, std::size_t width) {
    if (text.size() > width) text.resize(width);
    while (text.size() < width) text.push_back(' ');
    return text;
}

}  // namespace aero::util
