#pragma once
// Small string helpers used by caption generation and table printing.

#include <string>
#include <vector>

namespace aero::util {

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Lowercases ASCII letters.
std::string to_lower(std::string text);

/// Appends the canonical prompt form of `text` to `out`: lower-cased,
/// whitespace runs collapsed to single spaces, edges trimmed. The ONE
/// canonicalisation shared by the serve router's sharding key and the
/// mem::ConditionCache key (serve/key.hpp) — two copies would silently
/// drift and split cache affinity.
void append_canonical_prompt(std::string& out, const std::string& text);

/// canonical prompt form of `text` as a fresh string.
std::string canonical_prompt(const std::string& text);

/// Splits on any run of whitespace; no empty tokens.
std::vector<std::string> split_whitespace(const std::string& text);

/// Splits on a single character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& text, char delim);

/// Fixed-width numeric formatting for table rows, e.g. format_fixed(3.14159, 2)
/// -> "3.14".
std::string format_fixed(double value, int decimals);

/// Pads/truncates to `width`, left-aligned.
std::string pad_right(std::string text, std::size_t width);

}  // namespace aero::util
