#pragma once
// Per-client token-bucket rate limiter for the serving admission path
// (DESIGN.md §14). Each client identity owns a bucket that refills at
// `qps` tokens per second up to `burst`; a request spends one token or
// is rejected. Sitting in util (below obs), the limiter never reads a
// clock itself — callers pass `now_ns` from whatever time source they
// use (the serve layer passes obs::default_clock(), so ManualClock
// tests drive refill deterministically).
//
// Memory is bounded: identities hash onto a fixed slot array, so a
// million distinct client ids cost the same as a handful. Colliding
// clients share a bucket — under attack that errs toward rejecting, the
// safe direction for an overload defence — and the slot count is a
// constructor knob for callers that want fewer collisions.

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::util {

struct RateLimitConfig {
    /// Sustained admissions per second per client; <= 0 disables the
    /// limiter entirely (every admit() returns true).
    double qps = 0.0;
    /// Bucket capacity (burst headroom); <= 0 derives max(qps, 1).
    double burst = 0.0;

    /// Reads the AERO_RATE_QPS / AERO_RATE_BURST knobs (integers,
    /// checked via util::parse_int inside env_int; unset or malformed
    /// values leave limiting off / derived).
    static RateLimitConfig from_env();
};

class RateLimiter {
public:
    explicit RateLimiter(const RateLimitConfig& config,
                         std::size_t slots = 256);

    bool enabled() const { return qps_ > 0.0; }

    /// One admission decision for `client_id` at `now_ns`. Spends a
    /// token (true) or rejects (false). An empty client_id carries no
    /// identity to meter and is always admitted — rate limiting is
    /// opt-in per request, like the priority class.
    bool admit(const std::string& client_id, std::int64_t now_ns)
        AERO_EXCLUDES(mutex_);

    /// Cumulative rejections (all clients).
    long long rejected() const AERO_EXCLUDES(mutex_);

private:
    struct Bucket {
        double tokens = 0.0;
        std::int64_t last_ns = 0;
        bool used = false;  ///< first touch fills to burst
    };

    double qps_ = 0.0;
    double burst_ = 0.0;
    mutable Mutex mutex_;
    std::vector<Bucket> buckets_ AERO_GUARDED_BY(mutex_);
    long long rejected_ AERO_GUARDED_BY(mutex_) = 0;
};

}  // namespace aero::util
