#pragma once
// Minimal JSON value + writer for recording experiment results to disk
// (out/results/*.json), plus a strict parser for the small documents the
// library itself reads back (checkpoint metadata sidecars). The parser
// rejects malformed input -- unterminated strings, NaN/Inf literals,
// trailing garbage, nesting beyond kMaxJsonDepth -- rather than guessing.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace aero::util {

class JsonValue {
public:
    JsonValue() : kind_(Kind::kNull) {}
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT
    JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}     // NOLINT
    JsonValue(int i) : JsonValue(static_cast<double>(i)) {}       // NOLINT
    JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
    JsonValue(std::string s)                                      // NOLINT
        : kind_(Kind::kString), string_(std::move(s)) {}

    static JsonValue object() {
        JsonValue v;
        v.kind_ = Kind::kObject;
        return v;
    }
    static JsonValue array() {
        JsonValue v;
        v.kind_ = Kind::kArray;
        return v;
    }

    /// Object field access (creates/overwrites). Only valid on objects.
    JsonValue& set(const std::string& key, JsonValue value);
    /// Array append. Only valid on arrays.
    JsonValue& push(JsonValue value);

    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }

    bool as_bool(bool fallback = false) const {
        return is_bool() ? bool_ : fallback;
    }
    double as_number(double fallback = 0.0) const {
        return is_number() ? number_ : fallback;
    }
    /// Empty for non-strings.
    const std::string& as_string() const { return string_; }

    /// Object member lookup; nullptr when absent or not an object.
    const JsonValue* find(const std::string& key) const;
    /// Element / member count (0 for scalars).
    std::size_t size() const;
    /// Array element access; `index` must be < size() on an array.
    const JsonValue& at(std::size_t index) const { return elements_[index]; }

    /// Serialises with 2-space indentation.
    std::string dump(int indent = 0) const;

    /// Convenience: dump() to a file; returns false on I/O error.
    bool write_file(const std::string& path) const;

private:
    enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    // Keys kept in insertion order for stable output.
    std::vector<std::pair<std::string, JsonValue>> members_;
    std::vector<JsonValue> elements_;
};

/// Escapes a string for JSON embedding (quotes not included).
std::string json_escape(const std::string& text);

/// Maximum container nesting the parser accepts (defence against stack
/// exhaustion on adversarial input).
inline constexpr int kMaxJsonDepth = 64;

/// Strict parse of a complete JSON document. Returns false (and fills
/// `error`, when given, with a position-annotated message) on any
/// malformed input; `*out` is untouched on failure.
bool json_parse(const std::string& text, JsonValue* out,
                std::string* error = nullptr);

/// Convenience: reads and parses a whole file. False on I/O or parse
/// failure.
bool json_parse_file(const std::string& path, JsonValue* out,
                     std::string* error = nullptr);

// ---- checked numeric parsing ------------------------------------------------
// The only sanctioned string->number conversions in the tree (aero_lint
// bans std::stoi / atoi / atof / strtod outside this module): the whole
// input must be one well-formed finite number, or the parse fails and
// `*out` is untouched. No locale, no silent zero on garbage, no
// accepting "12abc".

/// Strict base-10 integer parse ("-42", "7"). False on empty input,
/// sign-only input, trailing characters, or overflow of int.
bool parse_int(std::string_view text, int* out);

/// Strict floating-point parse ("1e-3", "-0.5"). False on empty input,
/// trailing characters, overflow, or a NaN/Inf literal.
bool parse_double(std::string_view text, double* out);

}  // namespace aero::util
