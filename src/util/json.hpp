#pragma once
// Minimal JSON value + writer for recording experiment results to disk
// (out/results/*.json). Write-only on purpose: benches produce results,
// downstream tooling parses them with real JSON libraries.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace aero::util {

class JsonValue {
public:
    JsonValue() : kind_(Kind::kNull) {}
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT
    JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}     // NOLINT
    JsonValue(int i) : JsonValue(static_cast<double>(i)) {}       // NOLINT
    JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
    JsonValue(std::string s)                                      // NOLINT
        : kind_(Kind::kString), string_(std::move(s)) {}

    static JsonValue object() {
        JsonValue v;
        v.kind_ = Kind::kObject;
        return v;
    }
    static JsonValue array() {
        JsonValue v;
        v.kind_ = Kind::kArray;
        return v;
    }

    /// Object field access (creates/overwrites). Only valid on objects.
    JsonValue& set(const std::string& key, JsonValue value);
    /// Array append. Only valid on arrays.
    JsonValue& push(JsonValue value);

    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }

    /// Serialises with 2-space indentation.
    std::string dump(int indent = 0) const;

    /// Convenience: dump() to a file; returns false on I/O error.
    bool write_file(const std::string& path) const;

private:
    enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    // Keys kept in insertion order for stable output.
    std::vector<std::pair<std::string, JsonValue>> members_;
    std::vector<JsonValue> elements_;
};

/// Escapes a string for JSON embedding (quotes not included).
std::string json_escape(const std::string& text);

}  // namespace aero::util
