#pragma once
// Environment-variable knobs shared by benches and tests.

#include <string>

namespace aero::util {

/// Integer env var with fallback.
int env_int(const char* name, int fallback);

/// Double env var with fallback.
double env_double(const char* name, double fallback);

/// String env var with fallback.
std::string env_string(const char* name, const std::string& fallback);

/// Global experiment scale from AERO_BENCH_SCALE:
///   0 = smoke (seconds; used by tests), 1 = default bench, 2 = paper-shaped.
int bench_scale();

/// Linear interpolation helper for scale-dependent budgets:
/// scale 0 -> smoke, 1 -> std, 2 -> big.
int scaled(int smoke, int std_value, int big);

}  // namespace aero::util
