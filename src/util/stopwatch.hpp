#pragma once
// Wall-clock stopwatch for experiment progress reporting.

#include <chrono>

namespace aero::util {

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    /// Seconds elapsed since construction or the last reset().
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    void reset() { start_ = Clock::now(); }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace aero::util
