#include "util/env.hpp"

#include <cstdlib>

namespace aero::util {

int env_int(const char* name, int fallback) {
    if (const char* value = std::getenv(name)) return std::atoi(value);
    return fallback;
}

double env_double(const char* name, double fallback) {
    if (const char* value = std::getenv(name)) return std::atof(value);
    return fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
    if (const char* value = std::getenv(name)) return value;
    return fallback;
}

int bench_scale() {
    const int scale = env_int("AERO_BENCH_SCALE", 1);
    if (scale < 0) return 0;
    if (scale > 2) return 2;
    return scale;
}

int scaled(int smoke, int std_value, int big) {
    switch (bench_scale()) {
        case 0: return smoke;
        case 2: return big;
        default: return std_value;
    }
}

}  // namespace aero::util
