#include "util/env.hpp"

#include <cstdlib>
#include <string_view>

#include "util/json.hpp"

namespace aero::util {

namespace {

// Env vars arrive hand-typed; tolerate surrounding whitespace but
// nothing else (the checked parsers reject partial matches, so
// "2x" falls back instead of silently reading as 2 the way atoi did).
std::string_view trimmed(const char* value) {
    std::string_view view(value);
    while (!view.empty() && (view.front() == ' ' || view.front() == '\t'))
        view.remove_prefix(1);
    while (!view.empty() && (view.back() == ' ' || view.back() == '\t'))
        view.remove_suffix(1);
    return view;
}

}  // namespace

int env_int(const char* name, int fallback) {
    if (const char* value = std::getenv(name)) {
        int parsed = 0;
        if (parse_int(trimmed(value), &parsed)) return parsed;
    }
    return fallback;
}

double env_double(const char* name, double fallback) {
    if (const char* value = std::getenv(name)) {
        double parsed = 0.0;
        if (parse_double(trimmed(value), &parsed)) return parsed;
    }
    return fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
    if (const char* value = std::getenv(name)) return value;
    return fallback;
}

int bench_scale() {
    const int scale = env_int("AERO_BENCH_SCALE", 1);
    if (scale < 0) return 0;
    if (scale > 2) return 2;
    return scale;
}

int scaled(int smoke, int std_value, int big) {
    switch (bench_scale()) {
        case 0: return smoke;
        case 2: return big;
        default: return std_value;
    }
}

}  // namespace aero::util
