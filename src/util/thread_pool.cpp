#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/env.hpp"
#include "util/fault.hpp"

namespace aero::util {

namespace {

/// True on threads that are pool workers: a parallel_for issued from
/// inside a chunk runs serially inline instead of re-entering the queue
/// (which could deadlock a fully busy pool and would oversubscribe it).
thread_local bool t_inside_pool_worker = false;

std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                         std::int64_t grain) {
    if (end <= begin) return 0;
    return (end - begin + grain - 1) / grain;
}

}  // namespace

int ThreadPool::default_threads() {
    const int hardware =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    const int requested = env_int("AERO_THREADS", hardware);
    return std::clamp(requested, 1, kMaxThreads);
}

ThreadPool& ThreadPool::instance() {
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(int threads) {
    const MutexLock lock(control_mutex_);
    start_workers(std::clamp(threads, 1, kMaxThreads));
}

ThreadPool::~ThreadPool() {
    const MutexLock lock(control_mutex_);
    join_workers();
}

int ThreadPool::size() const {
    return threads_.load(std::memory_order_relaxed);
}

void ThreadPool::set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
}

void ThreadPool::resize(int threads) {
    const MutexLock lock(control_mutex_);
    const int clamped = std::clamp(threads, 1, kMaxThreads);
    if (clamped == threads_.load(std::memory_order_relaxed)) return;
    join_workers();
    start_workers(clamped);
}

void ThreadPool::start_workers(int threads) {
    threads_.store(threads, std::memory_order_relaxed);
    {
        const MutexLock lock(queue_mutex_);
        stopping_ = false;
    }
    workers_.reserve(static_cast<std::size_t>(threads - 1));
    for (int i = 0; i < threads - 1; ++i) {
        workers_.emplace_back(&ThreadPool::worker_loop, this);
    }
}

void ThreadPool::join_workers() {
    {
        const MutexLock lock(queue_mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
}

void ThreadPool::run_chunks(Task& task) {
    FaultInjector* injector = injector_.load(std::memory_order_acquire);
    // Stats are accumulated locally and flushed once on exit: a constant
    // number of shared RMWs per run_chunks call, independent of how
    // many chunks this thread claims.
    std::int64_t claimed = 0;
    for (;;) {
        const std::int64_t chunk =
            task.next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= task.chunks) break;
        if (chunk == 0) {
            // First claim of the task: publish -> pickup is the queue
            // wait (zero-ish when the caller claims it itself).
            queue_wait_ns_total_.fetch_add(
                steady_now_ns() - task.publish_ns,
                std::memory_order_relaxed);
        }
        ++claimed;
        if (injector != nullptr && injector->should_fail("pool_slow")) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        const std::int64_t lo = task.begin + chunk * task.grain;
        const std::int64_t hi = std::min(lo + task.grain, task.end);
        try {
            (*task.fn)(lo, hi);
        } catch (...) {
            const MutexLock lock(queue_mutex_);
            if (!task.error) task.error = std::current_exception();
        }
        // Release pairs with the caller's acquire load: the RMW chain on
        // `remaining` forms one release sequence, so the caller seeing 0
        // sees every chunk's writes.
        if (task.remaining.fetch_sub(1, std::memory_order_release) == 1) {
            const MutexLock lock(queue_mutex_);
            done_cv_.notify_all();
        }
    }
    if (claimed > 0) {
        chunks_total_.fetch_add(claimed, std::memory_order_relaxed);
        if (!t_inside_pool_worker) {
            caller_chunks_total_.fetch_add(claimed,
                                           std::memory_order_relaxed);
        }
    }
}

PoolStats ThreadPool::stats() const {
    PoolStats stats;
    stats.tasks = tasks_total_.load(std::memory_order_relaxed);
    stats.chunks = chunks_total_.load(std::memory_order_relaxed);
    stats.caller_chunks =
        caller_chunks_total_.load(std::memory_order_relaxed);
    stats.queue_wait_ns =
        queue_wait_ns_total_.load(std::memory_order_relaxed);
    return stats;
}

// Opted out of the static analysis (see header): the condition-variable
// wait hands queue_mutex_ to std::unique_lock.
void ThreadPool::worker_loop() {
    t_inside_pool_worker = true;
    std::unique_lock<Mutex> lock(queue_mutex_);
    for (;;) {
        Task* task = nullptr;
        for (;;) {
            // Drop fully claimed tasks from the head; their owner erases
            // them too, but a fast caller may still be inside done_cv_.
            while (!tasks_.empty() &&
                   tasks_.front()->next.load(std::memory_order_relaxed) >=
                       tasks_.front()->chunks) {
                tasks_.erase(tasks_.begin());
            }
            for (Task* candidate : tasks_) {
                if (candidate->next.load(std::memory_order_relaxed) <
                    candidate->chunks) {
                    task = candidate;
                    break;
                }
            }
            if (task != nullptr) break;
            if (stopping_) return;
            work_cv_.wait(lock);
        }
        // The caller's stack frame owns the task; it waits for
        // workers_inside to drop to zero before returning, so the
        // pointer stays valid throughout run_chunks.
        ++task->workers_inside;
        lock.unlock();
        run_chunks(*task);
        lock.lock();
        if (--task->workers_inside == 0) done_cv_.notify_all();
    }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
    if (grain < 1) grain = 1;
    const std::int64_t chunks = chunk_count(begin, end, grain);
    if (chunks == 0) return;

    // Serial path: same chunks, ascending order, no pool machinery. Used
    // when the pool is size 1 (AERO_THREADS=1), when the range is a
    // single chunk, or when already running inside a pool worker.
    if (chunks == 1 || size() == 1 || t_inside_pool_worker) {
        for (std::int64_t c = 0; c < chunks; ++c) {
            const std::int64_t lo = begin + c * grain;
            fn(lo, std::min(lo + grain, end));
        }
        tasks_total_.fetch_add(1, std::memory_order_relaxed);
        chunks_total_.fetch_add(chunks, std::memory_order_relaxed);
        caller_chunks_total_.fetch_add(chunks, std::memory_order_relaxed);
        return;
    }

    tasks_total_.fetch_add(1, std::memory_order_relaxed);
    Task task;
    task.fn = &fn;
    task.begin = begin;
    task.end = end;
    task.grain = grain;
    task.chunks = chunks;
    task.remaining.store(chunks, std::memory_order_relaxed);
    task.publish_ns = steady_now_ns();
    {
        const MutexLock lock(queue_mutex_);
        tasks_.push_back(&task);
    }
    work_cv_.notify_all();

    // The caller is one of the pool's N threads: it executes chunks too,
    // so a size-1 pool is exactly the serial loop above.
    run_chunks(task);

    std::exception_ptr error;
    {
        std::unique_lock<Mutex> lock(queue_mutex_);
        done_cv_.wait(lock, [&task] {
            return task.remaining.load(std::memory_order_acquire) == 0 &&
                   task.workers_inside == 0;
        });
        tasks_.erase(std::remove(tasks_.begin(), tasks_.end(), &task),
                     tasks_.end());
        error = task.error;
    }
    if (error) std::rethrow_exception(error);
}

}  // namespace aero::util
