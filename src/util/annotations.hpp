#pragma once
// Portable Clang thread-safety annotations (no-ops everywhere else).
//
// The concurrency contracts of the serving/fault layers are written into
// the types themselves: fields carry AERO_GUARDED_BY(mutex), locking
// functions carry AERO_REQUIRES / AERO_EXCLUDES, and the annotated
// util::Mutex / util::MutexLock wrappers (util/sync.hpp) give the
// analysis a capability type it understands on any standard library.
// Under `clang++ -Wthread-safety` (the AERO_ANALYZE=ON configuration,
// see scripts/analyze.sh) violations are compile errors; under GCC or
// MSVC every macro expands to nothing and the wrappers cost exactly a
// std::mutex.
//
// Conventions (DESIGN.md §10):
//   * every field written from more than one thread is either atomic or
//     AERO_GUARDED_BY exactly one mutex;
//   * private helpers called with a lock held are AERO_REQUIRES(mutex);
//   * public entry points that take a lock are AERO_EXCLUDES(mutex) so
//     re-entrancy deadlocks are caught statically;
//   * the rare function that manages locks in a way the analysis cannot
//     follow (condition-variable wait loops) is
//     AERO_NO_THREAD_SAFETY_ANALYSIS with a comment saying why.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AERO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AERO_THREAD_ANNOTATION
#define AERO_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define AERO_CAPABILITY(x) AERO_THREAD_ANNOTATION(capability(x))

/// Marks a RAII type that acquires in its ctor and releases in its dtor.
#define AERO_SCOPED_CAPABILITY AERO_THREAD_ANNOTATION(scoped_lockable)

/// Field access requires the named mutex to be held.
#define AERO_GUARDED_BY(x) AERO_THREAD_ANNOTATION(guarded_by(x))

/// Pointee access requires the named mutex (the pointer itself is free).
#define AERO_PT_GUARDED_BY(x) AERO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the listed capabilities (exclusively).
#define AERO_REQUIRES(...) \
    AERO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard).
#define AERO_EXCLUDES(...) AERO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define AERO_ACQUIRE(...) \
    AERO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability the caller held.
#define AERO_RELEASE(...) \
    AERO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define AERO_TRY_ACQUIRE(result, ...) \
    AERO_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Declares a fixed acquisition order between mutexes.
#define AERO_ACQUIRED_BEFORE(...) \
    AERO_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define AERO_ACQUIRED_AFTER(...) \
    AERO_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the named capability (for accessors).
#define AERO_RETURN_CAPABILITY(x) AERO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for lock flows the analysis cannot follow; every use
/// must carry a comment justifying it.
#define AERO_NO_THREAD_SAFETY_ANALYSIS \
    AERO_THREAD_ANNOTATION(no_thread_safety_analysis)
