#include "util/rate_limit.hpp"

#include <algorithm>

#include "util/env.hpp"
#include "util/hash.hpp"

namespace aero::util {

RateLimitConfig RateLimitConfig::from_env() {
    RateLimitConfig config;
    config.qps = static_cast<double>(env_int("AERO_RATE_QPS", 0));
    config.burst = static_cast<double>(env_int("AERO_RATE_BURST", 0));
    return config;
}

RateLimiter::RateLimiter(const RateLimitConfig& config, std::size_t slots)
    : qps_(config.qps) {
    if (qps_ > 0.0) {
        burst_ = config.burst > 0.0 ? config.burst : std::max(qps_, 1.0);
        buckets_.resize(std::max<std::size_t>(1, slots));
    }
}

bool RateLimiter::admit(const std::string& client_id, std::int64_t now_ns) {
    if (!enabled() || client_id.empty()) return true;
    const std::size_t slot = fnv1a64(client_id) % buckets_.size();
    const MutexLock lock(mutex_);
    Bucket& bucket = buckets_[slot];
    if (!bucket.used) {
        bucket.used = true;
        bucket.tokens = burst_;
        bucket.last_ns = now_ns;
    } else {
        // Refill for the elapsed time; a non-monotonic or replayed
        // timestamp simply refills nothing.
        const std::int64_t elapsed = now_ns - bucket.last_ns;
        if (elapsed > 0) {
            bucket.tokens = std::min(
                burst_,
                bucket.tokens + static_cast<double>(elapsed) * 1e-9 * qps_);
            bucket.last_ns = now_ns;
        }
    }
    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        return true;
    }
    ++rejected_;
    return false;
}

long long RateLimiter::rejected() const {
    const MutexLock lock(mutex_);
    return rejected_;
}

}  // namespace aero::util
