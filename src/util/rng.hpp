#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (scene generation, weight
// init, diffusion noise, caption noise models) draws from an explicitly
// threaded `Rng` so that a run is fully determined by its seed.  The
// generator is xoshiro256++, seeded through SplitMix64 as its authors
// recommend.

#include <cstdint>
#include <vector>

namespace aero::util {

/// xoshiro256++ pseudo-random generator with convenience distributions.
class Rng {
public:
    /// Seeds the state via SplitMix64 expansion of `seed`.
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    /// Uniform double in [0, 1).
    double uniform();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    int uniform_int(int lo, int hi);

    /// Standard normal via Box-Muller (cached second value).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);

    /// Bernoulli draw with probability `p` of true.
    bool bernoulli(double p);

    /// Index drawn from unnormalised non-negative weights.
    /// Returns weights.size()-1 on degenerate (all-zero) input.
    std::size_t categorical(const std::vector<double>& weights);

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            const auto j =
                static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /// Uniformly chosen element of a non-empty vector.
    template <typename T>
    const T& pick(const std::vector<T>& items) {
        return items[static_cast<std::size_t>(
            uniform_int(0, static_cast<int>(items.size()) - 1))];
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// siblings forked from the same parent state.
    Rng fork(std::uint64_t stream);

private:
    std::uint64_t state_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace aero::util
