#pragma once
// Intra-op worker pool behind the hot numeric kernels (tensor/ops,
// linalg) — the CPU stand-in for the batched GPU kernels the reference
// diffusion systems lean on. One process-wide pool (instance()) is
// shared by every caller, including all serve::InferenceService worker
// threads, so concurrent requests divide the same fixed set of cores
// instead of oversubscribing the machine.
//
// Determinism contract (DESIGN.md §11): parallel_for splits [begin,end)
// into fixed chunks derived ONLY from (begin, end, grain) — never from
// the thread count or from runtime load — and the serial path runs those
// exact chunks in ascending order. A kernel that (a) writes disjoint
// outputs per chunk or (b) reduces per-chunk partials in chunk order is
// therefore bitwise identical for every AERO_THREADS value, which the
// test_parallel suite asserts for AERO_THREADS ∈ {1, 2, 7}. Kernels must
// not accumulate across chunks through atomics or locks — that reorders
// floating-point sums and breaks the guarantee.
//
// Sizing: AERO_THREADS (util/env) caps the pool; the default is
// hardware_concurrency. A pool of size N owns N-1 persistent workers —
// the thread that calls parallel_for always participates, so
// AERO_THREADS=1 spawns no workers at all and parallel_for degrades to a
// plain chunked loop with zero locking or queueing.

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::util {

class FaultInjector;

/// Cumulative pool activity since process start; snapshot via
/// ThreadPool::stats(). The pool sits below the obs layer, so these are
/// plain relaxed atomics the obs registry pulls into gauges via a
/// collector — the pool itself never calls into obs.
struct PoolStats {
    long long tasks = 0;          ///< parallel_for invocations with work
    long long chunks = 0;         ///< chunks executed (pooled + serial)
    long long caller_chunks = 0;  ///< chunks run by the calling thread
    long long queue_wait_ns = 0;  ///< publish -> first chunk claim, summed
};

class ThreadPool {
public:
    /// Spawns `threads - 1` workers (clamped to >= 1 thread total).
    /// Prefer instance(); direct construction is for tests that need a
    /// pool with a lifetime narrower than the process.
    explicit ThreadPool(int threads = default_threads());
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// The process-wide pool every kernel dispatches to, sized from
    /// AERO_THREADS on first use.
    static ThreadPool& instance();

    /// AERO_THREADS when set (clamped to [1, kMaxThreads]), otherwise
    /// hardware_concurrency.
    static int default_threads();

    /// Total threads that execute chunks: workers + the calling thread.
    int size() const AERO_EXCLUDES(control_mutex_);

    /// Rebuilds the pool at a new size. Joins the current workers, so
    /// every in-flight parallel_for must have returned; callers are the
    /// determinism tests and bench_parallel, which resize between
    /// single-threaded measurement phases. Serialised against concurrent
    /// resize()/set_fault_injector() by control_mutex_.
    void resize(int threads) AERO_EXCLUDES(control_mutex_, queue_mutex_);

    /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into
    /// ceil((end-begin)/grain) chunks of `grain` indices (the last chunk
    /// may be short). Chunk boundaries depend only on the arguments, so
    /// any thread count produces the same call set; execution order
    /// across chunks is unspecified. Blocks until every chunk finished;
    /// rethrows the first exception a chunk threw. Safe to call from
    /// multiple threads at once (the serving workers do); a call from
    /// inside a pool worker runs serially inline rather than deadlocking
    /// on its own pool.
    void parallel_for(std::int64_t begin, std::int64_t end,
                      std::int64_t grain,
                      const std::function<void(std::int64_t, std::int64_t)>&
                          fn) AERO_EXCLUDES(queue_mutex_);

    /// Cumulative activity counters (see PoolStats). Relaxed reads of
    /// relaxed counters: values are eventually consistent, which is all
    /// a metrics dump needs.
    PoolStats stats() const;

    /// Test hook: when set, workers draw the "pool_slow" fault point
    /// before each chunk and sleep ~1ms on a hit, widening race windows
    /// for the TSan stress tests. Not for production paths.
    void set_fault_injector(FaultInjector* injector)
        AERO_EXCLUDES(control_mutex_);

private:
    /// One parallel_for invocation; lives on the caller's stack. Chunks
    /// are claimed via `next`; `remaining` counts unfinished chunks and
    /// `workers_inside` counts pool workers still touching the task, so
    /// the caller frees the stack frame only when both reach zero.
    struct Task {
        const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
        std::int64_t begin = 0;
        std::int64_t end = 0;
        std::int64_t grain = 1;
        std::int64_t chunks = 0;
        std::atomic<std::int64_t> next{0};
        std::atomic<std::int64_t> remaining{0};
        int workers_inside = 0;  // guarded by the owning pool's queue_mutex_
        std::exception_ptr error;  // guarded by the owning pool's queue_mutex_
        std::int64_t publish_ns = 0;  ///< queue-wait measurement origin
    };

    /// Dequeue loop. Opted out of the static analysis: the
    /// condition-variable wait releases and re-acquires queue_mutex_
    /// through std::unique_lock, which the analysis cannot follow.
    void worker_loop() AERO_NO_THREAD_SAFETY_ANALYSIS;

    /// Claims and runs chunks of `task` until none remain.
    void run_chunks(Task& task) AERO_EXCLUDES(queue_mutex_);

    void start_workers(int threads) AERO_REQUIRES(control_mutex_)
        AERO_EXCLUDES(queue_mutex_);
    void join_workers() AERO_REQUIRES(control_mutex_)
        AERO_EXCLUDES(queue_mutex_);

    /// Serialises resize()/destruction against each other; never held
    /// while executing chunks.
    mutable Mutex control_mutex_ AERO_ACQUIRED_BEFORE(queue_mutex_);
    std::vector<std::thread> workers_ AERO_GUARDED_BY(control_mutex_);

    mutable Mutex queue_mutex_;
    CondVar work_cv_;  ///< workers sleep here waiting for tasks
    CondVar done_cv_;  ///< callers sleep here waiting for completion
    std::vector<Task*> tasks_ AERO_GUARDED_BY(queue_mutex_);  ///< FIFO
    bool stopping_ AERO_GUARDED_BY(queue_mutex_) = false;

    /// size() reads this from kernel threads while resize() writes it;
    /// atomic instead of guarded so the hot path stays lock-free.
    std::atomic<int> threads_{1};
    std::atomic<FaultInjector*> injector_{nullptr};

    /// PoolStats counters. Updated with a constant number of relaxed
    /// RMWs per parallel_for call (per-chunk counts are accumulated
    /// locally first), so the determinism contract and the serial-path
    /// zero-overhead promise are untouched.
    std::atomic<long long> tasks_total_{0};
    std::atomic<long long> chunks_total_{0};
    std::atomic<long long> caller_chunks_total_{0};
    std::atomic<long long> queue_wait_ns_total_{0};
};

/// Upper bound on pool size; AERO_THREADS beyond this is clamped (a
/// typo like AERO_THREADS=100000 must not try to spawn 100k threads).
inline constexpr int kMaxThreads = 256;

/// Convenience forwarding to the global pool: the one call sites use.
inline void parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
    ThreadPool::instance().parallel_for(begin, end, grain, fn);
}

/// Grain that packs at least `min_items_per_chunk`-worth of per-item
/// cost `work_per_item` into each chunk (both in arbitrary consistent
/// units, e.g. flops). Depends only on its arguments — callers derive
/// them from tensor shapes — so chunking stays thread-count independent.
inline std::int64_t grain_for(std::int64_t work_per_item,
                              std::int64_t min_work_per_chunk) {
    if (work_per_item <= 0) work_per_item = 1;
    const std::int64_t grain = min_work_per_chunk / work_per_item;
    return grain > 1 ? grain : 1;
}

}  // namespace aero::util
