#pragma once
// Minimal leveled logger. Experiments print structured tables to stdout;
// the logger is reserved for progress / diagnostics on stderr.

#include <sstream>
#include <string>

namespace aero::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kInfo,
/// overridable via the AERO_LOG_LEVEL environment variable (0-3).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { log_line(level_, stream_.str()); }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
    return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
    return detail::LogStream(LogLevel::kError);
}

}  // namespace aero::util
