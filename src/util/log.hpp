#pragma once
// Minimal leveled logger. Experiments print structured tables to stdout;
// the logger is reserved for progress / diagnostics on stderr.
//
// Request correlation: a line logged with a non-zero request id carries
// a structured `rid=<id>` field, the same id obs spans and
// serve::RequestResult summaries use, so one grep joins logs, spans and
// outcomes. Code deep in the pipeline does not thread the id through —
// the serving layer installs it per worker thread (set_thread_rid, via
// obs::Trace) and every log_line underneath picks it up.

#include <cstdint>
#include <sstream>
#include <string>

namespace aero::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are dropped. Defaults to kInfo,
/// overridable via the AERO_LOG_LEVEL environment variable (0-3).
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Request id attached to this thread's log lines (0 = none). Set on a
/// serving worker for the duration of one request.
void set_thread_rid(std::uint64_t rid);
std::uint64_t thread_rid();

/// Emits one formatted line to stderr if `level` passes the threshold.
/// `rid` tags the line with a structured `rid=` field; 0 (the default)
/// falls back to the thread's rid, so callers only pass it explicitly
/// when logging about a request from outside its worker thread.
void log_line(LogLevel level, const std::string& message,
              std::uint64_t rid = 0);

namespace detail {

class LogStream {
public:
    explicit LogStream(LogLevel level) : level_(level) {}
    ~LogStream() { log_line(level_, stream_.str()); }
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;

    template <typename T>
    LogStream& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
    return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
    return detail::LogStream(LogLevel::kError);
}

}  // namespace aero::util
