#pragma once
// Checksums for data-integrity checks (checkpoint payload validation).

#include <cstddef>
#include <cstdint>

namespace aero::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` allows incremental
/// computation: pass the previous result to continue over a new chunk.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace aero::util
