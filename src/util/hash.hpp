#pragma once
// Checksums for data-integrity checks (checkpoint payload validation)
// and stable 64-bit hashing (consistent-hash request routing).

#include <cstddef>
#include <cstdint>
#include <string>

namespace aero::util {

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` allows incremental
/// computation: pass the previous result to continue over a new chunk.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// FNV-1a 64-bit hash with an avalanche finaliser (splitmix64). Stable
/// across runs and platforms, so consistent-hash placements (the serve
/// router's ring) survive process restarts. `seed` continues a previous
/// hash, letting callers mix several fields without concatenating.
std::uint64_t fnv1a64(const void* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ull);
std::uint64_t fnv1a64(const std::string& text,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace aero::util
