#include "util/fault.hpp"

#include <stdexcept>

#include "util/fault_points.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace aero::util {

namespace {

// Arming an unknown point is a programming error, not a runtime
// condition: the scheduled fault would silently never fire and the test
// would pass vacuously. Fail loudly instead.
void require_registered(const std::string& point) {
    if (!is_registered_fault_point(point.c_str())) {
        throw std::invalid_argument(
            "fault point \"" + point +
            "\" is not registered in util/fault_points.hpp");
    }
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::arm_nan(int step, const std::string& point) {
    require_registered(point);
    const MutexLock lock(mutex_);
    nan_faults_.push_back({step, point});
}

void FaultInjector::arm_spike(int step, float factor) {
    const MutexLock lock(mutex_);
    spike_faults_.push_back({step, factor});
}

bool FaultInjector::fires(int step, const std::string& point) {
    const MutexLock lock(mutex_);
    for (NanFault& fault : nan_faults_) {
        if (!fault.delivered && fault.step == step && fault.point == point) {
            fault.delivered = true;
            ++injected_;
            return true;
        }
    }
    return false;
}

float FaultInjector::spike_factor(int step) {
    const MutexLock lock(mutex_);
    for (SpikeFault& fault : spike_faults_) {
        if (!fault.delivered && fault.step == step) {
            fault.delivered = true;
            ++injected_;
            return fault.factor;
        }
    }
    return 1.0f;
}

void FaultInjector::set_fail_rate(const std::string& point, double rate) {
    require_registered(point);
    const MutexLock lock(mutex_);
    if (rate <= 0.0) {
        fail_rates_.erase(point);
    } else {
        fail_rates_[point] = rate;
    }
}

bool FaultInjector::should_fail(const std::string& point) {
    const MutexLock lock(mutex_);
    const auto it = fail_rates_.find(point);
    if (it == fail_rates_.end()) return false;
    if (!rng_.bernoulli(it->second)) return false;
    ++injected_;
    return true;
}

int FaultInjector::injected_count() const {
    const MutexLock lock(mutex_);
    return injected_;
}

bool FaultInjector::truncate_file(const std::string& path,
                                  std::size_t keep_bytes) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || size < keep_bytes) return false;
    std::filesystem::resize_file(path, keep_bytes, ec);
    return !ec;
}

bool FaultInjector::flip_byte(const std::string& path, std::size_t offset,
                              unsigned char mask) {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    if (!file) return false;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    if (!file.read(&byte, 1)) return false;
    byte = static_cast<char>(static_cast<unsigned char>(byte) ^ mask);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
    return static_cast<bool>(file);
}

bool FaultInjector::flip_random_byte(const std::string& path,
                                     std::size_t min_offset) {
    const MutexLock lock(mutex_);
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec || size <= min_offset) return false;
    const auto offset =
        min_offset + static_cast<std::size_t>(rng_.uniform_int(
                         0, static_cast<int>(size - min_offset) - 1));
    // A zero mask would be a no-op; pick a non-zero one.
    const auto mask = static_cast<unsigned char>(rng_.uniform_int(1, 255));
    if (!flip_byte(path, offset, mask)) return false;
    ++injected_;
    return true;
}

}  // namespace aero::util
