#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace aero::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; reject u1 == 0 to keep log() finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
    return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r <= 0.0) return i;
    }
    return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream) {
    return Rng(next_u64() ^ (stream * 0xd1342543de82ef95ull + 1));
}

}  // namespace aero::util
