// Runtime lock-order validator (see sync.hpp for the contract).
//
// All internal state is guarded by a plain std::mutex — deliberately
// NOT a util::Mutex, so the validator never observes (or deadlocks on)
// itself. The held-lock stack is thread_local; the edge graph and the
// per-edge stack snapshots are global. The graph is a leaky singleton:
// mutexes with static storage duration may be destroyed after any
// function-local static here, so the graph must outlive everything that
// can call on_destroy().

#include "util/sync.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace aero::util::lock_order {

std::atomic<int> g_state{-1};

bool init_from_env() {
    const char* value = std::getenv("AERO_LOCK_ORDER");
    const int enabled = (value != nullptr && value[0] == '1') ? 1 : 0;
    int expected = -1;
    g_state.compare_exchange_strong(expected, enabled,
                                    std::memory_order_relaxed);
    return g_state.load(std::memory_order_relaxed) != 0;
}

void set_enabled_for_testing(bool on) {
    g_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace {

struct HeldLock {
    const Mutex* mutex;
    std::string name;
};

std::vector<HeldLock>& held_stack() {
    thread_local std::vector<HeldLock> stack;
    return stack;
}

/// Snapshot of the acquiring thread's state when an edge was first
/// recorded, for the "other side" of a violation report.
struct EdgeInfo {
    std::vector<std::string> stack;  ///< held names + the acquired name
    std::string thread_id;
};

struct Graph {
    std::mutex mu;
    // from -> to -> first-acquisition snapshot
    std::map<const Mutex*, std::map<const Mutex*, EdgeInfo>> edges;
    std::atomic<int> violations{0};
    std::string last_report;
};

Graph& graph() {
    // aero-lint: allow(naked-new)
    static Graph* g = new Graph();  // leaky: outlives static mutexes
    return *g;
}

std::string display_name(const Mutex* mutex, const char* name) {
    if (name != nullptr) return name;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "mutex@%p",
                  static_cast<const void*>(mutex));
    return buffer;
}

std::string this_thread_id() {
    std::ostringstream out;
    out << std::this_thread::get_id();
    return out.str();
}

std::string join_stack(const std::vector<std::string>& stack) {
    std::string out;
    for (const std::string& name : stack) {
        if (!out.empty()) out += " -> ";
        out += name;
    }
    return out;
}

/// Depth-first search for a path `from` ~> `to` in the edge graph.
/// Fills `path` with the node sequence when found. Caller holds g.mu.
bool find_path(Graph& g, const Mutex* from, const Mutex* to,
               std::set<const Mutex*>* visited,
               std::vector<const Mutex*>* path) {
    if (from == to) {
        path->push_back(from);
        return true;
    }
    if (!visited->insert(from).second) return false;
    const auto it = g.edges.find(from);
    if (it == g.edges.end()) return false;
    for (const auto& edge : it->second) {
        if (find_path(g, edge.first, to, visited, path)) {
            path->insert(path->begin(), from);
            return true;
        }
    }
    return false;
}

void record_violation(Graph& g, const std::string& report) {
    g.violations.fetch_add(1, std::memory_order_relaxed);
    g.last_report = report;
    std::fprintf(stderr, "%s", report.c_str());
}

}  // namespace

void on_acquire(const Mutex* mutex, const char* name) {
    auto& held = held_stack();
    const std::string acquired = display_name(mutex, name);
    if (held.empty()) {
        held.push_back({mutex, acquired});
        return;
    }
    const HeldLock& top = held.back();
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);
    std::vector<std::string> current;
    for (const HeldLock& h : held) current.push_back(h.name);
    current.push_back(acquired);
    if (top.mutex == mutex) {
        // Re-acquiring a held std::mutex deadlocks unconditionally.
        std::ostringstream report;
        report << "aero lock-order: re-acquisition of \"" << acquired
               << "\" while already held\n  thread " << this_thread_id()
               << " stack: " << join_stack(current) << "\n";
        record_violation(g, report.str());
    } else {
        auto& out_edges = g.edges[top.mutex];
        if (out_edges.find(mutex) == out_edges.end()) {
            // New edge top -> mutex: a pre-existing path mutex ~> top
            // means some thread acquired in the opposite order.
            std::set<const Mutex*> visited;
            std::vector<const Mutex*> path;
            if (find_path(g, mutex, top.mutex, &visited, &path) &&
                path.size() > 1) {
                const EdgeInfo& other = g.edges[path[0]].at(path[1]);
                std::ostringstream report;
                report << "aero lock-order: inversion acquiring \""
                       << acquired << "\" while holding \"" << top.name
                       << "\"\n  this thread " << this_thread_id()
                       << " stack: " << join_stack(current)
                       << "\n  conflicting order by thread "
                       << other.thread_id
                       << " stack: " << join_stack(other.stack) << "\n";
                record_violation(g, report.str());
            }
            out_edges[mutex] = EdgeInfo{current, this_thread_id()};
        }
    }
    held.push_back({mutex, acquired});
}

void on_try_acquire(const Mutex* mutex, const char* name) {
    held_stack().push_back({mutex, display_name(mutex, name)});
}

void on_release(const Mutex* mutex) {
    auto& held = held_stack();
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
        if (it->mutex == mutex) {
            held.erase(std::next(it).base());
            return;
        }
    }
}

void on_destroy(const Mutex* mutex) {
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);
    g.edges.erase(mutex);
    for (auto& entry : g.edges) entry.second.erase(mutex);
}

int violation_count() {
    return graph().violations.load(std::memory_order_relaxed);
}

std::string last_report() {
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);
    return g.last_report;
}

void reset() {
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);
    g.edges.clear();
    g.violations.store(0, std::memory_order_relaxed);
    g.last_report.clear();
}

}  // namespace aero::util::lock_order
