#pragma once
// MetricsRegistry: named counters, gauges and fixed-bucket histograms
// (DESIGN.md §12). The fast path — inc/set/observe on a metric handle —
// is lock-free relaxed atomics; only registration (finding or creating
// a metric by name) takes the registry mutex, and call sites do that
// once and cache the reference (handles stay valid for the registry's
// lifetime; the process-wide instance() never dies).
//
// Naming contract: every name matches `aero_<area>_<name>` (lowercase,
// digits, underscores). The process-wide instance() additionally
// requires the name to be declared in obs/metric_names.hpp — the same
// declare-then-use discipline as the fault-point registry — while local
// registries (hermetic golden-file tests) skip the table. Violations
// throw std::invalid_argument: a misnamed metric is a programming
// error, not a runtime condition.
//
// Dumps are deterministic: collect() returns samples in ascending name
// order, so render_text()/render_json() output is stable run to run.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::obs {

class Counter {
public:
    void inc(long long n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    long long value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<long long> value_{0};
};

class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed upper-bound bucket histogram. observe() is a handful of
/// relaxed atomic RMWs; the bucket layout is fixed at registration so
/// there is nothing to resize or lock. The cumulative `sum` uses
/// C++20's atomic<double>::fetch_add — metrics are outside the §11
/// bitwise-determinism contract, which only bans atomic FP reductions
/// inside tensor kernels.
class Histogram {
public:
    /// `bounds` are ascending, finite upper bucket edges; an implicit
    /// +Inf bucket is appended.
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    struct Snapshot {
        std::vector<double> bounds;       ///< finite edges, ascending
        std::vector<long long> cumulative;  ///< per-edge cumulative counts
        double sum = 0.0;
        long long count = 0;
    };
    Snapshot snapshot() const;

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<long long>> buckets_;  ///< bounds_.size() + 1
    std::atomic<long long> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Default bucket edges for millisecond latencies; shared by the serve
/// and pipeline histograms so dashboards line up.
std::vector<double> default_ms_buckets();

enum class MetricKind { kCounter, kGauge, kHistogram };
const char* metric_kind_name(MetricKind kind);

/// One rendered metric: name, kind, help, and the value snapshot.
struct MetricSample {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    long long counter = 0;
    double gauge = 0.0;
    Histogram::Snapshot histogram;
};

class MetricsRegistry {
public:
    /// A local registry (tests). Pass enforce_registered_names=true to
    /// get the process-wide instance()'s declare-then-use guard.
    explicit MetricsRegistry(bool enforce_registered_names = false)
        : enforce_registered_(enforce_registered_names) {}
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The process-wide registry every production call site uses.
    static MetricsRegistry& instance();

    /// Find-or-create. Throws std::invalid_argument on a malformed
    /// name, an undeclared name (instance() only), or a kind clash with
    /// an existing registration. The returned reference stays valid for
    /// the registry's lifetime — cache it.
    Counter& counter(const char* name, const char* help)
        AERO_EXCLUDES(mutex_);
    Gauge& gauge(const char* name, const char* help) AERO_EXCLUDES(mutex_);
    Histogram& histogram(const char* name, const char* help,
                         std::vector<double> bounds) AERO_EXCLUDES(mutex_);

    /// Runs before every collect(): pulls state that lives below the
    /// obs layer (e.g. ThreadPool's plain atomics) into gauges. Called
    /// without the registry mutex held, so collectors may register.
    void add_collector(std::function<void()> fn) AERO_EXCLUDES(mutex_);

    /// Deterministic snapshot: collectors first, then every metric in
    /// ascending name order.
    std::vector<MetricSample> collect() AERO_EXCLUDES(mutex_);

private:
    struct Entry {
        MetricKind kind;
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& find_or_create(const char* name, const char* help,
                          MetricKind kind, std::vector<double> bounds)
        AERO_EXCLUDES(mutex_);

    const bool enforce_registered_;
    mutable util::Mutex mutex_;
    /// std::map: ascending-name iteration gives the stable dump order.
    std::map<std::string, Entry> metrics_ AERO_GUARDED_BY(mutex_);
    std::vector<std::function<void()>> collectors_ AERO_GUARDED_BY(mutex_);
};

/// True when `name` matches `aero_<area>_<name>` (lowercase alnum +
/// underscore, at least three segments). Exposed for the lint rule's
/// unit tests.
bool valid_metric_name(const char* name);

}  // namespace aero::obs
