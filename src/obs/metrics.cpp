#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "mem/arena.hpp"
#include "mem/cache.hpp"
#include "obs/metric_names.hpp"
#include "util/thread_pool.hpp"

namespace aero::obs {

const char* metric_kind_name(MetricKind kind) {
    switch (kind) {
        case MetricKind::kCounter: return "counter";
        case MetricKind::kGauge: return "gauge";
        case MetricKind::kHistogram: return "histogram";
    }
    return "?";
}

bool valid_metric_name(const char* name) {
    if (name == nullptr) return false;
    const std::string text(name);
    if (text.rfind("aero_", 0) != 0) return false;
    int segments = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '_') {
            if (i == start) return false;  // empty segment / trailing _
            ++segments;
            start = i + 1;
            continue;
        }
        const char c = text[i];
        const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
        if (!ok) return false;
    }
    return segments >= 3;  // aero + <area> + <name>
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {  // trailing +Inf bucket
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::invalid_argument("histogram bounds must be ascending");
    }
}

void Histogram::observe(double v) {
    std::size_t bucket = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    snap.bounds = bounds_;
    snap.cumulative.reserve(buckets_.size());
    long long running = 0;
    for (const std::atomic<long long>& b : buckets_) {
        running += b.load(std::memory_order_relaxed);
        snap.cumulative.push_back(running);
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.count = count_.load(std::memory_order_relaxed);
    return snap;
}

std::vector<double> default_ms_buckets() {
    return {0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
            1000.0, 2500.0, 5000.0};
}

MetricsRegistry& MetricsRegistry::instance() {
    static MetricsRegistry registry(/*enforce_registered_names=*/true);
    // The thread pool sits below obs in the layering, so it cannot push
    // into the registry itself; a collector pulls its plain atomics into
    // gauges at every collect(). Wired once, here, so a dump shows pool
    // health without any call-site plumbing.
    static const bool pool_collector_wired = [] {
        MetricsRegistry& r = registry;
        Gauge& tasks = r.gauge("aero_pool_tasks",
                               "parallel_for invocations since start");
        Gauge& chunks =
            r.gauge("aero_pool_chunks", "chunks executed since start");
        Gauge& caller_chunks = r.gauge(
            "aero_pool_caller_chunks", "chunks executed by calling threads");
        Gauge& caller_share = r.gauge(
            "aero_pool_caller_share", "caller-executed fraction of chunks");
        Gauge& queue_wait = r.gauge(
            "aero_pool_queue_wait_ms",
            "cumulative task publish -> first-claim wait");
        r.add_collector([&tasks, &chunks, &caller_chunks, &caller_share,
                         &queue_wait] {
            const util::PoolStats stats =
                util::ThreadPool::instance().stats();
            tasks.set(static_cast<double>(stats.tasks));
            chunks.set(static_cast<double>(stats.chunks));
            caller_chunks.set(static_cast<double>(stats.caller_chunks));
            caller_share.set(
                stats.chunks > 0
                    ? static_cast<double>(stats.caller_chunks) /
                          static_cast<double>(stats.chunks)
                    : 0.0);
            queue_wait.set(static_cast<double>(stats.queue_wait_ns) * 1e-6);
        });
        return true;
    }();
    (void)pool_collector_wired;
    // Same pattern for the mem layer (DESIGN.md §17): the arena and the
    // condition cache export plain atomics; one collector pulls them
    // into the aero_alloc_* / aero_cache_* gauges.
    static const bool mem_collector_wired = [] {
        MetricsRegistry& r = registry;
        Gauge& alloc_requests =
            r.gauge("aero_alloc_requests", "arena acquire() calls");
        Gauge& alloc_hits =
            r.gauge("aero_alloc_hits", "arena free-list hits");
        Gauge& alloc_misses =
            r.gauge("aero_alloc_misses", "arena heap fallbacks");
        Gauge& alloc_trims =
            r.gauge("aero_alloc_trims", "arena LRU trims");
        Gauge& alloc_resident =
            r.gauge("aero_alloc_resident_bytes", "arena idle bytes");
        Gauge& alloc_outstanding =
            r.gauge("aero_alloc_outstanding_bytes", "arena lent-out bytes");
        Gauge& cache_hits =
            r.gauge("aero_cache_hits", "condition-cache hits");
        Gauge& cache_misses =
            r.gauge("aero_cache_misses", "condition-cache misses");
        Gauge& cache_insertions =
            r.gauge("aero_cache_insertions", "condition-cache insertions");
        Gauge& cache_evictions =
            r.gauge("aero_cache_evictions", "condition-cache evictions");
        Gauge& cache_invalidations = r.gauge(
            "aero_cache_invalidations", "condition-cache invalidations");
        Gauge& cache_entries =
            r.gauge("aero_cache_entries", "condition-cache live entries");
        Gauge& cache_bytes =
            r.gauge("aero_cache_bytes", "condition-cache live bytes");
        r.add_collector([&alloc_requests, &alloc_hits, &alloc_misses,
                         &alloc_trims, &alloc_resident, &alloc_outstanding,
                         &cache_hits, &cache_misses, &cache_insertions,
                         &cache_evictions, &cache_invalidations,
                         &cache_entries, &cache_bytes] {
            const mem::ArenaStats arena = mem::Arena::instance().stats();
            alloc_requests.set(static_cast<double>(arena.requests));
            alloc_hits.set(static_cast<double>(arena.hits));
            alloc_misses.set(static_cast<double>(arena.misses));
            alloc_trims.set(static_cast<double>(arena.trims));
            alloc_resident.set(static_cast<double>(arena.resident_bytes));
            alloc_outstanding.set(
                static_cast<double>(arena.outstanding_bytes));
            const mem::CacheStats cache = mem::cache_stats();
            cache_hits.set(static_cast<double>(cache.hits));
            cache_misses.set(static_cast<double>(cache.misses));
            cache_insertions.set(static_cast<double>(cache.insertions));
            cache_evictions.set(static_cast<double>(cache.evictions));
            cache_invalidations.set(
                static_cast<double>(cache.invalidations));
            cache_entries.set(static_cast<double>(cache.entries));
            cache_bytes.set(static_cast<double>(cache.bytes));
        });
        return true;
    }();
    (void)mem_collector_wired;
    return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    const char* name, const char* help, MetricKind kind,
    std::vector<double> bounds) {
    if (!valid_metric_name(name)) {
        throw std::invalid_argument(
            std::string("metric name \"") + (name ? name : "<null>") +
            "\" does not match aero_<area>_<name>");
    }
    if (enforce_registered_ && !is_registered_metric(name)) {
        throw std::invalid_argument(
            std::string("metric \"") + name +
            "\" is not declared in src/obs/metric_names.hpp");
    }
    const util::MutexLock lock(mutex_);
    auto it = metrics_.find(name);
    if (it != metrics_.end()) {
        if (it->second.kind != kind) {
            throw std::invalid_argument(
                std::string("metric \"") + name + "\" already registered as " +
                metric_kind_name(it->second.kind));
        }
        return it->second;
    }
    Entry entry;
    entry.kind = kind;
    entry.help = help != nullptr ? help : "";
    switch (kind) {
        case MetricKind::kCounter:
            entry.counter = std::make_unique<Counter>();
            break;
        case MetricKind::kGauge:
            entry.gauge = std::make_unique<Gauge>();
            break;
        case MetricKind::kHistogram:
            entry.histogram = std::make_unique<Histogram>(std::move(bounds));
            break;
    }
    return metrics_.emplace(name, std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(const char* name, const char* help) {
    return *find_or_create(name, help, MetricKind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(const char* name, const char* help) {
    return *find_or_create(name, help, MetricKind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(const char* name, const char* help,
                                      std::vector<double> bounds) {
    return *find_or_create(name, help, MetricKind::kHistogram,
                           std::move(bounds))
                .histogram;
}

void MetricsRegistry::add_collector(std::function<void()> fn) {
    const util::MutexLock lock(mutex_);
    collectors_.push_back(std::move(fn));
}

std::vector<MetricSample> MetricsRegistry::collect() {
    // Collectors run unlocked: they call gauge() / set() themselves and
    // must not deadlock against the registration mutex.
    std::vector<std::function<void()>> collectors;
    {
        const util::MutexLock lock(mutex_);
        collectors = collectors_;
    }
    for (const std::function<void()>& fn : collectors) fn();

    std::vector<MetricSample> samples;
    const util::MutexLock lock(mutex_);
    samples.reserve(metrics_.size());
    for (const auto& [name, entry] : metrics_) {
        MetricSample sample;
        sample.name = name;
        sample.kind = entry.kind;
        sample.help = entry.help;
        switch (entry.kind) {
            case MetricKind::kCounter:
                sample.counter = entry.counter->value();
                break;
            case MetricKind::kGauge:
                sample.gauge = entry.gauge->value();
                break;
            case MetricKind::kHistogram:
                sample.histogram = entry.histogram->snapshot();
                break;
        }
        samples.push_back(std::move(sample));
    }
    return samples;
}

}  // namespace aero::obs
