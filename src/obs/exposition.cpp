#include "obs/exposition.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/sync.hpp"

namespace aero::obs {

namespace {

/// One fixed number formatter so dumps are byte-stable: integers print
/// bare, everything else through %.10g (shortest round-ish form).
std::string format_number(double v) {
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.10g", v);
    return buffer;
}

/// Prometheus HELP escaping: backslash and newline.
std::string escape_help(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// Prometheus label-value escaping: backslash, quote, newline.
std::string escape_label(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '\\') {
            out += "\\\\";
        } else if (c == '"') {
            out += "\\\"";
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// Per-span-name aggregate over a TraceBuffer snapshot, name-sorted
/// (std::map) for deterministic output.
struct SpanAggregate {
    long long count = 0;
    double total_ms = 0.0;
};

std::map<std::string, SpanAggregate> aggregate_spans(
    const TraceBuffer& trace) {
    std::map<std::string, SpanAggregate> spans;
    for (const SpanRecord& record : trace.snapshot()) {
        SpanAggregate& agg = spans[record.name];
        ++agg.count;
        agg.total_ms +=
            static_cast<double>(record.end_ns - record.start_ns) * 1e-6;
    }
    return spans;
}

}  // namespace

std::string render_text(MetricsRegistry& registry,
                        const TraceBuffer* trace) {
    std::string out;
    for (const MetricSample& sample : registry.collect()) {
        out += "# HELP " + sample.name + " " + escape_help(sample.help) +
               "\n";
        out += "# TYPE " + sample.name + " " +
               metric_kind_name(sample.kind) + "\n";
        switch (sample.kind) {
            case MetricKind::kCounter:
                out += sample.name + " " +
                       format_number(static_cast<double>(sample.counter)) +
                       "\n";
                break;
            case MetricKind::kGauge:
                out += sample.name + " " + format_number(sample.gauge) +
                       "\n";
                break;
            case MetricKind::kHistogram: {
                const Histogram::Snapshot& h = sample.histogram;
                for (std::size_t i = 0; i < h.bounds.size(); ++i) {
                    out += sample.name + "_bucket{le=\"" +
                           format_number(h.bounds[i]) + "\"} " +
                           format_number(
                               static_cast<double>(h.cumulative[i])) +
                           "\n";
                }
                out += sample.name + "_bucket{le=\"+Inf\"} " +
                       format_number(static_cast<double>(h.count)) + "\n";
                out += sample.name + "_sum " + format_number(h.sum) + "\n";
                out += sample.name + "_count " +
                       format_number(static_cast<double>(h.count)) + "\n";
                break;
            }
        }
    }
    if (trace != nullptr) {
        out += "# HELP aero_trace_spans_recorded_total spans recorded into "
               "the ring\n";
        out += "# TYPE aero_trace_spans_recorded_total counter\n";
        out += "aero_trace_spans_recorded_total " +
               format_number(static_cast<double>(trace->recorded())) + "\n";
        out += "# HELP aero_trace_spans_dropped_total spans overwritten "
               "before being read (ring overflow)\n";
        out += "# TYPE aero_trace_spans_dropped_total counter\n";
        out += "aero_trace_spans_dropped_total " +
               format_number(static_cast<double>(trace->dropped())) + "\n";
        out += "# HELP aero_trace_span_ms per-span-name cumulative time "
               "and count\n";
        out += "# TYPE aero_trace_span_ms summary\n";
        for (const auto& [name, agg] : aggregate_spans(*trace)) {
            const std::string label = "{span=\"" + escape_label(name) +
                                      "\"} ";
            out += "aero_trace_span_ms_sum" + label +
                   format_number(agg.total_ms) + "\n";
            out += "aero_trace_span_ms_count" + label +
                   format_number(static_cast<double>(agg.count)) + "\n";
        }
    }
    return out;
}

std::string render_text() {
    return render_text(MetricsRegistry::instance(),
                       &TraceBuffer::instance());
}

std::string render_json(MetricsRegistry& registry,
                        const TraceBuffer* trace) {
    util::JsonValue root = util::JsonValue::object();
    util::JsonValue metrics = util::JsonValue::object();
    for (const MetricSample& sample : registry.collect()) {
        util::JsonValue metric = util::JsonValue::object();
        metric.set("type", metric_kind_name(sample.kind));
        metric.set("help", sample.help);
        switch (sample.kind) {
            case MetricKind::kCounter:
                metric.set("value",
                           static_cast<double>(sample.counter));
                break;
            case MetricKind::kGauge:
                metric.set("value", sample.gauge);
                break;
            case MetricKind::kHistogram: {
                const Histogram::Snapshot& h = sample.histogram;
                util::JsonValue buckets = util::JsonValue::array();
                for (std::size_t i = 0; i < h.bounds.size(); ++i) {
                    util::JsonValue bucket = util::JsonValue::object();
                    bucket.set("le", h.bounds[i]);
                    bucket.set("cumulative",
                               static_cast<double>(h.cumulative[i]));
                    buckets.push(std::move(bucket));
                }
                util::JsonValue inf = util::JsonValue::object();
                inf.set("le", "+Inf");
                inf.set("cumulative", static_cast<double>(h.count));
                buckets.push(std::move(inf));
                metric.set("buckets", std::move(buckets));
                metric.set("sum", h.sum);
                metric.set("count", static_cast<double>(h.count));
                break;
            }
        }
        metrics.set(sample.name, std::move(metric));
    }
    root.set("metrics", std::move(metrics));
    if (trace != nullptr) {
        util::JsonValue tracing = util::JsonValue::object();
        tracing.set("recorded", static_cast<double>(trace->recorded()));
        tracing.set("dropped", static_cast<double>(trace->dropped()));
        util::JsonValue spans = util::JsonValue::object();
        for (const auto& [name, agg] : aggregate_spans(*trace)) {
            util::JsonValue span = util::JsonValue::object();
            span.set("count", static_cast<double>(agg.count));
            span.set("total_ms", agg.total_ms);
            spans.set(name, std::move(span));
        }
        tracing.set("spans", std::move(spans));
        root.set("trace", std::move(tracing));
    }
    return root.dump();
}

std::string render_json() {
    return render_json(MetricsRegistry::instance(),
                       &TraceBuffer::instance());
}

void dump_text(const std::string& path) {
    const std::string text = render_text();
    if (path.empty()) {
        std::fprintf(stderr, "%s", text.c_str());
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    out << text;
    if (!out) {
        util::log_warn() << "obs: failed to write metrics dump to " << path;
    }
}

// ---- periodic dump thread ---------------------------------------------------

namespace {

struct Dumper {
    util::Mutex mutex;
    util::CondVar cv;
    std::thread thread AERO_GUARDED_BY(mutex);
    bool running AERO_GUARDED_BY(mutex) = false;
    bool stop AERO_GUARDED_BY(mutex) = false;
    int period_ms AERO_GUARDED_BY(mutex) = 0;
    std::string path AERO_GUARDED_BY(mutex);

    /// Process-exit cleanup; explicit stop_periodic_dump() is the
    /// normal path.
    ~Dumper() { stop_periodic_dump(); }
};

Dumper& dumper() {
    static Dumper instance;
    return instance;
}

// Opted out of the static analysis: the condition-variable wait hands
// the mutex to std::unique_lock.
void dump_loop() AERO_NO_THREAD_SAFETY_ANALYSIS {
    Dumper& d = dumper();
    std::unique_lock<util::Mutex> lock(d.mutex);
    for (;;) {
        d.cv.wait_for(lock, std::chrono::milliseconds(d.period_ms),
                      [&d] { return d.stop; });
        if (d.stop) return;
        const std::string path = d.path;
        lock.unlock();
        dump_text(path);
        lock.lock();
    }
}

}  // namespace

bool start_periodic_dump(int period_ms, const std::string& path) {
    if (period_ms <= 0) return false;
    // Touch the singletons the dump thread reads so they are
    // constructed before the Dumper and therefore destroyed after its
    // joining destructor at process exit.
    MetricsRegistry::instance();
    TraceBuffer::instance();
    Dumper& d = dumper();
    const util::MutexLock lock(d.mutex);
    if (d.running) return false;
    d.stop = false;
    d.period_ms = period_ms;
    d.path = path;
    d.thread = std::thread(dump_loop);
    d.running = true;
    return true;
}

void stop_periodic_dump() {
    Dumper& d = dumper();
    std::thread joinable;
    {
        const util::MutexLock lock(d.mutex);
        if (!d.running) return;
        d.stop = true;
        d.running = false;
        joinable = std::move(d.thread);
    }
    d.cv.notify_all();
    joinable.join();
}

void maybe_start_periodic_dump() {
    const int period_ms = util::env_int("AERO_OBS_DUMP_MS", 0);
    if (period_ms <= 0) return;
    start_periodic_dump(period_ms,
                        util::env_string("AERO_OBS_DUMP_PATH", ""));
}

}  // namespace aero::obs
