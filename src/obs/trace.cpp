#include "obs/trace.hpp"

#include <atomic>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace aero::obs {

namespace {

/// Innermost live Trace on this thread (nullptr outside any request).
thread_local Trace* t_active_trace = nullptr;

std::atomic<std::uint64_t> g_next_request_id{1};

}  // namespace

std::uint64_t next_request_id() {
    return g_next_request_id.fetch_add(1, std::memory_order_relaxed);
}

// ---- TraceBuffer ------------------------------------------------------------

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

TraceBuffer& TraceBuffer::instance() {
    static TraceBuffer buffer;
    return buffer;
}

void TraceBuffer::record(const SpanRecord& record) {
    const util::MutexLock lock(mutex_);
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(record);
        next_ = ring_.size() % capacity_;
        return;
    }
    // Full: overwrite the oldest record and account for the loss.
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
    const util::MutexLock lock(mutex_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(next_ + i) % capacity_]);
    }
    return out;
}

long long TraceBuffer::recorded() const {
    const util::MutexLock lock(mutex_);
    return recorded_;
}

long long TraceBuffer::dropped() const {
    const util::MutexLock lock(mutex_);
    return dropped_;
}

void TraceBuffer::clear() {
    const util::MutexLock lock(mutex_);
    ring_.clear();
    next_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

// ---- SpanSummary ------------------------------------------------------------

std::string SpanSummary::to_string() const {
    std::string out;
    for (const SpanSummaryEntry& entry : entries) {
        if (!out.empty()) out += ' ';
        out += entry.name;
        out += '=';
        out += std::to_string(entry.count);
        out += 'x';
        out += util::format_fixed(entry.total_ms, 2);
        out += "ms";
    }
    return out;
}

// ---- Trace ------------------------------------------------------------------

Trace::Trace(std::uint64_t trace_id, TraceBuffer* buffer, const Clock* clock)
    : trace_id_(trace_id),
      buffer_(buffer != nullptr ? buffer : &TraceBuffer::instance()),
      clock_(clock != nullptr ? clock : &default_clock()),
      prev_active_(t_active_trace),
      prev_rid_(util::thread_rid()) {
    t_active_trace = this;
    util::set_thread_rid(trace_id_);
}

Trace::~Trace() {
    t_active_trace = prev_active_;
    util::set_thread_rid(prev_rid_);
}

SpanSummary Trace::summary() const { return summary_; }

// ---- Span -------------------------------------------------------------------

Span::Span(const char* name, Histogram* histogram)
    : name_(name), histogram_(histogram) {
    if (!enabled()) return;
    active_ = true;
    Trace* trace = t_active_trace;
    const Clock& clock = trace != nullptr ? *trace->clock_ : default_clock();
    start_ns_ = clock.now_ns();
    if (trace != nullptr) {
        span_id_ = trace->next_span_id_++;
        prev_parent_ = trace->open_parent_;
        trace->open_parent_ = span_id_;
        depth_ = trace->open_depth_++;
    }
}

Span::~Span() {
    if (!active_) return;
    Trace* trace = t_active_trace;
    const Clock& clock = trace != nullptr ? *trace->clock_ : default_clock();
    const std::int64_t end_ns = clock.now_ns();
    const double ms = static_cast<double>(end_ns - start_ns_) * 1e-6;

    SpanRecord record;
    record.name = name_;
    record.start_ns = start_ns_;
    record.end_ns = end_ns;
    if (trace != nullptr) {
        record.trace_id = trace->trace_id_;
        record.span_id = span_id_;
        record.parent_id = prev_parent_;
        trace->open_parent_ = prev_parent_;
        trace->open_depth_ = depth_;
        trace->buffer_->record(record);
        // Fold into the per-request summary, keyed by (name, depth) in
        // first-open order so repeated stages (e.g. retries) aggregate.
        SpanSummaryEntry* entry = nullptr;
        for (SpanSummaryEntry& e : trace->summary_.entries) {
            if (e.depth == depth_ && std::strcmp(e.name, name_) == 0) {
                entry = &e;
                break;
            }
        }
        if (entry == nullptr) {
            trace->summary_.entries.push_back({name_, depth_, 0, 0.0});
            entry = &trace->summary_.entries.back();
        }
        ++entry->count;
        entry->total_ms += ms;
    } else {
        TraceBuffer::instance().record(record);
    }
    if (histogram_ != nullptr) histogram_->observe(ms);
}

}  // namespace aero::obs
