#pragma once
// Time source for the observability layer (DESIGN.md §12), plus the
// process-wide enable switch. Everything that timestamps — spans, the
// latency histograms, obs::Stopwatch — reads an obs::Clock instead of
// calling std::chrono directly, so tests install a ManualClock and
// assert exact durations without a single wall-clock read.
//
// The enable switch (AERO_OBS, default on) gates every *measurement*:
// with obs disabled, Span construction does nothing, histograms skip
// their observe, and no clock is read on the hot paths. Counters and
// gauges stay plain relaxed atomics either way — they are cheaper than
// the branch that would skip them. None of this touches floating-point
// tensor math, so kernel outputs are bitwise identical with AERO_OBS=0
// (bench_obs asserts it).

#include <atomic>
#include <chrono>
#include <cstdint>

namespace aero::obs {

/// Whether the observability layer records measurements. Initialised
/// once from AERO_OBS (0 disables; anything else, or unset, enables).
bool enabled();
/// Test/bench hook; takes effect immediately on all threads.
void set_enabled(bool on);

/// Monotonic nanosecond time source. Implementations must be safe to
/// call from any thread.
class Clock {
public:
    virtual ~Clock() = default;
    virtual std::int64_t now_ns() const = 0;
};

/// Production clock: std::chrono::steady_clock.
class SteadyClock : public Clock {
public:
    std::int64_t now_ns() const override {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }
};

/// Deterministic clock for tests: time moves only when told to.
class ManualClock : public Clock {
public:
    std::int64_t now_ns() const override {
        return ns_.load(std::memory_order_relaxed);
    }
    void set_ns(std::int64_t ns) { ns_.store(ns, std::memory_order_relaxed); }
    void advance_ns(std::int64_t delta) {
        ns_.fetch_add(delta, std::memory_order_relaxed);
    }
    void advance_ms(double ms) {
        advance_ns(static_cast<std::int64_t>(ms * 1e6));
    }

private:
    std::atomic<std::int64_t> ns_{0};
};

/// The clock every default-constructed Span/Stopwatch reads. A process
/// has one; tests swap in a ManualClock around the code under test.
Clock& default_clock();
/// Installs `clock` as the default (nullptr restores the SteadyClock).
/// The caller keeps ownership and must outlive all readers.
void set_default_clock(Clock* clock);

/// Wall-time stopwatch over an injectable Clock; the replacement for
/// the deleted util::Stopwatch. Reads the default clock unless given
/// one, so benches stay one-liners and tests stay deterministic.
class Stopwatch {
public:
    explicit Stopwatch(const Clock* clock = nullptr)
        : clock_(clock != nullptr ? clock : &default_clock()),
          start_ns_(clock_->now_ns()) {}

    void reset() { start_ns_ = clock_->now_ns(); }
    double seconds() const {
        return static_cast<double>(clock_->now_ns() - start_ns_) * 1e-9;
    }
    double ms() const {
        return static_cast<double>(clock_->now_ns() - start_ns_) * 1e-6;
    }

private:
    const Clock* clock_;
    std::int64_t start_ns_;
};

}  // namespace aero::obs
