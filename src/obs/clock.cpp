#include "obs/clock.hpp"

#include <atomic>

#include "util/env.hpp"

namespace aero::obs {

namespace {

std::atomic<bool> g_enabled = [] {
    return util::env_int("AERO_OBS", 1) != 0;
}();

SteadyClock& steady_clock_instance() {
    static SteadyClock clock;
    return clock;
}

std::atomic<Clock*> g_default_clock{nullptr};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
    g_enabled.store(on, std::memory_order_relaxed);
}

Clock& default_clock() {
    Clock* clock = g_default_clock.load(std::memory_order_acquire);
    return clock != nullptr ? *clock : steady_clock_instance();
}

void set_default_clock(Clock* clock) {
    g_default_clock.store(clock, std::memory_order_release);
}

}  // namespace aero::obs
