#pragma once
// Trace spans (DESIGN.md §12): RAII timers that form a per-request tree.
//
//   obs::Trace trace(rid);              // per request, on the worker
//   {
//       obs::Span condition("condition", &condition_histogram);
//       ...                             // nested Spans become children
//   }                                   // close: record + observe
//   result.spans = trace.summary();     // aggregated per-stage totals
//
// Span lifecycle: a Span opened on a thread with an active Trace gets a
// span id, its parent is the innermost open Span, and closing it writes
// one SpanRecord into the Trace's ring buffer and folds the duration
// into the Trace's summary. A Span with no active Trace (pipeline used
// directly, training) still times itself, feeds its histogram, and
// records with trace_id 0 into the process buffer. With obs disabled
// (AERO_OBS=0) Span construction is a single relaxed load and nothing
// else — no clock read, no record.
//
// The ring buffer is bounded: when full, the oldest record is
// overwritten and counted as dropped, so a stalled reader costs memory
// nothing and the drop count makes the loss visible in every dump.
//
// Trace also installs its request id as the util::log thread rid, so
// any log_line emitted underneath carries `rid=<id>` and logs, spans
// and RequestResults correlate on one key.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::obs {

class Histogram;

/// One closed span. `name` must be a string literal (stored unowned).
struct SpanRecord {
    std::uint64_t trace_id = 0;  ///< 0 = outside any Trace
    std::uint32_t span_id = 0;
    std::uint32_t parent_id = 0;  ///< 0 = root of its trace
    const char* name = "";
    std::int64_t start_ns = 0;
    std::int64_t end_ns = 0;
};

/// Bounded ring of closed spans with drop accounting.
class TraceBuffer {
public:
    explicit TraceBuffer(std::size_t capacity = 4096);
    TraceBuffer(const TraceBuffer&) = delete;
    TraceBuffer& operator=(const TraceBuffer&) = delete;

    /// The process-wide buffer Spans default to.
    static TraceBuffer& instance();

    void record(const SpanRecord& record) AERO_EXCLUDES(mutex_);
    /// Oldest-to-newest copy of the retained records.
    std::vector<SpanRecord> snapshot() const AERO_EXCLUDES(mutex_);
    long long recorded() const AERO_EXCLUDES(mutex_);
    long long dropped() const AERO_EXCLUDES(mutex_);
    void clear() AERO_EXCLUDES(mutex_);

private:
    mutable util::Mutex mutex_;
    std::vector<SpanRecord> ring_ AERO_GUARDED_BY(mutex_);
    const std::size_t capacity_;
    std::size_t next_ AERO_GUARDED_BY(mutex_) = 0;  ///< next write slot
    long long recorded_ AERO_GUARDED_BY(mutex_) = 0;
    long long dropped_ AERO_GUARDED_BY(mutex_) = 0;
};

/// Aggregated view of one Trace, cheap enough to attach to every
/// serve::RequestResult: per (name, depth) totals in first-open order.
struct SpanSummaryEntry {
    const char* name = "";
    int depth = 0;  ///< 0 = opened directly under the Trace
    int count = 0;
    double total_ms = 0.0;
};

struct SpanSummary {
    std::vector<SpanSummaryEntry> entries;
    /// "condition=1x2.10ms sample=1x31.40ms" — for logs and quickstarts.
    std::string to_string() const;
};

/// Process-wide monotonically increasing request/trace id (never 0).
std::uint64_t next_request_id();

/// RAII per-request trace context, created on the thread that runs the
/// request. Not movable; Spans opened on the same thread during its
/// lifetime attach to it. Also sets the util::log thread rid.
class Trace {
public:
    explicit Trace(std::uint64_t trace_id, TraceBuffer* buffer = nullptr,
                   const Clock* clock = nullptr);
    ~Trace();
    Trace(const Trace&) = delete;
    Trace& operator=(const Trace&) = delete;

    std::uint64_t id() const { return trace_id_; }
    /// Aggregation over the spans closed so far.
    SpanSummary summary() const;

private:
    friend class Span;

    std::uint64_t trace_id_;
    TraceBuffer* buffer_;
    const Clock* clock_;
    std::uint32_t next_span_id_ = 1;
    std::uint32_t open_parent_ = 0;
    int open_depth_ = 0;
    SpanSummary summary_;
    Trace* prev_active_;
    std::uint64_t prev_rid_;
};

/// RAII stage timer. `name` must outlive the process (string literal).
/// Optionally feeds its duration (ms) into a histogram on close.
class Span {
public:
    explicit Span(const char* name, Histogram* histogram = nullptr);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    const char* name_;
    Histogram* histogram_;
    std::int64_t start_ns_ = 0;
    std::uint32_t span_id_ = 0;
    std::uint32_t prev_parent_ = 0;
    int depth_ = 0;
    bool active_ = false;
};

}  // namespace aero::obs
