#pragma once
// Exposition (DESIGN.md §12): renders a MetricsRegistry + TraceBuffer
// snapshot as Prometheus text or JSON. Three ways a dump leaves the
// process:
//
//   * on demand      — render_text()/render_json() (serve_quickstart
//                      prints one after its batch),
//   * periodically   — an env-gated background thread (AERO_OBS_DUMP_MS
//                      > 0; AERO_OBS_DUMP_PATH targets a file, default
//                      stderr), the SIGUSR1 stand-in for a process that
//                      cannot host an HTTP endpoint,
//   * at shutdown    — InferenceService::stop() dumps when
//                      AERO_OBS_DUMP=1, so a batch job's final state is
//                      never lost.
//
// Output is deterministic: metrics in ascending name order (the
// registry guarantees it), span aggregates in ascending name order,
// numbers through one fixed formatter — so the golden-file tests in
// test_obs can compare whole documents byte for byte.

#include <string>

namespace aero::obs {

class MetricsRegistry;
class TraceBuffer;

/// Prometheus text format (# HELP / # TYPE / samples). Histograms emit
/// cumulative `_bucket{le="..."}` series plus `_sum` / `_count`; the
/// trace buffer contributes recorded/dropped totals and per-span-name
/// `aero_trace_span_ms` aggregates. `trace` may be null to omit spans.
std::string render_text(MetricsRegistry& registry,
                        const TraceBuffer* trace);
/// Same over the process-wide registry and trace buffer.
std::string render_text();

/// JSON rendering of the same snapshot (machine-readable twin).
std::string render_json(MetricsRegistry& registry,
                        const TraceBuffer* trace);
std::string render_json();

/// Writes render_text() to `path` ("" = stderr). A failed file write is
/// logged, never fatal — observability must not take the service down.
void dump_text(const std::string& path);

/// Starts the periodic dump thread (idempotent; false when already
/// running or period_ms <= 0). Stopped by stop_periodic_dump() or at
/// process exit.
bool start_periodic_dump(int period_ms, const std::string& path);
void stop_periodic_dump();

/// Reads AERO_OBS_DUMP_MS / AERO_OBS_DUMP_PATH and starts the thread
/// when configured. Safe to call repeatedly (the service ctor does).
void maybe_start_periodic_dump();

}  // namespace aero::obs
