#pragma once
// Central registry of metric names (DESIGN.md §12).
//
// Every name registered on the process-wide MetricsRegistry::instance()
// must appear here and follow the `aero_<area>_<name>` pattern; the
// registry rejects unregistered names at runtime and the aero_lint
// `metric-naming` rule rejects them statically at every
// counter("...") / gauge("...") / histogram("...") call site. Local
// registries (tests) skip the table so golden files can use synthetic
// names, but still get the pattern check.
//
// To add a metric: append {name, help} below, register it at exactly
// one area of the code, and mention the name in DESIGN.md §12.

#include <cstring>

namespace aero::obs {

struct MetricName {
    const char* name;
    const char* help;  ///< one-line exposition HELP text
};

inline constexpr MetricName kMetricNames[] = {
    // serve::InferenceService
    {"aero_serve_submitted_total", "requests accepted by submit()"},
    {"aero_serve_ok_total", "requests resolved kOk (conditional sample)"},
    {"aero_serve_degraded_total",
     "requests resolved kDegraded (unconditional fallback)"},
    {"aero_serve_shed_total", "requests shed at admission (queue full)"},
    {"aero_serve_invalid_total", "requests rejected by boundary validation"},
    {"aero_serve_timeout_total",
     "requests past deadline (queued or cancelled mid-run)"},
    {"aero_serve_failed_total", "requests that exhausted every attempt"},
    {"aero_serve_retries_total", "generation attempts beyond the first"},
    {"aero_serve_cancelled_midrun_total",
     "deadline cancellations between denoising steps"},
    {"aero_serve_queue_depth", "requests waiting in the admission queue"},
    {"aero_serve_queue_ms", "admission -> worker pickup wait"},
    {"aero_serve_latency_ms", "admission -> terminal outcome latency"},
    {"aero_serve_breaker_state",
     "circuit breaker state (0 closed, 1 open, 2 half-open)"},
    {"aero_serve_breaker_trips", "cumulative breaker trips"},
    {"aero_serve_breaker_recoveries", "cumulative breaker recoveries"},
    // serve::Router (multi-replica sharded front-end)
    {"aero_router_submitted_total", "requests accepted by Router::submit()"},
    {"aero_router_failovers_total",
     "requests re-routed to another replica after a replica-side failure"},
    {"aero_router_hedges_total",
     "hedged second dispatches (primary past the p99-derived threshold)"},
    {"aero_router_hedge_wins_total",
     "hedged dispatches that finished before the primary"},
    {"aero_router_probes_total", "synthetic health probes sent to replicas"},
    {"aero_router_probe_failures_total",
     "synthetic health probes that failed or timed out"},
    {"aero_router_crashes_total",
     "replica kill events (injected crashes and health escalations)"},
    {"aero_router_restarts_total", "supervised replica restarts completed"},
    {"aero_router_healthy_replicas", "replicas currently Healthy"},
    {"aero_router_suspect_replicas", "replicas currently Suspect"},
    {"aero_router_down_replicas",
     "replicas currently Down or Restarting (no traffic)"},
    {"aero_router_warming_replicas",
     "replicas currently Warming (capped traffic after restart)"},
    {"aero_router_decision_ms",
     "routing overhead per dispatch: replica choice + hand-off"},
    // serve::AdmissionController (adaptive overload control)
    {"aero_overload_limit", "adaptive AIMD concurrency limit"},
    {"aero_overload_load_index",
     "smoothed load index (1.0 = exactly at the latency target)"},
    {"aero_overload_rung",
     "current base degradation-ladder rung (0 full .. 4 shed)"},
    {"aero_overload_rung_full_total",
     "degradation-ladder transitions into full quality"},
    {"aero_overload_rung_reduced_steps_total",
     "degradation-ladder transitions into reduced DDIM steps"},
    {"aero_overload_rung_reduced_resolution_total",
     "degradation-ladder transitions into half-resolution sampling"},
    {"aero_overload_rung_unconditional_total",
     "degradation-ladder transitions into unconditional fallback"},
    {"aero_overload_rung_shed_total",
     "degradation-ladder transitions into shedding"},
    {"aero_overload_codel_dropped_total",
     "queued requests dropped by the CoDel sojourn-time discipline"},
    {"aero_overload_decreases_total",
     "AIMD multiplicative concurrency-limit decreases"},
    {"aero_overload_rate_limited_total",
     "requests rejected by the per-client token-bucket rate limiter"},
    // core::AeroDiffusionPipeline stages
    {"aero_pipeline_condition_ms",
     "condition-feature + encoder stage time per request"},
    {"aero_pipeline_roi_fusion_ms",
     "object detection + ROI feature extraction time per request"},
    {"aero_pipeline_sample_ms", "full DDIM sampling loop time per request"},
    {"aero_pipeline_decode_ms", "latent -> image decode time per request"},
    // diffusion sampler / trainer sentinel
    {"aero_diffusion_step_ms", "single DDIM denoising step time"},
    {"aero_train_nan_events_total",
     "non-finite loss/gradient events seen by the sentinel"},
    {"aero_train_spike_events_total",
     "loss-spike events seen by the sentinel"},
    {"aero_train_rollbacks_total", "sentinel snapshot rollbacks applied"},
    // diffusion::BatchedDdimScheduler / serve::StepBatcher (continuous
    // cross-request step batching)
    {"aero_batch_size", "requests amortised by one batched denoising step"},
    {"aero_batch_steps_total", "batched denoising steps executed"},
    {"aero_batch_joins_total", "sampling jobs admitted into the step batch"},
    {"aero_batch_retired_total",
     "sampling jobs retired from the step batch (finished or cancelled)"},
    {"aero_batch_occupancy",
     "jobs currently sharing the batched denoising step"},
    // mem::Arena tensor-storage allocator (published by a collector;
    // mem sits below obs in the layering and only exports plain atomics)
    {"aero_alloc_requests", "arena acquire() calls since process start"},
    {"aero_alloc_hits", "arena acquisitions served from a free list"},
    {"aero_alloc_misses", "arena acquisitions that hit the system heap"},
    {"aero_alloc_trims", "cached blocks freed by the arena's LRU trim"},
    {"aero_alloc_resident_bytes", "bytes idle in the arena's free lists"},
    {"aero_alloc_outstanding_bytes", "arena bytes currently lent out"},
    // mem::ConditionCache condition/embedding LRU (same collector)
    {"aero_cache_hits", "condition-cache lookups served from the LRU"},
    {"aero_cache_misses", "condition-cache lookups that re-encoded"},
    {"aero_cache_insertions", "condition-cache entries inserted"},
    {"aero_cache_evictions", "condition-cache entries evicted by bounds"},
    {"aero_cache_invalidations",
     "condition-cache invalidate_all() calls (param load / training)"},
    {"aero_cache_entries", "live condition-cache entries"},
    {"aero_cache_bytes", "live condition-cache value bytes"},
    // util::ThreadPool (published by a collector; the pool itself sits
    // below obs in the layering and only exports plain atomics)
    {"aero_pool_tasks", "parallel_for invocations since process start"},
    {"aero_pool_chunks", "chunks executed since process start"},
    {"aero_pool_caller_chunks", "chunks executed by the calling thread"},
    {"aero_pool_caller_share", "caller-executed fraction of all chunks"},
    {"aero_pool_queue_wait_ms",
     "cumulative publish -> first-claim wait across tasks"},
    // trace ring buffer (rendered directly by the exposition; listed
    // here so the whole metric namespace lives in one table)
    {"aero_trace_spans_recorded_total", "spans recorded into the ring"},
    {"aero_trace_spans_dropped_total",
     "spans overwritten before being read (ring overflow)"},
    {"aero_trace_span_ms", "per-span-name cumulative time and count"},
};

inline constexpr int kNumMetricNames =
    static_cast<int>(sizeof(kMetricNames) / sizeof(kMetricNames[0]));

/// True when `name` is in the table. Used by the global registry's
/// runtime guard; cheap (the table is a few dozen entries).
inline bool is_registered_metric(const char* name) {
    for (const MetricName& metric : kMetricNames) {
        if (std::strcmp(metric.name, name) == 0) return true;
    }
    return false;
}

/// Registered help text for `name` (nullptr when absent).
inline const char* registered_metric_help(const char* name) {
    for (const MetricName& metric : kMetricNames) {
        if (std::strcmp(metric.name, name) == 0) return metric.help;
    }
    return nullptr;
}

}  // namespace aero::obs
