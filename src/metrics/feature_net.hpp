#pragma once
// Fixed (untrained, deterministically seeded) conv feature extractor:
// the Inception-V3 stand-in behind FID and KID. Random conv features
// are a standard small-scale substitute -- any *fixed* feature map
// yields a valid relative ordering of distribution distances.

#include "image/image.hpp"
#include "nn/layers.hpp"

namespace aero::metrics {

struct FeatureNetConfig {
    int image_size = 32;
    int feature_dim = 32;
    std::uint64_t seed = 0xfeadu;  ///< fixed: every evaluation shares it
};

class FeatureNet : public nn::Module {
public:
    explicit FeatureNet(const FeatureNetConfig& config = {});

    /// Feature vector of one image (resized internally), length
    /// feature_dim; combines pooled conv features across two scales so
    /// small-object structure contributes.
    std::vector<double> features(const image::Image& img) const;

    const FeatureNetConfig& config() const { return config_; }

private:
    FeatureNetConfig config_;
    nn::Conv2d conv1_;
    nn::Conv2d conv2_;
    nn::Conv2d conv3_;
};

}  // namespace aero::metrics
