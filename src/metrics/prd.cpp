#include "metrics/prd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "metrics/metrics.hpp"

namespace aero::metrics {

namespace {

using linalg::Matrix;

double squared_distance(const Matrix& a, std::size_t i, const Matrix& b,
                        std::size_t j) {
    double d = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
        const double diff = a(i, c) - b(j, c);
        d += diff * diff;
    }
    return d;
}

/// Radius of each point's k-th nearest neighbour within its own set.
std::vector<double> knn_radii(const Matrix& points, int k) {
    const std::size_t n = points.rows();
    std::vector<double> radii(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> distances;
        distances.reserve(n - 1);
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            distances.push_back(squared_distance(points, i, points, j));
        }
        const auto kth = static_cast<std::size_t>(
            std::min<int>(k, static_cast<int>(distances.size())) - 1);
        std::nth_element(distances.begin(), distances.begin() + kth,
                         distances.end());
        radii[i] = distances[kth];
    }
    return radii;
}

/// Fraction of `queries` lying inside the k-NN manifold of `support`.
double manifold_coverage(const Matrix& queries, const Matrix& support,
                         const std::vector<double>& support_radii) {
    std::size_t inside = 0;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        for (std::size_t s = 0; s < support.rows(); ++s) {
            if (squared_distance(queries, q, support, s) <=
                support_radii[s]) {
                ++inside;
                break;
            }
        }
    }
    return static_cast<double>(inside) /
           static_cast<double>(queries.rows());
}

}  // namespace

PrecisionRecall precision_recall_from_features(const Matrix& real,
                                               const Matrix& generated,
                                               int k) {
    assert(real.cols() == generated.cols());
    assert(real.rows() >= 2 && generated.rows() >= 2);
    const std::vector<double> real_radii = knn_radii(real, k);
    const std::vector<double> generated_radii = knn_radii(generated, k);
    PrecisionRecall result;
    result.precision = manifold_coverage(generated, real, real_radii);
    result.recall = manifold_coverage(real, generated, generated_radii);
    return result;
}

PrecisionRecall precision_recall(const FeatureNet& net,
                                 const std::vector<image::Image>& real,
                                 const std::vector<image::Image>& generated,
                                 int k) {
    return precision_recall_from_features(feature_matrix(net, real),
                                          feature_matrix(net, generated), k);
}

}  // namespace aero::metrics
