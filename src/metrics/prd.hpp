#pragma once
// Improved precision & recall for generative models (k-NN manifold
// estimate, Kynkaenniemi et al. 2019): precision = fraction of generated
// samples inside the real manifold, recall = fraction of real samples
// inside the generated manifold. Complements FID by separating fidelity
// from diversity -- exactly the axis on which strongly-conditioned
// (reconstruction-faithful, low-diversity) and unconditional
// (diverse, low-fidelity) models differ.

#include "linalg/matrix.hpp"
#include "metrics/feature_net.hpp"

namespace aero::metrics {

struct PrecisionRecall {
    double precision = 0.0;  ///< fidelity of generated samples
    double recall = 0.0;     ///< coverage of the real distribution
};

/// k-NN manifold precision/recall from feature rows.
PrecisionRecall precision_recall_from_features(const linalg::Matrix& real,
                                               const linalg::Matrix& generated,
                                               int k = 3);

/// Convenience wrapper running the FeatureNet first.
PrecisionRecall precision_recall(const FeatureNet& net,
                                 const std::vector<image::Image>& real,
                                 const std::vector<image::Image>& generated,
                                 int k = 3);

}  // namespace aero::metrics
