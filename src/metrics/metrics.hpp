#pragma once
// Image-synthesis metrics (Sec. V-A "Evaluation Metrics"):
//  * FID  -- Frechet distance between Gaussian fits of feature sets
//  * KID  -- unbiased polynomial-kernel MMD^2 between feature sets
//  * PSNR -- reconstruction fidelity vs. paired references
//  * CLIP score -- via embed::clip_score, re-exported for convenience

#include <vector>

#include "embed/clip.hpp"
#include "image/image.hpp"
#include "linalg/matrix.hpp"
#include "metrics/feature_net.hpp"

namespace aero::metrics {

/// Extracts features for a set of images: one row per image.
linalg::Matrix feature_matrix(const FeatureNet& net,
                              const std::vector<image::Image>& images);

/// Frechet Inception Distance between feature rows (lower is better):
/// ||mu_r - mu_g||^2 + Tr(S_r + S_g - 2 (S_r^1/2 S_g S_r^1/2)^1/2).
double fid_from_features(const linalg::Matrix& real,
                         const linalg::Matrix& generated);

/// Kernel Inception Distance: unbiased MMD^2 with the standard
/// polynomial kernel k(x,y) = (x.y / d + 1)^3 (lower is better).
double kid_from_features(const linalg::Matrix& real,
                         const linalg::Matrix& generated);

/// Convenience wrappers running the FeatureNet first.
double fid(const FeatureNet& net, const std::vector<image::Image>& real,
           const std::vector<image::Image>& generated);
double kid(const FeatureNet& net, const std::vector<image::Image>& real,
           const std::vector<image::Image>& generated);

/// Mean PSNR over paired (reference, generated) images.
double mean_psnr(const std::vector<image::Image>& references,
                 const std::vector<image::Image>& generated);

/// Mean CLIP score over paired (image, caption) sets.
float mean_clip_score(const embed::ClipModel& clip,
                      const std::vector<image::Image>& images,
                      const std::vector<std::string>& captions);

/// Bundle returned by the standard evaluation (Table I columns).
struct SynthesisScores {
    double fid = 0.0;
    double psnr = 0.0;
    double kid = 0.0;
};

/// Computes all Table-I metrics at once. `references` are the paired
/// originals (for PSNR); FID/KID compare `generated` to `real_pool`.
SynthesisScores evaluate_synthesis(const FeatureNet& net,
                                   const std::vector<image::Image>& real_pool,
                                   const std::vector<image::Image>& references,
                                   const std::vector<image::Image>& generated);

}  // namespace aero::metrics
