#include "metrics/feature_net.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "autograd/var.hpp"

namespace aero::metrics {

namespace ag = aero::autograd;
using autograd::Var;
using tensor::Tensor;

namespace {

util::Rng seeded_rng(std::uint64_t seed) { return util::Rng(seed); }

}  // namespace

FeatureNet::FeatureNet(const FeatureNetConfig& config)
    : config_(config),
      conv1_([&] {
          util::Rng rng = seeded_rng(config.seed);
          return nn::Conv2d(3, config.feature_dim / 2, 3, 2, 1, rng);
      }()),
      conv2_([&] {
          util::Rng rng = seeded_rng(config.seed ^ 0x1111u);
          return nn::Conv2d(config.feature_dim / 2, config.feature_dim, 3, 2,
                            1, rng);
      }()),
      conv3_([&] {
          util::Rng rng = seeded_rng(config.seed ^ 0x2222u);
          return nn::Conv2d(config.feature_dim, config.feature_dim, 3, 2, 1,
                            rng);
      }()) {
    register_child(conv1_);
    register_child(conv2_);
    register_child(conv3_);
}

namespace {

/// Appends per-channel mean and standard deviation of the first
/// `channels` maps of a [1,C,H,W] activation tensor. Standard deviations
/// carry the texture/small-object energy that plain average pooling
/// destroys (a blurred mean image and a real scene share channel means
/// but not channel variances).
void append_moments(const Tensor& activations, int channels,
                    std::vector<double>* out) {
    const int c = activations.dim(1);
    const int spatial = activations.dim(2) * activations.dim(3);
    const int used = std::min(channels, c);
    for (int ch = 0; ch < used; ++ch) {
        const float* base = activations.data() + ch * spatial;
        double mean = 0.0;
        for (int s = 0; s < spatial; ++s) mean += base[s];
        mean /= spatial;
        double var = 0.0;
        for (int s = 0; s < spatial; ++s) {
            const double d = base[s] - mean;
            var += d * d;
        }
        var /= spatial;
        out->push_back(mean);
        out->push_back(3.0 * std::sqrt(var));  // weight texture energy up
    }
}

}  // namespace

std::vector<double> FeatureNet::features(const image::Image& img) const {
    image::Image sized = img;
    if (img.width() != config_.image_size ||
        img.height() != config_.image_size) {
        sized = image::resize_bilinear(img, config_.image_size,
                                       config_.image_size);
    }
    const Var input = Var::constant(sized.to_tensor_chw().reshaped(
        {1, 3, config_.image_size, config_.image_size}));

    // Two scales: mid-level (sensitive to small objects / texture) and
    // deep (layout); per-channel mean + std from each.
    const Var h1 = ag::tanh(conv1_.forward(input));
    const Var h2 = ag::tanh(conv2_.forward(h1));
    const Var h3 = ag::tanh(conv3_.forward(h2));

    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(config_.feature_dim));
    const int quarter = config_.feature_dim / 4;
    append_moments(h2.value(), quarter, &out);
    append_moments(h3.value(), quarter, &out);
    out.resize(static_cast<std::size_t>(config_.feature_dim), 0.0);
    return out;
}

}  // namespace aero::metrics
