#include "metrics/metrics.hpp"

#include <cassert>
#include <cmath>

namespace aero::metrics {

using linalg::Matrix;

Matrix feature_matrix(const FeatureNet& net,
                      const std::vector<image::Image>& images) {
    assert(!images.empty());
    const int d = net.config().feature_dim;
    Matrix rows(images.size(), static_cast<std::size_t>(d));
    for (std::size_t i = 0; i < images.size(); ++i) {
        const std::vector<double> f = net.features(images[i]);
        for (int j = 0; j < d; ++j) {
            rows(i, static_cast<std::size_t>(j)) =
                f[static_cast<std::size_t>(j)];
        }
    }
    return rows;
}

double fid_from_features(const Matrix& real, const Matrix& generated) {
    assert(real.cols() == generated.cols());
    std::vector<double> mu_r;
    std::vector<double> mu_g;
    const Matrix sigma_r = linalg::covariance(real, &mu_r);
    const Matrix sigma_g = linalg::covariance(generated, &mu_g);

    double mean_term = 0.0;
    for (std::size_t j = 0; j < mu_r.size(); ++j) {
        const double d = mu_r[j] - mu_g[j];
        mean_term += d * d;
    }

    // Tr((S_r S_g)^1/2) computed symmetrically as
    // Tr((S_r^1/2 S_g S_r^1/2)^1/2).
    const Matrix root_r = linalg::sqrt_psd(sigma_r);
    const Matrix inner = root_r * sigma_g * root_r;
    const Matrix cross_root = linalg::sqrt_psd(inner);

    const double trace_term = linalg::trace(sigma_r) +
                              linalg::trace(sigma_g) -
                              2.0 * linalg::trace(cross_root);
    return mean_term + std::max(trace_term, 0.0);
}

namespace {

double poly_kernel(const Matrix& a, std::size_t i, const Matrix& b,
                   std::size_t j) {
    const std::size_t d = a.cols();
    double dot = 0.0;
    for (std::size_t k = 0; k < d; ++k) dot += a(i, k) * b(j, k);
    const double base = dot / static_cast<double>(d) + 1.0;
    return base * base * base;
}

}  // namespace

double kid_from_features(const Matrix& real, const Matrix& generated) {
    const std::size_t m = real.rows();
    const std::size_t n = generated.rows();
    assert(m >= 2 && n >= 2);

    double k_rr = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
            if (i == j) continue;
            k_rr += poly_kernel(real, i, real, j);
        }
    }
    k_rr /= static_cast<double>(m * (m - 1));

    double k_gg = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) continue;
            k_gg += poly_kernel(generated, i, generated, j);
        }
    }
    k_gg /= static_cast<double>(n * (n - 1));

    double k_rg = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            k_rg += poly_kernel(real, i, generated, j);
        }
    }
    k_rg /= static_cast<double>(m * n);

    return k_rr + k_gg - 2.0 * k_rg;
}

double fid(const FeatureNet& net, const std::vector<image::Image>& real,
           const std::vector<image::Image>& generated) {
    return fid_from_features(feature_matrix(net, real),
                             feature_matrix(net, generated));
}

double kid(const FeatureNet& net, const std::vector<image::Image>& real,
           const std::vector<image::Image>& generated) {
    return kid_from_features(feature_matrix(net, real),
                             feature_matrix(net, generated));
}

double mean_psnr(const std::vector<image::Image>& references,
                 const std::vector<image::Image>& generated) {
    assert(references.size() == generated.size() && !references.empty());
    double total = 0.0;
    for (std::size_t i = 0; i < references.size(); ++i) {
        image::Image gen = generated[i];
        if (gen.width() != references[i].width() ||
            gen.height() != references[i].height()) {
            gen = image::resize_bilinear(gen, references[i].width(),
                                         references[i].height());
        }
        total += image::psnr(references[i], gen);
    }
    return total / static_cast<double>(references.size());
}

float mean_clip_score(const embed::ClipModel& clip,
                      const std::vector<image::Image>& images,
                      const std::vector<std::string>& captions) {
    assert(images.size() == captions.size() && !images.empty());
    float total = 0.0f;
    for (std::size_t i = 0; i < images.size(); ++i) {
        total += embed::clip_score(clip, images[i], captions[i]);
    }
    return total / static_cast<float>(images.size());
}

SynthesisScores evaluate_synthesis(
    const FeatureNet& net, const std::vector<image::Image>& real_pool,
    const std::vector<image::Image>& references,
    const std::vector<image::Image>& generated) {
    SynthesisScores scores;
    scores.fid = fid(net, real_pool, generated);
    scores.kid = kid(net, real_pool, generated);
    scores.psnr = mean_psnr(references, generated);
    return scores;
}

}  // namespace aero::metrics
