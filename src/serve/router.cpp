#include "serve/router.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>

#include "obs/trace.hpp"
#include "serve/key.hpp"
#include "util/hash.hpp"

namespace aero::serve {

namespace {

using MillisD = std::chrono::duration<double, std::milli>;

double ms_since(std::chrono::steady_clock::time_point start) {
    return MillisD(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

Router::Metrics Router::resolve_metrics() {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    Metrics m;
    m.submitted = &reg.counter("aero_router_submitted_total",
                               "requests accepted by Router::submit()");
    m.failovers = &reg.counter("aero_router_failovers_total",
                               "re-routes after replica-side failures");
    m.hedges = &reg.counter("aero_router_hedges_total",
                            "hedged second dispatches launched");
    m.hedge_wins = &reg.counter("aero_router_hedge_wins_total",
                                "hedged dispatches that beat the primary");
    m.probes = &reg.counter("aero_router_probes_total",
                            "synthetic health probes completed");
    m.probe_failures = &reg.counter("aero_router_probe_failures_total",
                                    "synthetic health probes that failed");
    m.crashes = &reg.counter("aero_router_crashes_total",
                             "replica kill events");
    m.restarts = &reg.counter("aero_router_restarts_total",
                              "supervised replica restarts completed");
    m.healthy = &reg.gauge("aero_router_healthy_replicas",
                           "replicas currently Healthy");
    m.suspect = &reg.gauge("aero_router_suspect_replicas",
                           "replicas currently Suspect");
    m.down = &reg.gauge("aero_router_down_replicas",
                        "replicas currently Down or Restarting");
    m.warming = &reg.gauge("aero_router_warming_replicas",
                           "replicas currently Warming");
    m.decision_ms = &reg.histogram("aero_router_decision_ms",
                                   "routing overhead per dispatch, ms",
                                   obs::default_ms_buckets());
    return m;
}

Router::Router(const core::AeroDiffusionPipeline& pipeline,
               const RouterConfig& config)
    : pipeline_(&pipeline), config_(config), metrics_(resolve_metrics()) {
    config_.replicas = std::max(1, config_.replicas);
    config_.vnodes = std::max(1, config_.vnodes);
    config_.max_reroutes = std::max(0, config_.max_reroutes);
    if (config_.queue_capacity == 0) {
        config_.queue_capacity =
            static_cast<std::size_t>(config_.replicas) *
            std::max<std::size_t>(1, config_.service.queue_capacity);
    }
    if (config_.dispatchers <= 0) {
        config_.dispatchers =
            config_.replicas * std::max(1, config_.service.workers);
    }
    config_.service.fault_injector = config_.fault_injector;

    util::Rng seeder(config_.seed);
    replicas_.reserve(static_cast<std::size_t>(config_.replicas));
    ring_.reserve(static_cast<std::size_t>(config_.replicas) *
                  static_cast<std::size_t>(config_.vnodes));
    for (int r = 0; r < config_.replicas; ++r) {
        ServiceConfig service_config = config_.service;
        service_config.seed = seeder.next_u64();
        replicas_.push_back(std::make_unique<Replica>(
            r, pipeline, service_config, config_.health, seeder.next_u64()));
        for (int v = 0; v < config_.vnodes; ++v) {
            // Ring points are seed-independent so the key -> replica
            // map is stable across router restarts and configs.
            const std::uint64_t key[2] = {static_cast<std::uint64_t>(r),
                                          static_cast<std::uint64_t>(v)};
            ring_.push_back({util::fnv1a64(key, sizeof(key)), r});
        }
    }
    std::sort(ring_.begin(), ring_.end());
    {
        const util::MutexLock lock(stats_mutex_);
        latency_ring_.assign(128, 0.0);
    }

    const util::MutexLock lock(stop_mutex_);
    dispatchers_.reserve(static_cast<std::size_t>(config_.dispatchers));
    for (int d = 0; d < config_.dispatchers; ++d) {
        dispatchers_.emplace_back(&Router::dispatcher_loop, this,
                                  seeder.next_u64());
    }
    supervisor_ = std::thread(&Router::supervisor_loop, this);
}

Router::~Router() { stop(); }

std::future<RequestResult> Router::submit(InferenceRequest request) {
    Job job;
    job.request = std::move(request);
    job.submitted_at = Clock::now();
    if (job.request.deadline_ms > 0.0 &&
        std::isfinite(job.request.deadline_ms)) {
        job.has_deadline = true;
        job.deadline = job.submitted_at +
                       std::chrono::duration_cast<Clock::duration>(
                           MillisD(job.request.deadline_ms));
    }
    job.key_hash = util::fnv1a64(canonical_prompt_key(job.request));
    std::future<RequestResult> future = job.promise.get_future();

    bool shed = false;
    bool closed = false;
    {
        const util::MutexLock lock(queue_mutex_);
        if (!accepting_) {
            shed = true;
            closed = true;
        } else if (queued_locked() >= config_.queue_capacity) {
            shed = true;
        } else {
            queues_[static_cast<int>(job.request.options.priority)]
                .push_back(std::move(job));
        }
    }
    {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.submitted;
    }
    metrics_.submitted->inc();
    if (shed) {
        RequestResult result;
        result.outcome = Outcome::kShed;
        result.message = closed ? "router stopped" : "router queue full";
        result.request_id = obs::next_request_id();
        result.latency_ms = ms_since(job.submitted_at);
        record(result);
        job.promise.set_value(std::move(result));
    } else {
        queue_cv_.notify_one();
    }
    return future;
}

int Router::pick_queue_locked(Clock::time_point now) const {
    const int interactive = static_cast<int>(Priority::kInteractive);
    const int batch = static_cast<int>(Priority::kBatch);
    if (queues_[batch].empty()) return interactive;
    if (queues_[interactive].empty()) return batch;
    const double batch_wait_ms =
        MillisD(now - queues_[batch].front().submitted_at).count();
    return batch_wait_ms >= config_.service.overload.batch_max_wait_ms
               ? batch
               : interactive;
}

void Router::dispatcher_loop(std::uint64_t seed) {
    util::Rng rng(seed);
    for (;;) {
        Job job;
        {
            std::unique_lock<util::Mutex> lock(queue_mutex_);
            queue_cv_.wait(
                lock, [this] { return stopping_ || queued_locked() > 0; });
            if (queued_locked() == 0) return;  // stopping_, fully drained
            std::deque<Job>& queue = queues_[pick_queue_locked(Clock::now())];
            job = std::move(queue.front());
            queue.pop_front();
        }
        RequestResult result = route(job, rng);
        record(result);
        job.promise.set_value(std::move(result));
    }
}

int Router::ring_lookup(std::uint64_t hash) const {
    if (ring_.empty()) return -1;
    const VNode probe{hash, -1};
    auto it = std::lower_bound(ring_.begin(), ring_.end(), probe);
    if (it == ring_.end()) it = ring_.begin();
    return it->replica;
}

int Router::pick_replica(std::uint64_t hash, const std::vector<char>& tried,
                         util::Rng& rng) {
    const std::size_t shed_depth =
        std::max<std::size_t>(1, config_.service.queue_capacity);
    const int preferred = ring_lookup(hash);
    if (preferred >= 0 && !tried[static_cast<std::size_t>(preferred)]) {
        Replica& replica = *replicas_[static_cast<std::size_t>(preferred)];
        const ReplicaState state = replica.state();
        if (state == ReplicaState::kHealthy &&
            replica.queue_depth() < shed_depth) {
            return preferred;
        }
        // Warm-up admission: a Warming preferred replica takes its
        // capped fraction of its own keyspace share, so a restarted
        // replica sees real traffic before it is fully re-admitted.
        if (state == ReplicaState::kWarming &&
            replica.queue_depth() < shed_depth && replica.admit_warm()) {
            return preferred;
        }
    }
    // The preferred replica is unhealthy, shedding or already tried:
    // power-of-two-choices on queue depth over the best available tier.
    std::vector<int> healthy, warming, suspect;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        if (tried[i]) continue;
        switch (replicas_[i]->state()) {
            case ReplicaState::kHealthy:
                healthy.push_back(static_cast<int>(i));
                break;
            case ReplicaState::kWarming:
                warming.push_back(static_cast<int>(i));
                break;
            case ReplicaState::kSuspect:
                suspect.push_back(static_cast<int>(i));
                break;
            case ReplicaState::kDown:
            case ReplicaState::kRestarting:
                break;
        }
    }
    const auto two_choices = [&](const std::vector<int>& tier) {
        if (tier.size() == 1) return tier[0];
        const int size = static_cast<int>(tier.size());
        const int a = tier[static_cast<std::size_t>(
            rng.uniform_int(0, size - 1))];
        const int b = tier[static_cast<std::size_t>(
            rng.uniform_int(0, size - 1))];
        if (a == b) return a;
        return replicas_[static_cast<std::size_t>(a)]->queue_depth() <=
                       replicas_[static_cast<std::size_t>(b)]->queue_depth()
                   ? a
                   : b;
    };
    if (!healthy.empty()) return two_choices(healthy);
    std::vector<int> admitted;
    for (const int i : warming) {
        if (replicas_[static_cast<std::size_t>(i)]->admit_warm()) {
            admitted.push_back(i);
        }
    }
    if (!admitted.empty()) return two_choices(admitted);
    if (!suspect.empty()) return two_choices(suspect);
    return -1;
}

std::future<RequestResult> Router::dispatch(
    const Job& job, const std::shared_ptr<InferenceService>& service) {
    InferenceRequest request = job.request;
    if (job.has_deadline) {
        // Replicas see the time remaining in the router frame, so
        // re-routes and queueing never stretch the original deadline.
        const double remaining = MillisD(job.deadline - Clock::now()).count();
        request.deadline_ms = std::max(remaining, 0.01);
    }
    return service->submit(std::move(request));
}

double Router::hedge_threshold_ms() const {
    std::vector<double> window;
    {
        const util::MutexLock lock(stats_mutex_);
        if (latency_count_ < config_.hedge_min_samples) return -1.0;
        const std::size_t n =
            std::min<std::size_t>(static_cast<std::size_t>(latency_count_),
                                  latency_ring_.size());
        window.assign(latency_ring_.begin(),
                      latency_ring_.begin() + static_cast<long>(n));
    }
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(window.size() - 1));
    std::nth_element(window.begin(), window.begin() + static_cast<long>(idx),
                     window.end());
    const double p99 = window[idx];
    return std::max(config_.hedge_min_ms, config_.hedge_factor * p99);
}

void Router::note_ok_latency(double ms) {
    const util::MutexLock lock(stats_mutex_);
    latency_ring_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % latency_ring_.size();
    ++latency_count_;
}

RequestResult Router::route(Job& job, util::Rng& rng) {
    const auto picked_up = Clock::now();
    const double queue_ms = MillisD(picked_up - job.submitted_at).count();
    util::FaultInjector* injector = config_.fault_injector;

    std::vector<char> tried(replicas_.size(), 0);
    RequestResult last;
    last.outcome = Outcome::kShed;
    last.message = "no replica available";
    int reroutes = 0;
    bool hedged_any = false;

    const auto finalize = [&](RequestResult result, int replica) {
        result.replica = replica;
        result.reroutes = reroutes;
        result.hedged = hedged_any;
        result.queue_ms = queue_ms;
        result.latency_ms = ms_since(job.submitted_at);
        if (result.request_id == 0) result.request_id = obs::next_request_id();
        if (result.outcome == Outcome::kOk ||
            result.outcome == Outcome::kDegraded) {
            note_ok_latency(result.latency_ms);
        }
        return result;
    };

    for (;;) {
        if (job.has_deadline && Clock::now() >= job.deadline) {
            RequestResult result;
            result.outcome = Outcome::kTimeout;
            result.message = "deadline expired during routing";
            return finalize(std::move(result), last.replica);
        }

        const auto decision_start = Clock::now();
        int target = pick_replica(job.key_hash, tried, rng);
        if (target < 0) {
            // Every admissible replica was already tried this round:
            // forget the history (the backoff already separated the
            // retries) rather than shedding a retryable request.
            std::fill(tried.begin(), tried.end(), 0);
            target = pick_replica(job.key_hash, tried, rng);
        }
        if (target < 0) {
            // Nothing admissible at all — every replica Down or
            // Restarting. Wait (bounded) for the supervisor to bring
            // one back before giving up.
            const auto wait_deadline =
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   MillisD(config_.no_replica_wait_ms));
            while (Clock::now() < wait_deadline && target < 0) {
                if (job.has_deadline && Clock::now() >= job.deadline) break;
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                target = pick_replica(job.key_hash, tried, rng);
            }
            if (target < 0) {
                RequestResult result;
                if (job.has_deadline && Clock::now() >= job.deadline) {
                    result.outcome = Outcome::kTimeout;
                    result.message = "deadline expired waiting for a replica";
                } else {
                    result.outcome = Outcome::kShed;
                    result.message = "no replica available";
                }
                return finalize(std::move(result), -1);
            }
        }

        Replica& primary = *replicas_[static_cast<std::size_t>(target)];
        std::shared_ptr<InferenceService> service = primary.service();
        RequestResult result;
        bool dispatched = false;
        if (service) {
            primary.count_routed();
            std::future<RequestResult> fut = dispatch(job, service);
            metrics_.decision_ms->observe(ms_since(decision_start));
            dispatched = true;

            // Hedging: when the primary exceeds the p99-derived
            // threshold, race a second dispatch; first terminal wins.
            // The "replica_slow" fault point forces an immediate hedge.
            double threshold =
                config_.hedging ? hedge_threshold_ms() : -1.0;
            if (injector && injector->should_fail("replica_slow")) {
                threshold = 0.0;
            }
            bool resolved = false;
            if (threshold >= 0.0 &&
                fut.wait_for(MillisD(threshold)) !=
                    std::future_status::ready) {
                std::vector<char> hedge_tried = tried;
                hedge_tried[static_cast<std::size_t>(target)] = 1;
                const int hedge_target =
                    pick_replica(job.key_hash, hedge_tried, rng);
                std::shared_ptr<InferenceService> hedge_service;
                if (hedge_target >= 0) {
                    hedge_service =
                        replicas_[static_cast<std::size_t>(hedge_target)]
                            ->service();
                }
                if (hedge_service) {
                    hedged_any = true;
                    {
                        const util::MutexLock lock(stats_mutex_);
                        ++stats_.hedges;
                    }
                    metrics_.hedges->inc();
                    replicas_[static_cast<std::size_t>(hedge_target)]
                        ->count_routed();
                    std::future<RequestResult> hedge_fut =
                        dispatch(job, hedge_service);
                    // Poll both; the loser's future is abandoned — its
                    // replica resolves it regardless, the result is
                    // simply not counted by the router (exactly-once).
                    for (;;) {
                        if (fut.wait_for(std::chrono::seconds(0)) ==
                            std::future_status::ready) {
                            result = fut.get();
                            break;
                        }
                        if (hedge_fut.wait_for(
                                std::chrono::microseconds(200)) ==
                            std::future_status::ready) {
                            result = hedge_fut.get();
                            target = hedge_target;
                            {
                                const util::MutexLock lock(stats_mutex_);
                                ++stats_.hedge_wins;
                            }
                            metrics_.hedge_wins->inc();
                            break;
                        }
                    }
                    resolved = true;
                }
            }
            if (!resolved) result = fut.get();
        } else {
            // The service vanished between pick and grab (crash racing
            // the dispatch): treat as a shed from that replica.
            metrics_.decision_ms->observe(ms_since(decision_start));
            result.outcome = Outcome::kShed;
            result.message = "replica went down before dispatch";
        }

        Replica& winner = *replicas_[static_cast<std::size_t>(target)];
        switch (result.outcome) {
            case Outcome::kOk:
            case Outcome::kDegraded:
                if (dispatched) winner.on_outcome(true);
                return finalize(std::move(result), target);
            case Outcome::kInvalid:
                // Caller error, no replica health signal either way.
                return finalize(std::move(result), target);
            case Outcome::kTimeout:
                if (job.has_deadline && Clock::now() >= job.deadline) {
                    // Genuine client deadline; health-neutral.
                    return finalize(std::move(result), target);
                }
                // Replica-induced (drain/crash cancelled it before the
                // client deadline): retry elsewhere, health-neutral —
                // the replica is already being handled by the
                // supervisor.
                break;
            case Outcome::kShed:
                // Replica queue full or stopping: retry elsewhere.
                break;
            case Outcome::kFailed:
                if (dispatched) winner.on_outcome(false);
                break;
        }

        // Failover: bounded re-routes with jittered backoff inside the
        // original deadline.
        last = std::move(result);
        last.replica = target;
        tried[static_cast<std::size_t>(target)] = 1;
        ++reroutes;
        {
            const util::MutexLock lock(stats_mutex_);
            ++stats_.failovers;
        }
        metrics_.failovers->inc();
        if (reroutes > config_.max_reroutes) {
            return finalize(std::move(last), target);
        }
        double delay = config_.reroute_backoff_base_ms *
                       static_cast<double>(1ull << std::min(reroutes - 1, 16));
        delay = std::min(delay, config_.reroute_backoff_max_ms);
        delay *= rng.uniform(0.5, 1.0);
        if (job.has_deadline) {
            const double remaining =
                MillisD(job.deadline - Clock::now()).count();
            delay = std::min(delay, std::max(remaining, 0.0));
        }
        if (delay > 0.0) {
            std::this_thread::sleep_for(MillisD(delay));
        }
    }
}

void Router::record(const RequestResult& result) {
    const util::MutexLock lock(stats_mutex_);
    ++stats_.by_outcome[static_cast<int>(result.outcome)];
}

void Router::kill_service(const std::shared_ptr<InferenceService>& service) {
    service->drain(config_.crash_drain_ms);
    service->stop();
    {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.crashes;
    }
    metrics_.crashes->inc();
}

void Router::supervise_replica(Replica& replica) {
    util::FaultInjector* injector = config_.fault_injector;

    // Kill path: an injected crash, or reaping a replica the data path
    // escalated to Down. The detached service is drained (bounded) and
    // stopped here so its in-flight futures resolve; dispatchers see
    // the cancellations and fail over.
    std::shared_ptr<InferenceService> dead;
    if (injector && injector->should_fail("replica_crash")) {
        dead = replica.reap(true);
    }
    if (!dead && replica.state() == ReplicaState::kDown) {
        dead = replica.reap(false);
    }
    if (dead) kill_service(dead);

    if (replica.restart_due()) {
        replica.restart();
        {
            const util::MutexLock lock(stats_mutex_);
            ++stats_.restarts;
        }
        metrics_.restarts->inc();
    }

    // Synthetic probe (skipped while Down/Restarting and when probing
    // is disabled by an empty probe caption).
    const ReplicaState state = replica.state();
    const bool probable = state == ReplicaState::kHealthy ||
                          state == ReplicaState::kSuspect ||
                          state == ReplicaState::kWarming;
    if (probable && !config_.probe_request.source_caption.empty()) {
        bool clean = false;
        bool verdict_valid = true;
        if (injector && injector->should_fail("replica_probe_fail")) {
            clean = false;  // injected: probe lost before the replica
        } else {
            const std::shared_ptr<InferenceService> service =
                replica.service();
            if (service) {
                InferenceRequest probe = config_.probe_request;
                probe.seed = config_.seed ^
                             (0x9e3779b97f4a7c15ull * ++probe_seq_);
                probe.deadline_ms = config_.probe_deadline_ms;
                const RequestResult verdict =
                    service->submit(std::move(probe)).get();
                if (verdict.outcome == Outcome::kInvalid) {
                    // Misconfigured probe prototype: count the failure
                    // but never poison replica health with it.
                    verdict_valid = false;
                } else {
                    clean = verdict.outcome == Outcome::kOk ||
                            verdict.outcome == Outcome::kDegraded;
                }
            } else {
                verdict_valid = false;  // raced a kill; skip this round
            }
        }
        {
            const util::MutexLock lock(stats_mutex_);
            ++stats_.probes;
            if (!clean) ++stats_.probe_failures;
        }
        metrics_.probes->inc();
        if (!clean) metrics_.probe_failures->inc();
        if (verdict_valid) replica.on_probe(clean);
    }

    // Breaker observation: an open condition-encoder breaker parks the
    // replica at Suspect (degraded service), never Down.
    const std::shared_ptr<InferenceService> service = replica.service();
    if (service) {
        replica.set_breaker_open(service->breaker_state() ==
                                 CircuitBreaker::State::kOpen);
    }
}

void Router::publish_replica_gauges() {
    int counts[kNumReplicaStates] = {};
    for (const auto& replica : replicas_) {
        ++counts[static_cast<int>(replica->state())];
    }
    metrics_.healthy->set(counts[static_cast<int>(ReplicaState::kHealthy)]);
    metrics_.suspect->set(counts[static_cast<int>(ReplicaState::kSuspect)]);
    metrics_.down->set(counts[static_cast<int>(ReplicaState::kDown)] +
                       counts[static_cast<int>(ReplicaState::kRestarting)]);
    metrics_.warming->set(counts[static_cast<int>(ReplicaState::kWarming)]);
}

void Router::supervisor_loop() {
    for (;;) {
        {
            std::unique_lock<util::Mutex> lock(supervisor_mutex_);
            supervisor_cv_.wait_for(lock, MillisD(config_.probe_interval_ms),
                                    [this] { return supervisor_stop_; });
            if (supervisor_stop_) return;
        }
        for (const auto& replica : replicas_) supervise_replica(*replica);
        publish_replica_gauges();
    }
}

void Router::stop() {
    {
        const util::MutexLock lock(queue_mutex_);
        accepting_ = false;
        stopping_ = true;
    }
    queue_cv_.notify_all();
    const util::MutexLock stop_lock(stop_mutex_);
    // Dispatchers drain the queue fully before exiting, and the
    // supervisor keeps restarting replicas while they do, so every
    // pending future resolves; only then do the replica services stop.
    for (std::thread& dispatcher : dispatchers_) {
        if (dispatcher.joinable()) dispatcher.join();
    }
    dispatchers_.clear();
    {
        const util::MutexLock lock(supervisor_mutex_);
        supervisor_stop_ = true;
    }
    supervisor_cv_.notify_all();
    if (supervisor_.joinable()) supervisor_.join();
    for (const auto& replica : replicas_) {
        const std::shared_ptr<InferenceService> service = replica->service();
        if (service) service->stop();
    }
}

RouterStats Router::stats() const {
    const util::MutexLock lock(stats_mutex_);
    return stats_;
}

ReplicaState Router::replica_state(int replica) const {
    return replicas_.at(static_cast<std::size_t>(replica))->state();
}

ReplicaSnapshot Router::replica_snapshot(int replica) const {
    return replicas_.at(static_cast<std::size_t>(replica))->snapshot();
}

bool Router::all_healthy() const {
    for (const auto& replica : replicas_) {
        if (replica->state() != ReplicaState::kHealthy) return false;
    }
    return true;
}

void Router::inject_crash(int replica) {
    const std::shared_ptr<InferenceService> dead =
        replicas_.at(static_cast<std::size_t>(replica))->reap(true);
    if (dead) kill_service(dead);
}

}  // namespace aero::serve
