#include "serve/validation.hpp"

#include <cmath>

#include "core/pipeline.hpp"
#include "text/vocabulary.hpp"
#include "util/strings.hpp"

namespace aero::serve {

namespace {

void fill(std::string* message, const std::string& detail) {
    if (message) *message = detail;
}

/// Printable ASCII plus blank whitespace; anything else (control bytes,
/// UTF-8 continuation garbage) marks the caption as not-text. The
/// caption grammar only ever emits this set.
bool is_caption_char(unsigned char c) {
    return c == ' ' || c == '\t' || c == '\n' || (c >= 0x20 && c < 0x7f);
}

}  // namespace

InvalidReason validate_caption(const std::string& caption,
                               const ValidationLimits& limits,
                               std::string* message) {
    if (caption.size() > limits.max_caption_chars) {
        fill(message, "caption of " + std::to_string(caption.size()) +
                          " chars exceeds limit of " +
                          std::to_string(limits.max_caption_chars));
        return InvalidReason::kCaptionTooLong;
    }
    for (const char c : caption) {
        if (!is_caption_char(static_cast<unsigned char>(c))) {
            fill(message, "caption contains non-text bytes");
            return InvalidReason::kCaptionNotText;
        }
    }
    const std::vector<std::string> words = util::split_whitespace(caption);
    if (words.empty()) {
        fill(message, "caption is empty");
        return InvalidReason::kEmptyCaption;
    }
    if (static_cast<int>(words.size()) > limits.max_caption_words) {
        fill(message, "caption of " + std::to_string(words.size()) +
                          " words exceeds limit of " +
                          std::to_string(limits.max_caption_words));
        return InvalidReason::kCaptionTooLong;
    }
    const text::Vocabulary& vocab = text::Vocabulary::aerial();
    int unknown = 0;
    for (const std::string& word : words) {
        if (vocab.id(text::normalize_word(word)) == vocab.unk_id()) {
            ++unknown;
        }
    }
    const double fraction =
        static_cast<double>(unknown) / static_cast<double>(words.size());
    if (fraction > limits.max_unknown_word_fraction) {
        fill(message, std::to_string(unknown) + "/" +
                          std::to_string(words.size()) +
                          " words outside the aerial vocabulary");
        return InvalidReason::kCaptionUnknownWords;
    }
    return InvalidReason::kNone;
}

InvalidReason validate_request(InferenceRequest& request,
                               const ValidationLimits& limits,
                               std::string* message) {
    InvalidReason reason =
        validate_caption(request.source_caption, limits, message);
    if (reason != InvalidReason::kNone) return reason;
    reason = validate_caption(request.target_caption, limits, message);
    if (reason != InvalidReason::kNone) return reason;

    const image::Image& img = request.reference.image;
    if (img.empty() || img.width() != limits.image_size ||
        img.height() != limits.image_size) {
        fill(message, "reference image missing or not " +
                          std::to_string(limits.image_size) + "x" +
                          std::to_string(limits.image_size));
        return InvalidReason::kBadReferenceImage;
    }
    for (const float v : img.data()) {
        if (!std::isfinite(v)) {
            fill(message, "reference image contains non-finite pixels");
            return InvalidReason::kBadReferenceImage;
        }
    }

    if (!std::isfinite(request.deadline_ms) || request.deadline_ms < 0.0 ||
        request.deadline_ms > limits.max_deadline_ms) {
        fill(message, "deadline_ms must be in [0, " +
                          std::to_string(limits.max_deadline_ms) + "]");
        return InvalidReason::kBadDeadline;
    }

    if (request.task == TaskKind::kEdit &&
        (!std::isfinite(request.strength) || request.strength <= 0.0f ||
         request.strength > 1.0f)) {
        fill(message, "edit strength must be in (0, 1]");
        return InvalidReason::kBadStrength;
    }

    if (request.task == TaskKind::kInpaint) {
        std::string region_error;
        const auto clamped = core::AeroDiffusionPipeline::clamp_region(
            request.region, limits.image_size, &region_error);
        if (!clamped) {
            fill(message, region_error);
            return InvalidReason::kBadRegion;
        }
        request.region = *clamped;
    }
    return InvalidReason::kNone;
}

}  // namespace aero::serve
