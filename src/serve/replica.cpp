#include "serve/replica.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace aero::serve {

namespace {

constexpr std::size_t kDeadQueueDepth =
    std::numeric_limits<std::size_t>::max() / 2;

int warm_stride_from(double fraction) {
    const double clamped = std::clamp(fraction, 0.01, 1.0);
    return std::max(1, static_cast<int>(std::lround(1.0 / clamped)));
}

}  // namespace

const char* replica_state_name(ReplicaState state) {
    switch (state) {
        case ReplicaState::kHealthy: return "healthy";
        case ReplicaState::kSuspect: return "suspect";
        case ReplicaState::kDown: return "down";
        case ReplicaState::kRestarting: return "restarting";
        case ReplicaState::kWarming: return "warming";
    }
    return "unknown";
}

Replica::Replica(int index, const core::AeroDiffusionPipeline& pipeline,
                 const ServiceConfig& service_config,
                 const ReplicaHealthConfig& health, std::uint64_t seed)
    : index_(index),
      pipeline_(&pipeline),
      service_config_(service_config),
      health_(health),
      warm_stride_(warm_stride_from(health.warmup_admit_fraction)),
      rng_(seed) {
    const util::MutexLock lock(mutex_);
    service_ = std::make_shared<InferenceService>(*pipeline_, service_config_);
}

Replica::~Replica() {
    std::shared_ptr<InferenceService> service;
    {
        const util::MutexLock lock(mutex_);
        service = std::move(service_);
    }
    if (service) service->stop();
}

ReplicaState Replica::state() const {
    const util::MutexLock lock(mutex_);
    return state_;
}

ReplicaSnapshot Replica::snapshot() const {
    const util::MutexLock lock(mutex_);
    ReplicaSnapshot snap;
    snap.state = state_;
    snap.restarts = restarts_;
    snap.routed = routed_;
    snap.fail_streak = fail_streak_;
    snap.queue_depth = service_ ? service_->queue_depth() : 0;
    return snap;
}

std::shared_ptr<InferenceService> Replica::service() const {
    const util::MutexLock lock(mutex_);
    return service_;
}

std::size_t Replica::queue_depth() const {
    std::shared_ptr<InferenceService> service;
    {
        const util::MutexLock lock(mutex_);
        service = service_;
    }
    return service ? service->queue_depth() : kDeadQueueDepth;
}

bool Replica::admissible() const {
    const util::MutexLock lock(mutex_);
    return (state_ == ReplicaState::kHealthy ||
            state_ == ReplicaState::kSuspect ||
            state_ == ReplicaState::kWarming) &&
           service_ != nullptr;
}

bool Replica::admit_warm() {
    const util::MutexLock lock(mutex_);
    if (state_ != ReplicaState::kWarming) return true;
    return (warm_counter_++ % warm_stride_) == 0;
}

void Replica::count_routed() {
    const util::MutexLock lock(mutex_);
    ++routed_;
}

void Replica::mark_down_locked() {
    state_ = ReplicaState::kDown;
    clean_probes_ = 0;
    // Exponential, jittered restart backoff; consecutive_restarts_ only
    // resets once the replica makes it all the way back to Healthy, so
    // a crash-looping replica backs off further each round.
    const double base = std::max(0.1, health_.restart_backoff_base_ms);
    double delay =
        base * static_cast<double>(1ull << std::min(consecutive_restarts_, 16));
    delay = std::min(delay, health_.restart_backoff_max_ms);
    delay *= rng_.uniform(0.5, 1.0);
    restart_at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double, std::milli>(
                                         delay));
}

void Replica::on_outcome(bool ok) {
    const util::MutexLock lock(mutex_);
    if (ok) {
        fail_streak_ = 0;
        return;
    }
    ++fail_streak_;
    clean_probes_ = 0;
    if (state_ == ReplicaState::kHealthy &&
        fail_streak_ >= health_.suspect_threshold) {
        state_ = ReplicaState::kSuspect;
    }
    if ((state_ == ReplicaState::kSuspect ||
         state_ == ReplicaState::kWarming) &&
        fail_streak_ >= health_.down_threshold) {
        mark_down_locked();
    }
}

void Replica::on_probe(bool clean) {
    const util::MutexLock lock(mutex_);
    if (state_ == ReplicaState::kDown || state_ == ReplicaState::kRestarting) {
        return;  // stale probe verdict from before a kill
    }
    if (!clean) {
        clean_probes_ = 0;
        ++fail_streak_;
        if (state_ == ReplicaState::kHealthy &&
            fail_streak_ >= health_.suspect_threshold) {
            state_ = ReplicaState::kSuspect;
        }
        if ((state_ == ReplicaState::kSuspect ||
             state_ == ReplicaState::kWarming) &&
            fail_streak_ >= health_.down_threshold) {
            mark_down_locked();
        }
        return;
    }
    fail_streak_ = 0;
    ++clean_probes_;
    if (clean_probes_ >= health_.probe_window && !breaker_open_ &&
        (state_ == ReplicaState::kSuspect ||
         state_ == ReplicaState::kWarming)) {
        state_ = ReplicaState::kHealthy;
        consecutive_restarts_ = 0;
    }
}

void Replica::set_breaker_open(bool open) {
    const util::MutexLock lock(mutex_);
    breaker_open_ = open;
    // An open breaker means the condition encoder is failing but the
    // replica still serves degraded unconditional samples: park it at
    // Suspect so routing deprioritises it, never escalate it to Down.
    if (open && state_ == ReplicaState::kHealthy) {
        state_ = ReplicaState::kSuspect;
    }
}

std::shared_ptr<InferenceService> Replica::reap(bool force) {
    const util::MutexLock lock(mutex_);
    if (force && state_ != ReplicaState::kDown) mark_down_locked();
    if (state_ != ReplicaState::kDown) return nullptr;
    return std::exchange(service_, nullptr);
}

bool Replica::restart_due() const {
    const util::MutexLock lock(mutex_);
    return state_ == ReplicaState::kDown && service_ == nullptr &&
           Clock::now() >= restart_at_;
}

void Replica::restart() {
    {
        const util::MutexLock lock(mutex_);
        if (state_ != ReplicaState::kDown || service_ != nullptr) return;
        state_ = ReplicaState::kRestarting;
    }
    // Service construction spawns worker threads; keep it outside the
    // replica lock so routing never blocks on a restart.
    auto service =
        std::make_shared<InferenceService>(*pipeline_, service_config_);
    const util::MutexLock lock(mutex_);
    service_ = std::move(service);
    state_ = ReplicaState::kWarming;
    fail_streak_ = 0;
    clean_probes_ = 0;
    warm_counter_ = 0;
    ++restarts_;
    ++consecutive_restarts_;
}

}  // namespace aero::serve
