#pragma once
// Request / response vocabulary of the batch inference service. Every
// submitted request terminates in exactly one typed Outcome — the
// accounting invariant test_serve asserts — and carries enough
// telemetry (latency split, attempt count) for the service stats and
// bench_serve to aggregate.

#include <cstdint>
#include <string>

#include "image/image.hpp"
#include "obs/trace.hpp"
#include "scene/dataset.hpp"

namespace aero::serve {

/// Which pipeline entry point a request exercises.
enum class TaskKind { kGenerate = 0, kEdit, kInpaint };
const char* task_kind_name(TaskKind task);

/// Scheduling class of a request. Interactive traffic is dequeued
/// first; batch traffic (bulk augmentation) yields, but never starves —
/// a batch job whose head-of-queue wait exceeds the configured bound
/// wins the next dequeue (overload.hpp, batch_max_wait_ms).
enum class Priority { kInteractive = 0, kBatch };
inline constexpr int kNumPriorities = 2;
const char* priority_name(Priority priority);

/// Degradation ladder rung applied to a request under overload
/// (DESIGN.md §14). Ordered: each rung is strictly cheaper than the one
/// before, so comparisons (`rung >= kReducedSteps`) read as "at least
/// this degraded". Selected per request from the admission controller's
/// smoothed load index; kFull whenever overload control is off.
enum class DegradeRung {
    kFull = 0,            ///< untouched: full steps, full resolution
    kReducedSteps,        ///< DDIM step count capped
    kReducedResolution,   ///< half-resolution latent, upsampled back
    kUnconditional,       ///< condition encoder skipped (kDegraded)
    kShed,                ///< rejected at admission (kShed)
};
inline constexpr int kNumDegradeRungs = 5;
const char* degrade_rung_name(DegradeRung rung);

/// Caller-supplied scheduling envelope, carried inside the request so
/// the Router forwards it to replicas untouched.
struct SubmitOptions {
    Priority priority = Priority::kInteractive;
    /// Optional stable client identity for the per-client token-bucket
    /// rate limiter (util/rate_limit.hpp); empty = exempt.
    std::string client_id;
};

/// Terminal state of a request. Exactly one per submit().
enum class Outcome {
    kOk = 0,    ///< conditional sample delivered
    kDegraded,  ///< unconditional fallback delivered (encoder failure or
                ///< open circuit breaker)
    kShed,      ///< rejected at admission: queue full / service stopped
    kInvalid,   ///< rejected by validation (typed InvalidReason)
    kTimeout,   ///< deadline expired queued or cancelled between steps
    kFailed,    ///< attempts exhausted on transient faults / bad output
};
inline constexpr int kNumOutcomes = 6;
const char* outcome_name(Outcome outcome);

/// Detail behind Outcome::kInvalid: which boundary check rejected the
/// request. Malformed input never reaches tensor math.
enum class InvalidReason {
    kNone = 0,
    kEmptyCaption,
    kCaptionTooLong,
    kCaptionNotText,       ///< control bytes / non-ASCII garbage
    kCaptionUnknownWords,  ///< mostly outside the aerial vocabulary
    kBadReferenceImage,    ///< empty / wrong size / non-finite pixels
    kBadRegion,            ///< inpaint ROI rejected (see clamp_region)
    kBadStrength,          ///< edit strength outside (0, 1]
    kBadDeadline,          ///< non-finite, negative or absurd deadline
};
const char* invalid_reason_name(InvalidReason reason);

struct InferenceRequest {
    TaskKind task = TaskKind::kGenerate;
    /// Copied in at submit(): the service never borrows caller memory,
    /// so a caller may free its inputs the moment submit() returns.
    scene::AerialSample reference;
    std::string source_caption;
    std::string target_caption;
    scene::BoundingBox region;  ///< inpaint only; clamped by validation
    float strength = 0.5f;      ///< edit only, in (0, 1]
    /// Relative deadline measured from submit(); <= 0 means none. A
    /// request past its deadline is rejected while queued or cancelled
    /// between denoising steps — never returned half-rendered.
    double deadline_ms = 0.0;
    std::uint64_t seed = 0;  ///< per-request determinism across workers
    SubmitOptions options;   ///< priority class + rate-limit identity
};

struct RequestResult {
    Outcome outcome = Outcome::kFailed;
    InvalidReason invalid_reason = InvalidReason::kNone;
    std::string message;      ///< human-readable failure detail
    image::Image image;       ///< non-empty only for kOk / kDegraded
    double queue_ms = 0.0;    ///< admission -> worker pickup
    double latency_ms = 0.0;  ///< admission -> terminal outcome
    int attempts = 0;         ///< generation attempts actually made
    int retries = 0;          ///< attempts beyond the first
    bool cancelled = false;   ///< deadline hit between denoising steps
    /// The condition span of the final (kOk) attempt was served from the
    /// pipeline's condition cache (DESIGN.md §17) instead of re-encoded.
    bool condition_cached = false;
    /// Degradation ladder rung the admission controller applied to this
    /// request (kFull when overload control is off or load was low).
    DegradeRung rung = DegradeRung::kFull;
    std::uint64_t request_id = 0;  ///< rid correlating logs and spans
    /// Per-request span tree summary (stage -> count x total time),
    /// folded from the obs::Trace the worker wrapped this request in.
    /// Empty when AERO_OBS=0.
    obs::SpanSummary spans;
    /// Filled by serve::Router: which replica produced the terminal
    /// outcome (-1 when the request never reached one), how many times
    /// the router re-routed it after replica-side failures, and whether
    /// a hedged second dispatch was launched. A plain InferenceService
    /// leaves all three at their defaults.
    int replica = -1;
    int reroutes = 0;
    bool hedged = false;
};

}  // namespace aero::serve
