#pragma once
// Circuit breaker over the condition-encoder path. Repeated encoder
// failures trip the breaker Open; while Open the service skips the
// encoder entirely and serves degraded unconditional samples (the
// fallback introduced with the divergence-sentinel work) instead of
// burning retries on a known-bad dependency. After `open_cooldown`
// further requests the breaker turns HalfOpen and grants exactly one
// probe the conditional path: a successful probe closes the breaker, a
// failed one re-opens it for another cooldown, and a probe abandoned
// without a verdict (deadline cancellation, pipeline rejection) must
// release the slot via on_probe_abandoned() so the next request can
// probe. All methods are thread-safe behind a single internal mutex;
// cooldown is counted in distinct requests rather than wall time so
// tests are deterministic (retry attempts pass count_cooldown=false).

#include <mutex>

namespace aero::serve {

struct BreakerConfig {
    int failure_threshold = 3;  ///< consecutive failures that trip Open
    /// Distinct requests served Open before HalfOpen (retry attempts
    /// within one request do not count).
    int open_cooldown = 4;
};

class CircuitBreaker {
public:
    enum class State { kClosed, kOpen, kHalfOpen };

    explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

    /// Admission decision for one attempt: true = take the conditional
    /// path (breaker Closed, or this caller just won the HalfOpen probe
    /// slot); false = serve the degraded unconditional path. While Open
    /// each call with `count_cooldown` set counts down the cooldown —
    /// callers pass false on retry attempts so `open_cooldown` counts
    /// distinct requests, not attempts. When the caller wins the probe
    /// slot, `*holds_probe` is set; the holder owes the breaker exactly
    /// one verdict: on_success(), on_failure(), or
    /// on_probe_abandoned().
    bool allow_conditional(bool* holds_probe = nullptr,
                           bool count_cooldown = true);

    /// The conditional path succeeded: resets the failure streak; a
    /// probe success closes the breaker (recovery).
    void on_success();
    /// The condition encoder failed on the conditional path: extends
    /// the streak / trips Open; a probe failure re-opens.
    void on_failure();
    /// The probe holder exited without learning anything about the
    /// encoder (deadline cancellation, pipeline rejection, non-finite
    /// sample): frees the probe slot, state unchanged, so the breaker
    /// cannot wedge HalfOpen with no probe ever completing.
    void on_probe_abandoned();

    State state() const;
    int trips() const;       ///< transitions into Open
    int recoveries() const;  ///< HalfOpen -> Closed transitions

private:
    BreakerConfig config_;
    mutable std::mutex mutex_;
    State state_ = State::kClosed;
    int consecutive_failures_ = 0;
    int cooldown_remaining_ = 0;
    bool probe_in_flight_ = false;
    int trips_ = 0;
    int recoveries_ = 0;
};

const char* breaker_state_name(CircuitBreaker::State state);

}  // namespace aero::serve
