#pragma once
// Circuit breaker over the condition-encoder path. Repeated encoder
// failures trip the breaker Open; while Open the service skips the
// encoder entirely and serves degraded unconditional samples (the
// fallback introduced with the divergence-sentinel work) instead of
// burning retries on a known-bad dependency. After `open_cooldown`
// further requests the breaker turns HalfOpen and grants exactly one
// probe the conditional path: a successful probe closes the breaker, a
// failed one re-opens it for another cooldown, and a probe abandoned
// without a verdict (deadline cancellation, pipeline rejection) must
// release the slot via on_probe_abandoned() so the next request can
// probe.
//
// Probe ownership: verdicts carry a `held_probe` flag (the value
// allow_conditional() wrote through `holds_probe`). Only the probe
// holder's verdict may move the breaker out of HalfOpen — a verdict
// from an attempt admitted back when the breaker was still Closed is
// stale by the time a trip and cooldown have happened, and must not
// close or re-open the breaker while the real probe is in flight.
//
// All methods are thread-safe behind a single internal mutex (fields
// are AERO_GUARDED_BY it; see util/annotations.hpp); cooldown is
// counted in distinct requests rather than wall time so tests are
// deterministic (retry attempts pass count_cooldown=false).

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace aero::serve {

struct BreakerConfig {
    int failure_threshold = 3;  ///< consecutive failures that trip Open
    /// Distinct requests served Open before HalfOpen (retry attempts
    /// within one request do not count).
    int open_cooldown = 4;
};

class CircuitBreaker {
public:
    enum class State { kClosed, kOpen, kHalfOpen };

    explicit CircuitBreaker(const BreakerConfig& config) : config_(config) {}

    /// Admission decision for one attempt: true = take the conditional
    /// path (breaker Closed, or this caller just won the HalfOpen probe
    /// slot); false = serve the degraded unconditional path. While Open
    /// each call with `count_cooldown` set counts down the cooldown —
    /// callers pass false on retry attempts so `open_cooldown` counts
    /// distinct requests, not attempts. When the caller wins the probe
    /// slot, `*holds_probe` is set; the holder owes the breaker exactly
    /// one verdict: on_success(true), on_failure(true), or
    /// on_probe_abandoned().
    bool allow_conditional(bool* holds_probe = nullptr,
                           bool count_cooldown = true) AERO_EXCLUDES(mutex_);

    /// The conditional path succeeded. Pass the `holds_probe` flag from
    /// the admitting allow_conditional(): a probe success closes the
    /// breaker (recovery); a Closed-state success resets the failure
    /// streak; a stale success (admitted pre-trip, breaker has since
    /// moved on) is ignored.
    void on_success(bool held_probe = false) AERO_EXCLUDES(mutex_);
    /// The condition encoder failed on the conditional path. A probe
    /// failure re-opens; a Closed-state failure extends the streak /
    /// trips Open; a stale failure is ignored — the in-flight probe
    /// will deliver its own verdict.
    void on_failure(bool held_probe = false) AERO_EXCLUDES(mutex_);
    /// The probe holder exited without learning anything about the
    /// encoder (deadline cancellation, pipeline rejection, non-finite
    /// sample): frees the probe slot, state unchanged, so the breaker
    /// cannot wedge HalfOpen with no probe ever completing.
    void on_probe_abandoned() AERO_EXCLUDES(mutex_);

    State state() const AERO_EXCLUDES(mutex_);
    int trips() const AERO_EXCLUDES(mutex_);       ///< transitions into Open
    int recoveries() const AERO_EXCLUDES(mutex_);  ///< HalfOpen -> Closed

private:
    /// Open with a fresh cooldown; shared by streak trips and probe
    /// failures.
    void trip_open() AERO_REQUIRES(mutex_);

    BreakerConfig config_;
    mutable util::Mutex mutex_;
    State state_ AERO_GUARDED_BY(mutex_) = State::kClosed;
    int consecutive_failures_ AERO_GUARDED_BY(mutex_) = 0;
    int cooldown_remaining_ AERO_GUARDED_BY(mutex_) = 0;
    bool probe_in_flight_ AERO_GUARDED_BY(mutex_) = false;
    int trips_ AERO_GUARDED_BY(mutex_) = 0;
    int recoveries_ AERO_GUARDED_BY(mutex_) = 0;
};

const char* breaker_state_name(CircuitBreaker::State state);

}  // namespace aero::serve
