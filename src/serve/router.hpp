#pragma once
// serve::Router — in-process multi-replica sharded serving front-end
// (DESIGN.md §13). The router owns N supervised InferenceService
// replicas and a bounded admission queue drained by dispatcher threads:
//
//   submit() --queue full / stopped--> kShed (immediate)
//   dispatcher --consistent hash of the canonical prompt key--> ring-
//     preferred replica when Healthy and not shedding; otherwise
//     power-of-two-choices on queue depth over the best available
//     health tier (Healthy > Warming-with-cap > Suspect)
//   --replica-side failure (kFailed / crash-cancelled kTimeout /
//     replica kShed)--> bounded re-route retries with jittered backoff,
//     always inside the request's original deadline
//   --primary slower than the p99-derived hedge threshold--> hedged
//     re-dispatch to a second replica; first terminal wins
//
// A supervisor thread drives the replica lifecycle: synthetic health
// probes, the "replica_crash" / "replica_probe_fail" fault points,
// reaping of Down replicas (bounded drain + stop), backoff-scheduled
// restarts and warm-up re-admission. The accounting invariant carries
// over from the single service: every Router::submit() resolves its
// future with exactly one terminal Outcome, whatever replicas crash
// mid-stream, and RouterStats::balanced() checks it.
//
// Determinism: with faults off and every replica Healthy, routing is a
// pure function of the request key, and each replica derives the image
// from the request seed alone — so router output is bitwise identical
// to a single InferenceService for the same requests.

#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/key.hpp"
#include "serve/replica.hpp"
#include "util/annotations.hpp"
#include "util/fault.hpp"
#include "util/sync.hpp"

namespace aero::serve {

struct RouterConfig {
    int replicas = 2;
    /// Per-replica service template; the router derives a distinct
    /// worker seed per replica from `seed`.
    ServiceConfig service;
    /// Router admission queue; 0 derives replicas * service capacity.
    std::size_t queue_capacity = 0;
    /// Dispatcher threads; 0 derives replicas * service workers so the
    /// router can keep every replica worker fed.
    int dispatchers = 0;
    int vnodes = 16;  ///< consistent-hash points per replica

    // Failover.
    int max_reroutes = 2;  ///< re-route retries after the first dispatch
    double reroute_backoff_base_ms = 0.5;  ///< doubled per retry, jittered
    double reroute_backoff_max_ms = 8.0;
    /// With every replica Down, how long a dispatcher waits for a
    /// restart before shedding (the request deadline still wins).
    double no_replica_wait_ms = 1000.0;

    // Hedging.
    bool hedging = true;
    /// Hedge threshold = hedge_factor * observed p99 ok-latency, floored
    /// at hedge_min_ms; armed only after hedge_min_samples completions.
    double hedge_factor = 3.0;
    double hedge_min_ms = 5.0;
    int hedge_min_samples = 16;

    // Replica lifecycle.
    ReplicaHealthConfig health;
    double probe_interval_ms = 10.0;  ///< supervisor tick period
    double probe_deadline_ms = 500.0;
    /// Prototype synthetic probe (a tiny valid generate; the supervisor
    /// varies the seed per probe). An empty source caption disables
    /// probing — crash/restart supervision still runs.
    InferenceRequest probe_request;
    double crash_drain_ms = 5.0;  ///< drain bound when killing a replica

    /// Shared injector for "replica_crash", "replica_slow" and
    /// "replica_probe_fail"; also forwarded to every replica service.
    util::FaultInjector* fault_injector = nullptr;
    std::uint64_t seed = 0x40375;
};

/// Monotonic counters; snapshot via Router::stats().
struct RouterStats {
    long long submitted = 0;
    long long by_outcome[kNumOutcomes] = {};
    long long failovers = 0;    ///< re-dispatches after replica failures
    long long hedges = 0;       ///< hedged second dispatches launched
    long long hedge_wins = 0;   ///< hedges whose result was taken
    long long probes = 0;       ///< synthetic probes completed
    long long probe_failures = 0;
    long long crashes = 0;      ///< replica kill events
    long long restarts = 0;     ///< supervised restarts completed

    long long outcome(Outcome o) const {
        return by_outcome[static_cast<int>(o)];
    }
    long long terminal() const {
        long long sum = 0;
        for (const long long n : by_outcome) sum += n;
        return sum;
    }
    /// The accounting invariant, replica crashes included: once every
    /// future is resolved, each submitted request has exactly one
    /// terminal outcome — never lost, never double-completed. Probes
    /// are supervision traffic and live in their own counters.
    bool balanced() const { return submitted == terminal(); }
};

class Router {
public:
    /// The pipeline must outlive the router and must not be trained
    /// while serving (same contract as InferenceService).
    Router(const core::AeroDiffusionPipeline& pipeline,
           const RouterConfig& config);
    ~Router();
    Router(const Router&) = delete;
    Router& operator=(const Router&) = delete;

    /// Admission: enqueues or sheds immediately. The returned future is
    /// always eventually satisfied with a terminal outcome.
    std::future<RequestResult> submit(InferenceRequest request)
        AERO_EXCLUDES(queue_mutex_, stats_mutex_);

    /// Stops admission, lets dispatchers resolve everything in flight,
    /// joins supervisor + dispatchers, then stops every replica
    /// service. Idempotent; the destructor calls it.
    void stop() AERO_EXCLUDES(stop_mutex_, queue_mutex_);

    RouterStats stats() const AERO_EXCLUDES(stats_mutex_);
    int replica_count() const { return static_cast<int>(replicas_.size()); }
    ReplicaState replica_state(int replica) const;
    ReplicaSnapshot replica_snapshot(int replica) const;
    bool all_healthy() const;
    /// Test hook: the deterministic kill that the "replica_crash" fault
    /// point drives probabilistically (drain + stop + schedule restart).
    void inject_crash(int replica);

private:
    using Clock = std::chrono::steady_clock;

    struct Job {
        InferenceRequest request;
        std::promise<RequestResult> promise;
        Clock::time_point submitted_at;
        Clock::time_point deadline;
        bool has_deadline = false;
        std::uint64_t key_hash = 0;
    };

    struct VNode {
        std::uint64_t point;
        int replica;
        bool operator<(const VNode& other) const {
            return point < other.point ||
                   (point == other.point && replica < other.replica);
        }
    };

    /// Queue drain loop (unique_lock + condvar wait; see
    /// InferenceService::worker_loop for the annotation rationale).
    void dispatcher_loop(std::uint64_t seed) AERO_NO_THREAD_SAFETY_ANALYSIS;
    void supervisor_loop() AERO_NO_THREAD_SAFETY_ANALYSIS;
    /// Full routing policy for one job: replica choice, dispatch,
    /// hedging, failover. Returns the terminal result.
    RequestResult route(Job& job, util::Rng& rng);
    /// One dispatch to one replica; adjusts the request deadline to the
    /// time remaining in the router frame.
    std::future<RequestResult> dispatch(
        const Job& job, const std::shared_ptr<InferenceService>& service);
    /// Replica choice: ring-preferred when Healthy and not shedding,
    /// else power-of-two-choices on queue depth over the best health
    /// tier. -1 when nothing (untried) is admissible.
    int pick_replica(std::uint64_t hash, const std::vector<char>& tried,
                     util::Rng& rng);
    int ring_lookup(std::uint64_t hash) const;
    double hedge_threshold_ms() const AERO_EXCLUDES(stats_mutex_);
    void note_ok_latency(double ms) AERO_EXCLUDES(stats_mutex_);
    void record(const RequestResult& result) AERO_EXCLUDES(stats_mutex_);
    /// Drains (bounded), stops and accounts one killed replica service.
    void kill_service(const std::shared_ptr<InferenceService>& service);
    /// Total queued jobs across both priority classes.
    std::size_t queued_locked() const AERO_REQUIRES(queue_mutex_) {
        std::size_t n = 0;
        for (const std::deque<Job>& q : queues_) n += q.size();
        return n;
    }
    /// Same dequeue policy as InferenceService::pick_queue_locked:
    /// interactive first, batch past its bounded wait wins.
    int pick_queue_locked(Clock::time_point now) const
        AERO_REQUIRES(queue_mutex_);
    void supervise_replica(Replica& replica);
    void publish_replica_gauges();

    /// Handles into the global obs registry (obs/metric_names.hpp),
    /// resolved once in the constructor. Process-wide cumulative; the
    /// exact per-router accounting stays in RouterStats.
    struct Metrics {
        obs::Counter* submitted = nullptr;
        obs::Counter* failovers = nullptr;
        obs::Counter* hedges = nullptr;
        obs::Counter* hedge_wins = nullptr;
        obs::Counter* probes = nullptr;
        obs::Counter* probe_failures = nullptr;
        obs::Counter* crashes = nullptr;
        obs::Counter* restarts = nullptr;
        obs::Gauge* healthy = nullptr;
        obs::Gauge* suspect = nullptr;
        obs::Gauge* down = nullptr;
        obs::Gauge* warming = nullptr;
        obs::Histogram* decision_ms = nullptr;
    };
    static Metrics resolve_metrics();

    const core::AeroDiffusionPipeline* pipeline_;
    RouterConfig config_;
    Metrics metrics_;
    std::vector<std::unique_ptr<Replica>> replicas_;
    std::vector<VNode> ring_;  ///< sorted; immutable after construction

    mutable util::Mutex queue_mutex_;
    util::CondVar queue_cv_;
    /// One FIFO per Priority class, mirroring InferenceService: the
    /// router dispatches interactive first, with the same bounded-wait
    /// guarantee for batch (service.overload.batch_max_wait_ms).
    std::deque<Job> queues_[kNumPriorities] AERO_GUARDED_BY(queue_mutex_);
    bool accepting_ AERO_GUARDED_BY(queue_mutex_) = true;
    bool stopping_ AERO_GUARDED_BY(queue_mutex_) = false;

    mutable util::Mutex stats_mutex_;
    RouterStats stats_ AERO_GUARDED_BY(stats_mutex_);
    /// Recent kOk/kDegraded latencies (ring buffer) feeding the
    /// p99-derived hedge threshold.
    std::vector<double> latency_ring_ AERO_GUARDED_BY(stats_mutex_);
    std::size_t latency_next_ AERO_GUARDED_BY(stats_mutex_) = 0;
    long long latency_count_ AERO_GUARDED_BY(stats_mutex_) = 0;

    mutable util::Mutex supervisor_mutex_;
    util::CondVar supervisor_cv_;
    bool supervisor_stop_ AERO_GUARDED_BY(supervisor_mutex_) = false;
    /// Touched only by the supervisor thread (probe seed variation).
    std::uint64_t probe_seq_ = 0;

    /// Serialises stop(); nesting stop_mutex_ -> queue_mutex_ only.
    util::Mutex stop_mutex_ AERO_ACQUIRED_BEFORE(queue_mutex_);
    std::vector<std::thread> dispatchers_ AERO_GUARDED_BY(stop_mutex_);
    std::thread supervisor_ AERO_GUARDED_BY(stop_mutex_);
};

}  // namespace aero::serve
