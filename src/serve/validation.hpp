#pragma once
// Boundary validation for the inference service. Every malformed input
// is converted into a typed InvalidReason here, before any tensor math
// runs, so garbage can never reach the encoders as NaNs, oversized
// buffers or out-of-bounds indices. Captions produced by the repo's own
// caption grammar always pass.

#include "serve/request.hpp"

namespace aero::serve {

struct ValidationLimits {
    std::size_t max_caption_chars = 512;
    int max_caption_words = 96;
    /// Reject when more than this fraction of a caption's words map to
    /// <unk> in the aerial vocabulary: gibberish, binary garbage, the
    /// wrong language. 0.6 keeps hand-edited captions admissible while
    /// stopping fuzz noise.
    double max_unknown_word_fraction = 0.6;
    /// Expected reference image edge length (the substrate budget's
    /// image_size).
    int image_size = 32;
    double max_deadline_ms = 600000.0;  ///< 10 minutes
};

/// Validates `request` against `limits`. On success returns kNone and,
/// for inpaint tasks, writes the in-bounds clamped region back into
/// `request.region`; otherwise returns the first failure found and
/// fills `message` (when non-null) with the detail.
InvalidReason validate_request(InferenceRequest& request,
                               const ValidationLimits& limits,
                               std::string* message);

/// Single-caption check used by validate_request (exposed for fuzzing).
InvalidReason validate_caption(const std::string& caption,
                               const ValidationLimits& limits,
                               std::string* message);

}  // namespace aero::serve
