#pragma once
// One supervised InferenceService replica inside serve::Router
// (DESIGN.md §13). The Replica owns the per-replica health state
// machine; the Router's dispatcher threads feed it data-path outcomes
// and its supervisor thread feeds it synthetic probe results, breaker
// observations, kill orders and restarts:
//
//   Healthy --consecutive failures--> Suspect --more failures--> Down
//      ^  ^                              |                         |
//      |  +---- clean probe window ------+            (service killed,
//      |                                               jittered backoff)
//      +-- clean probe window -- Warming <-- Restarting <------------+
//
// Suspect replicas keep serving (an open condition-encoder breaker
// parks a replica at Suspect while it serves degraded unconditional
// samples — it must NOT be escalated to Down for that); Down and
// Restarting replicas take no traffic; Warming replicas take a capped
// fraction of eligible traffic until their probe window is clean.
//
// Locking discipline: every mutable field sits behind the single
// internal mutex_ (AERO_GUARDED_BY, checked under AERO_ANALYZE=ON).
// The service handle is a shared_ptr so a dispatcher that grabbed the
// service just before a crash keeps it alive until its futures
// resolve; the InferenceService itself guarantees every submitted
// future terminates, so a killed replica can never strand a request.

#include <memory>

#include "core/pipeline.hpp"
#include "serve/service.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace aero::serve {

enum class ReplicaState {
    kHealthy = 0,  ///< full traffic
    kSuspect,      ///< serving, deprioritised (failures or open breaker)
    kDown,         ///< service killed; waiting out the restart backoff
    kRestarting,   ///< new service being constructed
    kWarming,      ///< restarted; capped traffic until probes are clean
};
inline constexpr int kNumReplicaStates = 5;
const char* replica_state_name(ReplicaState state);

struct ReplicaHealthConfig {
    int suspect_threshold = 3;  ///< consecutive failures Healthy -> Suspect
    int down_threshold = 6;     ///< consecutive failures -> Down (kill)
    int probe_window = 2;       ///< consecutive clean probes to recover
    /// Fraction of eligible traffic a Warming replica admits (counter
    /// stride, not a random draw, so tests are deterministic). Clamped
    /// to [0.01, 1].
    double warmup_admit_fraction = 0.25;
    double restart_backoff_base_ms = 5.0;  ///< doubled per consecutive
                                           ///< restart, jittered
    double restart_backoff_max_ms = 200.0;
};

/// Point-in-time view for tests, stats aggregation and the bench.
struct ReplicaSnapshot {
    ReplicaState state = ReplicaState::kHealthy;
    int restarts = 0;         ///< supervised restarts completed
    long long routed = 0;     ///< requests dispatched to this replica
    int fail_streak = 0;      ///< consecutive failures (data + probe)
    std::size_t queue_depth = 0;  ///< live depth; 0 when no service
};

class Replica {
public:
    /// The pipeline must outlive the replica; `service_config` should
    /// carry a per-replica seed so worker RNG streams stay distinct.
    Replica(int index, const core::AeroDiffusionPipeline& pipeline,
            const ServiceConfig& service_config,
            const ReplicaHealthConfig& health, std::uint64_t seed);
    ~Replica();
    Replica(const Replica&) = delete;
    Replica& operator=(const Replica&) = delete;

    int index() const { return index_; }
    ReplicaState state() const AERO_EXCLUDES(mutex_);
    ReplicaSnapshot snapshot() const AERO_EXCLUDES(mutex_);

    /// Live service handle; nullptr while Down/Restarting.
    std::shared_ptr<InferenceService> service() const AERO_EXCLUDES(mutex_);
    /// Queued + in-flight requests on the live service; a large
    /// sentinel when the replica has no service, so power-of-two-
    /// choices never prefers a dead replica.
    std::size_t queue_depth() const AERO_EXCLUDES(mutex_);

    /// True for states that may take traffic (Healthy / Suspect /
    /// Warming). Warming admission is additionally capped: callers must
    /// pass admit_warm() before dispatching to a Warming replica.
    bool admissible() const AERO_EXCLUDES(mutex_);
    /// Warming traffic cap: every warm-stride-th admission attempt
    /// passes. Always true outside Warming.
    bool admit_warm() AERO_EXCLUDES(mutex_);
    /// Counts a dispatched request (routing telemetry).
    void count_routed() AERO_EXCLUDES(mutex_);

    // ---- health inputs ------------------------------------------------------
    /// Data-path outcome: ok resets the failure streak; a failure
    /// extends it and may demote Healthy -> Suspect -> Down. Degraded
    /// responses are oks here — a replica behind an open breaker keeps
    /// serving and must not be escalated to Down.
    void on_outcome(bool ok) AERO_EXCLUDES(mutex_);
    /// Synthetic probe verdict; a clean window recovers Suspect/Warming
    /// to Healthy (unless the breaker is open), a failed probe extends
    /// the failure streak like a data-path failure.
    void on_probe(bool clean) AERO_EXCLUDES(mutex_);
    /// Supervisor-observed condition-encoder breaker state. Open parks
    /// the replica at Suspect and blocks recovery to Healthy.
    void set_breaker_open(bool open) AERO_EXCLUDES(mutex_);

    // ---- lifecycle (Router supervisor only) ---------------------------------
    /// Kill path: with `force` the replica is marked Down regardless of
    /// state (injected crash); otherwise only an already-Down replica
    /// is reaped. Returns the detached service — the caller drains and
    /// stops it outside any replica lock — or nullptr if there was
    /// nothing to kill.
    std::shared_ptr<InferenceService> reap(bool force) AERO_EXCLUDES(mutex_);
    /// True when Down and the jittered restart backoff has elapsed.
    bool restart_due() const AERO_EXCLUDES(mutex_);
    /// Recreates the service (spawns worker threads) and enters
    /// Warming. Only call when restart_due().
    void restart() AERO_EXCLUDES(mutex_);

private:
    using Clock = std::chrono::steady_clock;

    void mark_down_locked() AERO_REQUIRES(mutex_);

    const int index_;
    const core::AeroDiffusionPipeline* pipeline_;
    const ServiceConfig service_config_;
    const ReplicaHealthConfig health_;
    const int warm_stride_;

    mutable util::Mutex mutex_;
    std::shared_ptr<InferenceService> service_ AERO_GUARDED_BY(mutex_);
    ReplicaState state_ AERO_GUARDED_BY(mutex_) = ReplicaState::kHealthy;
    bool breaker_open_ AERO_GUARDED_BY(mutex_) = false;
    int fail_streak_ AERO_GUARDED_BY(mutex_) = 0;
    int clean_probes_ AERO_GUARDED_BY(mutex_) = 0;
    int restarts_ AERO_GUARDED_BY(mutex_) = 0;
    int consecutive_restarts_ AERO_GUARDED_BY(mutex_) = 0;
    long long routed_ AERO_GUARDED_BY(mutex_) = 0;
    long long warm_counter_ AERO_GUARDED_BY(mutex_) = 0;
    Clock::time_point restart_at_ AERO_GUARDED_BY(mutex_);
    util::Rng rng_ AERO_GUARDED_BY(mutex_);  ///< restart-backoff jitter
};

}  // namespace aero::serve
