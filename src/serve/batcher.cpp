#include "serve/batcher.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/env.hpp"

namespace aero::serve {

namespace {

std::atomic<bool> g_batching_enabled = [] {
    return util::env_int("AERO_BATCH", 1) != 0;
}();

}  // namespace

bool batching_enabled() {
    return g_batching_enabled.load(std::memory_order_relaxed);
}

void set_batching_enabled(bool on) {
    g_batching_enabled.store(on, std::memory_order_relaxed);
}

bool step_batching_live(const StepBatcherConfig& config) {
    return config.enabled && config.batch_max > 1 && batching_enabled();
}

StepBatcher::StepBatcher(const diffusion::UNet& unet,
                         const diffusion::NoiseSchedule& schedule,
                         const StepBatcherConfig& config)
    : unet_(&unet),
      schedule_(&schedule),
      config_(config),
      live_(step_batching_live(config)),
      occupancy_(&obs::MetricsRegistry::instance().gauge(
          "aero_batch_occupancy",
          "jobs currently sharing the batched denoising step")) {
    // Nothing can race the constructor; the lock keeps the guarded-by
    // contract uniform at the cost of one uncontended acquisition.
    const util::MutexLock lock(stop_mutex_);
    if (live_) driver_ = std::thread(&StepBatcher::driver_loop, this);
}

StepBatcher::~StepBatcher() { shutdown(); }

tensor::Tensor StepBatcher::execute(diffusion::SamplerJob job) {
    if (!live_) {
        // Defensive degenerate path; the service does not install a
        // non-live batcher as executor, but a direct caller still gets
        // the exact sequential behaviour.
        return diffusion::run_sampler_job(*unet_, *schedule_,
                                          std::move(job));
    }
    std::promise<tensor::Tensor> promise;
    std::future<tensor::Tensor> future = promise.get_future();
    {
        const util::MutexLock lock(mutex_);
        if (stopping_) return tensor::Tensor();  // caller treats as cancel
        pending_.push_back({std::move(job), std::move(promise)});
        ++stats_.admitted;
    }
    cv_.notify_all();
    // The job holds a pointer to the caller's Rng (and source/mask
    // storage); blocking here keeps them valid until the job retires.
    return future.get();
}

void StepBatcher::shutdown() {
    const util::MutexLock stop_lock(stop_mutex_);
    {
        const util::MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (driver_.joinable()) driver_.join();
}

StepBatcher::Stats StepBatcher::stats() const {
    const util::MutexLock lock(mutex_);
    return stats_;
}

void StepBatcher::driver_loop() {
    // Driver-confined state: the scheduler and the id -> promise map
    // are touched by this thread only; the mutex covers just the
    // pending hand-off queue and the stats.
    diffusion::BatchedDdimScheduler scheduler(*unet_, *schedule_);
    std::unordered_map<std::uint64_t, std::promise<tensor::Tensor>> inflight;
    std::vector<Pending> admitted;
    const std::size_t capacity =
        static_cast<std::size_t>(std::max(1, config_.batch_max));
    for (;;) {
        admitted.clear();
        {
            std::unique_lock<util::Mutex> lock(mutex_);
            // With jobs in flight the driver never parks: every loop
            // iteration is one real denoising step, and arrivals join
            // at the next boundary. Idle (or stopping with nothing
            // left), it sleeps on the hand-off queue.
            if (inflight.empty()) {
                cv_.wait(lock,
                         [this] { return stopping_ || !pending_.empty(); });
            }
            if (stopping_ && pending_.empty() && inflight.empty()) return;
            // Continuous batching: join at the step boundary while
            // capacity remains; the rest wait for a retirement.
            while (!pending_.empty() &&
                   inflight.size() + admitted.size() < capacity) {
                admitted.push_back(std::move(pending_.front()));
                pending_.pop_front();
            }
        }
        // admit() draws each job's initial latent from its own rng —
        // real work, kept off the lock.
        for (Pending& pending : admitted) {
            const std::uint64_t id = scheduler.admit(std::move(pending.job));
            inflight.emplace(id, std::move(pending.promise));
        }
        occupancy_->set(static_cast<double>(inflight.size()));
        if (!admitted.empty()) {
            const util::MutexLock lock(mutex_);
            stats_.peak_batch = std::max(stats_.peak_batch, inflight.size());
        }
        if (!inflight.empty()) scheduler.step();
        for (diffusion::BatchedDdimScheduler::Finished& finished :
             scheduler.take_finished()) {
            const auto it = inflight.find(finished.id);
            if (it == inflight.end()) continue;
            {
                const util::MutexLock lock(mutex_);
                if (finished.cancelled) {
                    ++stats_.cancelled;
                } else {
                    ++stats_.completed;
                }
            }
            it->second.set_value(std::move(finished.latent));
            inflight.erase(it);
        }
    }
}

}  // namespace aero::serve
